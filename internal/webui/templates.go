package webui

// pageTemplates holds every HTML template of the web UI. The pages mirror the
// screens shown in the paper: the dashboard, the project administration page
// with the constraint-entry form (Figure 3), the worker page with editable
// human factors and the eligible-task list (Figure 4), and the task page with
// the form-based task UI used during collaboration (Figure 5).
const pageTemplates = `
{{define "layout_head"}}
<!doctype html>
<html><head><meta charset="utf-8"><title>Crowd4U</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:4px 8px}
nav a{margin-right:1em}
form.factors label{display:block;margin:4px 0}
.notice-action-required{color:#b00}
.notice-info{color:#555}
</style></head><body>
<nav><a href="/">Dashboard</a><a href="/admin/projects">Projects</a><a href="/admin/projects/new">Register project</a></nav>
{{end}}

{{define "layout_foot"}}</body></html>{{end}}

{{define "dashboard"}}
{{template "layout_head"}}
<h1>Crowd4U</h1>
<p>{{.Projects}} projects · {{.Workers}} workers · {{.Tasks}} tasks</p>
<h2>Task pool</h2>
<table><tr><th>state</th><th>count</th></tr>
{{range $state, $n := .TaskCounts}}<tr><td>{{$state}}</td><td>{{$n}}</td></tr>{{end}}
</table>
<h2>Recent events</h2>
<table><tr><th>kind</th><th>project</th><th>task</th><th>message</th></tr>
{{range .Events}}<tr><td>{{.Kind}}</td><td>{{.Project}}</td><td>{{.Task}}</td><td>{{.Message}}</td></tr>{{end}}
</table>
{{template "layout_foot"}}
{{end}}

{{define "projects"}}
{{template "layout_head"}}
<h1>Projects</h1>
<table><tr><th>id</th><th>name</th><th>status</th><th>scheme</th></tr>
{{range .}}<tr><td><a href="/admin/projects/{{.Description.ID}}">{{.Description.ID}}</a></td>
<td>{{.Description.Name}}</td><td>{{.Status}}</td><td>{{.Description.Scheme}}</td></tr>{{end}}
</table>
{{template "layout_foot"}}
{{end}}

{{define "factorsFields"}}
<label>Required skill <input name="required_skill"></label>
<label>Minimum per-worker skill (0..1) <input name="min_skill"></label>
<label>Minimum team skill <input name="min_team_skill"></label>
<label>Native language required <input name="native_language"></label>
<label>Languages (comma separated) <input name="languages"></label>
<label>Region <input name="region"></label>
<label>Require login <input type="checkbox" name="require_login"></label>
<label>Upper critical mass <input name="critical_mass"></label>
<label>Minimum team size <input name="min_team_size"></label>
<label>Cost budget <input name="cost_budget"></label>
<label>Minimum pair affinity (0..1) <input name="min_pair_affinity"></label>
<label>Recruitment window (minutes) <input name="recruitment_minutes"></label>
<label>Assignment algorithm <select name="algorithm">
<option value="">default (greedy)</option><option>exact</option><option>greedy</option>
<option>star</option><option>grasp</option><option>random</option><option>skill-only</option>
</select></label>
{{end}}

{{define "projectForm"}}
{{template "layout_head"}}
<h1>Register a project</h1>
<form class="factors" method="post" action="/admin/projects">
<label>Name <input name="name" required></label>
<label>Requester <input name="requester"></label>
<label>Summary <textarea name="summary"></textarea></label>
<label>Collaboration scheme <select name="scheme">
<option>sequential</option><option>simultaneous</option><option>hybrid</option><option>individual</option>
</select></label>
<label>CyLog project description <textarea name="cylog" rows="12" cols="80"></textarea></label>
<h2>Desired human factors for task assignment</h2>
{{template "factorsFields"}}
<button type="submit">Register</button>
</form>
{{template "layout_foot"}}
{{end}}

{{define "projectAdmin"}}
{{template "layout_head"}}
<h1>Project {{.Admin.Description.Name}} ({{.Admin.Description.ID}})</h1>
<p>Status: {{.Admin.Status}} · Scheme: {{.Admin.Description.Scheme}} · Requester: {{.Admin.Description.Requester}}</p>
<p>{{.Admin.Description.Summary}}</p>

<h2>Notices</h2>
<ul>{{range .Notices}}<li class="notice-{{.Level}}">[{{.Level}}] {{.Message}}</li>{{else}}<li>none</li>{{end}}</ul>

<h2>Desired human factors (constraint entry form)</h2>
<form class="factors" method="post" action="/admin/projects/{{.Admin.Description.ID}}/factors">
{{template "factorsFields"}}
<button type="submit">Update factors</button>
</form>

<h2>Tasks</h2>
<table><tr><th>id</th><th>title</th><th>scheme</th><th>state</th></tr>
{{range .Tasks}}<tr><td><a href="/tasks/{{.ID}}">{{.ID}}</a></td><td>{{.Title}}</td><td>{{.Scheme}}</td><td>{{.State}}</td></tr>{{end}}
</table>
{{template "layout_foot"}}
{{end}}

{{define "workerPage"}}
{{template "layout_head"}}
<h1>Worker {{.Worker.Name}} ({{.Worker.ID}})</h1>

<h2>Your human factors</h2>
<form class="factors" method="post" action="/workers/{{.Worker.ID}}/factors">
<label>Native languages <input name="native_languages" value="{{range $i, $l := .Worker.Factors.NativeLanguages}}{{if $i}},{{end}}{{$l}}{{end}}"></label>
<label>Other languages <input name="other_languages" value="{{range $i, $l := .Worker.Factors.OtherLanguages}}{{if $i}},{{end}}{{$l}}{{end}}"></label>
<label>Region <input name="region" value="{{.Worker.Factors.Location.Region}}"></label>
<label>Skills (name=value, comma separated) <input name="skills"></label>
<label>SNS / contact id <input name="sns_id" value="{{.Worker.SNSID}}"></label>
<button type="submit">Update</button>
</form>

<h2>Collaborative tasks you are eligible for</h2>
<table><tr><th>task</th><th>title</th><th>scheme</th><th>interested?</th><th></th></tr>
{{$page := .}}
{{range .EligibleTasks}}
<tr><td><a href="/tasks/{{.ID}}">{{.ID}}</a></td><td>{{.Title}}</td><td>{{.Scheme}}</td>
<td>{{if index $page.Interested .ID}}yes{{else}}no{{end}}</td>
<td><form method="post" action="/workers/{{$page.Worker.ID}}/interest">
<input type="hidden" name="task" value="{{.ID}}"><button type="submit">I am interested</button></form></td></tr>
{{else}}<tr><td colspan="5">no eligible tasks right now</td></tr>{{end}}
</table>

<h2>Tasks you undertake</h2>
<ul>{{range .Undertaken}}<li>{{.}}</li>{{else}}<li>none</li>{{end}}</ul>
{{template "layout_foot"}}
{{end}}

{{define "taskPage"}}
{{template "layout_head"}}
<h1>Task {{.Task.Title}} ({{.Task.ID}})</h1>
<p>Scheme: {{.Task.Scheme}} · State: {{.Task.State}} · Project: {{.Task.ProjectID}}</p>
<p>{{.Task.Description}}</p>
{{if .HasTeam}}<p>Suggested team: {{range .Team}}{{.}} {{end}}</p>{{end}}

{{if .Result}}
<h2>Team result</h2>
<p>Submitted by {{.Result.SubmittedBy}} for {{.Result.TeamID}}</p>
<table>{{range $k, $v := .Result.Fields}}<tr><th>{{$k}}</th><td>{{$v}}</td></tr>{{end}}</table>
{{else}}
<h2>Task form</h2>
<form method="post" action="/tasks/{{.Task.ID}}/answer">
<label>Your worker id <input name="worker" required></label>
{{range .Task.Form.Fields}}
<label>{{if .Label}}{{.Label}}{{else}}{{.Name}}{{end}}
{{if eq .Kind "textarea"}}<textarea name="{{.Name}}"></textarea>
{{else if eq .Kind "select"}}<select name="{{.Name}}">{{range .Options}}<option>{{.}}</option>{{end}}</select>
{{else}}<input name="{{.Name}}">{{end}}
</label>
{{end}}
<button type="submit">Submit</button>
</form>
{{end}}
{{template "layout_foot"}}
{{end}}
`
