// Package webui exposes the Crowd4U platform over HTTP: the project
// administration page with its constraint-entry form (Figure 3), worker pages
// showing human factors and the eligible-task list (Figure 4), the form-based
// task UI used during collaboration (Figure 5), and a JSON API used by the
// examples and the benchmark harness.
//
// The server is deliberately framework-free (net/http + html/template) and
// holds no state of its own: every request reads and writes the platform.
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/assign"
	"github.com/crowd4u/crowd4u-go/internal/collab"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Server serves the Crowd4U web UI and JSON API for one platform instance.
type Server struct {
	Platform *platform.Platform
	// Crowd, when non-nil, is used by POST /api/cycle to run full deployment
	// cycles with a simulated crowd; production deployments leave it nil and
	// drive interest/undertake/answers through the worker-facing endpoints.
	Crowd platform.Crowd

	mux  *http.ServeMux
	tmpl *template.Template
}

// NewServer builds the HTTP handler around a platform.
func NewServer(p *platform.Platform, crowd platform.Crowd) *Server {
	s := &Server{Platform: p, Crowd: crowd}
	s.tmpl = template.Must(template.New("ui").Parse(pageTemplates))
	mux := http.NewServeMux()

	mux.HandleFunc("GET /", s.handleDashboard)
	mux.HandleFunc("GET /admin/projects", s.handleProjectList)
	mux.HandleFunc("GET /admin/projects/new", s.handleProjectForm)
	mux.HandleFunc("POST /admin/projects", s.handleProjectCreate)
	mux.HandleFunc("GET /admin/projects/{id}", s.handleProjectAdmin)
	mux.HandleFunc("POST /admin/projects/{id}/factors", s.handleProjectFactors)
	mux.HandleFunc("GET /workers/{id}", s.handleWorkerPage)
	mux.HandleFunc("POST /workers/{id}/factors", s.handleWorkerFactors)
	mux.HandleFunc("POST /workers/{id}/interest", s.handleWorkerInterest)
	mux.HandleFunc("GET /tasks/{id}", s.handleTaskPage)
	mux.HandleFunc("POST /tasks/{id}/answer", s.handleTaskAnswer)

	mux.HandleFunc("GET /api/projects", s.apiProjects)
	mux.HandleFunc("GET /api/tasks", s.apiTasks)
	mux.HandleFunc("GET /api/workers", s.apiWorkers)
	mux.HandleFunc("GET /api/events", s.apiEvents)
	mux.HandleFunc("GET /api/teams/{task}", s.apiTeam)
	mux.HandleFunc("POST /api/cycle", s.apiCycle)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) renderError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

func (s *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tmpl.ExecuteTemplate(w, name, data); err != nil {
		s.renderError(w, http.StatusInternalServerError, "template error: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response body
}

// ---- HTML pages -----------------------------------------------------------

type dashboardData struct {
	Projects   int
	Workers    int
	Tasks      int
	TaskCounts map[string]int
	Events     []platform.Event
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		s.renderError(w, http.StatusNotFound, "not found")
		return
	}
	events := s.Platform.Events()
	if len(events) > 20 {
		events = events[len(events)-20:]
	}
	s.render(w, "dashboard", dashboardData{
		Projects:   s.Platform.Projects.Count(),
		Workers:    s.Platform.Workers.Count(),
		Tasks:      s.Platform.Tasks.Len(),
		TaskCounts: s.Platform.Tasks.Counts(),
		Events:     events,
	})
}

func (s *Server) handleProjectList(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "projects", s.Platform.Projects.All())
}

func (s *Server) handleProjectForm(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "projectForm", nil)
}

// handleProjectCreate accepts the requester's project registration form (or a
// JSON body) and registers the project.
func (s *Server) handleProjectCreate(w http.ResponseWriter, r *http.Request) {
	var desc project.Description
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		if err := json.NewDecoder(r.Body).Decode(&desc); err != nil {
			s.renderError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	} else {
		if err := r.ParseForm(); err != nil {
			s.renderError(w, http.StatusBadRequest, "bad form: %v", err)
			return
		}
		desc = project.Description{
			Name:        r.FormValue("name"),
			Requester:   r.FormValue("requester"),
			Summary:     r.FormValue("summary"),
			Scheme:      task.CollaborationScheme(r.FormValue("scheme")),
			CyLogSource: r.FormValue("cylog"),
			Factors:     parseFactorsForm(r),
		}
	}
	admin, err := s.Platform.RegisterProject(desc)
	if err != nil {
		s.renderError(w, http.StatusBadRequest, "cannot register project: %v", err)
		return
	}
	http.Redirect(w, r, "/admin/projects/"+string(admin.Description.ID), http.StatusSeeOther)
}

// parseFactorsForm reads the constraint-entry form of Figure 3.
func parseFactorsForm(r *http.Request) project.DesiredFactors {
	f := project.DesiredFactors{}
	c := &f.Constraints
	c.RequiredSkill = r.FormValue("required_skill")
	c.MinSkill = parseFloat(r.FormValue("min_skill"))
	c.MinTeamSkill = parseFloat(r.FormValue("min_team_skill"))
	c.RequireNativeLanguage = r.FormValue("native_language")
	if langs := strings.TrimSpace(r.FormValue("languages")); langs != "" {
		for _, l := range strings.Split(langs, ",") {
			if l = strings.TrimSpace(l); l != "" {
				c.RequiredLanguages = append(c.RequiredLanguages, l)
			}
		}
	}
	c.RequireLogin = r.FormValue("require_login") == "on" || r.FormValue("require_login") == "true"
	c.Region = r.FormValue("region")
	c.UpperCriticalMass = parseInt(r.FormValue("critical_mass"))
	c.MinTeamSize = parseInt(r.FormValue("min_team_size"))
	c.CostBudget = parseFloat(r.FormValue("cost_budget"))
	c.MinPairAffinity = parseFloat(r.FormValue("min_pair_affinity"))
	if mins := parseInt(r.FormValue("recruitment_minutes")); mins > 0 {
		f.RecruitmentWindow = time.Duration(mins) * time.Minute
	}
	f.AssignmentAlgorithm = r.FormValue("algorithm")
	return f
}

func parseFloat(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v
}

func parseInt(s string) int {
	v, _ := strconv.Atoi(strings.TrimSpace(s))
	return v
}

type projectAdminData struct {
	Admin   *project.Admin
	Tasks   []*task.Task
	Notices []project.Notice
}

func (s *Server) handleProjectAdmin(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	admin, ok := s.Platform.Projects.Get(id)
	if !ok {
		s.renderError(w, http.StatusNotFound, "unknown project %s", id)
		return
	}
	s.render(w, "projectAdmin", projectAdminData{
		Admin:   admin,
		Tasks:   s.Platform.Tasks.ByProject(string(id)),
		Notices: s.Platform.Projects.Notices(id),
	})
}

// handleProjectFactors is the POST target of the Figure 3 constraint form:
// the requester enters the desired human factors, which are sent to the task
// assignment controller via the project registry.
func (s *Server) handleProjectFactors(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	if err := r.ParseForm(); err != nil {
		s.renderError(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	factors := parseFactorsForm(r)
	if _, err := s.Platform.Projects.UpdateFactors(id, factors); err != nil {
		s.renderError(w, http.StatusBadRequest, "cannot update factors: %v", err)
		return
	}
	if factors.AssignmentAlgorithm != "" {
		if err := s.Platform.SetAssignmentAlgorithm(factors.AssignmentAlgorithm); err != nil {
			s.renderError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	http.Redirect(w, r, "/admin/projects/"+string(id), http.StatusSeeOther)
}

type workerPageData struct {
	Worker        *worker.Worker
	EligibleTasks []*task.Task
	Interested    map[task.ID]bool
	Undertaken    []string
}

// handleWorkerPage renders the worker's human factors (Figure 4) and the list
// of tasks they are eligible for, with interest buttons (Figure 2 step 3).
func (s *Server) handleWorkerPage(w http.ResponseWriter, r *http.Request) {
	id := worker.ID(r.PathValue("id"))
	wk, ok := s.Platform.Workers.Get(id)
	if !ok {
		s.renderError(w, http.StatusNotFound, "unknown worker %s", id)
		return
	}
	data := workerPageData{Worker: wk, Interested: make(map[task.ID]bool)}
	for _, tid := range s.Platform.Workers.TasksWith(worker.Eligible, id) {
		if t, ok := s.Platform.Tasks.Get(task.ID(tid)); ok && t.State() == task.StateOpen {
			data.EligibleTasks = append(data.EligibleTasks, t)
			data.Interested[t.ID] = s.Platform.Workers.HasRelationship(worker.InterestedIn, tid, id)
		}
	}
	data.Undertaken = s.Platform.Workers.TasksWith(worker.Undertakes, id)
	s.render(w, "workerPage", data)
}

// handleWorkerFactors lets a worker update their human factors (Figure 4).
func (s *Server) handleWorkerFactors(w http.ResponseWriter, r *http.Request) {
	id := worker.ID(r.PathValue("id"))
	wk, ok := s.Platform.Workers.Get(id)
	if !ok {
		s.renderError(w, http.StatusNotFound, "unknown worker %s", id)
		return
	}
	if err := r.ParseForm(); err != nil {
		s.renderError(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	f := wk.Factors
	if v := r.FormValue("native_languages"); v != "" {
		f.NativeLanguages = splitCSV(v)
	}
	if v := r.FormValue("other_languages"); v != "" {
		f.OtherLanguages = splitCSV(v)
	}
	if v := r.FormValue("region"); v != "" {
		f.Location.Region = v
	}
	if v := r.FormValue("skills"); v != "" {
		// "translation=0.8,journalism=0.5"
		if f.Skills == nil {
			f.Skills = map[string]float64{}
		}
		for _, pair := range strings.Split(v, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if ok {
				f.Skills[strings.TrimSpace(name)] = parseFloat(val)
			}
		}
	}
	if err := s.Platform.Workers.UpdateFactors(id, f); err != nil {
		s.renderError(w, http.StatusBadRequest, "cannot update factors: %v", err)
		return
	}
	if sns := r.FormValue("sns_id"); sns != "" {
		s.Platform.Workers.SetSNSID(id, sns) //nolint:errcheck // worker existence checked above
	}
	http.Redirect(w, r, "/workers/"+string(id), http.StatusSeeOther)
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// handleWorkerInterest records that the worker is interested in a task.
func (s *Server) handleWorkerInterest(w http.ResponseWriter, r *http.Request) {
	id := worker.ID(r.PathValue("id"))
	if err := r.ParseForm(); err != nil {
		s.renderError(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	taskID := r.FormValue("task")
	if taskID == "" {
		s.renderError(w, http.StatusBadRequest, "missing task parameter")
		return
	}
	if !s.Platform.Workers.HasRelationship(worker.Eligible, taskID, id) {
		s.renderError(w, http.StatusForbidden, "worker %s is not eligible for task %s", id, taskID)
		return
	}
	if err := s.Platform.Workers.SetRelationship(worker.InterestedIn, taskID, id); err != nil {
		s.renderError(w, http.StatusBadRequest, "%v", err)
		return
	}
	http.Redirect(w, r, "/workers/"+string(id), http.StatusSeeOther)
}

type taskPageData struct {
	Task    *task.Task
	Team    []worker.ID
	HasTeam bool
	Result  *task.Result
}

// handleTaskPage renders the form-based task UI for a task (Figure 5 shows
// its simultaneous-collaboration variant).
func (s *Server) handleTaskPage(w http.ResponseWriter, r *http.Request) {
	id := task.ID(r.PathValue("id"))
	t, ok := s.Platform.Tasks.Get(id)
	if !ok {
		s.renderError(w, http.StatusNotFound, "unknown task %s", id)
		return
	}
	data := taskPageData{Task: t, Result: t.Result()}
	if team, ok := s.Platform.Controller.Suggestion(id); ok {
		data.Team = team.Members
		data.HasTeam = true
	}
	s.render(w, "taskPage", data)
}

// handleTaskAnswer accepts a worker's form answer for an individual task and
// records it as the task result (collaborative tasks are completed through
// their coordination schemes instead).
func (s *Server) handleTaskAnswer(w http.ResponseWriter, r *http.Request) {
	id := task.ID(r.PathValue("id"))
	t, ok := s.Platform.Tasks.Get(id)
	if !ok {
		s.renderError(w, http.StatusNotFound, "unknown task %s", id)
		return
	}
	if err := r.ParseForm(); err != nil {
		s.renderError(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	workerID := r.FormValue("worker")
	if workerID == "" {
		s.renderError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	answer := map[string]string{}
	for _, field := range t.Form.Fields {
		if v := r.FormValue(field.Name); v != "" {
			answer[field.Name] = v
		}
	}
	if err := t.Form.Validate(answer); err != nil {
		s.renderError(w, http.StatusBadRequest, "%v", err)
		return
	}
	result := &task.Result{SubmittedBy: workerID, Fields: answer, Quality: 1}
	if err := t.Complete(result); err != nil {
		s.renderError(w, http.StatusConflict, "%v", err)
		return
	}
	http.Redirect(w, r, "/tasks/"+string(id), http.StatusSeeOther)
}

// ---- JSON API ---------------------------------------------------------------

type projectJSON struct {
	ID      project.ID     `json:"id"`
	Name    string         `json:"name"`
	Status  project.Status `json:"status"`
	Scheme  string         `json:"scheme"`
	Notices int            `json:"notices"`
}

func (s *Server) apiProjects(w http.ResponseWriter, _ *http.Request) {
	var out []projectJSON
	for _, a := range s.Platform.Projects.All() {
		out = append(out, projectJSON{
			ID: a.Description.ID, Name: a.Description.Name, Status: a.Status,
			Scheme: string(a.Description.Scheme), Notices: len(a.Notices),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type taskJSON struct {
	ID        task.ID `json:"id"`
	Project   string  `json:"project"`
	Title     string  `json:"title"`
	Scheme    string  `json:"scheme"`
	State     string  `json:"state"`
	Generated string  `json:"generated_by,omitempty"`
}

func (s *Server) apiTasks(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	var out []taskJSON
	for _, t := range s.Platform.Tasks.All() {
		if stateFilter != "" && t.State().String() != stateFilter {
			continue
		}
		out = append(out, taskJSON{
			ID: t.ID, Project: t.ProjectID, Title: t.Title,
			Scheme: string(t.Scheme), State: t.State().String(), Generated: t.GeneratedBy,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type workerJSON struct {
	ID        worker.ID `json:"id"`
	Name      string    `json:"name"`
	Languages []string  `json:"languages"`
	Region    string    `json:"region"`
	Completed int       `json:"completed_tasks"`
}

func (s *Server) apiWorkers(w http.ResponseWriter, _ *http.Request) {
	var out []workerJSON
	for _, wk := range s.Platform.Workers.All() {
		out = append(out, workerJSON{
			ID: wk.ID, Name: wk.Name, Languages: wk.Factors.NativeLanguages,
			Region: wk.Factors.Location.Region, Completed: wk.CompletedTasks,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) apiEvents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Platform.Events())
}

type teamJSON struct {
	TaskID   task.ID     `json:"task_id"`
	Members  []worker.ID `json:"members"`
	Affinity float64     `json:"affinity"`
	Skill    float64     `json:"skill"`
	Cost     float64     `json:"cost"`
}

func (s *Server) apiTeam(w http.ResponseWriter, r *http.Request) {
	id := task.ID(r.PathValue("task"))
	team, ok := s.Platform.Controller.Suggestion(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no suggested team for task " + string(id)})
		return
	}
	writeJSON(w, http.StatusOK, teamJSON{
		TaskID: id, Members: team.Members, Affinity: team.Affinity, Skill: team.Skill, Cost: team.Cost,
	})
}

// apiCycle runs one full deployment cycle using the attached crowd; it powers
// the demo binaries and lets the HTTP benchmark exercise the whole pipeline.
func (s *Server) apiCycle(w http.ResponseWriter, _ *http.Request) {
	if s.Crowd == nil {
		writeJSON(w, http.StatusPreconditionFailed, map[string]string{"error": "no crowd attached; drive workers through the worker endpoints"})
		return
	}
	report, err := s.Platform.RunCycle(s.Crowd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// SortedTeams returns the current suggestions sorted by task id; exported for
// dashboards and tests.
func SortedTeams(p *platform.Platform) []assign.Team {
	var out []assign.Team
	for _, t := range p.Tasks.All() {
		if team, ok := p.Controller.Suggestion(t.ID); ok {
			out = append(out, team)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}

// StepPrompt renders a human-readable prompt for a collaboration step; the
// task pages use it to describe what each team member is currently asked to
// do.
func StepPrompt(kind collab.StepKind) string {
	switch kind {
	case collab.StepDraft:
		return "Draft the initial contribution"
	case collab.StepImprove:
		return "Improve the previous member's contribution"
	case collab.StepCheck:
		return "Check the previous contribution"
	case collab.StepFix:
		return "Fix the contribution according to the check comment"
	case collab.StepSNS:
		return "Share your contact id with the team"
	case collab.StepContribute:
		return "Contribute your part to the shared document"
	case collab.StepSubmit:
		return "Submit the merged result for the team"
	case collab.StepFact:
		return "Report the facts you observed"
	case collab.StepCorrect:
		return "Correct the reported facts"
	case collab.StepTestimonial:
		return "Provide your independent testimonial"
	default:
		return string(kind)
	}
}
