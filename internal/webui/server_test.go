package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/collab"
	"github.com/crowd4u/crowd4u-go/internal/crowdsim"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
	"github.com/crowd4u/crowd4u-go/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *platform.Platform, *crowdsim.Crowd) {
	t.Helper()
	p := platform.New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	cfg := crowdsim.DefaultConfig(11)
	cfg.InterestProbability = 1
	cfg.AcceptProbability = 1
	crowd := crowdsim.New(cfg, p.Workers)
	crowd.GeneratePopulation(crowdsim.DefaultPopulation(15))
	return NewServer(p, crowd), p, crowd
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func postForm(t *testing.T, s *Server, path string, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestDashboardAndNotFound(t *testing.T) {
	s, _, _ := newTestServer(t)
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Crowd4U") {
		t.Errorf("dashboard = %d %q", rec.Code, rec.Body.String()[:80])
	}
	if rec := get(t, s, "/definitely-not-here"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d", rec.Code)
	}
}

func TestProjectRegistrationForm(t *testing.T) {
	s, p, _ := newTestServer(t)
	if rec := get(t, s, "/admin/projects/new"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Desired human factors") {
		t.Errorf("project form = %d", rec.Code)
	}
	form := url.Values{
		"name":                {"Subtitle translation"},
		"requester":           {"mori"},
		"scheme":              {"sequential"},
		"cylog":               {workload.TranslationCyLog(workload.SubtitleSentences(2))},
		"required_skill":      {"translation"},
		"min_skill":           {"0.3"},
		"critical_mass":       {"3"},
		"min_team_size":       {"2"},
		"recruitment_minutes": {"60"},
		"require_login":       {"on"},
	}
	rec := postForm(t, s, "/admin/projects", form)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("register project = %d %s", rec.Code, rec.Body.String())
	}
	loc := rec.Header().Get("Location")
	if !strings.HasPrefix(loc, "/admin/projects/project-") {
		t.Fatalf("redirect = %q", loc)
	}
	if p.Projects.Count() != 1 {
		t.Errorf("project count = %d", p.Projects.Count())
	}
	admins := p.Projects.All()
	c := admins[0].Description.Factors.Constraints
	if c.RequiredSkill != "translation" || c.UpperCriticalMass != 3 || c.MinTeamSize != 2 || !c.RequireLogin {
		t.Errorf("parsed constraints = %+v", c)
	}
	if admins[0].Description.Factors.RecruitmentWindow != time.Hour {
		t.Errorf("window = %v", admins[0].Description.Factors.RecruitmentWindow)
	}
	// Admin page renders with the constraint form and task list.
	rec = get(t, s, loc)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "constraint entry form") {
		t.Errorf("admin page = %d", rec.Code)
	}
	// Bad project is rejected.
	if rec := postForm(t, s, "/admin/projects", url.Values{"name": {""}}); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid project = %d", rec.Code)
	}
	// JSON registration also works.
	body := `{"Name":"json project","Scheme":"individual"}`
	req := httptest.NewRequest(http.MethodPost, "/admin/projects", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusSeeOther {
		t.Errorf("json project = %d %s", rec2.Code, rec2.Body.String())
	}
	req = httptest.NewRequest(http.MethodPost, "/admin/projects", strings.NewReader("{broken"))
	req.Header.Set("Content-Type", "application/json")
	rec3 := httptest.NewRecorder()
	s.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("broken json = %d", rec3.Code)
	}
	// Project list page.
	if rec := get(t, s, "/admin/projects"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Subtitle translation") {
		t.Errorf("project list = %d", rec.Code)
	}
	// Unknown admin page 404s.
	if rec := get(t, s, "/admin/projects/project-9999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown project = %d", rec.Code)
	}
}

func TestProjectFactorsUpdate(t *testing.T) {
	s, p, _ := newTestServer(t)
	admin, _ := p.RegisterProject(project.Description{Name: "x"})
	id := string(admin.Description.ID)
	rec := postForm(t, s, "/admin/projects/"+id+"/factors", url.Values{
		"critical_mass": {"6"}, "min_team_size": {"3"}, "algorithm": {"star"},
	})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("update factors = %d %s", rec.Code, rec.Body.String())
	}
	got, _ := p.Projects.Get(admin.Description.ID)
	if got.Description.Factors.Constraints.UpperCriticalMass != 6 {
		t.Errorf("constraints not updated: %+v", got.Description.Factors.Constraints)
	}
	if p.Controller.Algorithm().Name() != "star" {
		t.Error("algorithm not applied")
	}
	if rec := postForm(t, s, "/admin/projects/"+id+"/factors", url.Values{"algorithm": {"bogus"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus algorithm = %d", rec.Code)
	}
	if rec := postForm(t, s, "/admin/projects/zzz/factors", url.Values{}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown project factors = %d", rec.Code)
	}
}

func TestWorkerPageAndInterestFlow(t *testing.T) {
	s, p, _ := newTestServer(t)
	admin, _ := p.RegisterProject(workload.TranslationProject(workload.SubtitleSentences(2)))
	created, err := p.GenerateTasksFromCyLog(admin.Description.ID)
	if err != nil || len(created) == 0 {
		t.Fatalf("task generation failed: %v", err)
	}
	// Pick a worker who is eligible for the first task.
	eligible := p.Workers.WorkersWith(worker.Eligible, string(created[0].ID))
	if len(eligible) == 0 {
		t.Fatal("no eligible workers")
	}
	wid := string(eligible[0])

	rec := get(t, s, "/workers/"+wid)
	if rec.Code != http.StatusOK {
		t.Fatalf("worker page = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Your human factors") || !strings.Contains(body, string(created[0].ID)) {
		t.Errorf("worker page should show factors and eligible tasks")
	}
	if rec := get(t, s, "/workers/ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown worker = %d", rec.Code)
	}

	// Declare interest.
	rec = postForm(t, s, "/workers/"+wid+"/interest", url.Values{"task": {string(created[0].ID)}})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("interest = %d %s", rec.Code, rec.Body.String())
	}
	if !p.Workers.HasRelationship(worker.InterestedIn, string(created[0].ID), worker.ID(wid)) {
		t.Error("interest not recorded")
	}
	// Missing task, ineligible worker, unknown task errors.
	if rec := postForm(t, s, "/workers/"+wid+"/interest", url.Values{}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing task = %d", rec.Code)
	}
	if rec := postForm(t, s, "/workers/"+wid+"/interest", url.Values{"task": {"no-such-task"}}); rec.Code != http.StatusForbidden {
		t.Errorf("ineligible = %d", rec.Code)
	}

	// Update human factors (Figure 4).
	rec = postForm(t, s, "/workers/"+wid+"/factors", url.Values{
		"native_languages": {"ja, en"},
		"region":           {"tsukuba"},
		"skills":           {"translation=0.9, journalism=0.4"},
		"sns_id":           {wid + "@example"},
	})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("update factors = %d %s", rec.Code, rec.Body.String())
	}
	w, _ := p.Workers.Get(worker.ID(wid))
	if !w.Factors.SpeaksNatively("ja") || w.Factors.Skill("translation") != 0.9 || w.SNSID != wid+"@example" {
		t.Errorf("factors not updated: %+v", w.Factors)
	}
	if rec := postForm(t, s, "/workers/ghost/factors", url.Values{}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown worker factors = %d", rec.Code)
	}
}

func TestTaskPageAndAnswer(t *testing.T) {
	s, p, _ := newTestServer(t)
	admin, _ := p.RegisterProject(project.Description{Name: "simple", Scheme: task.Individual})
	tk := task.NewTask("", "", "Confirm this fact", task.Individual, task.Constraints{UpperCriticalMass: 1, MinTeamSize: 1})
	tk.Form = task.ConfirmForm("Is the road closed?")
	if err := p.AddTask(admin.Description.ID, tk); err != nil {
		t.Fatal(err)
	}
	rec := get(t, s, "/tasks/"+string(tk.ID))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Task form") {
		t.Errorf("task page = %d", rec.Code)
	}
	if rec := get(t, s, "/tasks/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown task = %d", rec.Code)
	}
	// Invalid answer (bad select option).
	rec = postForm(t, s, "/tasks/"+string(tk.ID)+"/answer", url.Values{"worker": {"sim-0001"}, "confirmed": {"maybe"}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid answer = %d", rec.Code)
	}
	// Missing worker.
	rec = postForm(t, s, "/tasks/"+string(tk.ID)+"/answer", url.Values{"confirmed": {"yes"}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing worker = %d", rec.Code)
	}
	// Valid answer completes the task and the page then shows the result.
	rec = postForm(t, s, "/tasks/"+string(tk.ID)+"/answer", url.Values{"worker": {"sim-0001"}, "confirmed": {"yes"}, "comment": {"saw it"}})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("answer = %d %s", rec.Code, rec.Body.String())
	}
	if tk.State() != task.StateCompleted {
		t.Errorf("task state = %v", tk.State())
	}
	rec = get(t, s, "/tasks/"+string(tk.ID))
	if !strings.Contains(rec.Body.String(), "Team result") {
		t.Error("completed task page should show the result")
	}
	// Answering twice conflicts.
	rec = postForm(t, s, "/tasks/"+string(tk.ID)+"/answer", url.Values{"worker": {"sim-0002"}, "confirmed": {"no"}})
	if rec.Code != http.StatusConflict {
		t.Errorf("second answer = %d", rec.Code)
	}
	if rec := postForm(t, s, "/tasks/ghost/answer", url.Values{}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown task answer = %d", rec.Code)
	}
}

func TestJSONAPIAndCycle(t *testing.T) {
	s, p, _ := newTestServer(t)
	p.RegisterProject(workload.TranslationProject(workload.SubtitleSentences(2)))

	rec := get(t, s, "/api/projects")
	var projects []projectJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &projects); err != nil || len(projects) != 1 {
		t.Fatalf("projects api = %d %s", rec.Code, rec.Body.String())
	}

	// Run one full cycle through the API.
	rec = postForm(t, s, "/api/cycle", url.Values{})
	if rec.Code != http.StatusOK {
		t.Fatalf("cycle = %d %s", rec.Code, rec.Body.String())
	}
	var report platform.CycleReport
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.GeneratedTasks != 2 || report.CompletedTasks != 2 {
		t.Errorf("cycle report = %+v", report)
	}

	rec = get(t, s, "/api/tasks?state=completed")
	var tasks []taskJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tasks); err != nil || len(tasks) != 2 {
		t.Errorf("tasks api = %s", rec.Body.String())
	}
	rec = get(t, s, "/api/workers")
	var workers []workerJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &workers); err != nil || len(workers) != 15 {
		t.Errorf("workers api = %s", rec.Body.String())
	}
	rec = get(t, s, "/api/events")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "task-completed") {
		t.Errorf("events api = %d", rec.Code)
	}
	// Teams for completed tasks have been cleared from the worker relations
	// but the suggestion is still queryable; unknown task returns 404.
	if rec := get(t, s, "/api/teams/absolutely-not-a-task"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown team = %d", rec.Code)
	}
	if len(tasks) > 0 {
		if rec := get(t, s, "/api/teams/"+string(tasks[0].ID)); rec.Code != http.StatusOK {
			t.Errorf("team api = %d %s", rec.Code, rec.Body.String())
		}
	}
}

func TestAPICycleWithoutCrowd(t *testing.T) {
	p := platform.New()
	s := NewServer(p, nil)
	rec := postForm(t, s, "/api/cycle", url.Values{})
	if rec.Code != http.StatusPreconditionFailed {
		t.Errorf("cycle without crowd = %d", rec.Code)
	}
}

func TestSortedTeamsAndStepPrompt(t *testing.T) {
	s, p, _ := newTestServer(t)
	admin, _ := p.RegisterProject(workload.TranslationProject(workload.SubtitleSentences(2)))
	p.GenerateTasksFromCyLog(admin.Description.ID)
	p.CollectInterest(s.Crowd)
	p.AssignOpenTasks()
	teams := SortedTeams(p)
	if len(teams) != 2 {
		t.Errorf("SortedTeams = %d", len(teams))
	}
	for i := 1; i < len(teams); i++ {
		if teams[i-1].TaskID > teams[i].TaskID {
			t.Error("teams not sorted")
		}
	}
	kinds := []struct {
		kind string
		want string
	}{
		{"draft", "Draft"}, {"improve", "Improve"}, {"check", "Check"}, {"fix", "Fix"},
		{"sns", "contact"}, {"contribute", "shared document"}, {"submit", "Submit"},
		{"fact", "facts"}, {"correct", "Correct"}, {"testimonial", "testimonial"}, {"mystery", "mystery"},
	}
	for _, k := range kinds {
		got := StepPrompt(collab.StepKind(k.kind))
		if !strings.Contains(got, k.want) {
			t.Errorf("StepPrompt(%s) = %q", k.kind, got)
		}
	}
}
