package task

import (
	"fmt"
	"strings"
	"unicode"
)

// Decomposer splits a complex task into micro-tasks (Figure 1, first step).
// The paper stresses that "Crowd4U can use any task decomposition algorithm";
// this interface is the plug-in point, and the package ships the decomposers
// used by the three demo scenarios.
type Decomposer interface {
	// Decompose returns the micro-tasks derived from the parent. Each returned
	// task must have ParentID set to parent.ID and a distinct Sequence.
	Decompose(parent *Task, newID func() ID) ([]*Task, error)
	// Name identifies the decomposer in logs and DESIGN/EXPERIMENTS indexes.
	Name() string
}

// SentenceDecomposer splits the parent's Input["document"] into sentences and
// creates one micro-task per sentence. This is the decomposition used by the
// video-subtitle translation scenario, where each subtitle line becomes a
// translate micro-task.
type SentenceDecomposer struct {
	// Scheme for the generated micro-tasks (default: parent's scheme).
	Scheme CollaborationScheme
	// InputKey is the parent input field holding the text (default "document").
	InputKey string
	// MaxSentences bounds the number of micro-tasks (0 = unlimited).
	MaxSentences int
}

// Name implements Decomposer.
func (d SentenceDecomposer) Name() string { return "sentence" }

// Decompose implements Decomposer.
func (d SentenceDecomposer) Decompose(parent *Task, newID func() ID) ([]*Task, error) {
	key := d.InputKey
	if key == "" {
		key = "document"
	}
	doc := parent.Input[key]
	if strings.TrimSpace(doc) == "" {
		return nil, fmt.Errorf("task: parent %s has no %q input to decompose", parent.ID, key)
	}
	sentences := SplitSentences(doc)
	if d.MaxSentences > 0 && len(sentences) > d.MaxSentences {
		sentences = sentences[:d.MaxSentences]
	}
	scheme := d.Scheme
	if scheme == "" {
		scheme = parent.Scheme
	}
	out := make([]*Task, 0, len(sentences))
	for i, s := range sentences {
		t := NewTask(newID(), parent.ProjectID, fmt.Sprintf("%s [part %d/%d]", parent.Title, i+1, len(sentences)), scheme, parent.Constraints)
		t.ParentID = parent.ID
		t.Sequence = i
		t.Description = parent.Description
		t.Form = parent.Form.Clone()
		t.Input["sentence"] = s
		t.GeneratedBy = "decomposer:" + d.Name()
		out = append(out, t)
	}
	return out, nil
}

// SplitSentences splits text into sentences on ., !, ? and newlines, trimming
// whitespace and dropping empties. It is deliberately simple — decomposition
// quality is not the paper's contribution — but deterministic.
func SplitSentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		switch r {
		case '.', '!', '?', '\n':
			if r != '\n' {
				b.WriteRune(r)
			}
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

// SectionDecomposer splits a document-drafting task into independent sections
// that sub-groups edit simultaneously — the decomposition described in §2.2
// for parallel tasks ("independent sections of a document to draft together").
type SectionDecomposer struct {
	// Sections lists section titles; when empty, Decompose falls back to the
	// parent's Input["sections"] (comma-separated).
	Sections []string
}

// Name implements Decomposer.
func (d SectionDecomposer) Name() string { return "section" }

// Decompose implements Decomposer.
func (d SectionDecomposer) Decompose(parent *Task, newID func() ID) ([]*Task, error) {
	sections := d.Sections
	if len(sections) == 0 {
		for _, s := range strings.Split(parent.Input["sections"], ",") {
			if s = strings.TrimSpace(s); s != "" {
				sections = append(sections, s)
			}
		}
	}
	if len(sections) == 0 {
		return nil, fmt.Errorf("task: parent %s has no sections to decompose", parent.ID)
	}
	out := make([]*Task, 0, len(sections))
	for i, sec := range sections {
		t := NewTask(newID(), parent.ProjectID, fmt.Sprintf("%s — section %q", parent.Title, sec), Simultaneous, parent.Constraints)
		t.ParentID = parent.ID
		t.Sequence = i
		t.Form = parent.Form.Clone()
		t.Input["section"] = sec
		t.Input["topic"] = parent.Input["topic"]
		t.GeneratedBy = "decomposer:" + d.Name()
		out = append(out, t)
	}
	return out, nil
}

// GridDecomposer splits a surveillance task into a region × time-period grid,
// producing one hybrid micro-task per cell ("collect as much data about facts
// and testimonials in different geographic regions and at different time
// periods").
type GridDecomposer struct {
	Regions     []string
	TimePeriods []string
}

// Name implements Decomposer.
func (d GridDecomposer) Name() string { return "grid" }

// Decompose implements Decomposer.
func (d GridDecomposer) Decompose(parent *Task, newID func() ID) ([]*Task, error) {
	if len(d.Regions) == 0 || len(d.TimePeriods) == 0 {
		return nil, fmt.Errorf("task: grid decomposer needs at least one region and one time period")
	}
	out := make([]*Task, 0, len(d.Regions)*len(d.TimePeriods))
	seq := 0
	for _, region := range d.Regions {
		for _, period := range d.TimePeriods {
			c := parent.Constraints
			c.Region = region
			t := NewTask(newID(), parent.ProjectID, fmt.Sprintf("%s — %s / %s", parent.Title, region, period), Hybrid, c)
			t.ParentID = parent.ID
			t.Sequence = seq
			seq++
			t.Form = parent.Form.Clone()
			t.Input["region"] = region
			t.Input["period"] = period
			t.GeneratedBy = "decomposer:" + d.Name()
			out = append(out, t)
		}
	}
	return out, nil
}

// ChunkDecomposer splits Input["document"] into fixed-size word chunks; a
// generic fallback for long texts where sentence boundaries are unreliable.
type ChunkDecomposer struct {
	WordsPerChunk int
}

// Name implements Decomposer.
func (d ChunkDecomposer) Name() string { return "chunk" }

// Decompose implements Decomposer.
func (d ChunkDecomposer) Decompose(parent *Task, newID func() ID) ([]*Task, error) {
	if d.WordsPerChunk <= 0 {
		return nil, fmt.Errorf("task: chunk decomposer needs WordsPerChunk > 0")
	}
	words := strings.FieldsFunc(parent.Input["document"], unicode.IsSpace)
	if len(words) == 0 {
		return nil, fmt.Errorf("task: parent %s has no document input to decompose", parent.ID)
	}
	var out []*Task
	for i := 0; i < len(words); i += d.WordsPerChunk {
		end := i + d.WordsPerChunk
		if end > len(words) {
			end = len(words)
		}
		t := NewTask(newID(), parent.ProjectID, fmt.Sprintf("%s [chunk %d]", parent.Title, len(out)+1), parent.Scheme, parent.Constraints)
		t.ParentID = parent.ID
		t.Sequence = len(out)
		t.Form = parent.Form.Clone()
		t.Input["chunk"] = strings.Join(words[i:end], " ")
		t.GeneratedBy = "decomposer:" + d.Name()
		out = append(out, t)
	}
	return out, nil
}
