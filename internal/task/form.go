package task

import (
	"fmt"
	"strconv"
	"strings"
)

// FieldKind is the input control type of a form field.
type FieldKind string

// Supported field kinds for the form-based task UI.
const (
	FieldText     FieldKind = "text"     // single-line text
	FieldTextArea FieldKind = "textarea" // multi-line text
	FieldNumber   FieldKind = "number"
	FieldSelect   FieldKind = "select" // one of Options
	FieldCheckbox FieldKind = "checkbox"
	FieldURL      FieldKind = "url"
)

// Field is one input of a task form.
type Field struct {
	Name     string
	Label    string
	Kind     FieldKind
	Required bool
	// Options constrains FieldSelect values.
	Options []string
	// Help is shown next to the field.
	Help string
}

// Form is the declarative description of the task UI presented to workers.
// Crowd4U "provides an easy-to-use form-based task UI"; requesters define
// forms (optionally via spreadsheets) and the platform renders and validates
// them.
type Form struct {
	Fields []Field
}

// Clone returns a deep copy of the form.
func (f Form) Clone() Form {
	c := Form{Fields: make([]Field, len(f.Fields))}
	for i, fl := range f.Fields {
		fl.Options = append([]string(nil), fl.Options...)
		c.Fields[i] = fl
	}
	return c
}

// Field returns the named field.
func (f Form) Field(name string) (Field, bool) {
	for _, fl := range f.Fields {
		if fl.Name == name {
			return fl, true
		}
	}
	return Field{}, false
}

// Validate checks a submitted answer against the form: required fields must be
// present and non-empty, numbers must parse, selects must be one of the
// options, checkboxes must be boolean, and unknown fields are rejected.
func (f Form) Validate(answer map[string]string) error {
	var errs []string
	known := make(map[string]bool, len(f.Fields))
	for _, fl := range f.Fields {
		known[fl.Name] = true
		v, present := answer[fl.Name]
		if fl.Required && (!present || strings.TrimSpace(v) == "") {
			errs = append(errs, fmt.Sprintf("field %q is required", fl.Name))
			continue
		}
		if !present || v == "" {
			continue
		}
		switch fl.Kind {
		case FieldNumber:
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				errs = append(errs, fmt.Sprintf("field %q must be a number, got %q", fl.Name, v))
			}
		case FieldSelect:
			found := false
			for _, o := range fl.Options {
				if o == v {
					found = true
					break
				}
			}
			if !found {
				errs = append(errs, fmt.Sprintf("field %q must be one of %v, got %q", fl.Name, fl.Options, v))
			}
		case FieldCheckbox:
			if _, err := strconv.ParseBool(v); err != nil {
				errs = append(errs, fmt.Sprintf("field %q must be a boolean, got %q", fl.Name, v))
			}
		case FieldURL:
			if !strings.HasPrefix(v, "http://") && !strings.HasPrefix(v, "https://") {
				errs = append(errs, fmt.Sprintf("field %q must be an http(s) URL, got %q", fl.Name, v))
			}
		}
	}
	for name := range answer {
		if !known[name] {
			errs = append(errs, fmt.Sprintf("unknown field %q", name))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("task: invalid answer: %s", strings.Join(errs, "; "))
	}
	return nil
}

// TextForm builds a form with a single required textarea named "text"; the
// most common micro-task form (transcribe, translate, write a paragraph).
func TextForm(label string) Form {
	return Form{Fields: []Field{{Name: "text", Label: label, Kind: FieldTextArea, Required: true}}}
}

// ConfirmForm builds a yes/no verification form, used by check/verify steps
// and by the testimonial-confirmation tasks of the surveillance scenario.
func ConfirmForm(question string) Form {
	return Form{Fields: []Field{
		{Name: "confirmed", Label: question, Kind: FieldSelect, Required: true, Options: []string{"yes", "no"}},
		{Name: "comment", Label: "Comment", Kind: FieldTextArea},
	}}
}
