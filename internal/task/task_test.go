package task

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCollaborationSchemeValid(t *testing.T) {
	for _, s := range []CollaborationScheme{Sequential, Simultaneous, Hybrid, Individual} {
		if !s.Valid() {
			t.Errorf("%s should be valid", s)
		}
	}
	if CollaborationScheme("bogus").Valid() {
		t.Error("bogus scheme should be invalid")
	}
}

func TestStateStringAndTerminal(t *testing.T) {
	cases := map[State]string{
		StateOpen: "open", StateAssigned: "assigned", StateInProgress: "in_progress",
		StateCompleted: "completed", StateExpired: "expired", StateCancelled: "cancelled",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should still render")
	}
	if StateOpen.Terminal() || StateInProgress.Terminal() {
		t.Error("open/in_progress are not terminal")
	}
	if !StateCompleted.Terminal() || !StateExpired.Terminal() || !StateCancelled.Terminal() {
		t.Error("completed/expired/cancelled are terminal")
	}
}

func TestConstraintsNormalize(t *testing.T) {
	c := Constraints{}.Normalize()
	if c.UpperCriticalMass != DefaultCriticalMass || c.MinTeamSize != 1 || c.InterestThreshold != 1 {
		t.Errorf("Normalize() = %+v", c)
	}
	c = Constraints{MinTeamSize: 10, UpperCriticalMass: 4}.Normalize()
	if c.MinTeamSize != 4 {
		t.Errorf("MinTeamSize should be capped at critical mass, got %d", c.MinTeamSize)
	}
	c = Constraints{MinTeamSize: 3, InterestThreshold: 1}.Normalize()
	if c.InterestThreshold != 3 {
		t.Errorf("InterestThreshold should be at least MinTeamSize, got %d", c.InterestThreshold)
	}
}

func TestConstraintsNormalizeProperty(t *testing.T) {
	f := func(min, ucm, it int8) bool {
		c := Constraints{MinTeamSize: int(min), UpperCriticalMass: int(ucm), InterestThreshold: int(it)}.Normalize()
		return c.UpperCriticalMass >= 1 && c.MinTeamSize >= 1 &&
			c.MinTeamSize <= c.UpperCriticalMass && c.InterestThreshold >= c.MinTeamSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	tk := NewTask("t1", "p1", "translate", Sequential, Constraints{})
	if tk.State() != StateOpen {
		t.Fatalf("initial state = %v", tk.State())
	}
	if err := tk.SetState(StateAssigned); err != nil {
		t.Fatal(err)
	}
	if err := tk.SetState(StateInProgress); err != nil {
		t.Fatal(err)
	}
	if err := tk.Complete(&Result{SubmittedBy: "w1", Fields: map[string]string{"text": "hola"}}); err != nil {
		t.Fatal(err)
	}
	if tk.State() != StateCompleted {
		t.Errorf("state = %v", tk.State())
	}
	r := tk.Result()
	if r == nil || r.TaskID != "t1" || r.SubmittedAt.IsZero() {
		t.Errorf("result = %+v", r)
	}
	if err := tk.SetState(StateOpen); err == nil {
		t.Error("leaving a terminal state should fail")
	}
	if err := tk.Complete(&Result{}); err == nil {
		t.Error("completing twice should fail")
	}
	if err := tk.SetState(StateCompleted); err != nil {
		t.Errorf("no-op transition within terminal state should be allowed: %v", err)
	}
}

func TestTaskCompleteNilResult(t *testing.T) {
	tk := NewTask("t1", "p1", "x", Individual, Constraints{})
	if err := tk.Complete(nil); err == nil {
		t.Error("Complete(nil) should fail")
	}
}

func TestTaskExpired(t *testing.T) {
	now := time.Now()
	tk := NewTask("t1", "p1", "x", Individual, Constraints{RecruitmentDeadline: now.Add(time.Hour)})
	if tk.Expired(now) {
		t.Error("should not be expired before deadline")
	}
	if !tk.Expired(now.Add(2 * time.Hour)) {
		t.Error("should be expired after deadline")
	}
	noDeadline := NewTask("t2", "p1", "x", Individual, Constraints{})
	if noDeadline.Expired(now.Add(1000 * time.Hour)) {
		t.Error("no deadline means never expired")
	}
}

func TestTaskCloneIndependence(t *testing.T) {
	tk := NewTask("t1", "p1", "x", Sequential, Constraints{})
	tk.Input["sentence"] = "hello"
	tk.Form = TextForm("Translate")
	c := tk.Clone()
	c.Input["sentence"] = "bye"
	c.Form.Fields[0].Label = "changed"
	if tk.Input["sentence"] != "hello" || tk.Form.Fields[0].Label != "Translate" {
		t.Error("Clone should not share input map or form")
	}
	if !strings.Contains(tk.String(), "t1") {
		t.Errorf("String() = %q", tk.String())
	}
}

func TestPoolRegisterGetRemove(t *testing.T) {
	p := NewPool()
	tk := NewTask(p.NextID("t"), "p1", "x", Individual, Constraints{})
	if err := p.Register(tk); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(tk); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := p.Register(nil); err == nil {
		t.Error("nil task should fail")
	}
	if err := p.Register(&Task{}); err == nil {
		t.Error("empty id should fail")
	}
	got, ok := p.Get(tk.ID)
	if !ok || got != tk {
		t.Error("Get should return the registered task")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Remove(tk.ID) || p.Remove(tk.ID) {
		t.Error("Remove misbehaves")
	}
}

func TestPoolNextIDUnique(t *testing.T) {
	p := NewPool()
	seen := make(map[ID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := p.NextID("t")
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %s", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestPoolQueries(t *testing.T) {
	p := NewPool()
	parent := NewTask("parent", "p1", "doc", Simultaneous, Constraints{})
	p.Register(parent)
	for i := 0; i < 3; i++ {
		c := NewTask(ID(fmt.Sprintf("child-%d", 2-i)), "p1", "part", Simultaneous, Constraints{})
		c.ParentID = "parent"
		c.Sequence = 2 - i
		p.Register(c)
	}
	other := NewTask("other", "p2", "x", Individual, Constraints{})
	other.SetState(StateCompleted)
	p.Register(other)

	if got := p.ByProject("p1"); len(got) != 4 {
		t.Errorf("ByProject(p1) = %d tasks", len(got))
	}
	children := p.Children("parent")
	if len(children) != 3 || children[0].Sequence != 0 || children[2].Sequence != 2 {
		t.Errorf("Children order wrong: %v", children)
	}
	if got := p.InState(StateOpen); len(got) != 4 {
		t.Errorf("InState(open) = %d", len(got))
	}
	if got := p.InState(StateCompleted); len(got) != 1 {
		t.Errorf("InState(completed) = %d", len(got))
	}
	counts := p.Counts()
	if counts["open"] != 4 || counts["completed"] != 1 {
		t.Errorf("Counts = %v", counts)
	}
	all := p.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID > all[i].ID {
			t.Error("All() not sorted by id")
		}
	}
}

func TestPoolExpireOverdue(t *testing.T) {
	p := NewPool()
	now := time.Now()
	overdue := NewTask("a", "p", "x", Individual, Constraints{RecruitmentDeadline: now.Add(-time.Hour)})
	fresh := NewTask("b", "p", "x", Individual, Constraints{RecruitmentDeadline: now.Add(time.Hour)})
	inProgress := NewTask("c", "p", "x", Individual, Constraints{RecruitmentDeadline: now.Add(-time.Hour)})
	inProgress.SetState(StateInProgress)
	done := NewTask("d", "p", "x", Individual, Constraints{RecruitmentDeadline: now.Add(-time.Hour)})
	done.SetState(StateCompleted)
	for _, tk := range []*Task{overdue, fresh, inProgress, done} {
		p.Register(tk)
	}
	expired := p.ExpireOverdue(now)
	if len(expired) != 1 || expired[0].ID != "a" {
		t.Errorf("ExpireOverdue = %v", expired)
	}
	if overdue.State() != StateExpired {
		t.Errorf("overdue state = %v", overdue.State())
	}
	if inProgress.State() != StateInProgress || done.State() != StateCompleted || fresh.State() != StateOpen {
		t.Error("other tasks should be untouched")
	}
}

func TestFormValidate(t *testing.T) {
	f := Form{Fields: []Field{
		{Name: "text", Kind: FieldTextArea, Required: true},
		{Name: "count", Kind: FieldNumber},
		{Name: "lang", Kind: FieldSelect, Options: []string{"en", "ja"}},
		{Name: "ok", Kind: FieldCheckbox},
		{Name: "link", Kind: FieldURL},
	}}
	good := map[string]string{"text": "hello", "count": "3", "lang": "en", "ok": "true", "link": "https://example.org"}
	if err := f.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	cases := []map[string]string{
		{"count": "3"},                    // missing required
		{"text": "   "},                   // blank required
		{"text": "x", "count": "NaN-ish"}, // bad number
		{"text": "x", "lang": "fr"},       // bad option
		{"text": "x", "ok": "maybe"},      // bad bool
		{"text": "x", "link": "ftp://x"},  // bad url
		{"text": "x", "unknown": "y"},     // unknown field
	}
	for i, c := range cases {
		if err := f.Validate(c); err == nil {
			t.Errorf("case %d should fail: %v", i, c)
		}
	}
	// Optional empty fields are fine.
	if err := f.Validate(map[string]string{"text": "x", "count": ""}); err != nil {
		t.Errorf("empty optional field should pass: %v", err)
	}
}

func TestFormHelpers(t *testing.T) {
	tf := TextForm("Translate this")
	if len(tf.Fields) != 1 || tf.Fields[0].Name != "text" || !tf.Fields[0].Required {
		t.Errorf("TextForm = %+v", tf)
	}
	cf := ConfirmForm("Is this correct?")
	if _, ok := cf.Field("confirmed"); !ok {
		t.Error("ConfirmForm should have a confirmed field")
	}
	if _, ok := cf.Field("nope"); ok {
		t.Error("Field should report missing fields")
	}
	if err := cf.Validate(map[string]string{"confirmed": "yes"}); err != nil {
		t.Errorf("confirm yes should validate: %v", err)
	}
	if err := cf.Validate(map[string]string{"confirmed": "maybe"}); err == nil {
		t.Error("confirm maybe should fail")
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("Hello world. How are you?  Fine!\nNew line one\n\n")
	want := []string{"Hello world.", "How are you?", "Fine!", "New line one"}
	if len(got) != len(want) {
		t.Fatalf("SplitSentences = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(SplitSentences("   ")) != 0 {
		t.Error("whitespace-only input should yield no sentences")
	}
}

func TestSentenceDecomposer(t *testing.T) {
	p := NewPool()
	parent := NewTask("parent", "p1", "Subtitle video", Sequential, Constraints{UpperCriticalMass: 3})
	parent.Input["document"] = "First line. Second line. Third line."
	parent.Form = TextForm("Translate")
	d := SentenceDecomposer{}
	kids, err := d.Decompose(parent, func() ID { return p.NextID("micro") })
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 {
		t.Fatalf("got %d micro-tasks", len(kids))
	}
	for i, k := range kids {
		if k.ParentID != "parent" || k.Sequence != i {
			t.Errorf("child %d: parent=%s seq=%d", i, k.ParentID, k.Sequence)
		}
		if k.Input["sentence"] == "" {
			t.Errorf("child %d has no sentence input", i)
		}
		if k.Scheme != Sequential {
			t.Errorf("child %d scheme = %s", i, k.Scheme)
		}
		if k.Constraints.UpperCriticalMass != 3 {
			t.Error("constraints should be inherited")
		}
	}
	// MaxSentences bound.
	d2 := SentenceDecomposer{MaxSentences: 2, Scheme: Individual}
	kids2, err := d2.Decompose(parent, func() ID { return p.NextID("micro") })
	if err != nil || len(kids2) != 2 || kids2[0].Scheme != Individual {
		t.Errorf("bounded decompose = %v, %v", kids2, err)
	}
	// Missing input.
	empty := NewTask("e", "p1", "x", Sequential, Constraints{})
	if _, err := d.Decompose(empty, func() ID { return "x" }); err == nil {
		t.Error("missing document should fail")
	}
	if d.Name() != "sentence" {
		t.Error("Name mismatch")
	}
}

func TestSectionDecomposer(t *testing.T) {
	p := NewPool()
	parent := NewTask("parent", "p1", "Report on festival", Simultaneous, Constraints{})
	parent.Input["topic"] = "city festival"
	parent.Input["sections"] = "intro, main events , interviews"
	d := SectionDecomposer{}
	kids, err := d.Decompose(parent, func() ID { return p.NextID("sec") })
	if err != nil || len(kids) != 3 {
		t.Fatalf("Decompose = %v, %v", kids, err)
	}
	if kids[1].Input["section"] != "main events" || kids[1].Input["topic"] != "city festival" {
		t.Errorf("child input = %v", kids[1].Input)
	}
	// Explicit sections override input.
	d2 := SectionDecomposer{Sections: []string{"a", "b"}}
	kids2, _ := d2.Decompose(parent, func() ID { return p.NextID("sec") })
	if len(kids2) != 2 {
		t.Errorf("explicit sections = %d", len(kids2))
	}
	noSections := NewTask("n", "p1", "x", Simultaneous, Constraints{})
	if _, err := d.Decompose(noSections, func() ID { return "x" }); err == nil {
		t.Error("no sections should fail")
	}
	if d.Name() != "section" {
		t.Error("Name mismatch")
	}
}

func TestGridDecomposer(t *testing.T) {
	p := NewPool()
	parent := NewTask("parent", "p1", "Disaster survey", Hybrid, Constraints{})
	d := GridDecomposer{Regions: []string{"north", "south"}, TimePeriods: []string{"morning", "evening"}}
	kids, err := d.Decompose(parent, func() ID { return p.NextID("cell") })
	if err != nil || len(kids) != 4 {
		t.Fatalf("Decompose = %d, %v", len(kids), err)
	}
	seqs := make(map[int]bool)
	for _, k := range kids {
		seqs[k.Sequence] = true
		if k.Scheme != Hybrid {
			t.Errorf("scheme = %s", k.Scheme)
		}
		if k.Constraints.Region != k.Input["region"] {
			t.Error("region constraint should match cell region")
		}
	}
	if len(seqs) != 4 {
		t.Error("sequences should be distinct")
	}
	if _, err := (GridDecomposer{}).Decompose(parent, func() ID { return "x" }); err == nil {
		t.Error("empty grid should fail")
	}
	if d.Name() != "grid" {
		t.Error("Name mismatch")
	}
}

func TestChunkDecomposer(t *testing.T) {
	p := NewPool()
	parent := NewTask("parent", "p1", "Long doc", Sequential, Constraints{})
	parent.Input["document"] = "one two three four five six seven"
	d := ChunkDecomposer{WordsPerChunk: 3}
	kids, err := d.Decompose(parent, func() ID { return p.NextID("ch") })
	if err != nil || len(kids) != 3 {
		t.Fatalf("Decompose = %d, %v", len(kids), err)
	}
	if kids[2].Input["chunk"] != "seven" {
		t.Errorf("last chunk = %q", kids[2].Input["chunk"])
	}
	if _, err := (ChunkDecomposer{}).Decompose(parent, func() ID { return "x" }); err == nil {
		t.Error("zero chunk size should fail")
	}
	empty := NewTask("e", "p1", "x", Sequential, Constraints{})
	if _, err := d.Decompose(empty, func() ID { return "x" }); err == nil {
		t.Error("empty document should fail")
	}
	if d.Name() != "chunk" {
		t.Error("Name mismatch")
	}
}

func TestDecomposerSequencePropertyDistinctAndOrdered(t *testing.T) {
	f := func(nWords uint8) bool {
		n := int(nWords%50) + 1
		words := make([]string, n)
		for i := range words {
			words[i] = fmt.Sprintf("w%d", i)
		}
		parent := NewTask("p", "proj", "t", Sequential, Constraints{})
		parent.Input["document"] = strings.Join(words, " ")
		id := 0
		kids, err := (ChunkDecomposer{WordsPerChunk: 4}).Decompose(parent, func() ID {
			id++
			return ID(fmt.Sprintf("c%d", id))
		})
		if err != nil {
			return false
		}
		for i, k := range kids {
			if k.Sequence != i || k.ParentID != "p" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
