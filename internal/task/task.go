// Package task defines Crowd4U tasks and micro-tasks, the task pool the CyLog
// processor registers tasks into (Figure 2), task states and deadlines, the
// form schema backing the form-based task UI, and task decomposition —
// splitting a complex input task into micro-tasks (Figure 1, first step).
package task

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ID identifies a task.
type ID string

// CollaborationScheme names the worker-collaboration / result-coordination
// scheme a task uses (§2.3).
type CollaborationScheme string

// The three schemes the paper implements.
const (
	// Sequential: members improve each other's contributions through
	// dynamically generated follow-up tasks (e.g. translate → check).
	Sequential CollaborationScheme = "sequential"
	// Simultaneous: members work in parallel on a shared artefact after
	// exchanging contact (SNS) ids; one member submits the team result.
	Simultaneous CollaborationScheme = "simultaneous"
	// Hybrid: an interleaving of sequential and simultaneous stages in one
	// complex dataflow (e.g. surveillance facts sequentially corrected while
	// testimonials arrive simultaneously).
	Hybrid CollaborationScheme = "hybrid"
	// Individual: a classic single-worker micro-task (Crowd4U's original
	// mode); used for dynamically generated sub-steps such as a check task.
	Individual CollaborationScheme = "individual"
)

// Valid reports whether the scheme is one of the defined constants.
func (s CollaborationScheme) Valid() bool {
	switch s {
	case Sequential, Simultaneous, Hybrid, Individual:
		return true
	}
	return false
}

// State is the lifecycle state of a task in the pool.
type State int

// Task lifecycle states.
const (
	// StateOpen: registered, recruiting interested workers.
	StateOpen State = iota
	// StateAssigned: a team has been suggested and members asked to join.
	StateAssigned
	// StateInProgress: all suggested members undertook the task.
	StateInProgress
	// StateCompleted: a result has been recorded.
	StateCompleted
	// StateExpired: the recruitment deadline passed without a full team.
	StateExpired
	// StateCancelled: withdrawn by the requester.
	StateCancelled
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateAssigned:
		return "assigned"
	case StateInProgress:
		return "in_progress"
	case StateCompleted:
		return "completed"
	case StateExpired:
		return "expired"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateExpired || s == StateCancelled
}

// Constraints are the requester-specified desired human factors entered on the
// project administration page (Figure 3) plus the structural limits the
// assignment algorithm enforces (§2.2).
type Constraints struct {
	// RequiredSkill names the skill the task needs (empty = none).
	RequiredSkill string
	// MinSkill is the minimum per-worker proficiency in RequiredSkill.
	MinSkill float64
	// MinTeamSkill is the minimum aggregate (sum) team skill — the task's
	// quality requirement.
	MinTeamSkill float64
	// RequiredLanguages lists languages every team member must speak.
	RequiredLanguages []string
	// RequireNativeLanguage, when non-empty, restricts eligibility to native
	// speakers of this language.
	RequireNativeLanguage string
	// RequireLogin restricts eligibility to logged-in workers.
	RequireLogin bool
	// Region, when non-empty, restricts eligibility to workers in this region.
	Region string
	// UpperCriticalMass is the maximum team size beyond which collaboration
	// effectiveness diminishes; 0 means "no limit" but the platform defaults
	// it to DefaultCriticalMass at registration.
	UpperCriticalMass int
	// MinTeamSize is the smallest acceptable team (default 1).
	MinTeamSize int
	// CostBudget caps the sum of member wages; 0 means unconstrained.
	CostBudget float64
	// MinPairAffinity, when > 0, requires every pair in the team to have at
	// least this affinity.
	MinPairAffinity float64
	// RecruitmentDeadline: unless all suggested workers undertake the task by
	// this time, assignment is re-executed with a new team (§2.2.1).
	RecruitmentDeadline time.Time
	// InterestThreshold is how many interested workers the controller waits
	// for before attempting to build a team (0 = MinTeamSize).
	InterestThreshold int
}

// DefaultCriticalMass is applied when a requester does not bound team size.
const DefaultCriticalMass = 5

// Normalize fills defaults so downstream code can rely on sane values.
func (c Constraints) Normalize() Constraints {
	if c.UpperCriticalMass <= 0 {
		c.UpperCriticalMass = DefaultCriticalMass
	}
	if c.MinTeamSize <= 0 {
		c.MinTeamSize = 1
	}
	if c.MinTeamSize > c.UpperCriticalMass {
		c.MinTeamSize = c.UpperCriticalMass
	}
	if c.InterestThreshold < c.MinTeamSize {
		c.InterestThreshold = c.MinTeamSize
	}
	return c
}

// Task is a unit of work registered in the task pool. A Task may be a complex
// task (to be decomposed) or a micro-task produced by decomposition or by the
// CyLog processor's dynamic task generation.
type Task struct {
	ID          ID
	ProjectID   string
	Title       string
	Description string
	Scheme      CollaborationScheme
	Constraints Constraints
	// Form describes the input form shown to workers (form-based task UI).
	Form Form
	// Input carries task-specific payload (e.g. the sentence to translate,
	// the topic to report on, the region/time cell to surveil).
	Input map[string]string
	// ParentID links a micro-task to the complex task it was derived from.
	ParentID ID
	// Sequence orders sibling micro-tasks produced by decomposition.
	Sequence int
	// GeneratedBy records which rule or coordination step created the task
	// dynamically ("" for requester-registered tasks).
	GeneratedBy string
	// CreatedAt is when the task entered the pool.
	CreatedAt time.Time

	state  State
	result *Result
	mu     sync.RWMutex
}

// Result is the recorded outcome of a task: produced by one worker for
// individual/sequential steps, or by a whole team for simultaneous tasks
// (submitted by one member, recorded as the team's).
type Result struct {
	TaskID      ID
	TeamID      string
	SubmittedBy string
	Fields      map[string]string
	Quality     float64
	SubmittedAt time.Time
}

// NewTask creates an open task with normalized constraints.
func NewTask(id ID, projectID, title string, scheme CollaborationScheme, c Constraints) *Task {
	return &Task{
		ID:          id,
		ProjectID:   projectID,
		Title:       title,
		Scheme:      scheme,
		Constraints: c.Normalize(),
		Input:       make(map[string]string),
		CreatedAt:   time.Now(),
		state:       StateOpen,
	}
}

// State returns the current lifecycle state.
func (t *Task) State() State {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.state
}

// SetState transitions the task. Transitions out of a terminal state are
// rejected, as are unknown regressions (e.g. completed → open).
func (t *Task) SetState(s State) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state.Terminal() && s != t.state {
		return fmt.Errorf("task %s: cannot leave terminal state %s", t.ID, t.state)
	}
	t.state = s
	return nil
}

// Result returns the recorded result, or nil.
func (t *Task) Result() *Result {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.result
}

// Complete records the result and moves the task to StateCompleted.
func (t *Task) Complete(r *Result) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state.Terminal() {
		return fmt.Errorf("task %s: already %s", t.ID, t.state)
	}
	if r == nil {
		return errors.New("task: nil result")
	}
	r.TaskID = t.ID
	if r.SubmittedAt.IsZero() {
		r.SubmittedAt = time.Now()
	}
	t.result = r
	t.state = StateCompleted
	return nil
}

// Expired reports whether the recruitment deadline has passed at time now.
func (t *Task) Expired(now time.Time) bool {
	d := t.Constraints.RecruitmentDeadline
	return !d.IsZero() && now.After(d)
}

// Clone returns a copy safe to hand out (result pointer is shared, it is
// immutable once recorded).
func (t *Task) Clone() *Task {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &Task{
		ID: t.ID, ProjectID: t.ProjectID, Title: t.Title, Description: t.Description,
		Scheme: t.Scheme, Constraints: t.Constraints, Form: t.Form.Clone(),
		Input: make(map[string]string, len(t.Input)), ParentID: t.ParentID,
		Sequence: t.Sequence, GeneratedBy: t.GeneratedBy, CreatedAt: t.CreatedAt,
		state: t.state, result: t.result,
	}
	for k, v := range t.Input {
		c.Input[k] = v
	}
	return c
}

// String summarises the task.
func (t *Task) String() string {
	return fmt.Sprintf("task(%s %q %s %s)", t.ID, t.Title, t.Scheme, t.State())
}

// Pool is the task pool of Figure 2: the CyLog processor registers tasks into
// it, user pages read eligible tasks out of it, and the assignment controller
// transitions task states. All methods are safe for concurrent use.
type Pool struct {
	mu     sync.RWMutex
	tasks  map[ID]*Task
	nextID int
}

// NewPool creates an empty pool.
func NewPool() *Pool {
	return &Pool{tasks: make(map[ID]*Task)}
}

// NextID generates a fresh task id with the given prefix.
func (p *Pool) NextID(prefix string) ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	return ID(fmt.Sprintf("%s-%06d", prefix, p.nextID))
}

// Register adds a task to the pool. Registering a duplicate id fails.
func (p *Pool) Register(t *Task) error {
	if t == nil || t.ID == "" {
		return errors.New("task: cannot register task with empty id")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.tasks[t.ID]; dup {
		return fmt.Errorf("task: task %s already registered", t.ID)
	}
	p.tasks[t.ID] = t
	return nil
}

// Get returns the task with the given id.
func (p *Pool) Get(id ID) (*Task, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.tasks[id]
	return t, ok
}

// Remove deletes the task from the pool.
func (p *Pool) Remove(id ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tasks[id]; !ok {
		return false
	}
	delete(p.tasks, id)
	return true
}

// Len returns the number of tasks in the pool.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.tasks)
}

// All returns the tasks sorted by id.
func (p *Pool) All() []*Task {
	p.mu.RLock()
	out := make([]*Task, 0, len(p.tasks))
	for _, t := range p.tasks {
		out = append(out, t)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InState returns tasks currently in the given state, sorted by id.
func (p *Pool) InState(s State) []*Task {
	var out []*Task
	for _, t := range p.All() {
		if t.State() == s {
			out = append(out, t)
		}
	}
	return out
}

// ByProject returns the project's tasks sorted by id.
func (p *Pool) ByProject(projectID string) []*Task {
	var out []*Task
	for _, t := range p.All() {
		if t.ProjectID == projectID {
			out = append(out, t)
		}
	}
	return out
}

// Children returns the micro-tasks derived from the given parent, ordered by
// Sequence then id.
func (p *Pool) Children(parent ID) []*Task {
	var out []*Task
	for _, t := range p.All() {
		if t.ParentID == parent {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sequence != out[j].Sequence {
			return out[i].Sequence < out[j].Sequence
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ExpireOverdue marks every non-terminal task whose recruitment deadline has
// passed as expired and returns them; the platform re-runs assignment for
// these (§2.2.1).
func (p *Pool) ExpireOverdue(now time.Time) []*Task {
	var expired []*Task
	for _, t := range p.All() {
		st := t.State()
		if !st.Terminal() && st != StateInProgress && t.Expired(now) {
			if err := t.SetState(StateExpired); err == nil {
				expired = append(expired, t)
			}
		}
	}
	return expired
}

// Counts returns a map of state name to task count; used by dashboards.
func (p *Pool) Counts() map[string]int {
	out := make(map[string]int)
	for _, t := range p.All() {
		out[t.State().String()]++
	}
	return out
}
