// Package docs holds repository-documentation tooling. Its test suite
// validates the markdown documentation itself — currently a link check over
// README.md and docs/ that fails the build when a relative link points at a
// missing file or a heading anchor that does not exist. CI runs it via
// `make linkcheck` (and it rides along in `make test`).
package docs
