package docs

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkPattern matches inline markdown links [text](target). Images and
// reference-style links are out of scope; the docs only use inline links.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingPattern matches ATX headings, whose GitHub anchor slugs relative
// links may target.
var headingPattern = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// repoRoot walks up from the package directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}

// anchorSlug approximates GitHub's heading-to-anchor translation: lower-case,
// punctuation stripped, spaces to hyphens.
func anchorSlug(heading string) string {
	// Drop inline code/emphasis markers and links before slugging.
	heading = strings.NewReplacer("`", "", "*", "", "_", "").Replace(heading)
	if m := regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).FindStringSubmatch(heading); m != nil {
		heading = strings.Replace(heading, m[0], m[1], 1)
	}
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r > 127:
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteRune('-')
		}
	}
	return b.String()
}

func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	out := make(map[string]bool)
	for _, m := range headingPattern.FindAllStringSubmatch(string(data), -1) {
		out[anchorSlug(m[1])] = true
	}
	return out
}

// TestMarkdownLinks verifies every relative link in README.md,
// EXPERIMENTS.md and docs/*.md: the target file must exist in the
// repository, and a #fragment must name a heading anchor in the target (or
// current) file. External http(s)/mailto links are skipped — CI must not
// depend on the network.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	var files []string
	files = append(files, filepath.Join(root, "README.md"), filepath.Join(root, "EXPERIMENTS.md"))
	docGlob, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docGlob...)
	if len(docGlob) == 0 {
		t.Error("docs/ contains no markdown files; expected at least ARCHITECTURE.md")
	}

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		rel, _ := filepath.Rel(root, file)
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag := target, ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				path, frag = target[:i], target[i+1:]
			}
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s: broken link %q (%v)", rel, target, err))
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(t, resolved)[frag] {
					problems = append(problems, fmt.Sprintf("%s: link %q targets missing anchor #%s", rel, target, frag))
				}
			}
		}
	}
	for _, p := range problems {
		t.Error(p)
	}
}
