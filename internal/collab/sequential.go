package collab

import (
	"fmt"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Sequential implements the sequential collaboration scheme: "the team members
// collaborate with each other through the tasks dynamically generated based on
// other members' task results. For example, after a worker translates a
// sentence into another language, a task for checking the result is
// dynamically generated, and the result is sent to another team member."
//
// Coordination proceeds as:
//
//  1. the first member drafts a contribution for the task input;
//  2. the next member checks it; if the check fails, the following member (or
//     the drafter when the team has only two members) is asked to fix it, and
//     the fix is checked again, up to MaxFixRounds times;
//  3. every remaining member in turn improves the current text, each
//     improvement followed by a check by the next member.
//
// The final text is recorded as the task result; its quality is the mean
// quality of the accepted contributions.
type Sequential struct {
	// MaxFixRounds bounds the number of check→fix cycles after any
	// contribution (default 1).
	MaxFixRounds int
	// SkipCheck disables dynamically generated check steps; used for
	// Individual (single-worker) tasks.
	SkipCheck bool
}

// Name implements Scheme.
func (s *Sequential) Name() task.CollaborationScheme { return task.Sequential }

// Run implements Scheme.
func (s *Sequential) Run(t *task.Task, team []worker.ID, io WorkerIO) (Outcome, error) {
	if len(team) == 0 {
		return Outcome{}, ErrEmptyTeam
	}
	maxFix := s.MaxFixRounds
	if maxFix < 0 {
		maxFix = 0
	}
	out := Outcome{}
	input := primaryInput(t)

	perform := func(req StepRequest) (StepResponse, error) {
		resp, err := io.Perform(req)
		if err != nil {
			return StepResponse{}, fmt.Errorf("collab: step %s by %s failed: %w", req.Kind, req.Worker, err)
		}
		out.Trace = append(out.Trace, StepRecord{Request: req, Response: resp})
		out.TotalLatency += resp.Latency
		return resp, nil
	}

	// Step 1: the first member drafts.
	round := 1
	draft, err := perform(StepRequest{
		TaskID: t.ID, Worker: team[0], Kind: StepDraft, Round: round,
		Prompt: t.Title,
		Input:  map[string]string{"source": input},
	})
	if err != nil {
		return out, err
	}
	current := draft.Fields["text"]
	qualities := []float64{draft.Quality}

	next := func(i int) worker.ID { return team[i%len(team)] }

	// checkAndFix runs the dynamically generated check task, and fix rounds if
	// the check fails. contributorIdx is the index of the member who produced
	// the text being checked.
	checkAndFix := func(contributorIdx int) error {
		if s.SkipCheck || len(team) < 2 {
			return nil
		}
		checkerIdx := contributorIdx + 1
		for fix := 0; ; fix++ {
			round++
			check, err := perform(StepRequest{
				TaskID: t.ID, Worker: next(checkerIdx), Kind: StepCheck, Round: round,
				Prompt: "Is this contribution correct?",
				Input:  map[string]string{"source": input, "text": current},
			})
			if err != nil {
				return err
			}
			if boolField(check.Fields, "confirmed") || fix >= maxFix {
				return nil
			}
			round++
			fixer := next(checkerIdx + 1)
			fixResp, err := perform(StepRequest{
				TaskID: t.ID, Worker: fixer, Kind: StepFix, Round: round,
				Prompt: "Fix the contribution based on the check comment",
				Input: map[string]string{
					"source": input, "text": current, "comment": check.Fields["comment"],
				},
			})
			if err != nil {
				return err
			}
			if fixResp.Fields["text"] != "" {
				current = fixResp.Fields["text"]
				qualities = append(qualities, fixResp.Quality)
			}
		}
	}

	if err := checkAndFix(0); err != nil {
		return out, err
	}

	// Steps 3+: each remaining member improves the text in turn, with a check
	// after each improvement.
	for i := 1; i < len(team); i++ {
		round++
		improve, err := perform(StepRequest{
			TaskID: t.ID, Worker: team[i], Kind: StepImprove, Round: round,
			Prompt: "Improve the current contribution",
			Input:  map[string]string{"source": input, "text": current},
		})
		if err != nil {
			return out, err
		}
		if improve.Fields["text"] != "" {
			current = improve.Fields["text"]
		}
		qualities = append(qualities, improve.Quality)
		if err := checkAndFix(i); err != nil {
			return out, err
		}
	}

	out.Rounds = round
	out.Result = &task.Result{
		TaskID:      t.ID,
		TeamID:      teamID(team),
		SubmittedBy: string(team[len(team)-1]),
		Fields:      map[string]string{"text": current},
		Quality:     averageQuality(qualities),
	}
	return out, nil
}
