package collab

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// scriptedIO is a WorkerIO for tests: it answers steps from a table keyed by
// step kind, recording every request.
type scriptedIO struct {
	mu       sync.Mutex
	requests []StepRequest
	// answers maps a step kind to a function producing the response.
	answers map[StepKind]func(StepRequest) StepResponse
	// failOn makes the given kind return an error.
	failOn StepKind
}

func (s *scriptedIO) Perform(req StepRequest) (StepResponse, error) {
	s.mu.Lock()
	s.requests = append(s.requests, req)
	s.mu.Unlock()
	if s.failOn != "" && req.Kind == s.failOn {
		return StepResponse{}, errors.New("scripted failure")
	}
	if fn, ok := s.answers[req.Kind]; ok {
		return fn(req), nil
	}
	return StepResponse{Fields: map[string]string{"text": "default"}, Quality: 0.5}, nil
}

func (s *scriptedIO) kinds() []StepKind {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StepKind, len(s.requests))
	for i, r := range s.requests {
		out[i] = r.Kind
	}
	return out
}

func textResponse(text string, q float64) func(StepRequest) StepResponse {
	return func(StepRequest) StepResponse {
		return StepResponse{Fields: map[string]string{"text": text}, Quality: q, Latency: 10 * time.Millisecond}
	}
}

func confirmResponse(yes bool) func(StepRequest) StepResponse {
	v := "no"
	if yes {
		v = "yes"
	}
	return func(StepRequest) StepResponse {
		return StepResponse{Fields: map[string]string{"confirmed": v, "comment": "checked"}, Quality: 0.8, Latency: 5 * time.Millisecond}
	}
}

func newSeqTask() *task.Task {
	t := task.NewTask("t-seq", "p1", "Translate subtitle", task.Sequential, task.Constraints{UpperCriticalMass: 3})
	t.Input["sentence"] = "Hello world"
	return t
}

func team(n int) []worker.ID {
	out := make([]worker.ID, n)
	for i := range out {
		out[i] = worker.ID(fmt.Sprintf("w%d", i+1))
	}
	return out
}

func TestSequentialHappyPath(t *testing.T) {
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepDraft:   textResponse("draft translation", 0.6),
		StepImprove: textResponse("improved translation", 0.9),
		StepCheck:   confirmResponse(true),
	}}
	seq := &Sequential{MaxFixRounds: 1}
	out, err := seq.Run(newSeqTask(), team(3), io)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Fields["text"] != "improved translation" {
		t.Fatalf("result = %+v", out.Result)
	}
	if out.Result.TeamID != "team:w1+w2+w3" {
		t.Errorf("team id = %q", out.Result.TeamID)
	}
	kinds := io.kinds()
	// draft, check, improve(w2), check, improve(w3), check
	want := []StepKind{StepDraft, StepCheck, StepImprove, StepCheck, StepImprove, StepCheck}
	if len(kinds) != len(want) {
		t.Fatalf("steps = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("step %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	if out.Result.Quality <= 0.5 || out.Result.Quality > 1 {
		t.Errorf("quality = %v", out.Result.Quality)
	}
	if out.TotalLatency == 0 {
		t.Error("latency should accumulate")
	}
	if seq.Name() != task.Sequential {
		t.Error("Name mismatch")
	}
}

func TestSequentialCheckFailTriggersFix(t *testing.T) {
	checks := 0
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepDraft:   textResponse("bad draft", 0.3),
		StepImprove: textResponse("improved", 0.8),
		StepFix:     textResponse("fixed draft", 0.7),
		StepCheck: func(req StepRequest) StepResponse {
			checks++
			// First check fails, later checks pass.
			return confirmResponse(checks > 1)(req)
		},
	}}
	out, err := (&Sequential{MaxFixRounds: 2}).Run(newSeqTask(), team(2), io)
	if err != nil {
		t.Fatal(err)
	}
	kinds := io.kinds()
	foundFix := false
	for _, k := range kinds {
		if k == StepFix {
			foundFix = true
		}
	}
	if !foundFix {
		t.Errorf("a failed check should dynamically generate a fix step: %v", kinds)
	}
	// The final text comes from the last improvement.
	if out.Result.Fields["text"] != "improved" {
		t.Errorf("final text = %q", out.Result.Fields["text"])
	}
}

func TestSequentialSingleWorkerSkipsChecks(t *testing.T) {
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepDraft: textResponse("solo work", 0.7),
	}}
	out, err := (&Sequential{SkipCheck: true}).Run(newSeqTask(), team(1), io)
	if err != nil {
		t.Fatal(err)
	}
	if len(io.kinds()) != 1 {
		t.Errorf("steps = %v", io.kinds())
	}
	if out.Result.Fields["text"] != "solo work" {
		t.Errorf("text = %q", out.Result.Fields["text"])
	}
}

func TestSequentialEmptyTeamAndErrors(t *testing.T) {
	if _, err := (&Sequential{}).Run(newSeqTask(), nil, &scriptedIO{}); !errors.Is(err, ErrEmptyTeam) {
		t.Errorf("want ErrEmptyTeam, got %v", err)
	}
	io := &scriptedIO{failOn: StepDraft}
	if _, err := (&Sequential{}).Run(newSeqTask(), team(2), io); err == nil {
		t.Error("draft failure should propagate")
	}
	io2 := &scriptedIO{failOn: StepCheck, answers: map[StepKind]func(StepRequest) StepResponse{
		StepDraft: textResponse("d", 0.5),
	}}
	if _, err := (&Sequential{}).Run(newSeqTask(), team(2), io2); err == nil {
		t.Error("check failure should propagate")
	}
}

func newSimTask() *task.Task {
	t := task.NewTask("t-sim", "p1", "Write a festival report", task.Simultaneous, task.Constraints{UpperCriticalMass: 4})
	t.Input["topic"] = "city festival"
	return t
}

func TestSimultaneousHappyPath(t *testing.T) {
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepSNS: func(req StepRequest) StepResponse {
			return StepResponse{Fields: map[string]string{"sns_id": string(req.Worker) + "@sns"}, Latency: 3 * time.Millisecond}
		},
		StepContribute: func(req StepRequest) StepResponse {
			return StepResponse{Fields: map[string]string{"text": "paragraph by " + string(req.Worker)}, Quality: 0.8, Latency: 20 * time.Millisecond}
		},
		StepSubmit: func(req StepRequest) StepResponse {
			return StepResponse{Fields: map[string]string{"text": req.Input["document"]}, Quality: 0.9, Latency: 2 * time.Millisecond}
		},
	}}
	sim := &Simultaneous{}
	out, err := sim.Run(newSimTask(), team(3), io)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Name() != task.Simultaneous {
		t.Error("Name mismatch")
	}
	if out.Rounds != 3 {
		t.Errorf("rounds = %d", out.Rounds)
	}
	// SNS ids are gathered and passed to contributors.
	var contributeReq *StepRequest
	for i := range io.requests {
		if io.requests[i].Kind == StepContribute {
			contributeReq = &io.requests[i]
			break
		}
	}
	if contributeReq == nil || !strings.Contains(contributeReq.Input["members"], "w2@sns") {
		t.Errorf("contribute step should receive member SNS ids, got %+v", contributeReq)
	}
	// The result is submitted by one member but contains everyone's text.
	if out.Result.SubmittedBy != "w1" {
		t.Errorf("SubmittedBy = %s", out.Result.SubmittedBy)
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if !strings.Contains(out.Result.Fields["text"], "paragraph by "+w) {
			t.Errorf("merged text missing contribution from %s: %q", w, out.Result.Fields["text"])
		}
	}
	// Parallel rounds use the max latency, not the sum: 3 + 20 + 2 = 25ms.
	if out.TotalLatency != 25*time.Millisecond {
		t.Errorf("TotalLatency = %v, want 25ms", out.TotalLatency)
	}
}

func TestSimultaneousDefaultsAndErrors(t *testing.T) {
	// Workers that return no SNS id fall back to their worker id; empty
	// submit falls back to the merged document.
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepSNS:        func(StepRequest) StepResponse { return StepResponse{Fields: map[string]string{}} },
		StepContribute: textResponse("shared paragraph", 0.5),
		StepSubmit:     func(StepRequest) StepResponse { return StepResponse{Fields: map[string]string{}} },
	}}
	out, err := (&Simultaneous{}).Run(newSimTask(), team(2), io)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Result.Fields["members"], "w1") {
		t.Errorf("members = %q", out.Result.Fields["members"])
	}
	if !strings.Contains(out.Result.Fields["text"], "shared paragraph") {
		t.Errorf("text = %q", out.Result.Fields["text"])
	}
	if _, err := (&Simultaneous{}).Run(newSimTask(), nil, io); !errors.Is(err, ErrEmptyTeam) {
		t.Error("empty team should fail")
	}
	if _, err := (&Simultaneous{}).Run(newSimTask(), team(2), &scriptedIO{failOn: StepSNS}); err == nil {
		t.Error("sns failure should propagate")
	}
	if _, err := (&Simultaneous{}).Run(newSimTask(), team(2), &scriptedIO{failOn: StepContribute}); err == nil {
		t.Error("contribute failure should propagate")
	}
	if _, err := (&Simultaneous{}).Run(newSimTask(), team(2), &scriptedIO{failOn: StepSubmit}); err == nil {
		t.Error("submit failure should propagate")
	}
}

func newHybridTask() *task.Task {
	t := task.NewTask("t-hyb", "p1", "Disaster surveillance", task.Hybrid, task.Constraints{UpperCriticalMass: 4})
	t.Input["region"] = "north"
	t.Input["period"] = "morning"
	return t
}

func TestHybridDefaultDataflow(t *testing.T) {
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepFact:    textResponse("bridge damaged", 0.7),
		StepCorrect: textResponse("bridge damaged, road closed", 0.8),
		StepTestimonial: func(req StepRequest) StepResponse {
			return StepResponse{Fields: map[string]string{"text": "I saw it from " + string(req.Worker)}, Quality: 0.6}
		},
		StepCheck: confirmResponse(true),
	}}
	h := DefaultHybrid()
	out, err := h.Run(newHybridTask(), team(4), io)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != task.Hybrid {
		t.Error("Name mismatch")
	}
	if out.Result.Fields["text"] != "bridge damaged, road closed" {
		t.Errorf("final facts = %q", out.Result.Fields["text"])
	}
	if !strings.Contains(out.Result.Fields["stage:testimonials"], "I saw it") {
		t.Errorf("testimonials = %q", out.Result.Fields["stage:testimonials"])
	}
	confirmed, votes := MajorityConfirmed(out.Result.Fields["stage:confirmation"])
	if !confirmed || votes == 0 {
		t.Errorf("confirmation = %q", out.Result.Fields["stage:confirmation"])
	}
	// Both sequential (fact/correct) and simultaneous (testimonial/check)
	// kinds must appear — the defining property of hybrid coordination.
	kindSet := make(map[StepKind]bool)
	for _, k := range io.kinds() {
		kindSet[k] = true
	}
	for _, k := range []StepKind{StepFact, StepCorrect, StepTestimonial, StepCheck} {
		if !kindSet[k] {
			t.Errorf("missing step kind %s in %v", k, io.kinds())
		}
	}
}

func TestHybridMajorityUnconfirmed(t *testing.T) {
	io := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepFact:        textResponse("fact", 0.5),
		StepCorrect:     textResponse("fact", 0.5),
		StepTestimonial: textResponse("testimonial", 0.5),
		StepCheck:       confirmResponse(false),
	}}
	out, err := DefaultHybrid().Run(newHybridTask(), team(4), io)
	if err != nil {
		t.Fatal(err)
	}
	confirmed, _ := MajorityConfirmed(out.Result.Fields["stage:confirmation"])
	if confirmed {
		t.Errorf("all-no votes should be unconfirmed: %q", out.Result.Fields["stage:confirmation"])
	}
}

func TestHybridErrorsAndEdgeCases(t *testing.T) {
	if _, err := DefaultHybrid().Run(newHybridTask(), nil, &scriptedIO{}); !errors.Is(err, ErrEmptyTeam) {
		t.Error("empty team should fail")
	}
	if _, err := (&Hybrid{}).Run(newHybridTask(), team(2), &scriptedIO{}); err == nil {
		t.Error("hybrid with no stages should fail")
	}
	if _, err := DefaultHybrid().Run(newHybridTask(), team(4), &scriptedIO{failOn: StepFact}); err == nil {
		t.Error("sequential stage failure should propagate")
	}
	if _, err := DefaultHybrid().Run(newHybridTask(), team(4), &scriptedIO{failOn: StepTestimonial, answers: map[StepKind]func(StepRequest) StepResponse{
		StepFact: textResponse("f", 0.5), StepCorrect: textResponse("f", 0.5),
	}}); err == nil {
		t.Error("simultaneous stage failure should propagate")
	}
	bad := &Hybrid{Stages: []Stage{{Name: "x", Mode: "teleport", Kind: StepFact}}}
	if _, err := bad.Run(newHybridTask(), team(2), &scriptedIO{}); err == nil {
		t.Error("unknown stage mode should fail")
	}
	// Single-member team still works (fractions collapse to the whole team).
	solo := &scriptedIO{answers: map[StepKind]func(StepRequest) StepResponse{
		StepFact: textResponse("f", 0.5), StepCorrect: textResponse("f2", 0.5),
		StepTestimonial: textResponse("t", 0.5), StepCheck: confirmResponse(true),
	}}
	if _, err := DefaultHybrid().Run(newHybridTask(), team(1), solo); err != nil {
		t.Errorf("single-member hybrid failed: %v", err)
	}
}

func TestForTaskSelectsScheme(t *testing.T) {
	cases := map[task.CollaborationScheme]task.CollaborationScheme{
		task.Sequential:   task.Sequential,
		task.Simultaneous: task.Simultaneous,
		task.Hybrid:       task.Hybrid,
		task.Individual:   task.Sequential, // individual is a 1-worker sequential pipeline
	}
	for scheme, wantName := range cases {
		tk := task.NewTask("t", "p", "x", scheme, task.Constraints{})
		got := ForTask(tk)
		if got.Name() != wantName {
			t.Errorf("ForTask(%s).Name() = %s, want %s", scheme, got.Name(), wantName)
		}
	}
}

func TestSharedDocument(t *testing.T) {
	d := NewSharedDocument("doc1")
	if d.ID() != "doc1" || d.Len() != 0 {
		t.Error("new document should be empty")
	}
	d.Append("w2", "second contribution")
	d.Append("w1", "first contribution")
	d.AppendSection("w3", "interviews", "quote from a visitor")
	d.Append("w1", "   ") // ignored
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := d.Contributors(); len(got) != 3 || got[0] != "w1" {
		t.Errorf("Contributors = %v", got)
	}
	text := d.Text()
	if !strings.Contains(text, "second contribution") || !strings.Contains(text, "## interviews") {
		t.Errorf("Text = %q", text)
	}
	// Unnamed section renders before named sections.
	if strings.Index(text, "second contribution") > strings.Index(text, "## interviews") {
		t.Error("unnamed section should render first")
	}
	ops := d.Ops()
	if len(ops) != 3 || ops[0].Seq != 1 || ops[0].Author != "w2" {
		t.Errorf("Ops = %v", ops)
	}
}

func TestSharedDocumentConcurrentAppend(t *testing.T) {
	d := NewSharedDocument("doc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				d.Append(worker.ID(fmt.Sprintf("w%d", i)), fmt.Sprintf("op %d-%d", i, j))
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 400 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestHelpers(t *testing.T) {
	if mergeContributions(map[worker.ID]string{"b": "two", "a": "one", "c": "  "}) != "one\n\ntwo" {
		t.Error("mergeContributions order/skip wrong")
	}
	if averageQuality(nil) != 0 || averageQuality([]float64{0.5, 1.0}) != 0.75 {
		t.Error("averageQuality wrong")
	}
	if !boolField(map[string]string{"x": "YES"}, "x") || boolField(map[string]string{"x": "nope"}, "x") {
		t.Error("boolField wrong")
	}
	if teamID([]worker.ID{"b", "a"}) != "team:a+b" {
		t.Error("teamID wrong")
	}
	o := Outcome{}
	if o.Quality() != 0 {
		t.Error("Quality of empty outcome should be 0")
	}
	if c, n := MajorityConfirmed("garbage"); c || n != 0 {
		t.Error("MajorityConfirmed on garbage should be false/0")
	}
	if c, n := MajorityConfirmed("confirmed (3/4)"); !c || n != 3 {
		t.Error("MajorityConfirmed parse failed")
	}
	if c, _ := MajorityConfirmed("unconfirmed (1/4)"); c {
		t.Error("unconfirmed should parse as false")
	}
	tk := task.NewTask("t", "p", "desc only", task.Sequential, task.Constraints{})
	tk.Description = "fallback description"
	if primaryInput(tk) != "fallback description" {
		t.Error("primaryInput fallback wrong")
	}
	tk.Input["text"] = "explicit"
	if primaryInput(tk) != "explicit" {
		t.Error("primaryInput should prefer explicit input")
	}
}
