package collab

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// StageMode is how a hybrid dataflow stage coordinates its workers.
type StageMode string

// Stage coordination modes.
const (
	ModeSequential   StageMode = "sequential"
	ModeSimultaneous StageMode = "simultaneous"
)

// Stage is one step in a hybrid dataflow. Sequential stages route their
// workers one after another (each seeing the running output); simultaneous
// stages issue the step to all their workers in parallel and merge the
// answers.
type Stage struct {
	Name   string
	Mode   StageMode
	Kind   StepKind
	Prompt string
	// Fraction is the share of the team participating in the stage, in (0,1];
	// 0 means the whole team. Sequential stages route the selected members in
	// team order; simultaneous stages use them all in parallel.
	Fraction float64
	// MergePolicy chooses how a simultaneous stage's answers are combined:
	// "concat" (default) joins texts, "majority" reduces confirmed yes/no
	// answers to a verdict.
	MergePolicy string
}

// Hybrid interleaves sequential and simultaneous coordination in one complex
// dataflow (§2.3): "surveillance and correction tasks are executed as a
// sequential collaboration while the testimonials are provided
// simultaneously."
type Hybrid struct {
	Stages []Stage
}

// DefaultHybrid returns the surveillance-style dataflow used by the paper's
// third demo scenario: facts are collected and corrected sequentially by half
// the team, testimonials are provided simultaneously by the other half, and
// the outputs are merged with a majority confirmation.
func DefaultHybrid() *Hybrid {
	return &Hybrid{Stages: []Stage{
		{Name: "collect-facts", Mode: ModeSequential, Kind: StepFact, Prompt: "Report the facts you observed", Fraction: 0.5},
		{Name: "correct-facts", Mode: ModeSequential, Kind: StepCorrect, Prompt: "Correct the fact report if needed", Fraction: 0.5},
		{Name: "testimonials", Mode: ModeSimultaneous, Kind: StepTestimonial, Prompt: "Provide your independent testimonial", Fraction: 0.5, MergePolicy: "concat"},
		{Name: "confirmation", Mode: ModeSimultaneous, Kind: StepCheck, Prompt: "Do the collected facts match the testimonials?", Fraction: 0, MergePolicy: "majority"},
	}}
}

// Name implements Scheme.
func (h *Hybrid) Name() task.CollaborationScheme { return task.Hybrid }

// Run implements Scheme.
func (h *Hybrid) Run(t *task.Task, team []worker.ID, io WorkerIO) (Outcome, error) {
	if len(team) == 0 {
		return Outcome{}, ErrEmptyTeam
	}
	if len(h.Stages) == 0 {
		return Outcome{}, fmt.Errorf("collab: hybrid scheme has no stages")
	}
	out := Outcome{}
	input := primaryInput(t)
	current := ""
	var qualities []float64
	sections := make(map[string]string)

	perform := func(req StepRequest) (StepResponse, error) {
		resp, err := io.Perform(req)
		if err != nil {
			return StepResponse{}, fmt.Errorf("collab: step %s by %s failed: %w", req.Kind, req.Worker, err)
		}
		out.Trace = append(out.Trace, StepRecord{Request: req, Response: resp})
		return resp, nil
	}

	// Split the team: odd-indexed members handle even-numbered stages'
	// fractional pools so that sequential and simultaneous halves are
	// disjoint when Fraction = 0.5.
	stageWorkers := func(stage Stage, stageIdx int) []worker.ID {
		if stage.Fraction <= 0 || stage.Fraction >= 1 || len(team) == 1 {
			return team
		}
		n := int(float64(len(team))*stage.Fraction + 0.5)
		if n < 1 {
			n = 1
		}
		// Alternate halves by stage parity so different stages use different
		// members where possible.
		var pool []worker.ID
		for i, m := range team {
			if (i+stageIdx)%2 == 0 {
				pool = append(pool, m)
			}
		}
		if len(pool) < n {
			pool = team
		}
		return pool[:n]
	}

	round := 0
	for si, stage := range h.Stages {
		members := stageWorkers(stage, si)
		switch stage.Mode {
		case ModeSequential:
			for _, m := range members {
				round++
				resp, err := perform(StepRequest{
					TaskID: t.ID, Worker: m, Kind: stage.Kind, Round: round,
					Prompt: stage.Prompt,
					Input: map[string]string{
						"source": input, "text": current,
						"region": t.Input["region"], "period": t.Input["period"],
					},
				})
				if err != nil {
					return out, err
				}
				if txt := resp.Fields["text"]; txt != "" {
					current = txt
				}
				qualities = append(qualities, resp.Quality)
				out.TotalLatency += resp.Latency
			}
			sections[stage.Name] = current
		case ModeSimultaneous:
			round++
			var answers []StepResponse
			var roundLatency time.Duration
			for _, m := range members {
				resp, err := perform(StepRequest{
					TaskID: t.ID, Worker: m, Kind: stage.Kind, Round: round,
					Prompt: stage.Prompt,
					Input: map[string]string{
						"source": input, "text": current,
						"region": t.Input["region"], "period": t.Input["period"],
					},
				})
				if err != nil {
					return out, err
				}
				answers = append(answers, resp)
				qualities = append(qualities, resp.Quality)
				if resp.Latency > roundLatency {
					roundLatency = resp.Latency
				}
			}
			out.TotalLatency += roundLatency
			sections[stage.Name] = mergeStage(stage, members, answers)
		default:
			return out, fmt.Errorf("collab: unknown stage mode %q", stage.Mode)
		}
	}

	out.Rounds = round
	fields := map[string]string{"text": current}
	for name, text := range sections {
		fields["stage:"+name] = text
	}
	out.Result = &task.Result{
		TaskID:      t.ID,
		TeamID:      teamID(team),
		SubmittedBy: string(team[0]),
		Fields:      fields,
		Quality:     averageQuality(qualities),
	}
	return out, nil
}

// mergeStage combines a simultaneous stage's answers according to its policy.
func mergeStage(stage Stage, members []worker.ID, answers []StepResponse) string {
	switch stage.MergePolicy {
	case "majority":
		yes := 0
		for _, a := range answers {
			if boolField(a.Fields, "confirmed") {
				yes++
			}
		}
		verdict := "unconfirmed"
		if yes*2 > len(answers) {
			verdict = "confirmed"
		}
		return fmt.Sprintf("%s (%d/%d)", verdict, yes, len(answers))
	default: // concat
		parts := make(map[worker.ID]string, len(answers))
		for i, a := range answers {
			if i < len(members) {
				parts[members[i]] = a.Fields["text"]
			}
		}
		return mergeContributions(parts)
	}
}

// MajorityConfirmed parses the verdict produced by a "majority" stage, e.g.
// "confirmed (3/4)"; it returns the verdict and the yes-vote count.
func MajorityConfirmed(s string) (bool, int) {
	confirmed := strings.HasPrefix(s, "confirmed")
	open := strings.Index(s, "(")
	slash := strings.Index(s, "/")
	if open < 0 || slash < 0 || slash < open {
		return confirmed, 0
	}
	n, err := strconv.Atoi(s[open+1 : slash])
	if err != nil {
		return confirmed, 0
	}
	return confirmed, n
}
