package collab

import (
	"fmt"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Simultaneous implements the simultaneous collaboration scheme: "Crowd4U
// first assigns the task to solicit her SNS ID (e.g., Google account) to
// communicate with other members in the team. After all the members are in the
// 'undertakes' status, the collaborative task is generated and assigned to all
// the members with the list of obtained IDs. The members work together with
// any collaboration tool (e.g., Google docs). The result of the collaborative
// task is submitted by one of the team members, but recorded as the result
// produced by the team."
//
// The shared external tool is modelled by a SharedDocument session: each
// member's parallel contribution is appended to the session and merged; the
// first member then reviews and submits the merged text on behalf of the team.
type Simultaneous struct{}

// Name implements Scheme.
func (s *Simultaneous) Name() task.CollaborationScheme { return task.Simultaneous }

// Run implements Scheme.
func (s *Simultaneous) Run(t *task.Task, team []worker.ID, io WorkerIO) (Outcome, error) {
	if len(team) == 0 {
		return Outcome{}, ErrEmptyTeam
	}
	out := Outcome{}
	input := primaryInput(t)

	perform := func(req StepRequest) (StepResponse, error) {
		resp, err := io.Perform(req)
		if err != nil {
			return StepResponse{}, fmt.Errorf("collab: step %s by %s failed: %w", req.Kind, req.Worker, err)
		}
		out.Trace = append(out.Trace, StepRecord{Request: req, Response: resp})
		return resp, nil
	}

	// Round 1: solicit SNS / contact ids. These steps run in parallel, so the
	// round latency is the slowest member's latency.
	snsIDs := make([]string, 0, len(team))
	var roundLatency time.Duration
	for _, m := range team {
		resp, err := perform(StepRequest{
			TaskID: t.ID, Worker: m, Kind: StepSNS, Round: 1,
			Prompt: "Share your contact id so the team can coordinate",
			Input:  map[string]string{"topic": input},
		})
		if err != nil {
			return out, err
		}
		id := resp.Fields["sns_id"]
		if id == "" {
			id = string(m)
		}
		snsIDs = append(snsIDs, id)
		if resp.Latency > roundLatency {
			roundLatency = resp.Latency
		}
	}
	out.TotalLatency += roundLatency

	// Round 2: the collaborative task is assigned to all members with the list
	// of ids; each contributes to the shared document in parallel.
	doc := NewSharedDocument(string(t.ID))
	contributions := make(map[worker.ID]string, len(team))
	qualities := make([]float64, 0, len(team))
	roundLatency = 0
	for _, m := range team {
		resp, err := perform(StepRequest{
			TaskID: t.ID, Worker: m, Kind: StepContribute, Round: 2,
			Prompt: t.Title,
			Input: map[string]string{
				"topic":   input,
				"section": t.Input["section"],
				"members": strings.Join(snsIDs, ", "),
			},
		})
		if err != nil {
			return out, err
		}
		text := resp.Fields["text"]
		contributions[m] = text
		doc.Append(m, text)
		qualities = append(qualities, resp.Quality)
		if resp.Latency > roundLatency {
			roundLatency = resp.Latency
		}
	}
	out.TotalLatency += roundLatency

	// Round 3: one member (the first) submits the merged document; the result
	// is recorded as the team's.
	merged := doc.Text()
	if merged == "" {
		merged = mergeContributions(contributions)
	}
	submit, err := perform(StepRequest{
		TaskID: t.ID, Worker: team[0], Kind: StepSubmit, Round: 3,
		Prompt: "Review the shared document and submit it for the team",
		Input:  map[string]string{"topic": input, "document": merged},
	})
	if err != nil {
		return out, err
	}
	out.TotalLatency += submit.Latency
	final := submit.Fields["text"]
	if final == "" {
		final = merged
	}

	out.Rounds = 3
	out.Result = &task.Result{
		TaskID:      t.ID,
		TeamID:      teamID(team),
		SubmittedBy: string(team[0]),
		Fields: map[string]string{
			"text":    final,
			"members": strings.Join(snsIDs, ", "),
		},
		Quality: averageQuality(qualities),
	}
	return out, nil
}
