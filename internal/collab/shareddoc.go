package collab

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// SharedDocument stands in for the external collaboration tool (e.g. Google
// Docs) used during simultaneous collaboration. The paper delegates the actual
// editing to such tools and only manages task generation and result recording;
// this type provides just enough of a shared artefact — an append-only
// operation log with deterministic merging — for result coordination to be
// exercised and tested end to end. All methods are safe for concurrent use.
type SharedDocument struct {
	id string

	mu  sync.RWMutex
	ops []DocOp
}

// DocOp is one edit applied to the shared document.
type DocOp struct {
	Seq    int
	Author worker.ID
	// Section optionally names the document section the text belongs to.
	Section string
	Text    string
	At      time.Time
}

// NewSharedDocument creates an empty shared document session.
func NewSharedDocument(id string) *SharedDocument {
	return &SharedDocument{id: id}
}

// ID returns the session id.
func (d *SharedDocument) ID() string { return d.id }

// Append adds a contribution to the end of the document.
func (d *SharedDocument) Append(author worker.ID, text string) {
	d.AppendSection(author, "", text)
}

// AppendSection adds a contribution attributed to a named section.
func (d *SharedDocument) AppendSection(author worker.ID, section, text string) {
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops = append(d.ops, DocOp{
		Seq:     len(d.ops) + 1,
		Author:  author,
		Section: section,
		Text:    text,
		At:      time.Now(),
	})
}

// Ops returns a copy of the operation log.
func (d *SharedDocument) Ops() []DocOp {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]DocOp(nil), d.ops...)
}

// Len returns the number of operations applied.
func (d *SharedDocument) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ops)
}

// Contributors returns the sorted distinct authors.
func (d *SharedDocument) Contributors() []worker.ID {
	d.mu.RLock()
	set := make(map[worker.ID]bool)
	for _, op := range d.ops {
		set[op.Author] = true
	}
	d.mu.RUnlock()
	out := make([]worker.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Text merges the document: operations are grouped by section (sections in
// first-appearance order, the unnamed section first), and inside a section
// contributions appear in operation order separated by blank lines. Named
// sections are rendered with a "## section" heading.
func (d *SharedDocument) Text() string {
	d.mu.RLock()
	defer d.mu.RUnlock()

	var sectionOrder []string
	bySection := make(map[string][]string)
	for _, op := range d.ops {
		if _, seen := bySection[op.Section]; !seen {
			sectionOrder = append(sectionOrder, op.Section)
		}
		bySection[op.Section] = append(bySection[op.Section], op.Text)
	}
	// The unnamed section always renders first when present.
	sort.SliceStable(sectionOrder, func(i, j int) bool {
		if sectionOrder[i] == "" {
			return sectionOrder[j] != ""
		}
		return false
	})

	var b strings.Builder
	for _, sec := range sectionOrder {
		if b.Len() > 0 {
			b.WriteString("\n\n")
		}
		if sec != "" {
			b.WriteString("## ")
			b.WriteString(sec)
			b.WriteString("\n\n")
		}
		b.WriteString(strings.Join(bySection[sec], "\n\n"))
	}
	return b.String()
}
