// Package collab implements Crowd4U's result-coordination layer (§2.3): once
// a team of workers has undertaken a task, a collaboration scheme drives how
// the members work together and how their contributions are combined into a
// single team result.
//
// Three schemes are provided, matching the paper:
//
//   - Sequential: members improve each other's contributions through
//     dynamically generated follow-up steps (draft → check → fix → ...).
//   - Simultaneous: members first exchange contact (SNS) ids, then contribute
//     in parallel to a shared artefact; one member submits the merged result,
//     which is recorded as the team's.
//   - Hybrid: an arbitrary interleaving of sequential and simultaneous stages
//     in one dataflow (e.g. surveillance facts collected and corrected
//     sequentially while testimonials arrive simultaneously).
package collab

import (
	"errors"
	"sort"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// StepKind identifies the kind of micro-step a coordinator asks one worker to
// perform.
type StepKind string

// Step kinds used by the built-in coordinators.
const (
	StepDraft       StepKind = "draft"       // produce an initial contribution
	StepImprove     StepKind = "improve"     // improve the previous contribution
	StepCheck       StepKind = "check"       // verify a contribution (yes/no + comment)
	StepFix         StepKind = "fix"         // repair a contribution that failed a check
	StepSNS         StepKind = "sns"         // supply a contact / collaboration-tool id
	StepContribute  StepKind = "contribute"  // add content to the shared artefact
	StepSubmit      StepKind = "submit"      // submit the merged result on behalf of the team
	StepFact        StepKind = "fact"        // report an observed fact (surveillance)
	StepCorrect     StepKind = "correct"     // correct a previously reported fact
	StepTestimonial StepKind = "testimonial" // provide an independent testimonial
)

// StepRequest is one micro-step issued to a single worker. In production the
// platform renders it as a form on the worker's page; in experiments the
// simulated crowd answers it programmatically.
type StepRequest struct {
	TaskID task.ID
	Worker worker.ID
	Kind   StepKind
	Prompt string
	// Input carries the data the step operates on (the sentence to translate,
	// the text to check, the member SNS ids, ...).
	Input map[string]string
	// Round is the coordination round the step belongs to (1-based).
	Round int
}

// StepResponse is a worker's answer to a step.
type StepResponse struct {
	Fields map[string]string
	// Quality is the worker's (estimated) quality for this contribution in
	// [0,1]; the simulator derives it from skill and team affinity, while the
	// real platform would derive it from checks and qualification tests.
	Quality float64
	// Latency is how long the worker took; used by the latency experiments.
	Latency time.Duration
}

// WorkerIO performs steps on behalf of workers. The production implementation
// routes steps through the web UI; internal/crowdsim provides a simulated
// crowd for experiments and tests.
type WorkerIO interface {
	Perform(req StepRequest) (StepResponse, error)
}

// StepRecord is one executed step kept in the coordination trace.
type StepRecord struct {
	Request  StepRequest
	Response StepResponse
}

// Outcome is the result of running a collaboration scheme on a task.
type Outcome struct {
	Result *task.Result
	// Trace lists every step performed, in order.
	Trace []StepRecord
	// Rounds is the number of coordination rounds used.
	Rounds int
	// TotalLatency is the simulated wall-clock time: sequential steps add up,
	// simultaneous steps count the maximum of the round.
	TotalLatency time.Duration
}

// Quality returns the recorded result quality (0 when no result).
func (o Outcome) Quality() float64 {
	if o.Result == nil {
		return 0
	}
	return o.Result.Quality
}

// Scheme coordinates a team working on one task.
type Scheme interface {
	// Name returns the scheme name ("sequential", "simultaneous", "hybrid").
	Name() task.CollaborationScheme
	// Run executes the collaboration and returns the team outcome.
	Run(t *task.Task, team []worker.ID, io WorkerIO) (Outcome, error)
}

// ErrEmptyTeam is returned when Run is called with no team members.
var ErrEmptyTeam = errors.New("collab: empty team")

// ForTask returns the scheme implementation matching the task's declared
// collaboration scheme. Individual tasks use a single-worker sequential
// pipeline with no check round.
func ForTask(t *task.Task) Scheme {
	switch t.Scheme {
	case task.Simultaneous:
		return &Simultaneous{}
	case task.Hybrid:
		return DefaultHybrid()
	case task.Individual:
		return &Sequential{MaxFixRounds: 0, SkipCheck: true}
	default:
		return &Sequential{MaxFixRounds: 1}
	}
}

// primaryInput extracts the text-like payload a task operates on, trying the
// conventional input keys produced by the decomposers.
func primaryInput(t *task.Task) string {
	for _, k := range []string{"sentence", "chunk", "section", "text", "document", "topic"} {
		if v, ok := t.Input[k]; ok && v != "" {
			return v
		}
	}
	return t.Description
}

// mergeContributions concatenates member contributions into one document,
// ordered by member id for determinism, skipping empties.
func mergeContributions(parts map[worker.ID]string) string {
	ids := make([]worker.ID, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		p := strings.TrimSpace(parts[id])
		if p == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("\n\n")
		}
		b.WriteString(p)
	}
	return b.String()
}

// averageQuality returns the mean of the given qualities (0 for none).
func averageQuality(qs []float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range qs {
		sum += q
	}
	return sum / float64(len(qs))
}

// boolField parses a yes/no or boolean form field.
func boolField(fields map[string]string, key string) bool {
	v := strings.ToLower(strings.TrimSpace(fields[key]))
	return v == "yes" || v == "true" || v == "1" || v == "ok"
}

func teamID(members []worker.ID) string {
	parts := make([]string, len(members))
	for i, m := range members {
		parts[i] = string(m)
	}
	sort.Strings(parts)
	return "team:" + strings.Join(parts, "+")
}
