package cylog

import (
	"strings"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

const translationProgram = `
// Video-subtitle translation project (Demo scenario 1).
rel sentence(sid: int, text: string).
rel worker(wid: string, lang: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate this subtitle line" scheme "sequential".
open rel checked(sid: int, ok: bool) key(sid) asks "Is the translation correct?".

rel eligible(wid: string, sid: int).
rel final(sid: int, text: string).

sentence(1, "Hello world").
sentence(2, "Good morning").

eligible(W, S) :- worker(W, "en"), sentence(S, _).
final(S, T) :- translated(S, T), checked(S, true).
`

func TestLexerBasics(t *testing.T) {
	toks, err := newLexer(`foo(X, "str", 3, -2, 1.5) :- bar(X), X >= 2, X != 3. # comment`).tokens()
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokIdent, tokLParen, tokVariable, tokComma, tokString, tokComma, tokNumber, tokComma,
		tokNumber, tokComma, tokNumber, tokRParen, tokImplies, tokIdent, tokLParen, tokVariable,
		tokRParen, tokComma, tokVariable, tokGe, tokNumber, tokComma, tokVariable, tokNe,
		tokNumber, tokDot, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerStringEscapesAndErrors(t *testing.T) {
	toks, err := newLexer(`x("a\nb\t\"c\\")`).tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].text != "a\nb\t\"c\\" {
		t.Errorf("string = %q", toks[2].text)
	}
	if _, err := newLexer(`x("unterminated`).tokens(); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := newLexer(`x("bad \q escape")`).tokens(); err == nil {
		t.Error("unknown escape should fail")
	}
	if _, err := newLexer("€").tokens(); err == nil {
		t.Error("strange character should fail")
	}
}

func TestLexerCommentsAndPositions(t *testing.T) {
	src := "// line comment\n# another\nfoo(1)."
	toks, err := newLexer(src).tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].pos.Line != 3 {
		t.Errorf("first token = %v at %v", toks[0].text, toks[0].pos)
	}
}

func TestParseTranslationProgram(t *testing.T) {
	p, err := Parse(translationProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Declarations) != 6 || len(p.Facts) != 2 || len(p.Rules) != 2 {
		t.Fatalf("decls=%d facts=%d rules=%d", len(p.Declarations), len(p.Facts), len(p.Rules))
	}
	tr := p.DeclarationFor("translated")
	if tr == nil || !tr.Open || tr.Prompt != "Translate this subtitle line" || tr.Scheme != "sequential" {
		t.Errorf("translated declaration = %+v", tr)
	}
	if len(tr.Key) != 1 || tr.Key[0] != "sid" {
		t.Errorf("translated key = %v", tr.Key)
	}
	if !p.IsOpen("checked") || p.IsOpen("sentence") || p.IsOpen("missing") {
		t.Error("IsOpen misbehaves")
	}
	if p.DeclarationFor("sentence").Schema().Arity() != 2 {
		t.Error("schema arity mismatch")
	}
	// Facts parse constants with types.
	f := p.Facts[0]
	if f.Relation != "sentence" || !f.Values[0].Equal(relstore.Int(1)) {
		t.Errorf("fact = %v", f)
	}
	// Round-trip: the printed program re-parses to the same shape.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, p.String())
	}
	if len(p2.Declarations) != len(p.Declarations) || len(p2.Rules) != len(p.Rules) || len(p2.Facts) != len(p.Facts) {
		t.Error("round-trip changed program shape")
	}
}

func TestParseRuleDetails(t *testing.T) {
	p := MustParse(`
rel a(x: int).
rel b(x: int, y: float).
rel c(x: int).
c(X) :- a(X), b(X, Y), Y >= 0.5, !a(X), X != 3.
`)
	r := p.Rules[0]
	if r.Head.Predicate != "c" || len(r.Body) != 5 {
		t.Fatalf("rule = %v", r)
	}
	if a, ok := r.Body[3].(*Atom); !ok || !a.Negated {
		t.Error("4th literal should be a negated atom")
	}
	if c, ok := r.Body[2].(*Comparison); !ok || c.Op != OpGe {
		t.Error("3rd literal should be >= comparison")
	}
	if c, ok := r.Body[4].(*Comparison); !ok || c.Op != OpNe {
		t.Error("5th literal should be != comparison")
	}
	if !strings.Contains(r.String(), ":-") {
		t.Error("rule should render with :-")
	}
}

func TestParseSymbolConstantsAndBooleans(t *testing.T) {
	p := MustParse(`
rel lang(code: string).
rel flag(ok: bool).
lang(en).
lang("ja").
flag(true).
flag(false).
`)
	if len(p.Facts) != 4 {
		t.Fatalf("facts = %d", len(p.Facts))
	}
	if !p.Facts[0].Values[0].Equal(relstore.String("en")) {
		t.Errorf("symbol constant = %v", p.Facts[0].Values[0])
	}
	if !p.Facts[2].Values[0].Equal(relstore.Bool(true)) {
		t.Errorf("bool constant = %v", p.Facts[2].Values[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing dot", `rel a(x: int)`},
		{"bad type", `rel a(x: blob).`},
		{"duplicate column", `rel a(x: int, x: int).`},
		{"duplicate relation", "rel a(x: int).\nrel a(y: int)."},
		{"key on closed relation", `rel a(x: int) key(x).`},
		{"asks on closed relation", `rel a(x: int) asks "q".`},
		{"key of unknown column", `open rel a(x: int) key(y).`},
		{"bad scheme", `open rel a(x: int) scheme "teleportation".`},
		{"fact with variable", `rel a(x: int). a(X).`},
		{"rule missing body", `rel a(x: int). a(X) :- .`},
		{"rule missing dot", `rel a(x: int). rel b(x: int). a(X) :- b(X)`},
		{"garbage", `42.`},
		{"unclosed paren", `rel a(x: int). a(1`},
		{"bad operator", `rel a(x: int). rel b(x: int). a(X) :- b(X), X ~ 3.`},
		{"unexpected clause", `open rel a(x: int) wat "x".`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error for %q", c.name, c.src)
		}
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("rel a(")
}

func TestParseErrorMessageHasPosition(t *testing.T) {
	_, err := Parse("rel a(x: int).\nbroken(")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should mention line 2: %v", err)
	}
}

func TestDeclarationHelpers(t *testing.T) {
	p := MustParse(`open rel t(sid: int, text: string) key(sid) asks "q".`)
	d := p.Declarations[0]
	if d.ColumnIndex("text") != 1 || d.ColumnIndex("zzz") != -1 {
		t.Error("ColumnIndex misbehaves")
	}
	s := d.String()
	if !strings.Contains(s, "open rel t") || !strings.Contains(s, `asks "q"`) || !strings.Contains(s, "key(sid)") {
		t.Errorf("String() = %q", s)
	}
	if Position(d.Pos).String() != "1:1" {
		t.Errorf("Pos = %v", d.Pos)
	}
}

func TestAtomAndComparisonVariables(t *testing.T) {
	p := MustParse(`
rel a(x: int, y: int).
rel b(x: int).
b(X) :- a(X, Y), X < Y, a(X, 3).
`)
	r := p.Rules[0]
	if vars := r.Body[0].(*Atom).Variables(); len(vars) != 2 {
		t.Errorf("atom vars = %v", vars)
	}
	if vars := r.Body[1].(*Comparison).Variables(); len(vars) != 2 {
		t.Errorf("comparison vars = %v", vars)
	}
	if vars := r.Body[2].(*Atom).Variables(); len(vars) != 1 {
		t.Errorf("constant atom vars = %v", vars)
	}
}
