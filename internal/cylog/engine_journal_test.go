package cylog

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Ingestion-journal coverage: recording across every ingestion path, drain
// semantics, and replay equivalence — a fresh engine fed the journal reaches
// the same fixpoint and pending set as the engine that lived through the
// ingestion.

func TestJournalOffByDefault(t *testing.T) {
	e, reqs := newWorkflowEngineWithRequests(t)
	if e.JournalingEnabled() {
		t.Fatal("journaling should be off by default")
	}
	if err := e.AddFact("sentence", 3, "Hi"); err != nil {
		t.Fatal(err)
	}
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "T"}); err != nil {
		t.Fatal(err)
	}
	if ops := e.DrainJournal(); len(ops) != 0 {
		t.Fatalf("journal recorded %d ops with journaling off", len(ops))
	}
}

func TestJournalRecordsEveryIngestionPath(t *testing.T) {
	e, reqs := newWorkflowEngineWithRequests(t)
	e.SetJournaling(true)
	if !e.JournalingEnabled() {
		t.Fatal("SetJournaling(true) did not stick")
	}

	if err := e.AddFact("sentence", 3, "Hi"); err != nil {
		t.Fatal(err)
	}
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "T1"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AnswerFact("checked", 1, true); err != nil {
		t.Fatal(err)
	}
	b := e.NewAnswerBatch()
	if err := b.Answer(reqs[1].ID, map[string]any{"text": "T2"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AnswerFact("checked", 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(b); err != nil {
		t.Fatal(err)
	}

	ops := e.DrainJournal()
	want := []struct {
		kind      OpKind
		relation  string
		requestID string
	}{
		{OpAddFact, "sentence", ""},
		{OpAnswer, "translated", reqs[0].ID},
		{OpAnswerFact, "checked", ""},
		{OpAnswer, "translated", reqs[1].ID},
		{OpAnswerFact, "checked", ""},
	}
	if len(ops) != len(want) {
		t.Fatalf("journal has %d ops, want %d: %v", len(ops), len(want), ops)
	}
	for i, w := range want {
		if ops[i].Kind != w.kind || ops[i].Relation != w.relation || ops[i].RequestID != w.requestID {
			t.Errorf("op %d = {%s %s %q}, want {%s %s %q}",
				i, ops[i].Kind, ops[i].Relation, ops[i].RequestID, w.kind, w.relation, w.requestID)
		}
	}
	if again := e.DrainJournal(); len(again) != 0 {
		t.Fatalf("second drain returned %d ops, want 0", len(again))
	}
}

func TestJournalSkipsDuplicatesAndDisable(t *testing.T) {
	e, _ := newWorkflowEngineWithRequests(t)
	e.SetJournaling(true)
	// sentence(1, "Hello") is a program fact: re-adding inserts nothing and
	// must not be journaled.
	if err := e.AddFact("sentence", 1, "Hello"); err != nil {
		t.Fatal(err)
	}
	if ops := e.DrainJournal(); len(ops) != 0 {
		t.Fatalf("duplicate insert journaled: %v", ops)
	}
	if err := e.AddFact("sentence", 4, "New"); err != nil {
		t.Fatal(err)
	}
	e.SetJournaling(false)
	if ops := e.DrainJournal(); len(ops) != 0 {
		t.Fatalf("SetJournaling(false) should clear pending ops, got %v", ops)
	}
}

func TestJournalReplayEquivalence(t *testing.T) {
	src := `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve".
rel approved(n: int).
rel rejected(n: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
approved(N) :- reach(_, N), approve(N, true).
rejected(N) :- reach(_, N), !approved(N).
`
	live, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	live.SetJournaling(true)
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}} {
		if err := live.AddFact("edge", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	reqs, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Answer some requests (alternating), leave the rest pending.
	b := live.NewAnswerBatch()
	for i, r := range reqs {
		if i%2 == 1 {
			continue
		}
		n, _ := r.Key()["n"].AsInt()
		if err := b.Answer(r.ID, map[string]any{"ok": n%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	liveReqs, err := live.RunIncremental(b)
	if err != nil {
		t.Fatal(err)
	}
	ops := live.DrainJournal()
	if len(ops) == 0 {
		t.Fatal("no ops journaled")
	}

	// A fresh engine fed the journal must land on the same fixpoint and the
	// same pending request ids.
	recovered, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := recovered.ReplayOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(ops) {
		t.Fatalf("replay applied %d of %d ops", applied, len(ops))
	}
	recReqs, err := recovered.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dbFingerprint(recovered, recReqs), dbFingerprint(live, liveReqs); got != want {
		t.Fatalf("replayed fingerprint differs:\n got %s\nwant %s", got, want)
	}

	// Replaying the same ops again is a no-op: nothing applied, fixpoint and
	// pending set unchanged.
	applied, err = recovered.ReplayOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("duplicate replay applied %d ops, want 0", applied)
	}
	recReqs, err = recovered.RunIncremental(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dbFingerprint(recovered, recReqs), dbFingerprint(live, liveReqs); got != want {
		t.Fatalf("after duplicate replay fingerprint differs:\n got %s\nwant %s", got, want)
	}
}

func TestJournalReplayClosesPendingRequests(t *testing.T) {
	// Replaying an answer onto a live engine that regenerated the request
	// must close it, like the original ingestion did.
	e, reqs := newWorkflowEngineWithRequests(t)
	decl := e.Analysis().Program.DeclarationFor("translated")
	tuple, err := decl.Schema().Coerce(relstore.NewTuple(1, "T1"))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := e.ReplayOps([]FactOp{{Kind: OpAnswer, RequestID: reqs[0].ID, Relation: "translated", Tuple: tuple}})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	for _, r := range e.PendingRequests() {
		if r.ID == reqs[0].ID {
			t.Fatal("replayed answer left its request pending")
		}
	}
}

func TestJournalReplayErrors(t *testing.T) {
	e, _ := newWorkflowEngineWithRequests(t)
	good, err := e.Analysis().Program.DeclarationFor("translated").Schema().Coerce(relstore.NewTuple(9, "ok"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		op   FactOp
		want string
	}{
		{"unknown relation", FactOp{Kind: OpAddFact, Relation: "missing", Tuple: relstore.NewTuple(1)}, "not declared"},
		{"add to IDB", FactOp{Kind: OpAddFact, Relation: "needTranslation", Tuple: relstore.NewTuple(1)}, "derived by rules"},
		{"answer to non-open", FactOp{Kind: OpAnswer, Relation: "sentence", Tuple: relstore.NewTuple(9, "x")}, "not an open relation"},
		{"unknown kind", FactOp{Kind: OpKind(42), Relation: "sentence", Tuple: relstore.NewTuple(9, "x")}, "unknown kind"},
		{"schema mismatch", FactOp{Kind: OpAnswerFact, Relation: "translated", Tuple: relstore.NewTuple("not-an-int")}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Prefix with a valid op to check the partial-apply count.
			applied, err := e.ReplayOps([]FactOp{{Kind: OpAnswerFact, Relation: "translated", Tuple: good}, tc.op})
			if err == nil {
				t.Fatal("want error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if applied > 1 {
				t.Fatalf("applied = %d after failing op", applied)
			}
		})
	}
	if errors.Is(fmt.Errorf("wrap: %w", ErrUnknownRequest), ErrRequestClosed) {
		t.Fatal("sanity: ErrUnknownRequest must not match ErrRequestClosed")
	}
}
