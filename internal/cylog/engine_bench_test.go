package cylog

import (
	"fmt"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Benchmarks for the evaluation pipeline. Configurations compared:
//
//   - naive:             Naive mode, scan joins (the slowest reference)
//   - seminaive-scan:    SemiNaive mode, scan joins (the seed pipeline)
//   - seminaive-indexed: SemiNaive mode, planned + index-probing joins
//   - *-par4:            the indexed pipeline on a 4-worker pool
//   - *-mapbind:         the indexed pipeline with map[string]Value bindings
//                        instead of columnar rows (the allocation baseline
//                        the binding-row layout is measured against)
//
// All non-par configurations pin SetParallelism(1) so their numbers stay
// comparable across hosts regardless of GOMAXPROCS. The par4 configurations
// need >= 2 physical cores to show wall-clock speedup; on a single-core host
// they measure pool overhead (expect parity or slightly worse). The naive
// configuration re-derives the full closure every iteration, which is
// quadratically worse; it only runs at the small size to keep the bench
// smoke affordable. BENCH_cylog.json records baseline numbers.

const tcProgram = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`

// tcEngine loads `edges` edge facts forming disjoint chains of length 10, so
// the closure stays linear in the input (10k edges -> 55k reach facts) and
// the benchmark measures join work, not result materialisation.
func tcEngine(b *testing.B, edges int, mode EvalMode, indexing, columnar bool, workers int) *Engine {
	b.Helper()
	e, err := NewEngine(MustParse(tcProgram))
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(mode)
	e.SetIndexing(indexing)
	e.SetColumnarBindings(columnar)
	e.SetParallelism(workers)
	const chain = 10
	for i := 0; i < edges; i++ {
		base := (i / chain) * (chain + 1)
		e.AddFact("edge", base+i%chain, base+i%chain+1)
	}
	return e
}

func benchTC(b *testing.B, edges int, mode EvalMode, indexing, columnar bool, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := tcEngine(b, edges, mode, indexing, columnar, workers)
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := len(e.Facts("reach")); got != edges/10*55 {
			b.Fatalf("reach = %d facts, want %d", got, edges/10*55)
		}
		if indexing && e.Stats().IndexHits == 0 {
			b.Fatal("indexed run recorded no index hits")
		}
		if workers > 1 && e.Stats().ParallelTasks == 0 {
			b.Fatal("parallel run dispatched no tasks")
		}
		b.StartTimer()
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	b.Run("naive-1k", func(b *testing.B) { benchTC(b, 1000, Naive, false, true, 1) })
	b.Run("seminaive-scan-1k", func(b *testing.B) { benchTC(b, 1000, SemiNaive, false, true, 1) })
	b.Run("seminaive-indexed-1k", func(b *testing.B) { benchTC(b, 1000, SemiNaive, true, true, 1) })
	b.Run("seminaive-scan-10k", func(b *testing.B) { benchTC(b, 10000, SemiNaive, false, true, 1) })
	b.Run("seminaive-indexed-10k", func(b *testing.B) { benchTC(b, 10000, SemiNaive, true, true, 1) })
	b.Run("seminaive-indexed-10k-mapbind", func(b *testing.B) { benchTC(b, 10000, SemiNaive, true, false, 1) })
	b.Run("seminaive-indexed-10k-par4", func(b *testing.B) { benchTC(b, 10000, SemiNaive, true, true, 4) })
}

// assignProgram is the Crowd4U task-assignment workload: route every task to
// the workers holding its required skill who are not already busy.
const assignProgram = `
rel worker(w: int, skill: string).
rel task(t: int, skill: string).
rel busy(w: int).
rel assignable(w: int, t: int).
assignable(W, T) :- task(T, S), worker(W, S), !busy(W).
`

// assignEngine distributes `facts` total facts as 40% workers, 50% tasks and
// 10% busy markers. The skill vocabulary scales with the input (facts/20) so
// the per-skill fan-out — and with it the output size — stays constant and
// the benchmark measures join work rather than result materialisation.
func assignEngine(b *testing.B, facts int, mode EvalMode, indexing, columnar bool, workers int) *Engine {
	b.Helper()
	e, err := NewEngine(MustParse(assignProgram))
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(mode)
	e.SetIndexing(indexing)
	e.SetColumnarBindings(columnar)
	e.SetParallelism(workers)
	workerFacts := facts * 4 / 10
	tasks := facts * 5 / 10
	busy := facts - workerFacts - tasks
	skills := facts / 20
	for i := 0; i < workerFacts; i++ {
		e.AddFact("worker", i, fmt.Sprintf("skill%d", i%skills))
	}
	for i := 0; i < tasks; i++ {
		e.AddFact("task", i, fmt.Sprintf("skill%d", i%skills))
	}
	for i := 0; i < busy; i++ {
		e.AddFact("busy", i*3)
	}
	return e
}

func benchAssign(b *testing.B, facts int, mode EvalMode, indexing, columnar bool, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := assignEngine(b, facts, mode, indexing, columnar, workers)
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if len(e.Facts("assignable")) == 0 {
			b.Fatal("no assignments derived")
		}
		b.StartTimer()
	}
}

func BenchmarkTaskAssignment(b *testing.B) {
	b.Run("naive-1k", func(b *testing.B) { benchAssign(b, 1000, Naive, false, true, 1) })
	b.Run("scan-1k", func(b *testing.B) { benchAssign(b, 1000, SemiNaive, false, true, 1) })
	b.Run("indexed-1k", func(b *testing.B) { benchAssign(b, 1000, SemiNaive, true, true, 1) })
	b.Run("scan-10k", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, false, true, 1) })
	b.Run("indexed-10k", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, true, true, 1) })
	b.Run("indexed-10k-mapbind", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, true, false, 1) })
	b.Run("indexed-10k-par4", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, true, true, 4) })
}

// guardedReachProgram places the recursive atom behind a negation barrier, so
// the planner cannot lead with the delta: every iteration reaches the delta
// frontier with ~|edge| bindings and a bound join column. This is the
// workload the hashed delta frontier exists for — without it each binding
// linearly scans the delta.
const guardedReachProgram = `
rel edge(a: int, b: int).
rel blocked(a: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), !blocked(Y), reach(Y, Z).
`

func benchGuardedReach(b *testing.B, edges int, hashing bool) {
	b.Helper()
	b.ReportAllocs()
	const chain = 10
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(MustParse(guardedReachProgram))
		if err != nil {
			b.Fatal(err)
		}
		e.SetParallelism(1)
		e.SetDeltaHashing(hashing)
		for j := 0; j < edges; j++ {
			base := (j / chain) * (chain + 1)
			e.AddFact("edge", base+j%chain, base+j%chain+1)
		}
		// Block one interior node per 100 chains to keep the negation live
		// without changing the output size materially.
		for j := 0; j < edges/chain; j += 100 {
			e.AddFact("blocked", j*(chain+1)+chain/2)
		}
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if hashing && e.Stats().DeltaHashProbes == 0 {
			b.Fatal("hashed run recorded no delta-frontier probes")
		}
		if !hashing && e.Stats().DeltaHashProbes != 0 {
			b.Fatal("linear run used the delta-frontier hash")
		}
		b.StartTimer()
	}
}

func BenchmarkGuardedReach(b *testing.B) {
	b.Run("delta-linear-1k", func(b *testing.B) { benchGuardedReach(b, 1000, false) })
	b.Run("delta-hashed-1k", func(b *testing.B) { benchGuardedReach(b, 1000, true) })
	b.Run("delta-hashed-10k", func(b *testing.B) { benchGuardedReach(b, 10000, true) })
}

// benchOracleLoop measures the round-based crowd loop on the crowdTCProgram
// workload (defined with its loaders in engine_incremental_test.go): a
// 10-chain transitive closure whose chain endpoints each need a human
// approval, answered `wave` requests per round by the oracle. With
// incremental answering on, each answered round seeds its deltas from the
// round's answer batch and skips the untouched negation stratum; with it
// off, every round re-runs the full fixpoint — the cost this optimisation
// removes.
func benchOracleLoop(b *testing.B, edges, wave int, incremental bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(MustParse(crowdTCProgram))
		if err != nil {
			b.Fatal(err)
		}
		// The historical insert-only pipeline: negation staleness tolerated,
		// the rejected stratum skipped per answered round. The retraction-on
		// cost of the same loop is measured by BenchmarkOracleLoopRetraction.
		e.SetRetraction(false)
		e.SetParallelism(1)
		e.SetIncrementalAnswering(incremental)
		loadCrowdTC(e, edges)
		b.StartTimer()
		total, err := e.RunToFixpointWithOracle(waveOracle(wave), 1000)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		if incremental && total.SkippedStrata == 0 {
			b.Fatal("incremental loop skipped no strata")
		}
		if !incremental && total.SkippedStrata != 0 {
			b.Fatal("full loop reported skipped strata")
		}
		b.StartTimer()
	}
}

// BenchmarkOracleLoop is the batched-answering benchmark: 10k-scale crowd
// rounds (1000 endpoints approved 100 per round), incremental vs full
// re-run. BENCH_cylog.json records the baselines.
func BenchmarkOracleLoop(b *testing.B) {
	b.Run("full-1k", func(b *testing.B) { benchOracleLoop(b, 1000, 10, false) })
	b.Run("incremental-1k", func(b *testing.B) { benchOracleLoop(b, 1000, 10, true) })
	b.Run("full-10k", func(b *testing.B) { benchOracleLoop(b, 10000, 100, false) })
	b.Run("incremental-10k", func(b *testing.B) { benchOracleLoop(b, 10000, 100, true) })
}

// benchOracleLoopRetraction is the oracle loop with deletion propagation
// enabled (the default engine configuration): every answered round retracts
// the freshly approved endpoints' rejected facts — the counting-based
// recompute of the negation stratum — on top of the incremental seeding the
// plain loop measures. The verification asserts the retraction actually
// engages: rejected must end empty (with insert-only semantics every
// endpoint would stay rejected forever) and RetractedTuples must equal the
// approvals.
func benchOracleLoopRetraction(b *testing.B, edges, wave int, incremental bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(MustParse(crowdTCProgram))
		if err != nil {
			b.Fatal(err)
		}
		e.SetParallelism(1)
		e.SetIncrementalAnswering(incremental)
		loadCrowdTC(e, edges)
		b.StartTimer()
		total, err := e.RunToFixpointWithOracle(waveOracle(wave), 1000)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		if got := len(e.Facts("rejected")); got != 0 {
			b.Fatalf("rejected = %d facts, want 0 after retraction", got)
		}
		if total.RetractedTuples != edges/10 {
			b.Fatalf("RetractedTuples = %d, want %d", total.RetractedTuples, edges/10)
		}
		b.StartTimer()
	}
}

// BenchmarkOracleLoopRetraction measures what retraction-correct negation
// costs on the crowd loop, in both the incremental and the full-reference
// configuration. Compare against the same sizes of BenchmarkOracleLoop (the
// insert-only pipeline) for the price of correctness.
func BenchmarkOracleLoopRetraction(b *testing.B) {
	b.Run("full-1k", func(b *testing.B) { benchOracleLoopRetraction(b, 1000, 10, false) })
	b.Run("incremental-1k", func(b *testing.B) { benchOracleLoopRetraction(b, 1000, 10, true) })
	b.Run("incremental-10k", func(b *testing.B) { benchOracleLoopRetraction(b, 10000, 100, true) })
}

// benchOracleLoopPlanCache is the oracle loop with cost-aware planning and
// the compiled plan cache toggled: the same incremental, insert-only crowd
// rounds as BenchmarkOracleLoop/incremental, planned either by the cached
// cost-aware planner (cost=true, the default) or by the cardinality-only
// planner re-run on every evaluation pass (cost=false, the pre-cost engine
// and the differential reference). The cost-on verification asserts the
// cache actually engages in steady state — PlanCacheHits > 0 — which holds
// because the drift threshold leaves stats epochs alone once relations stop
// growing quickly, so later rounds replan nothing.
func benchOracleLoopPlanCache(b *testing.B, edges, wave int, cost bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(MustParse(crowdTCProgram))
		if err != nil {
			b.Fatal(err)
		}
		e.SetRetraction(false)
		e.SetParallelism(1)
		e.SetIncrementalAnswering(true)
		e.SetCostPlanning(cost)
		loadCrowdTC(e, edges)
		b.StartTimer()
		total, err := e.RunToFixpointWithOracle(waveOracle(wave), 1000)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		if cost && total.PlanCacheHits == 0 {
			b.Fatalf("steady-state loop never hit the plan cache: %+v", total)
		}
		if !cost && (total.PlanCacheHits != 0 || total.PlanCacheMisses != 0) {
			b.Fatalf("cost-off loop touched the plan cache: %+v", total)
		}
		b.StartTimer()
	}
}

// BenchmarkOracleLoopPlanCache measures what plan caching and cost-aware
// planning buy on the crowd loop at 1k and 10k scale. Compare costoff (plan
// on every pass) against coston (cached plans, selectivity tie-breaks,
// pre-sized joins); BENCH_cylog.json records the baselines.
func BenchmarkOracleLoopPlanCache(b *testing.B) {
	b.Run("costoff-1k", func(b *testing.B) { benchOracleLoopPlanCache(b, 1000, 10, false) })
	b.Run("coston-1k", func(b *testing.B) { benchOracleLoopPlanCache(b, 1000, 10, true) })
	b.Run("costoff-10k", func(b *testing.B) { benchOracleLoopPlanCache(b, 10000, 100, false) })
	b.Run("coston-10k", func(b *testing.B) { benchOracleLoopPlanCache(b, 10000, 100, true) })
}

// benchOracleLoopSharded is the oracle loop under hash-partitioned
// evaluation: the same incremental, insert-only crowd rounds as
// BenchmarkOracleLoop/incremental, fanned across `shards` engine shards with
// frontier exchange at round barriers. shards=1 stays on the unsharded path
// (the differential reference), so the shards1 entries measure the dispatch
// overhead of the toggle itself — they should track the plain incremental
// numbers — while shards2/4 measure partitioned evaluation, which needs a
// multi-core host to turn into wall-clock speedup.
func benchOracleLoopSharded(b *testing.B, edges, wave, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := NewEngine(MustParse(crowdTCProgram))
		if err != nil {
			b.Fatal(err)
		}
		e.SetRetraction(false)
		e.SetParallelism(1)
		e.SetIncrementalAnswering(true)
		e.SetShards(shards)
		loadCrowdTC(e, edges)
		b.StartTimer()
		total, err := e.RunToFixpointWithOracle(waveOracle(wave), 1000)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		routed := total.ShardLocalTuples + total.ShardExchanges
		if shards > 1 && routed == 0 {
			b.Fatal("sharded loop routed no frontier tuples")
		}
		if shards == 1 && routed != 0 {
			b.Fatalf("unsharded loop reported shard traffic: %+v", total)
		}
		b.StartTimer()
	}
}

// BenchmarkOracleLoopSharded measures hash-partitioned fixpoints on the crowd
// loop at 1k and 10k scale, shards 1/2/4. BENCH_cylog.json records the
// baselines; the ns/op comparison only gates on hosts with enough cores (see
// the benchcheck block's wallclock_min_cores).
func BenchmarkOracleLoopSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards%d-1k", shards), func(b *testing.B) { benchOracleLoopSharded(b, 1000, 10, shards) })
		b.Run(fmt.Sprintf("shards%d-10k", shards), func(b *testing.B) { benchOracleLoopSharded(b, 10000, 100, shards) })
	}
}

// benchOracleLoopDisk is the oracle loop on a storage backend: the same
// incremental, insert-only crowd rounds as BenchmarkOracleLoop/incremental,
// but the engine's database is opened through the relstore Backend seam. The
// "memory" variant is the seam-overhead reference (it must track the plain
// incremental numbers — the hot join path never crosses the interface). The
// "disk" variant opens a budget small enough that the base relations are
// evicted cold before the loop starts and a Maintain pass runs after every
// answered round, so the measurement includes segment writes, fault-ins and
// residency rebalancing — the steady-state cost of running the crowd loop on
// state larger than memory.
func benchOracleLoopDisk(b *testing.B, edges, wave int, backend string) {
	b.Helper()
	b.ReportAllocs()
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := relstore.OpenBackend(backend, relstore.DiskOptions{Dir: dir, BudgetBytes: 4 << 10})
		if err != nil {
			b.Fatal(err)
		}
		e, err := NewEngineWith(MustParse(crowdTCProgram), relstore.NewDatabaseWith(db))
		if err != nil {
			b.Fatal(err)
		}
		e.SetRetraction(false)
		e.SetParallelism(1)
		e.SetIncrementalAnswering(true)
		loadCrowdTC(e, edges)
		maintain := func() {
			if err := e.Database().Backend().Maintain(); err != nil {
				b.Fatal(err)
			}
		}
		maintain() // page the cold base relations out before the loop starts
		b.StartTimer()
		if _, err := e.RunToFixpointWithOracle(waveOracle(wave), 1000); err != nil {
			b.Fatal(err)
		}
		maintain()
		b.StopTimer()
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		s := e.Database().Backend().Stats()
		if backend == "disk" {
			if s.Evictions == 0 || s.Faults == 0 {
				b.Fatalf("disk loop paged nothing: %+v", s)
			}
			if s.ResidentBytes > s.BudgetBytes {
				b.Fatalf("resident %d bytes exceeds budget %d after Maintain", s.ResidentBytes, s.BudgetBytes)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkOracleLoopDiskBackend prices the storage seam on the crowd loop:
// backend-memory is the interface-overhead reference (gated tight — the seam
// must be free on the hot path), backend-disk is the paging cost under a
// 4 KiB budget with cold-start eviction. BENCH_cylog.json records the
// baselines.
func BenchmarkOracleLoopDiskBackend(b *testing.B) {
	b.Run("backend-memory-1k", func(b *testing.B) { benchOracleLoopDisk(b, 1000, 10, "memory") })
	b.Run("backend-disk-1k", func(b *testing.B) { benchOracleLoopDisk(b, 1000, 10, "disk") })
	b.Run("backend-disk-10k", func(b *testing.B) { benchOracleLoopDisk(b, 10000, 100, "disk") })
}
