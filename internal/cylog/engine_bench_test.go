package cylog

import (
	"fmt"
	"testing"
)

// Benchmarks for the evaluation pipeline. Three configurations are compared:
//
//   - naive:             Naive mode, scan joins (the slowest reference)
//   - seminaive-scan:    SemiNaive mode, scan joins (the seed pipeline)
//   - seminaive-indexed: SemiNaive mode, planned + index-probing joins
//
// The naive configuration re-derives the full closure every iteration, which
// is quadratically worse; it only runs at the small size to keep the bench
// smoke affordable. BENCH_cylog.json records baseline numbers.

const tcProgram = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`

// tcEngine loads `edges` edge facts forming disjoint chains of length 10, so
// the closure stays linear in the input (10k edges -> 55k reach facts) and
// the benchmark measures join work, not result materialisation.
func tcEngine(b *testing.B, edges int, mode EvalMode, indexing bool) *Engine {
	b.Helper()
	e, err := NewEngine(MustParse(tcProgram))
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(mode)
	e.SetIndexing(indexing)
	const chain = 10
	for i := 0; i < edges; i++ {
		base := (i / chain) * (chain + 1)
		e.AddFact("edge", base+i%chain, base+i%chain+1)
	}
	return e
}

func benchTC(b *testing.B, edges int, mode EvalMode, indexing bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := tcEngine(b, edges, mode, indexing)
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := len(e.Facts("reach")); got != edges/10*55 {
			b.Fatalf("reach = %d facts, want %d", got, edges/10*55)
		}
		if indexing && e.Stats().IndexHits == 0 {
			b.Fatal("indexed run recorded no index hits")
		}
		b.StartTimer()
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	b.Run("naive-1k", func(b *testing.B) { benchTC(b, 1000, Naive, false) })
	b.Run("seminaive-scan-1k", func(b *testing.B) { benchTC(b, 1000, SemiNaive, false) })
	b.Run("seminaive-indexed-1k", func(b *testing.B) { benchTC(b, 1000, SemiNaive, true) })
	b.Run("seminaive-scan-10k", func(b *testing.B) { benchTC(b, 10000, SemiNaive, false) })
	b.Run("seminaive-indexed-10k", func(b *testing.B) { benchTC(b, 10000, SemiNaive, true) })
}

// assignProgram is the Crowd4U task-assignment workload: route every task to
// the workers holding its required skill who are not already busy.
const assignProgram = `
rel worker(w: int, skill: string).
rel task(t: int, skill: string).
rel busy(w: int).
rel assignable(w: int, t: int).
assignable(W, T) :- task(T, S), worker(W, S), !busy(W).
`

// assignEngine distributes `facts` total facts as 40% workers, 50% tasks and
// 10% busy markers. The skill vocabulary scales with the input (facts/20) so
// the per-skill fan-out — and with it the output size — stays constant and
// the benchmark measures join work rather than result materialisation.
func assignEngine(b *testing.B, facts int, mode EvalMode, indexing bool) *Engine {
	b.Helper()
	e, err := NewEngine(MustParse(assignProgram))
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(mode)
	e.SetIndexing(indexing)
	workers := facts * 4 / 10
	tasks := facts * 5 / 10
	busy := facts - workers - tasks
	skills := facts / 20
	for i := 0; i < workers; i++ {
		e.AddFact("worker", i, fmt.Sprintf("skill%d", i%skills))
	}
	for i := 0; i < tasks; i++ {
		e.AddFact("task", i, fmt.Sprintf("skill%d", i%skills))
	}
	for i := 0; i < busy; i++ {
		e.AddFact("busy", i*3)
	}
	return e
}

func benchAssign(b *testing.B, facts int, mode EvalMode, indexing bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := assignEngine(b, facts, mode, indexing)
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if len(e.Facts("assignable")) == 0 {
			b.Fatal("no assignments derived")
		}
		b.StartTimer()
	}
}

func BenchmarkTaskAssignment(b *testing.B) {
	b.Run("naive-1k", func(b *testing.B) { benchAssign(b, 1000, Naive, false) })
	b.Run("scan-1k", func(b *testing.B) { benchAssign(b, 1000, SemiNaive, false) })
	b.Run("indexed-1k", func(b *testing.B) { benchAssign(b, 1000, SemiNaive, true) })
	b.Run("scan-10k", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, false) })
	b.Run("indexed-10k", func(b *testing.B) { benchAssign(b, 10000, SemiNaive, true) })
}
