package cylog

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// incrementalProgram is the multi-stratum differential workload for the
// batched, delta-seeded answer pipeline. Stratum 0 derives reach/source/
// endpoint/labeled, stratum 1 {unlabeled, lonely, deadend} reads only
// node/endpoint positively (labeled, reach and source appear there negated),
// and stratum 2 verifies labels against lonely. Answering label requests
// therefore touches strata 0 and 2 but leaves stratum 1 skippable — the exact
// shape RunIncremental's reachability skipping exists for.
const incrementalProgram = `
rel node(n: int).
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel source(n: int).
rel endpoint(n: int).
open rel label(n: int, tag: string) key(n) asks "Label this node".
rel labeled(n: int, tag: string).
rel unlabeled(n: int).
rel lonely(n: int).
rel deadend(n: int).
rel verified(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
source(X) :- edge(X, _).
endpoint(N) :- node(N), !edge(N, _).
labeled(N, T) :- node(N), label(N, T).
unlabeled(N) :- node(N), !labeled(N, _).
lonely(N) :- endpoint(N), !reach(_, N).
deadend(N) :- endpoint(N), !source(N).
verified(N) :- labeled(N, _), !lonely(N).
`

// dbFingerprint renders every relation's sorted facts plus the given pending
// requests into one string, so two evaluation paths can be compared
// byte-for-byte without re-running the engine.
func dbFingerprint(e *Engine, reqs []OpenRequest) string {
	var sb strings.Builder
	for _, name := range e.Database().Names() {
		sb.WriteString(name)
		sb.WriteString(":")
		for _, tup := range e.Facts(name) {
			sb.WriteString(tup.String())
		}
		sb.WriteString("\n")
	}
	for _, r := range reqs {
		sb.WriteString(r.ID + ";" + r.String() + "\n")
	}
	return sb.String()
}

// incrementalConfig is one cell of the incremental differential matrix.
type incrementalConfig struct {
	name        string
	columnar    bool
	parallelism int
	indexing    bool
	incremental bool
}

func incrementalMatrix() []incrementalConfig {
	var out []incrementalConfig
	for _, columnar := range []bool{true, false} {
		for _, par := range []int{1, 4} {
			for _, indexing := range []bool{true, false} {
				for _, inc := range []bool{true, false} {
					out = append(out, incrementalConfig{
						name: fmt.Sprintf("columnar=%v/par%d/indexed=%v/incremental=%v",
							columnar, par, indexing, inc),
						columnar:    columnar,
						parallelism: par,
						indexing:    indexing,
						incremental: inc,
					})
				}
			}
		}
	}
	return out
}

// driveIncrementalRounds runs the crowd loop for a fixed number of rounds —
// full Run first, then batch + RunIncremental — answering a deterministic,
// picks-driven subset of the pending label requests each round. It returns
// the per-round fingerprints and per-round DerivedFacts.
func driveIncrementalRounds(t *testing.T, cfg incrementalConfig, edges, nodes, picks []uint8, rounds int) ([]string, []int) {
	t.Helper()
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	// This matrix pins the historical insert-only pipeline (PR 4): negation
	// staleness is part of the reference behaviour here. The retraction-on
	// matrix lives in engine_retraction_test.go.
	e.SetRetraction(false)
	e.SetColumnarBindings(cfg.columnar)
	e.SetParallelism(cfg.parallelism)
	e.SetIndexing(cfg.indexing)
	e.SetIncrementalAnswering(cfg.incremental)
	for i := 0; i+1 < len(edges); i += 2 {
		if err := e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := e.AddFact("node", int(n%8)); err != nil {
			t.Fatal(err)
		}
	}
	var prints []string
	var derived []int
	var batch *AnswerBatch
	for round := 0; round < rounds; round++ {
		var reqs []OpenRequest
		var err error
		if batch == nil {
			reqs, err = e.Run()
		} else {
			reqs, err = e.RunIncremental(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		s := e.Stats()
		if !cfg.incremental && (s.SkippedStrata != 0 || s.SeededDeltas != 0) {
			t.Fatalf("%s: full path reported incremental stats %+v", cfg.name, s)
		}
		prints = append(prints, dbFingerprint(e, reqs))
		derived = append(derived, s.DerivedFacts)
		if len(reqs) == 0 {
			break
		}
		// Answer a picks-driven subset; duplicate picks hit the batch's
		// duplicate guard, identically on every configuration.
		batch = e.NewAnswerBatch()
		answered := false
		for _, p := range picks {
			r := reqs[int(p)%len(reqs)]
			n, _ := r.Key()["n"].AsInt()
			if err := batch.Answer(r.ID, map[string]any{"tag": fmt.Sprintf("t%d", n)}); err == nil {
				answered = true
			}
		}
		if !answered {
			break
		}
	}
	return prints, derived
}

// TestEngineIncrementalDifferential is the differential quick-check of the
// batched answer pipeline: across random edge/node sets and random answer
// subsets, every round's fixpoint, pending requests and request IDs derived
// by RunIncremental are byte-identical to the full re-run path, across
// {columnar, map} x {par1, par4} x {indexed, scan} — and the per-round
// DerivedFacts counts agree (both paths insert exactly the new consequences).
func TestEngineIncrementalDifferential(t *testing.T) {
	matrix := incrementalMatrix()
	f := func(edges, nodes, picks []uint8) bool {
		if len(nodes) == 0 {
			nodes = []uint8{1}
		}
		if len(picks) == 0 {
			picks = []uint8{0}
		}
		if len(picks) > 6 {
			picks = picks[:6]
		}
		const rounds = 3
		refPrints, refDerived := driveIncrementalRounds(t, matrix[0], edges, nodes, picks, rounds)
		for _, cfg := range matrix[1:] {
			prints, derived := driveIncrementalRounds(t, cfg, edges, nodes, picks, rounds)
			if len(prints) != len(refPrints) {
				t.Logf("%s: %d rounds vs reference %d", cfg.name, len(prints), len(refPrints))
				return false
			}
			for i := range prints {
				if prints[i] != refPrints[i] {
					t.Logf("%s: round %d fingerprint diverges:\n%s\nvs reference:\n%s",
						cfg.name, i, prints[i], refPrints[i])
					return false
				}
				if derived[i] != refDerived[i] {
					t.Logf("%s: round %d derived %d facts vs reference %d",
						cfg.name, i, derived[i], refDerived[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestEngineIncrementalSkipsUntouchedStrata pins the reachability skipping:
// answering a label request touches strata 0 (labeled) and 2 (verified) but
// not stratum 1, whose rules read only node/endpoint positively — the
// incremental run must skip it, seed the answered tuples, and still derive
// the exact fixpoint of the full path.
func TestEngineIncrementalSkipsUntouchedStrata(t *testing.T) {
	build := func(incremental bool) (*Engine, []OpenRequest) {
		e, err := NewEngine(MustParse(incrementalProgram))
		if err != nil {
			t.Fatal(err)
		}
		// Insert-only reference semantics: with retraction on, the stratum
		// negating labeled is recomputed rather than skipped.
		e.SetRetraction(false)
		e.SetIncrementalAnswering(incremental)
		for n := 1; n <= 4; n++ {
			e.AddFact("node", n)
		}
		e.AddFact("edge", 1, 2)
		reqs, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 4 {
			t.Fatalf("label requests = %v", reqs)
		}
		batch := e.NewAnswerBatch()
		for _, r := range reqs[:2] {
			if err := batch.Answer(r.ID, map[string]any{"tag": "ok"}); err != nil {
				t.Fatal(err)
			}
		}
		reqs, err = e.RunIncremental(batch)
		if err != nil {
			t.Fatal(err)
		}
		return e, reqs
	}
	inc, incReqs := build(true)
	full, fullReqs := build(false)
	if got, want := dbFingerprint(inc, incReqs), dbFingerprint(full, fullReqs); got != want {
		t.Fatalf("incremental fixpoint diverges from full:\n%s\nvs\n%s", got, want)
	}
	is, fs := inc.Stats(), full.Stats()
	if is.SkippedStrata == 0 {
		t.Error("incremental run should skip the untouched stratum")
	}
	if is.SeededDeltas != 2 {
		t.Errorf("SeededDeltas = %d, want 2 (the two answered label facts)", is.SeededDeltas)
	}
	if fs.SkippedStrata != 0 || fs.SeededDeltas != 0 {
		t.Errorf("full path reported incremental stats %+v", fs)
	}
	if is.RuleEvaluations >= fs.RuleEvaluations {
		t.Errorf("incremental should evaluate fewer rules: %d vs full %d",
			is.RuleEvaluations, fs.RuleEvaluations)
	}
	if is.DerivedFacts != fs.DerivedFacts {
		t.Errorf("derived facts differ: incremental %d vs full %d", is.DerivedFacts, fs.DerivedFacts)
	}
}

// TestEngineIncrementalFallbacks covers the full-path fallbacks: before any
// completed run, and in Naive mode, RunIncremental evaluates everything.
func TestEngineIncrementalFallbacks(t *testing.T) {
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	if !e.IncrementalAnsweringEnabled() {
		t.Error("incremental answering should be enabled by default")
	}
	e.SetIncrementalAnswering(false)
	if e.IncrementalAnsweringEnabled() {
		t.Error("SetIncrementalAnswering(false) not reflected")
	}
	e.SetIncrementalAnswering(true)

	e.AddFact("node", 1)
	e.AddFact("edge", 1, 2)
	// First-ever run through RunIncremental must be a full evaluation.
	reqs, err := e.RunIncremental(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.SkippedStrata != 0 || s.SeededDeltas != 0 {
		t.Errorf("first run should take the full path, stats = %+v", s)
	}
	if len(e.Facts("reach")) != 1 || len(reqs) != 1 {
		t.Fatalf("reach = %v, requests = %v", e.Facts("reach"), reqs)
	}

	// Naive mode re-derives everything by definition: no seeding, no skips.
	e.SetMode(Naive)
	if err := e.AddFact("node", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.SkippedStrata != 0 || s.SeededDeltas != 0 {
		t.Errorf("naive mode should take the full path, stats = %+v", s)
	}
}

// TestEngineIncrementalTracksAllIngestionPaths checks that facts landing via
// AddFact, Answer and AnswerFact between fixpoints all seed the next
// incremental run — the resulting fixpoint must match a full re-run twin fed
// the same sequence.
func TestEngineIncrementalTracksAllIngestionPaths(t *testing.T) {
	drive := func(incremental bool) (*Engine, []OpenRequest) {
		e, err := NewEngine(MustParse(incrementalProgram))
		if err != nil {
			t.Fatal(err)
		}
		// Insert-only reference semantics: the test below pins that node 3
		// keeps endpoint status after edge(3,1) lands — exactly the staleness
		// retraction removes.
		e.SetRetraction(false)
		e.SetIncrementalAnswering(incremental)
		for n := 1; n <= 3; n++ {
			e.AddFact("node", n)
		}
		reqs, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 3 {
			t.Fatalf("requests = %v", reqs)
		}
		// One answer through each ingestion path, plus a fresh EDB fact.
		if err := e.Answer(reqs[0].ID, map[string]any{"tag": "a"}); err != nil {
			t.Fatal(err)
		}
		if err := e.AnswerFact("label", 2, "b"); err != nil {
			t.Fatal(err)
		}
		if err := e.AddFact("edge", 3, 1); err != nil {
			t.Fatal(err)
		}
		reqs, err = e.RunIncremental(nil)
		if err != nil {
			t.Fatal(err)
		}
		return e, reqs
	}
	inc, incReqs := drive(true)
	full, fullReqs := drive(false)
	if got, want := dbFingerprint(inc, incReqs), dbFingerprint(full, fullReqs); got != want {
		t.Fatalf("fixpoints diverge:\n%s\nvs\n%s", got, want)
	}
	if s := inc.Stats(); s.SeededDeltas != 3 {
		t.Errorf("SeededDeltas = %d, want 3 (Answer + AnswerFact + AddFact)", s.SeededDeltas)
	}
	if len(inc.Facts("labeled")) != 2 {
		t.Errorf("labeled = %v", inc.Facts("labeled"))
	}
	// edge(3,1) arrived after the endpoint stratum ran: node 3 must have lost
	// endpoint status in neither path (insert-only), but reach must now hold
	// the new edge's closure.
	if len(inc.Facts("reach")) == 0 {
		t.Error("reach should grow from the AddFact edge")
	}
}

// crowdTCProgram is the oracle-loop work test and benchmark workload: a
// 10-chain transitive closure feeding endpoint detection, human approval of
// endpoints, and a negation stratum over the approvals. Answer rounds touch
// only approve/approved, so an incremental round evaluates the approved rule
// against the answer deltas and skips the rejected stratum, while a full
// round re-joins the whole closure.
const crowdTCProgram = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this endpoint".
rel approved(n: int).
rel rejected(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
approved(N) :- endpoint(N), approve(N, true).
rejected(N) :- endpoint(N), !approved(N).
`

// loadCrowdTC loads `edges` edge facts forming disjoint chains of length 10
// (the benchmark shape: closure linear in the input, one endpoint per chain).
func loadCrowdTC(e *Engine, edges int) {
	const chain = 10
	for i := 0; i < edges; i++ {
		base := (i / chain) * (chain + 1)
		e.AddFact("edge", base+i%chain, base+i%chain+1)
	}
}

// waveOracle approves up to `wave` requests per crowd round, simulating
// workers who answer in batches. RunToFixpointWithOracle presents each
// round's pending requests in ascending ID order, so an incoming ID at or
// below the previous one marks the start of a new round.
func waveOracle(wave int) func(OpenRequest) (map[string]any, bool) {
	prevID := ""
	answeredThisRound := 0
	return func(r OpenRequest) (map[string]any, bool) {
		if prevID == "" || r.ID <= prevID {
			answeredThisRound = 0
		}
		prevID = r.ID
		if answeredThisRound >= wave {
			return nil, false
		}
		answeredThisRound++
		return map[string]any{"ok": true}, true
	}
}

// TestEngineIncrementalOracleLoopDoesLessWork is the acceptance check for the
// batched pipeline: on the transitive-closure crowd workload, the incremental
// oracle loop must evaluate at least 3x fewer rules per answered round than
// the full re-run loop, skip the untouched stratum every answered round, and
// still derive a byte-identical result.
func TestEngineIncrementalOracleLoopDoesLessWork(t *testing.T) {
	const edges, wave = 1000, 10 // 100 chains -> 100 endpoints -> 10 answer rounds
	drive := func(incremental bool) (e *Engine, evals, skipped, derived, rounds int) {
		e, err := NewEngine(MustParse(crowdTCProgram))
		if err != nil {
			t.Fatal(err)
		}
		// Insert-only reference semantics: with retraction on, the rejected
		// stratum is recomputed per answered round instead of skipped (its
		// negated input approved grows), which is measured separately by
		// BenchmarkOracleLoopRetraction and the retraction tests.
		e.SetRetraction(false)
		e.SetParallelism(1)
		// Pin shards=1: rule-evaluation counts are path-internal (the sharded
		// evaluator builds per-shard variants), and this test compares
		// evaluation work, not fixpoints.
		e.SetShards(1)
		e.SetIncrementalAnswering(incremental)
		loadCrowdTC(e, edges)
		// Round 1 (the initial full evaluation, identical on both paths) is
		// excluded: the comparison isolates the per-answered-round work.
		reqs, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		for len(reqs) > 0 {
			batch := e.NewAnswerBatch()
			n := wave
			if n > len(reqs) {
				n = len(reqs)
			}
			for _, r := range reqs[:n] {
				if err := batch.Answer(r.ID, map[string]any{"ok": true}); err != nil {
					t.Fatal(err)
				}
			}
			if reqs, err = e.RunIncremental(batch); err != nil {
				t.Fatal(err)
			}
			s := e.Stats()
			evals += s.RuleEvaluations
			skipped += s.SkippedStrata
			derived += s.DerivedFacts
			rounds++
		}
		return e, evals, skipped, derived, rounds
	}
	incEngine, incEvals, incSkipped, incDerived, incRounds := drive(true)
	fullEngine, fullEvals, fullSkipped, fullDerived, fullRounds := drive(false)

	if got, want := dbFingerprint(incEngine, incEngine.PendingRequests()),
		dbFingerprint(fullEngine, fullEngine.PendingRequests()); got != want {
		t.Fatal("incremental oracle loop diverges from full re-run")
	}
	if n := len(incEngine.Facts("approved")); n != edges/10 {
		t.Fatalf("approved = %d, want %d", n, edges/10)
	}
	if incRounds != fullRounds || incRounds != edges/10/wave {
		t.Fatalf("answered rounds: incremental %d, full %d, want %d", incRounds, fullRounds, edges/10/wave)
	}
	if incSkipped == 0 {
		t.Error("incremental rounds should skip the rejected stratum")
	}
	if fullSkipped != 0 {
		t.Errorf("full rounds skipped %d strata", fullSkipped)
	}
	if incDerived != fullDerived {
		t.Errorf("derived facts differ: %d vs %d", incDerived, fullDerived)
	}
	if incEvals <= 0 || fullEvals < 3*incEvals {
		t.Errorf("incremental answered rounds should cost >= 3x fewer rule evaluations: full %d vs incremental %d over %d rounds",
			fullEvals, incEvals, incRounds)
	}
}
