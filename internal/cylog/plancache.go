package cylog

import (
	"sync"
)

// Compiled plan cache
//
// With cost-aware planning enabled, every evaluation pass of every rule
// variant used to re-run the greedy planner — cheap per call, but the oracle
// loop's steady state calls it for every rule variant of every fixpoint
// iteration of every round. Plans only change when their inputs do, and the
// planner's inputs are exactly (a) the rule and delta variant, (b) the
// statistics of the closed positive body relations (cardinalities and
// per-column distinct counts), and (c) the toggle state the engine plans
// under. The cache keys on precisely those: per rule, a fingerprint of the
// body relations' stats epochs plus a toggle byte guards a small
// deltaAtom→plan map. A stats-epoch bump anywhere in the rule's body changes
// the fingerprint and atomically retires every plan cached under the old one
// — a stale plan is never served after a bump (the invariant the plan-cache
// property tests assert).
//
// Staleness within an epoch is deliberate: relstore only bumps the epoch when
// estimates drift past the threshold (see relstore's statsDrifted), so a
// cached plan may run against slightly outdated estimates. That can only cost
// performance, never correctness — reordering closed positive atoms between
// barriers cannot change fixpoints or request IDs (the differential the
// randomized planner tests prove against SetCostPlanning(false)).
//
// Concurrency: lookups happen on evaluation workers while the coordinator
// holds e.mu; rulePlans carries its own RWMutex so concurrent lookups of the
// same rule share the read lock, and the first planner to miss publishes the
// plan for everyone (later racers adopt the published plan, so cache hits are
// pointer-identical — asserted under -race by the property tests).

// compiledPlan is one immutable cached execution plan. Cache hits return the
// same *compiledPlan pointer; the steps slice is never mutated after insert.
type compiledPlan struct {
	steps []planStep
}

// rulePlans caches one rule's compiled plans under the (stats epochs,
// toggles) key that was current when they were built. byDelta maps the delta
// variant (body index of the restricted atom, -1 for unrestricted) to its
// plan; a key change retires the whole map at once.
type rulePlans struct {
	mu      sync.RWMutex
	epochs  uint64
	toggles uint8
	byDelta map[int]*compiledPlan
}

// Toggle-fingerprint bits: the engine settings a cached plan depends on.
// Indexing and cost planning are both required for the cache to engage at
// all, but they belong in the key so a toggle flip mid-flight can never
// resurrect a plan built under different settings; Naive mode is included
// because it shares the plan path.
const (
	planToggleIndexing = 1 << iota
	planToggleCost
	planToggleNaive
)

// planToggles folds the plan-relevant engine settings into the cache key's
// toggle byte.
func (e *Engine) planToggles() uint8 {
	var t uint8
	if e.indexing {
		t |= planToggleIndexing
	}
	if e.costPlanning {
		t |= planToggleCost
	}
	if e.mode == Naive {
		t |= planToggleNaive
	}
	return t
}

// FNV-1a over the body relations' stats epochs — the stats half of the cache
// key. Same constants as relstore's tuple hashing.
const (
	planFNVOffset = 14695981039346656037
	planFNVPrime  = 1099511628211
)

// ruleStatsKey fingerprints the current stats epochs of the relations whose
// statistics influence the rule's plan (the closed positive body atoms'
// relations, collected once at construction into planRels). Epochs are read
// lock-free; any relation bumping its epoch changes the fingerprint.
func (e *Engine) ruleStatsKey(r *Rule) uint64 {
	h := uint64(planFNVOffset)
	for _, rel := range e.planRels[r] {
		x := rel.StatsEpoch()
		for i := 0; i < 8; i++ {
			h = (h ^ (x & 0xff)) * planFNVPrime
			x >>= 8
		}
	}
	return h
}

// cachedPlan returns the rule's compiled plan for the given delta variant,
// planning (with the cost catalog) and publishing on miss. The first plan
// published under a key wins: concurrent planners that lose the publish race
// adopt the winner, so every hit for one key is pointer-identical.
func (e *Engine) cachedPlan(r *Rule, deltaAtom int, stats *Stats) *compiledPlan {
	rp := e.planCache[r]
	epochs, toggles := e.ruleStatsKey(r), e.planToggles()

	rp.mu.RLock()
	if rp.epochs == epochs && rp.toggles == toggles {
		if p, ok := rp.byDelta[deltaAtom]; ok {
			rp.mu.RUnlock()
			if stats != nil {
				stats.PlanCacheHits++
			}
			return p
		}
	}
	rp.mu.RUnlock()

	p := &compiledPlan{steps: planRule(r, deltaAtom, e.costCatalog())}
	if stats != nil {
		stats.PlanCacheMisses++
	}
	rp.mu.Lock()
	if rp.epochs != epochs || rp.toggles != toggles || rp.byDelta == nil {
		rp.epochs, rp.toggles = epochs, toggles
		rp.byDelta = make(map[int]*compiledPlan, len(r.Body)+1)
	}
	if prev, ok := rp.byDelta[deltaAtom]; ok {
		p = prev
	} else {
		rp.byDelta[deltaAtom] = p
	}
	rp.mu.Unlock()
	return p
}

// plan returns the execution order for one evaluation pass of r: the identity
// plan when indexing is off (the seed scan path), a freshly planned
// cardinality-only order when cost planning is off (the differential
// reference — exactly the pre-cost planner, re-run on every call), and the
// cached cost-aware plan otherwise. stats may be nil for callers outside a
// run (no counters are recorded then).
func (e *Engine) plan(r *Rule, deltaAtom int, stats *Stats) []planStep {
	if !e.indexing {
		return identityPlan(r)
	}
	if !e.costPlanning {
		return planRule(r, deltaAtom, e.catalog())
	}
	return e.cachedPlan(r, deltaAtom, stats).steps
}
