package cylog

import (
	"fmt"
	"sort"
	"strings"
)

// AnalysisError is a semantic error found by Analyze.
type AnalysisError struct {
	Pos Position
	Msg string
}

// Error implements error.
func (e *AnalysisError) Error() string { return fmt.Sprintf("cylog: %s: %s", e.Pos, e.Msg) }

// Analysis is the result of semantic analysis: per-rule metadata and the
// stratification used by the engine.
type Analysis struct {
	Program *Program
	// Strata lists rules grouped into evaluation strata; stratum i may only
	// negate relations fully computed in strata < i.
	Strata [][]*Rule
	// IDB is the set of relation names that appear in some rule head.
	IDB map[string]bool
	// EDB is the set of declared relations never derived by rules (facts,
	// external inputs and open/human relations).
	EDB map[string]bool
	// OpenRelations is the set of declared open (human-evaluated) relations.
	OpenRelations map[string]bool
	// DependsOn maps a head relation to the body relations it references.
	DependsOn map[string][]string
	// NegDependsOn maps a head relation to the body relations it references
	// under negation — the relations whose growth can invalidate previously
	// derived head tuples. The engine's retraction trigger itself works at
	// stratum granularity through StratumNegInputs; this per-head view is the
	// analysis surface for tooling, tests and finer-grained propagation.
	NegDependsOn map[string][]string
	// RuleVars maps each rule to its variable inventory: every named variable
	// appearing in the rule, in first-appearance order (body literals in
	// source order, then the head). The engine turns the inventory into the
	// rule's binding-row slot schema, so the order is part of the engine's
	// deterministic behaviour and must not depend on map iteration.
	RuleVars map[*Rule][]string
	// StratumInputs is the relation→stratum dependency map used by
	// incremental evaluation, stored transposed: entry i holds the relations
	// read by a *positive* body atom of some rule in Strata[i] — exactly the
	// relations whose growth can yield new facts or new open requests there.
	// RunIncremental skips stratum i outright when none of its inputs gained
	// tuples since the last fixpoint. Negated atoms are deliberately
	// excluded: with retraction disabled relations are insert-only, so a
	// grown negated relation can only suppress derivations, never add any —
	// skipping on negated-only changes matches what an insert-only full
	// re-run would derive. They are tracked separately in StratumNegInputs.
	StratumInputs []map[string]bool
	// StratumNegInputs is the negative twin of StratumInputs: entry i holds
	// the relations read by a *negated* body atom of some rule in Strata[i].
	// With retraction enabled, a change (insertion or deletion) in one of
	// these relations means previously derived tuples of the stratum may have
	// lost their justification (or blocked derivations may have become
	// valid), so RunIncremental recomputes the affected heads instead of
	// skipping or delta-seeding the stratum.
	StratumNegInputs []map[string]bool
}

// ruleVariableInventory collects the named variables of a rule in
// first-appearance order: body literals in source order, then the head. The
// anonymous variable "_" never binds and is excluded.
func ruleVariableInventory(r *Rule) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(vars []string) {
		for _, v := range vars {
			if v == "_" || seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, lit := range r.Body {
		add(lit.Variables())
	}
	add(r.Head.Variables())
	return out
}

// Analyze checks the program for semantic errors and computes the
// stratification. Checks performed:
//
//   - every predicate used in a fact, rule head or rule body is declared,
//     with the right arity;
//   - facts type-check against their declared schema;
//   - rules are *safe*: every variable in the head, in a negated atom, or in
//     a comparison also appears in a positive body atom;
//   - open relations never appear in rule heads (humans, not rules, decide
//     them);
//   - negation is stratified (no recursion through negation).
func Analyze(p *Program) (*Analysis, error) {
	a := &Analysis{
		Program:       p,
		IDB:           make(map[string]bool),
		EDB:           make(map[string]bool),
		OpenRelations: make(map[string]bool),
		DependsOn:     make(map[string][]string),
		NegDependsOn:  make(map[string][]string),
		RuleVars:      make(map[*Rule][]string, len(p.Rules)),
	}
	decls := make(map[string]*Declaration, len(p.Declarations))
	for _, d := range p.Declarations {
		decls[d.Name] = d
		if d.Open {
			a.OpenRelations[d.Name] = true
		}
	}

	// Facts must reference declared relations with matching arity and types.
	for _, f := range p.Facts {
		d, ok := decls[f.Relation]
		if !ok {
			return nil, &AnalysisError{f.Pos, fmt.Sprintf("fact references undeclared relation %q", f.Relation)}
		}
		if len(f.Values) != len(d.Columns) {
			return nil, &AnalysisError{f.Pos, fmt.Sprintf("fact %s has %d values, relation declares %d columns", f.Relation, len(f.Values), len(d.Columns))}
		}
		if _, err := d.Schema().Coerce(f.Values); err != nil {
			return nil, &AnalysisError{f.Pos, fmt.Sprintf("fact %s does not match schema: %v", f.Relation, err)}
		}
	}

	// Rules: declared predicates, arity, safety, no open heads.
	for _, r := range p.Rules {
		hd, ok := decls[r.Head.Predicate]
		if !ok {
			return nil, &AnalysisError{r.Pos, fmt.Sprintf("rule head references undeclared relation %q", r.Head.Predicate)}
		}
		if len(r.Head.Terms) != len(hd.Columns) {
			return nil, &AnalysisError{r.Pos, fmt.Sprintf("rule head %s has %d terms, relation declares %d columns", r.Head.Predicate, len(r.Head.Terms), len(hd.Columns))}
		}
		if hd.Open {
			return nil, &AnalysisError{r.Pos, fmt.Sprintf("open relation %q cannot be derived by a rule; open relations are evaluated by humans", r.Head.Predicate)}
		}
		if r.Head.Negated {
			return nil, &AnalysisError{r.Pos, "rule head cannot be negated"}
		}
		a.IDB[r.Head.Predicate] = true

		positive := make(map[string]bool)
		var deps, negDeps []string
		hasPositive := false
		for _, lit := range r.Body {
			atom, isAtom := lit.(*Atom)
			if !isAtom {
				continue
			}
			bd, ok := decls[atom.Predicate]
			if !ok {
				return nil, &AnalysisError{atom.Pos, fmt.Sprintf("rule body references undeclared relation %q", atom.Predicate)}
			}
			if len(atom.Terms) != len(bd.Columns) {
				return nil, &AnalysisError{atom.Pos, fmt.Sprintf("atom %s has %d terms, relation declares %d columns", atom.Predicate, len(atom.Terms), len(bd.Columns))}
			}
			deps = append(deps, atom.Predicate)
			if !atom.Negated {
				hasPositive = true
				for _, v := range atom.Variables() {
					positive[v] = true
				}
			} else {
				negDeps = append(negDeps, atom.Predicate)
			}
		}
		if !hasPositive {
			return nil, &AnalysisError{r.Pos, fmt.Sprintf("rule for %s has no positive body atom", r.Head.Predicate)}
		}
		// Safety.
		check := func(vars []string, where string, pos Position) error {
			for _, v := range vars {
				if v == "_" {
					if where == "the head" {
						return &AnalysisError{pos, "anonymous variable _ cannot appear in the head"}
					}
					continue
				}
				if !positive[v] {
					return &AnalysisError{pos, fmt.Sprintf("unsafe rule: variable %s in %s does not appear in a positive body atom", v, where)}
				}
			}
			return nil
		}
		if err := check(r.Head.Variables(), "the head", r.Pos); err != nil {
			return nil, err
		}
		for _, lit := range r.Body {
			switch l := lit.(type) {
			case *Atom:
				if l.Negated {
					if err := check(l.Variables(), "a negated atom", l.Pos); err != nil {
						return nil, err
					}
				}
			case *Comparison:
				if err := check(l.Variables(), "a comparison", l.Pos); err != nil {
					return nil, err
				}
			}
		}
		a.DependsOn[r.Head.Predicate] = append(a.DependsOn[r.Head.Predicate], deps...)
		a.NegDependsOn[r.Head.Predicate] = append(a.NegDependsOn[r.Head.Predicate], negDeps...)
		a.RuleVars[r] = ruleVariableInventory(r)
	}

	// EDB = declared relations not derived by any rule.
	for name := range decls {
		if !a.IDB[name] {
			a.EDB[name] = true
		}
	}

	strata, err := stratify(p, a.IDB)
	if err != nil {
		return nil, err
	}
	a.Strata = strata
	a.StratumInputs = stratumInputs(strata, false)
	a.StratumNegInputs = stratumInputs(strata, true)
	return a, nil
}

// stratumInputs computes, per stratum, the set of relations its rules read
// through positive (negated == false) or negated (negated == true) body atoms
// (see Analysis.StratumInputs and Analysis.StratumNegInputs).
func stratumInputs(strata [][]*Rule, negated bool) []map[string]bool {
	out := make([]map[string]bool, len(strata))
	for i, rules := range strata {
		inputs := make(map[string]bool)
		for _, r := range rules {
			for _, lit := range r.Body {
				if atom, ok := lit.(*Atom); ok && atom.Negated == negated {
					inputs[atom.Predicate] = true
				}
			}
		}
		out[i] = inputs
	}
	return out
}

// stratify computes a stratification of the rules: a partition into ordered
// strata such that a rule negating relation R is placed strictly above every
// rule deriving R, and a rule positively depending on R is placed at or above
// R's stratum. It returns an error when the program recurses through
// negation.
func stratify(p *Program, idb map[string]bool) ([][]*Rule, error) {
	// Compute a stratum number per IDB relation with the classic iterative
	// algorithm.
	stratum := make(map[string]int)
	for name := range idb {
		stratum[name] = 0
	}
	relations := make([]string, 0, len(idb))
	for name := range idb {
		relations = append(relations, name)
	}
	sort.Strings(relations)

	maxStratum := len(idb) + 1
	changed := true
	for iter := 0; changed; iter++ {
		if iter > len(idb)*len(idb)+len(p.Rules)+2 {
			return nil, &AnalysisError{Msg: "program is not stratifiable (recursion through negation)"}
		}
		changed = false
		for _, r := range p.Rules {
			hs := stratum[r.Head.Predicate]
			for _, lit := range r.Body {
				atom, ok := lit.(*Atom)
				if !ok || !idb[atom.Predicate] {
					continue
				}
				bs := stratum[atom.Predicate]
				var need int
				if atom.Negated {
					need = bs + 1
				} else {
					need = bs
				}
				if hs < need {
					hs = need
					if hs > maxStratum {
						return nil, &AnalysisError{Pos: r.Pos, Msg: "program is not stratifiable (recursion through negation)"}
					}
					stratum[r.Head.Predicate] = hs
					changed = true
				}
			}
		}
	}

	// Group rules by their head's stratum, preserving program order inside a
	// stratum.
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]*Rule, maxS+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Predicate]
		out[s] = append(out[s], r)
	}
	// Drop empty strata.
	var packed [][]*Rule
	for _, s := range out {
		if len(s) > 0 {
			packed = append(packed, s)
		}
	}
	if packed == nil {
		packed = [][]*Rule{}
	}
	return packed, nil
}

// MustAnalyze is Analyze but panics on error.
func MustAnalyze(p *Program) *Analysis {
	a, err := Analyze(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Describe renders a human-readable summary of the analysis, used by the
// `cylog check` CLI subcommand.
func (a *Analysis) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "relations: %d declared (%d open), %d derived\n",
		len(a.Program.Declarations), len(a.OpenRelations), len(a.IDB))
	fmt.Fprintf(&b, "facts: %d, rules: %d, strata: %d\n", len(a.Program.Facts), len(a.Program.Rules), len(a.Strata))
	for i, s := range a.Strata {
		heads := make(map[string]bool)
		for _, r := range s {
			heads[r.Head.Predicate] = true
		}
		names := make([]string, 0, len(heads))
		for h := range heads {
			names = append(names, h)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  stratum %d: %s\n", i, strings.Join(names, ", "))
	}
	return b.String()
}
