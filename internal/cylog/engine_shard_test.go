package cylog

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// shardConfig is one cell of the sharded differential matrix.
type shardConfig struct {
	name        string
	shards      int
	parallelism int
	incremental bool
	retraction  bool
}

// shardMatrix enumerates {shards 1,2,4} x {par 1,4} x {incremental, full} for
// one retraction setting. Retraction changes the reference semantics (stale
// negations are corrected), so the differential compares within a retraction
// value, never across: the first cell — shards=1/par=1/full — is the
// pre-shard engine, the byte-identical reference everything else must match.
func shardMatrix(retraction bool) []shardConfig {
	var out []shardConfig
	for _, shards := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			for _, inc := range []bool{false, true} {
				out = append(out, shardConfig{
					name: fmt.Sprintf("shards%d/par%d/incremental=%v/retraction=%v",
						shards, par, inc, retraction),
					shards:      shards,
					parallelism: par,
					incremental: inc,
					retraction:  retraction,
				})
			}
		}
	}
	// The reference must come first: shards=1, par=1, full, i.e. the exact
	// engine every prior PR's differential suite pinned.
	if out[0].shards != 1 || out[0].parallelism != 1 || out[0].incremental {
		panic("shardMatrix: reference cell moved")
	}
	return out
}

func (cfg shardConfig) apply(e *Engine) {
	e.SetShards(cfg.shards)
	e.SetParallelism(cfg.parallelism)
	e.SetIncrementalAnswering(cfg.incremental)
	e.SetRetraction(cfg.retraction)
}

// driveShardedRounds runs the crowd loop for a fixed number of rounds under
// one configuration — full Run first, then batch + RunIncremental — answering
// a picks-driven subset of pending label requests per round, exactly like the
// incremental and retraction drivers. It returns the per-round fingerprints
// (fixpoint + pending requests + request IDs) and per-round DerivedFacts.
func driveShardedRounds(t *testing.T, cfg shardConfig, edges, nodes, picks []uint8, rounds int) ([]string, []int) {
	t.Helper()
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	cfg.apply(e)
	for i := 0; i+1 < len(edges); i += 2 {
		if err := e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := e.AddFact("node", int(n%8)); err != nil {
			t.Fatal(err)
		}
	}
	var prints []string
	var derived []int
	var batch *AnswerBatch
	for round := 0; round < rounds; round++ {
		var reqs []OpenRequest
		var err error
		if batch == nil {
			reqs, err = e.Run()
		} else {
			reqs, err = e.RunIncremental(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		s := e.Stats()
		if cfg.shards == 1 && (s.ShardLocalTuples != 0 || s.ShardExchanges != 0) {
			t.Fatalf("%s: unsharded run reported shard stats %+v", cfg.name, s)
		}
		prints = append(prints, dbFingerprint(e, reqs))
		derived = append(derived, s.DerivedFacts)
		if len(reqs) == 0 {
			break
		}
		batch = e.NewAnswerBatch()
		answered := false
		for _, p := range picks {
			r := reqs[int(p)%len(reqs)]
			n, _ := r.Key()["n"].AsInt()
			if err := batch.Answer(r.ID, map[string]any{"tag": fmt.Sprintf("t%d", n)}); err == nil {
				answered = true
			}
		}
		if !answered {
			break
		}
	}
	return prints, derived
}

// TestShardedDifferential is the acceptance check of the sharded evaluator:
// across random fact sets and random answer subsets, every round's fixpoint,
// pending requests, request IDs and DerivedFacts under {shards 1,2,4} x
// {par 1,4} x {incremental, full} x {retraction on, off} are byte-identical
// to the shards=1/par=1/full reference — the pre-shard engine. Hash
// partitioning, the channel exchange, and the single-writer merge must be
// pure implementation detail; any divergence is a routing or merge-order bug.
func TestShardedDifferential(t *testing.T) {
	f := func(edges, nodes, picks []uint8) bool {
		if len(nodes) == 0 {
			nodes = []uint8{1}
		}
		if len(picks) == 0 {
			picks = []uint8{0}
		}
		if len(picks) > 5 {
			picks = picks[:5]
		}
		const rounds = 3
		for _, retraction := range []bool{false, true} {
			matrix := shardMatrix(retraction)
			refPrints, refDerived := driveShardedRounds(t, matrix[0], edges, nodes, picks, rounds)
			for _, cfg := range matrix[1:] {
				prints, derived := driveShardedRounds(t, cfg, edges, nodes, picks, rounds)
				if len(prints) != len(refPrints) {
					t.Logf("%s: %d rounds vs reference %d", cfg.name, len(prints), len(refPrints))
					return false
				}
				for i := range prints {
					if prints[i] != refPrints[i] {
						t.Logf("%s: round %d fingerprint diverges:\n%s\nvs reference:\n%s",
							cfg.name, i, prints[i], refPrints[i])
						return false
					}
					if derived[i] != refDerived[i] {
						t.Logf("%s: round %d derived %d facts vs reference %d",
							cfg.name, i, derived[i], refDerived[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestShardedStatsConservation pins the exchange accounting: on a sharded
// full run every derived fact is routed exactly once at its round barrier, so
// ShardLocalTuples + ShardExchanges must equal DerivedFacts — no tuple is
// dropped, double-routed, or routed on the unsharded path. A transitive
// closure over interleaved chains guarantees traffic in both buckets.
func TestShardedStatsConservation(t *testing.T) {
	build := func(shards int) Stats {
		e, err := NewEngine(MustParse(differentialProgram))
		if err != nil {
			t.Fatal(err)
		}
		e.SetShards(shards)
		for i := 0; i < 64; i++ {
			e.AddFact("edge", i%8, (i+3)%8)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	s := build(4)
	if s.DerivedFacts == 0 {
		t.Fatal("workload derived nothing")
	}
	if got := s.ShardLocalTuples + s.ShardExchanges; got != s.DerivedFacts {
		t.Errorf("ShardLocalTuples(%d) + ShardExchanges(%d) = %d, want DerivedFacts %d",
			s.ShardLocalTuples, s.ShardExchanges, got, s.DerivedFacts)
	}
	if s.ShardExchanges == 0 {
		t.Error("4-way sharded closure should exchange frontier tuples across shards")
	}
	if ref := build(1); ref.ShardLocalTuples != 0 || ref.ShardExchanges != 0 {
		t.Errorf("shards=1 must keep shard stats zero, got %+v", ref)
	}
}

// TestPartitionDeltaMultiset pins the frontier exchange's core invariant
// white-box: partitionDelta routes every tuple of every relation to exactly
// the shard ShardOf names, preserves per-relation input order within a shard,
// and the partitions union back to the input multiset.
func TestPartitionDeltaMultiset(t *testing.T) {
	delta := map[string][]relstore.Tuple{
		"edge":  nil,
		"reach": nil,
	}
	for i := 0; i < 40; i++ {
		delta["edge"] = append(delta["edge"], relstore.NewTuple(i, i+1))
		delta["reach"] = append(delta["reach"], relstore.NewTuple(i%7, i))
	}
	// Duplicate a few tuples: multiset preservation, not set.
	delta["edge"] = append(delta["edge"], delta["edge"][:3]...)
	const shards = 4
	parts := partitionDelta(delta, shards)
	if len(parts) != shards {
		t.Fatalf("partitionDelta returned %d parts, want %d", len(parts), shards)
	}
	for rel, ts := range delta {
		var reassembled []relstore.Tuple
		for s, part := range parts {
			for _, tup := range part[rel] {
				if got := relstore.ShardOf(tup, shards); got != s {
					t.Fatalf("%s tuple %v routed to shard %d, ShardOf says %d", rel, tup, s, got)
				}
				reassembled = append(reassembled, tup)
			}
		}
		count := func(ts []relstore.Tuple) map[string]int {
			m := make(map[string]int)
			for _, tup := range ts {
				m[tup.String()]++
			}
			return m
		}
		got, want := count(reassembled), count(ts)
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s tuple %s: %d copies in, %d out", rel, k, v, got[k])
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: partition changed the multiset", rel)
		}
	}
}

// TestShardsConfiguration covers the SetShards surface: the getter, the
// n<=0 reset to the environment default, and the CYLOG_SHARDS default wired
// through NewEngine — the knob the CI sharded leg turns.
func TestShardsConfiguration(t *testing.T) {
	e, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Shards(); got != defaultShards() {
		t.Fatalf("fresh engine shards = %d, want default %d", got, defaultShards())
	}
	e.SetShards(4)
	if got := e.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after SetShards(4)", got)
	}
	e.SetShards(0)
	if got := e.Shards(); got != defaultShards() {
		t.Fatalf("SetShards(0) should reset to default, got %d", got)
	}

	t.Setenv("CYLOG_SHARDS", "3")
	e2, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Shards(); got != 3 {
		t.Fatalf("CYLOG_SHARDS=3 engine shards = %d", got)
	}
	t.Setenv("CYLOG_SHARDS", "bogus")
	if got := defaultShards(); got != 1 {
		t.Fatalf("unparseable CYLOG_SHARDS should fall back to 1, got %d", got)
	}
	t.Setenv("CYLOG_SHARDS", "-2")
	if got := defaultShards(); got != 1 {
		t.Fatalf("negative CYLOG_SHARDS should fall back to 1, got %d", got)
	}
}

// TestBookkeeperSingleWriterGuard pins the latent hazard the sharding work
// exposed: stageDelta and admitRequests mutate request bookkeeping with no
// lock of their own, relying on a single evaluation/ingestion goroutine.
// That assumption is now an asserted invariant — a second concurrent claim
// panics instead of silently corrupting request IDs.
func TestBookkeeperSingleWriterGuard(t *testing.T) {
	e, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	release := e.claimBookkeeper()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second claimBookkeeper while claimed should panic")
			}
		}()
		e.claimBookkeeper()
	}()
	release()
	// After release the claim cycle works again.
	e.claimBookkeeper()()
}

// TestShardedRequestIDOrdering is the regression pin for request bookkeeping
// under shards>1: the merge writer admits open requests in shard-then-plan
// order, so the sequence of generated request IDs — which the crowd sees and
// answers by — must be identical to the unsharded engine's, not merely the
// same set.
func TestShardedRequestIDOrdering(t *testing.T) {
	ids := func(shards int) []string {
		e, err := NewEngine(MustParse(incrementalProgram))
		if err != nil {
			t.Fatal(err)
		}
		e.SetShards(shards)
		for n := 0; n < 12; n++ {
			e.AddFact("node", n)
		}
		for n := 0; n < 11; n++ {
			e.AddFact("edge", n, n+1)
		}
		reqs, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(reqs))
		for i, r := range reqs {
			out[i] = r.ID
		}
		return out
	}
	ref := ids(1)
	if len(ref) == 0 {
		t.Fatal("workload generated no requests")
	}
	for _, shards := range []int{2, 4} {
		if got := ids(shards); strings.Join(got, ",") != strings.Join(ref, ",") {
			t.Errorf("shards=%d request IDs = %v, want the unsharded order %v", shards, got, ref)
		}
	}
}

// TestShardedConcurrentStagingRace is the -race workout for sharding:
// worker goroutines stage answers into shared batches while the main loop
// commits them through sharded incremental runs with retraction on — the
// full PR 4 + PR 5 + sharding stack under concurrent ingestion pressure.
func TestShardedConcurrentStagingRace(t *testing.T) {
	e, err := NewEngine(MustParse(approveRejectProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetShards(4)
	e.SetParallelism(2)
	const items = 60
	for n := 1; n <= items; n++ {
		e.AddFact("item", n)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for rounds := 0; len(reqs) > 0 && rounds < 40; rounds++ {
		batch := e.NewAnswerBatch()
		var wg sync.WaitGroup
		const stagers = 4
		for w := 0; w < stagers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i, r := range reqs {
					if i%stagers != w {
						continue
					}
					switch r.Relation {
					case "approve":
						batch.Answer(r.ID, map[string]any{"ok": true}) //nolint:errcheck
					case "review":
						batch.Answer(r.ID, map[string]any{"note": "checked"}) //nolint:errcheck
					}
				}
			}(w)
		}
		wg.Wait()
		if reqs, err = e.RunIncremental(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Facts("approved")); got != items {
		t.Fatalf("approved = %d, want %d", got, items)
	}
	if got := len(e.Facts("rejected")); got != 0 {
		t.Fatalf("every rejection should be retracted, rejected = %v", e.Facts("rejected"))
	}
	if got := len(e.PendingRequests()); got != 0 {
		t.Fatalf("pending = %v", e.PendingRequests())
	}
}
