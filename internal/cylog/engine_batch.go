package cylog

import (
	"errors"
	"fmt"
	"sync"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Batched answer ingestion
//
// The crowd loop is round-based: the platform collects a wave of worker
// answers, then re-derives consequences and the next wave of open requests.
// AnswerBatch is the ingestion half of that loop: answers are validated and
// staged against the engine without touching shared evaluation state — the
// tuples are built and coerced, but nothing is inserted and no request is
// closed — so any number of goroutines can stage while a run is in flight
// (staging serializes on the engine lock, blocking only for the validation
// lookup). Committing happens atomically inside RunIncremental, which then
// seeds the fixpoint's delta frontiers directly from the batch's newly
// inserted tuples. Every rejected item is reported individually
// (BatchItemError) and never poisons the rest of the batch.

// ErrBatchCommitted is returned when staging into, or re-committing, an
// AnswerBatch that RunIncremental already applied.
var ErrBatchCommitted = errors.New("cylog: answer batch already committed")

// ErrDuplicateAnswer is returned when a batch stages a second answer for a
// request it already holds an answer for.
var ErrDuplicateAnswer = errors.New("cylog: request already answered in this batch")

// BatchItemError records the rejection of one AnswerBatch item: Index is the
// item's position in staging order (counting rejected items), Err the reason.
type BatchItemError struct {
	Index int
	Err   error
}

// Error implements error.
func (e BatchItemError) Error() string {
	return fmt.Sprintf("cylog: batch item %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e BatchItemError) Unwrap() error { return e.Err }

// batchItem is one validated, staged answer: the coerced tuple to insert,
// plus the request it answers (empty requestID for the whole-fact form).
type batchItem struct {
	index     int
	requestID string
	relation  string
	tuple     relstore.Tuple
}

// AnswerBatch collects validated worker answers for one ingestion round. Use
// Answer for a reply to a specific open request and AnswerFact for a whole
// fact (a team result not tied to one request); both validate eagerly and
// report per-item errors. Pass the batch to Engine.RunIncremental to insert
// every staged fact, close the answered requests, and derive the
// consequences. A batch is single-use: once committed it rejects further
// staging and re-commits with ErrBatchCommitted.
//
// AnswerBatch is safe for concurrent use; staging while a run is in flight
// serializes on the engine lock (stagers block until the run completes).
type AnswerBatch struct {
	engine *Engine

	mu    sync.Mutex
	next  int // staging attempts so far; indexes items and errors
	items []batchItem
	errs  []BatchItemError
	// commitErrs is the subset of errs recorded while the batch committed
	// (requests closed between staging and commit). Kept separately so
	// callers reporting commit outcomes do not have to guess which tail of
	// Errors() is new — staging can race with the commit, making index
	// arithmetic on Errors() unreliable.
	commitErrs []BatchItemError
	claimed    map[string]bool // request ids already answered by this batch
	committed  bool
}

// NewAnswerBatch returns an empty batch staged against the engine.
func (e *Engine) NewAnswerBatch() *AnswerBatch {
	return &AnswerBatch{engine: e, claimed: make(map[string]bool)}
}

// Answer stages a worker's answer for a pending open request: the fact formed
// by the request's key values plus the given open-column values. The answer
// is validated now (the request must be pending and not already answered in
// this batch; the values must cover the open columns and match the declared
// schema) but inserted only when the batch commits. The returned error is
// also recorded in Errors.
func (b *AnswerBatch) Answer(requestID string, openValues map[string]any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.next
	b.next++
	if err := b.stageAnswer(idx, requestID, openValues); err != nil {
		b.errs = append(b.errs, BatchItemError{Index: idx, Err: err})
		return err
	}
	return nil
}

func (b *AnswerBatch) stageAnswer(idx int, requestID string, openValues map[string]any) error {
	if b.committed {
		return ErrBatchCommitted
	}
	if b.claimed[requestID] {
		return fmt.Errorf("%w: %s", ErrDuplicateAnswer, requestID)
	}
	e := b.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	req, ok := e.pending[requestID]
	if !ok {
		return fmt.Errorf("%w: %s", e.missingRequestErrLocked(requestID), requestID)
	}
	tuple, err := e.requestTuple(req, openValues)
	if err != nil {
		return err
	}
	b.claimed[requestID] = true
	b.items = append(b.items, batchItem{index: idx, requestID: requestID, relation: req.Relation, tuple: tuple})
	return nil
}

// AnswerFact stages a complete tuple for an open relation (the whole-fact
// twin of Engine.AnswerFact). The fact is validated and coerced now but
// inserted only when the batch commits, at which point every pending request
// with a matching key is closed. The returned error is also recorded in
// Errors.
func (b *AnswerBatch) AnswerFact(relation string, values ...any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.next
	b.next++
	if err := b.stageFact(idx, relation, values); err != nil {
		b.errs = append(b.errs, BatchItemError{Index: idx, Err: err})
		return err
	}
	return nil
}

func (b *AnswerBatch) stageFact(idx int, relation string, values []any) error {
	if b.committed {
		return ErrBatchCommitted
	}
	decl := b.engine.analysis.Program.DeclarationFor(relation)
	if decl == nil || !decl.Open {
		return fmt.Errorf("cylog: relation %q is not an open relation", relation)
	}
	tuple, err := decl.Schema().Coerce(relstore.NewTuple(values...))
	if err != nil {
		return err
	}
	b.items = append(b.items, batchItem{index: idx, relation: relation, tuple: tuple})
	return nil
}

// Len returns the number of successfully staged items.
func (b *AnswerBatch) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// Errors returns the per-item rejections accumulated so far: staging-time
// validation failures plus commit-time failures (e.g. a request answered
// through another path between staging and commit).
func (b *AnswerBatch) Errors() []BatchItemError {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BatchItemError(nil), b.errs...)
}

// CommitErrors returns only the rejections recorded while the batch
// committed — staged items whose request was closed (answered elsewhere or
// withdrawn by retraction) between staging and commit. Staging-time failures
// were already returned to the staging caller; this is the set a
// round-driving loop still needs to report after RunIncremental.
func (b *AnswerBatch) CommitErrors() []BatchItemError {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BatchItemError(nil), b.commitErrs...)
}

// applyLocked commits the staged items: each tuple is inserted (newly added
// ones become seed deltas for the incremental run), request items close their
// request, and fact items sweep the pending set with the shared key matcher.
// Items are re-validated against the live pending set — a request answered
// between staging and commit is recorded in errs and skipped, never aborting
// the rest of the batch. Caller holds b.mu and e.mu.
func (b *AnswerBatch) applyLocked() {
	e := b.engine
	commitErr := func(it batchItem, err error) {
		be := BatchItemError{Index: it.index, Err: err}
		b.errs = append(b.errs, be)
		b.commitErrs = append(b.commitErrs, be)
	}
	for _, it := range b.items {
		if it.requestID != "" {
			if _, ok := e.pending[it.requestID]; !ok {
				commitErr(it, fmt.Errorf("%w: %s (closed before the batch committed)", e.missingRequestErrLocked(it.requestID), it.requestID))
				continue
			}
		}
		added, err := e.db.Relation(it.relation).Insert(it.tuple)
		if err != nil {
			// Unreachable for staged items (tuples are pre-coerced), kept as a
			// per-item error so one surprise cannot poison the batch.
			commitErr(it, err)
			continue
		}
		if added {
			e.stageDelta(it.relation, it.tuple)
			if it.requestID != "" {
				e.journalOp(OpAnswer, it.requestID, it.relation, it.tuple)
			} else {
				e.journalOp(OpAnswerFact, "", it.relation, it.tuple)
			}
		}
		if it.requestID != "" {
			e.closePendingLocked(it.requestID)
		} else {
			e.closeRequestsMatching(e.analysis.Program.DeclarationFor(it.relation), it.tuple)
		}
	}
	b.committed = true
}
