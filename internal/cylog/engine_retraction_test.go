package cylog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// approveRejectProgram is the canonical stale-negation workload: every item
// starts rejected (no approval yet), and each rejected item additionally asks
// for a human review. An approving answer must retract the stale rejected
// fact and withdraw the now-pointless review request — exactly what the
// insert-only pipeline got wrong.
const approveRejectProgram = `
rel item(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this item".
rel approved(n: int).
rel rejected(n: int).
open rel review(n: int, note: string) key(n) asks "Review this rejection".
rel reviewed(n: int).

approved(N) :- item(N), approve(N, true).
rejected(N) :- item(N), !approved(N).
reviewed(N) :- rejected(N), review(N, _).
`

// retractionConfig is one cell of the retraction differential matrix.
type retractionConfig struct {
	name        string
	columnar    bool
	parallelism int
	indexing    bool
	incremental bool
}

func retractionMatrix() []retractionConfig {
	var out []retractionConfig
	for _, columnar := range []bool{true, false} {
		for _, par := range []int{1, 4} {
			for _, indexing := range []bool{true, false} {
				for _, inc := range []bool{true, false} {
					out = append(out, retractionConfig{
						name: fmt.Sprintf("columnar=%v/par%d/indexed=%v/incremental=%v",
							columnar, par, indexing, inc),
						columnar:    columnar,
						parallelism: par,
						indexing:    indexing,
						incremental: inc,
					})
				}
			}
		}
	}
	return out
}

func (cfg retractionConfig) apply(e *Engine) {
	e.SetColumnarBindings(cfg.columnar)
	e.SetParallelism(cfg.parallelism)
	e.SetIndexing(cfg.indexing)
	e.SetIncrementalAnswering(cfg.incremental)
}

// TestRetractionStaleNegationRegression pins the bug this machinery fixes:
// approve-after-reject. On the insert-only path rejected(1) survives the
// approving answer; with retraction (the default) it is withdrawn, along with
// the review request it guarded, across every evaluation configuration.
func TestRetractionStaleNegationRegression(t *testing.T) {
	for _, cfg := range retractionMatrix() {
		t.Run(cfg.name, func(t *testing.T) {
			e, err := NewEngine(MustParse(approveRejectProgram))
			if err != nil {
				t.Fatal(err)
			}
			cfg.apply(e)
			for n := 1; n <= 3; n++ {
				if err := e.AddFact("item", n); err != nil {
					t.Fatal(err)
				}
			}
			reqs, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			// 3 approve requests + 3 review requests (everything rejected).
			if len(reqs) != 6 {
				t.Fatalf("initial requests = %v", reqs)
			}
			if got := len(e.Facts("rejected")); got != 3 {
				t.Fatalf("rejected = %v", e.Facts("rejected"))
			}
			var reviewReq1 string
			for _, r := range reqs {
				if r.Relation == "review" {
					if n, _ := r.Key()["n"].AsInt(); n == 1 {
						reviewReq1 = r.ID
					}
				}
			}
			if reviewReq1 == "" {
				t.Fatal("no review request for item 1")
			}

			batch := e.NewAnswerBatch()
			for _, r := range reqs {
				if r.Relation == "approve" {
					if n, _ := r.Key()["n"].AsInt(); n == 1 {
						if err := batch.Answer(r.ID, map[string]any{"ok": true}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			reqs, err = e.RunIncremental(batch)
			if err != nil {
				t.Fatal(err)
			}

			rejected := e.Facts("rejected")
			if len(rejected) != 2 {
				t.Fatalf("rejected after approval = %v, want items 2 and 3", rejected)
			}
			for _, tup := range rejected {
				if n, _ := tup[0].AsInt(); n == 1 {
					t.Fatalf("stale rejected(1) survived the approval: %v", rejected)
				}
			}
			if got := len(e.Facts("approved")); got != 1 {
				t.Fatalf("approved = %v", e.Facts("approved"))
			}
			// The review request whose guard vanished is withdrawn, the other
			// two stay pending (2 approve + 2 review requests remain).
			if len(reqs) != 4 {
				t.Fatalf("requests after approval = %v", reqs)
			}
			for _, r := range reqs {
				if r.ID == reviewReq1 {
					t.Fatalf("review request for the approved item should be withdrawn: %v", reqs)
				}
			}
			// A late answer to the withdrawn request reports the closed-request
			// error, distinguishable from a genuinely unknown id — but still
			// matches ErrUnknownRequest for older callers.
			err = e.Answer(reviewReq1, map[string]any{"note": "late"})
			if !errors.Is(err, ErrRequestClosed) || !errors.Is(err, ErrUnknownRequest) {
				t.Errorf("late answer to withdrawn request: %v", err)
			}
			if err := e.Answer("bogus|id", map[string]any{}); errors.Is(err, ErrRequestClosed) {
				t.Errorf("unknown id should not classify as closed: %v", err)
			}

			// The same flow with retraction off keeps the stale fact — the
			// pinned pre-retraction behaviour the default now replaces.
			legacy, err := NewEngine(MustParse(approveRejectProgram))
			if err != nil {
				t.Fatal(err)
			}
			cfg.apply(legacy)
			legacy.SetRetraction(false)
			for n := 1; n <= 3; n++ {
				legacy.AddFact("item", n)
			}
			lreqs, err := legacy.Run()
			if err != nil {
				t.Fatal(err)
			}
			lbatch := legacy.NewAnswerBatch()
			for _, r := range lreqs {
				if r.Relation == "approve" {
					if n, _ := r.Key()["n"].AsInt(); n == 1 {
						if err := lbatch.Answer(r.ID, map[string]any{"ok": true}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if _, err := legacy.RunIncremental(lbatch); err != nil {
				t.Fatal(err)
			}
			if got := len(legacy.Facts("rejected")); got != 3 {
				t.Fatalf("insert-only path should keep the stale rejection, got %v", legacy.Facts("rejected"))
			}
		})
	}
}

// TestRetractionStats pins the work accounting of the retraction phase: one
// approval retracts exactly rejected(1) and re-derives the two surviving
// rejections that were over-deleted with it.
func TestRetractionStats(t *testing.T) {
	e, err := NewEngine(MustParse(approveRejectProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(1)
	for n := 1; n <= 3; n++ {
		e.AddFact("item", n)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.RetractedTuples != 0 || s.ReDerivedTuples != 0 {
		t.Errorf("first run should retract nothing, stats = %+v", s)
	}
	batch := e.NewAnswerBatch()
	for _, r := range reqs {
		if r.Relation == "approve" {
			if n, _ := r.Key()["n"].AsInt(); n == 1 {
				if err := batch.Answer(r.ID, map[string]any{"ok": true}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := e.RunIncremental(batch); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.RetractedTuples != 1 {
		t.Errorf("RetractedTuples = %d, want 1 (rejected(1))", s.RetractedTuples)
	}
	if s.ReDerivedTuples != 2 {
		t.Errorf("ReDerivedTuples = %d, want 2 (rejected(2), rejected(3))", s.ReDerivedTuples)
	}
	if s.SeededDeltas != 1 {
		t.Errorf("SeededDeltas = %d, want 1 (the approve fact)", s.SeededDeltas)
	}
}

// TestRetractionToggleRebuilds checks SetRetraction's conservative rebuild: a
// database left stale by the insert-only path is cleaned up by the first run
// after enabling retraction.
func TestRetractionToggleRebuilds(t *testing.T) {
	e, err := NewEngine(MustParse(approveRejectProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetRetraction(false)
	e.AddFact("item", 1)
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Relation == "approve" {
			if err := e.Answer(r.ID, map[string]any{"ok": true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Facts("rejected")) != 1 {
		t.Fatalf("insert-only run should leave the stale rejection, got %v", e.Facts("rejected"))
	}
	e.SetRetraction(true)
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Facts("rejected")) != 0 {
		t.Errorf("rebuild should drop the stale rejection, got %v", e.Facts("rejected"))
	}
	for _, r := range reqs {
		if r.Relation == "review" {
			t.Errorf("rebuild should withdraw the stale review request: %v", reqs)
		}
	}
}

// TestRetractionEDBNegation covers retraction triggered by a plain EDB fact
// (no answers involved): a new edge revokes a node's endpoint status and
// withdraws the confirmation request that depended on it.
func TestRetractionEDBNegation(t *testing.T) {
	const src = `
rel node(n: int).
rel edge(a: int, b: int).
rel endpoint(n: int).
open rel confirm(n: int, ok: bool) key(n) asks "Confirm this endpoint".
rel confirmed(n: int).
endpoint(N) :- node(N), !edge(N, _).
confirmed(N) :- endpoint(N), confirm(N, true).
`
	e, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 3; n++ {
		e.AddFact("node", n)
	}
	e.AddFact("edge", 1, 2)
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 { // endpoints 2 and 3
		t.Fatalf("requests = %v", reqs)
	}
	if err := e.AddFact("edge", 3, 1); err != nil {
		t.Fatal(err)
	}
	reqs, err = e.RunIncremental(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.Facts("endpoint")); got != 1 {
		t.Fatalf("endpoint = %v, want only node 2", e.Facts("endpoint"))
	}
	if len(reqs) != 1 {
		t.Fatalf("requests after new edge = %v, want only node 2's", reqs)
	}
	if n, _ := reqs[0].Key()["n"].AsInt(); n != 2 {
		t.Errorf("surviving request = %v", reqs[0])
	}
}

// driveRetractionRounds runs the crowd loop for a fixed number of rounds under
// one configuration (full Run first, then batch + RunIncremental), answering a
// picks-driven subset of pending label requests per round. After every round
// it also replays the engine's entire history — base facts plus every answer
// ingested so far — into a fresh engine and runs it once: the from-scratch
// ground truth the round's fixpoint, requests and derived facts must match
// byte for byte.
func driveRetractionRounds(t *testing.T, cfg retractionConfig, edges, nodes, picks []uint8, rounds int) []string {
	t.Helper()
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	cfg.apply(e)
	type fact struct{ vals []any }
	var baseFacts []fact
	addFact := func(rel string, vals ...any) {
		if err := e.AddFact(rel, vals...); err != nil {
			t.Fatal(err)
		}
		baseFacts = append(baseFacts, fact{append([]any{rel}, vals...)})
	}
	for i := 0; i+1 < len(edges); i += 2 {
		addFact("edge", int(edges[i]%8), int(edges[i+1]%8))
	}
	for _, n := range nodes {
		addFact("node", int(n%8))
	}
	answered := make(map[int]string) // node -> tag

	scratch := func() string {
		f, err := NewEngine(MustParse(incrementalProgram))
		if err != nil {
			t.Fatal(err)
		}
		cfg.apply(f)
		for _, bf := range baseFacts {
			if err := f.AddFact(bf.vals[0].(string), bf.vals[1:]...); err != nil {
				t.Fatal(err)
			}
		}
		for n, tag := range answered {
			if err := f.AnswerFact("label", n, tag); err != nil {
				t.Fatal(err)
			}
		}
		reqs, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return dbFingerprint(f, reqs)
	}

	var prints []string
	var batch *AnswerBatch
	for round := 0; round < rounds; round++ {
		var reqs []OpenRequest
		var err error
		if batch == nil {
			reqs, err = e.Run()
		} else {
			reqs, err = e.RunIncremental(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := dbFingerprint(e, reqs)
		if want := scratch(); got != want {
			t.Fatalf("%s: round %d diverges from from-scratch ground truth:\n%s\nvs\n%s",
				cfg.name, round, got, want)
		}
		prints = append(prints, got)
		if len(reqs) == 0 {
			break
		}
		batch = e.NewAnswerBatch()
		ok := false
		for _, p := range picks {
			r := reqs[int(p)%len(reqs)]
			n, _ := r.Key()["n"].AsInt()
			tag := fmt.Sprintf("t%d", n)
			if err := batch.Answer(r.ID, map[string]any{"tag": tag}); err == nil {
				answered[int(n)] = tag
				ok = true
			}
		}
		if !ok {
			break
		}
	}
	return prints
}

// TestRetractionFromScratchDifferential is the acceptance check of the
// retraction machinery: across random fact sets and random negation-affecting
// answer subsets, every round's fixpoint, pending requests and derived facts
// — under {columnar, map} x {par 1, 4} x {indexed, scan} x {incremental,
// full} — are byte-identical to a full from-scratch re-run of the same facts,
// the ground truth the insert-only engine failed (answers to label shrink
// unlabeled through its negation).
func TestRetractionFromScratchDifferential(t *testing.T) {
	matrix := retractionMatrix()
	f := func(edges, nodes, picks []uint8) bool {
		if len(nodes) == 0 {
			nodes = []uint8{1}
		}
		if len(picks) == 0 {
			picks = []uint8{0}
		}
		if len(picks) > 5 {
			picks = picks[:5]
		}
		const rounds = 3
		ref := driveRetractionRounds(t, matrix[0], edges, nodes, picks, rounds)
		for _, cfg := range matrix[1:] {
			prints := driveRetractionRounds(t, cfg, edges, nodes, picks, rounds)
			if len(prints) != len(ref) {
				t.Logf("%s: %d rounds vs reference %d", cfg.name, len(prints), len(ref))
				return false
			}
			for i := range prints {
				if prints[i] != ref[i] {
					t.Logf("%s: round %d fingerprint diverges:\n%s\nvs reference:\n%s",
						cfg.name, i, prints[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestRetractionConcurrentStaging is the -race workout for retraction: worker
// goroutines stage answers into shared batches while the main loop commits
// them through RunIncremental, each commit retracting the freshly approved
// items' rejections while the next wave stages against the engine lock.
func TestRetractionConcurrentStaging(t *testing.T) {
	e, err := NewEngine(MustParse(approveRejectProgram))
	if err != nil {
		t.Fatal(err)
	}
	const items = 60
	for n := 1; n <= items; n++ {
		e.AddFact("item", n)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for rounds := 0; len(reqs) > 0 && rounds < 40; rounds++ {
		batch := e.NewAnswerBatch()
		var wg sync.WaitGroup
		const stagers = 4
		for w := 0; w < stagers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i, r := range reqs {
					if i%stagers != w {
						continue
					}
					switch r.Relation {
					case "approve":
						batch.Answer(r.ID, map[string]any{"ok": true}) //nolint:errcheck
					case "review":
						// Review answers race against the approval that
						// withdraws their request: both staging-time and
						// commit-time rejections must stay per-item.
						batch.Answer(r.ID, map[string]any{"note": "checked"}) //nolint:errcheck
					}
				}
			}(w)
		}
		wg.Wait()
		if reqs, err = e.RunIncremental(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Facts("approved")); got != items {
		t.Fatalf("approved = %d, want %d", got, items)
	}
	if got := len(e.Facts("rejected")); got != 0 {
		t.Fatalf("every rejection should be retracted, rejected = %v", e.Facts("rejected"))
	}
	if got := len(e.PendingRequests()); got != 0 {
		t.Fatalf("pending = %v", e.PendingRequests())
	}
}
