package cylog

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Parse parses CyLog source text into a Program.
//
// Grammar (informal):
//
//	program     := { statement }
//	statement   := declaration | rule | fact
//	declaration := ["open"] "rel" ident "(" coldecl {"," coldecl} ")"
//	                 ["key" "(" ident {"," ident} ")"]
//	                 ["asks" string]
//	                 ["scheme" string] "."
//	coldecl     := ident ":" typename
//	rule        := atom ":-" literal {"," literal} "."
//	literal     := ["!"] atom | term cmp term
//	fact        := ident "(" constant {"," constant} ")" "."
//	atom        := ident "(" term {"," term} ")"
//	term        := Variable | constant
//	constant    := number | string | "true" | "false"
//
// Comments run from "//" or "#" to end of line.
func Parse(src string) (*Program, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// MustParse is Parse but panics on error; intended for tests and embedded
// program templates.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// ParseError is a syntax error with position information.
type ParseError struct {
	Pos Position
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("cylog: %s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(pos Position, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, p.errorf(t.pos, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case t.kind == tokIdent && (t.text == "rel" || t.text == "open"):
			d, err := p.parseDeclaration()
			if err != nil {
				return nil, err
			}
			if prog.DeclarationFor(d.Name) != nil {
				return nil, p.errorf(d.Pos, "relation %q declared twice", d.Name)
			}
			prog.Declarations = append(prog.Declarations, d)
		case t.kind == tokIdent:
			stmt, err := p.parseRuleOrFact()
			if err != nil {
				return nil, err
			}
			switch s := stmt.(type) {
			case *Rule:
				prog.Rules = append(prog.Rules, s)
			case *Fact:
				prog.Facts = append(prog.Facts, s)
			}
		default:
			return nil, p.errorf(t.pos, "expected a declaration, rule or fact, found %s %q", t.kind, t.text)
		}
	}
	return prog, nil
}

func (p *parser) parseDeclaration() (*Declaration, error) {
	start := p.cur()
	d := &Declaration{Pos: start.pos}
	if start.text == "open" {
		d.Open = true
		p.next()
	}
	kw := p.cur()
	if kw.kind != tokIdent || kw.text != "rel" {
		return nil, p.errorf(kw.pos, "expected 'rel', found %q", kw.text)
	}
	p.next()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		typTok := p.cur()
		if typTok.kind != tokIdent {
			return nil, p.errorf(typTok.pos, "expected a type name, found %q", typTok.text)
		}
		p.next()
		typ, terr := relstore.ParseType(typTok.text)
		if terr != nil {
			return nil, p.errorf(typTok.pos, "unknown type %q", typTok.text)
		}
		for _, existing := range d.Columns {
			if existing.Name == col.text {
				return nil, p.errorf(col.pos, "duplicate column %q in relation %q", col.text, d.Name)
			}
		}
		d.Columns = append(d.Columns, ColumnDecl{Name: col.text, Type: typ})
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	// Optional clauses: key(...), asks "...", scheme "..."
	for p.cur().kind == tokIdent {
		switch p.cur().text {
		case "key":
			p.next()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			for {
				k, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if d.ColumnIndex(k.text) < 0 {
					return nil, p.errorf(k.pos, "key column %q is not a column of %q", k.text, d.Name)
				}
				d.Key = append(d.Key, k.text)
				if p.cur().kind == tokComma {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		case "asks":
			p.next()
			s, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			d.Prompt = s.text
		case "scheme":
			p.next()
			s, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			scheme := strings.ToLower(s.text)
			switch scheme {
			case "sequential", "simultaneous", "hybrid", "individual":
				d.Scheme = scheme
			default:
				return nil, p.errorf(s.pos, "unknown collaboration scheme %q", s.text)
			}
		default:
			return nil, p.errorf(p.cur().pos, "unexpected %q in declaration (want key/asks/scheme or '.')", p.cur().text)
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	if !d.Open && (d.Prompt != "" || len(d.Key) > 0 || d.Scheme != "") {
		return nil, p.errorf(d.Pos, "relation %q: key/asks/scheme clauses are only allowed on open relations", d.Name)
	}
	return d, nil
}

// parseRuleOrFact parses an atom and then decides: ":-" makes it a rule head,
// "." makes it a fact (all terms must be constants).
func (p *parser) parseRuleOrFact() (any, error) {
	head, err := p.parseAtom(false)
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokImplies:
		p.next()
		rule := &Rule{Head: head, Pos: head.Pos}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			rule.Body = append(rule.Body, lit)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		return rule, nil
	case tokDot:
		p.next()
		fact := &Fact{Relation: head.Predicate, Pos: head.Pos}
		for _, t := range head.Terms {
			c, ok := t.(Constant)
			if !ok {
				return nil, p.errorf(head.Pos, "fact %s may only contain constants", head.Predicate)
			}
			fact.Values = append(fact.Values, c.Value)
		}
		return fact, nil
	default:
		t := p.cur()
		return nil, p.errorf(t.pos, "expected ':-' or '.', found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokBang:
		p.next()
		atom, err := p.parseAtom(true)
		if err != nil {
			return nil, err
		}
		return atom, nil
	case tokIdent:
		// Could be an atom or (rarely) a comparison starting with a constant;
		// atoms always have '(' after the identifier.
		if p.toks[p.i+1].kind == tokLParen {
			return p.parseAtom(false)
		}
		return p.parseComparison()
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseAtom(negated bool) (*Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	atom := &Atom{Predicate: name.text, Negated: negated, Pos: name.pos}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		atom.Terms = append(atom.Terms, term)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return atom, nil
}

func (p *parser) parseComparison() (*Comparison, error) {
	start := p.cur().pos
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	var op CompareOp
	switch opTok.kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	default:
		return nil, p.errorf(opTok.pos, "expected a comparison operator, found %s %q", opTok.kind, opTok.text)
	}
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Comparison{Left: left, Op: op, Right: right, Pos: start}, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokVariable:
		p.next()
		return Variable(t.text), nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf(t.pos, "bad number %q", t.text)
			}
			return Constant{relstore.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t.pos, "bad number %q", t.text)
		}
		return Constant{relstore.Int(n)}, nil
	case tokString:
		p.next()
		return Constant{relstore.String(t.text)}, nil
	case tokIdent:
		// true/false are boolean constants; other lower-case identifiers are
		// symbol constants treated as strings (Datalog convention).
		p.next()
		switch t.text {
		case "true":
			return Constant{relstore.Bool(true)}, nil
		case "false":
			return Constant{relstore.Bool(false)}, nil
		case "null":
			return Constant{relstore.Null()}, nil
		default:
			return Constant{relstore.String(t.text)}, nil
		}
	default:
		return nil, p.errorf(t.pos, "expected a term, found %s %q", t.kind, t.text)
	}
}
