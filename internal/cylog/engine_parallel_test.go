package cylog

import (
	"fmt"
	"testing"
	"testing/quick"
)

// differentialProgram exercises every literal kind across several strata:
// recursion, negation over a derived relation, a comparison, and an open
// relation that generates human-task requests.
const differentialProgram = `
rel node(n: int).
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel source(n: int).
rel big(n: int).
rel unreached(n: int).
open rel label(n: int, tag: string) key(n) asks "Label this node".
rel labeled(n: int, tag: string).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
source(X) :- edge(X, _).
big(N) :- node(N), N > 3.
unreached(N) :- node(N), !reach(_, N).
labeled(N, T) :- node(N), label(N, T).
`

// fixpointFingerprint runs the engine and renders every relation's sorted
// facts plus the sorted pending requests into one string, so two evaluation
// configurations can be compared byte-for-byte.
func fixpointFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, name := range e.Database().Names() {
		out += name + ":"
		for _, tup := range e.Facts(name) {
			out += tup.String()
		}
		out += "\n"
	}
	for _, r := range reqs {
		out += r.ID + ";" + r.String() + "\n"
	}
	return out
}

// TestEngineParallelAndSequentialFixpointsAgree is the differential
// quick-check of the parallel evaluator: across random edge/node sets, the
// fixpoint (every relation) and the open requests derived at parallelism 4
// are byte-identical to SetParallelism(1), with indexing both on and off.
func TestEngineParallelAndSequentialFixpointsAgree(t *testing.T) {
	f := func(edges []uint8, nodes []uint8) bool {
		build := func(parallelism int, indexing bool) string {
			e, err := NewEngine(MustParse(differentialProgram))
			if err != nil {
				t.Fatal(err)
			}
			e.SetParallelism(parallelism)
			e.SetIndexing(indexing)
			for i := 0; i+1 < len(edges); i += 2 {
				e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8))
			}
			for _, n := range nodes {
				e.AddFact("node", int(n%8))
			}
			return fixpointFingerprint(t, e)
		}
		return build(1, true) == build(4, true) && build(1, false) == build(4, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEngineParallelShardsLargeDeltas drives an input big enough to split
// delta frontiers and full scans into shards, and asserts both that sharding
// actually engaged (ParallelTasks exceeds the variant count) and that the
// fixpoint still matches the sequential engine exactly.
func TestEngineParallelShardsLargeDeltas(t *testing.T) {
	const src = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	build := func(parallelism int) *Engine {
		e, err := NewEngine(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(parallelism)
		// Pin shards=1: this test asserts parallel-path internals
		// (ParallelTasks from contiguous variant splits), which the sharded
		// evaluator replaces wholesale under a CYLOG_SHARDS>1 run.
		e.SetShards(1)
		// 200 disjoint chains of length 10: deltas stay in the thousands for
		// several iterations, well above minShardTuples.
		for i := 0; i < 2000; i++ {
			base := (i / 10) * 11
			e.AddFact("edge", base+i%10, base+i%10+1)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq, par := build(1), build(4)
	sf, pf := seq.Facts("reach"), par.Facts("reach")
	if len(sf) != len(pf) {
		t.Fatalf("reach facts differ: sequential %d, parallel %d", len(sf), len(pf))
	}
	for i := range sf {
		if !sf[i].Equal(pf[i]) {
			t.Fatalf("reach[%d] differs: %v vs %v", i, sf[i], pf[i])
		}
	}
	ss, ps := seq.Stats(), par.Stats()
	if ss.ParallelTasks != 0 {
		t.Errorf("sequential run dispatched %d parallel tasks", ss.ParallelTasks)
	}
	if ps.ParallelTasks <= ps.RuleEvaluations {
		t.Errorf("parallel run should shard large variants: %d tasks for %d evaluations",
			ps.ParallelTasks, ps.RuleEvaluations)
	}
	if ss.DerivedFacts != ps.DerivedFacts {
		t.Errorf("derived facts differ: %d vs %d", ss.DerivedFacts, ps.DerivedFacts)
	}
}

// TestEngineParallelRaceStress is the -race workout: many strata with
// overlapping head relations (several rules deriving the same head, negation
// forcing stratum boundaries), evaluated with a large worker pool so rule
// variants and shards run concurrently against the shared database view.
func TestEngineParallelRaceStress(t *testing.T) {
	src := `
rel item(i: int, grp: int).
rel dropped(i: int).
rel keep(i: int).
rel pair(a: int, b: int).
rel linked(a: int, b: int).
rel lonely(i: int).
keep(I) :- item(I, G), G > 0.
keep(I) :- item(I, _), !dropped(I).
pair(A, B) :- item(A, G), item(B, G), A < B.
linked(A, B) :- pair(A, B).
linked(A, C) :- linked(A, B), pair(B, C).
lonely(I) :- item(I, _), !linked(I, _), !linked(_, I).
`
	e, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(8)
	// 40 groups of 8 items each plus 80 singleton groups; pair/linked fan out
	// within groups while lonely needs the singletons.
	id := 0
	for g := 1; g <= 40; g++ {
		for k := 0; k < 8; k++ {
			e.AddFact("item", id, g)
			id++
		}
	}
	for s := 0; s < 80; s++ {
		e.AddFact("item", id, 1000+id)
		id++
	}
	e.AddFact("dropped", 0)
	for round := 0; round < 3; round++ {
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Facts("lonely")); got != 80 {
		t.Errorf("lonely = %d facts, want 80", got)
	}
	// Within a group of 8, pair holds all ordered (A < B) combinations: 28.
	if got := len(e.Facts("pair")); got != 40*28 {
		t.Errorf("pair = %d facts, want %d", got, 40*28)
	}
	// Every item's group id is positive, so the first keep rule alone keeps
	// all of them; the overlapping negation rule must not change the set.
	if got := len(e.Facts("keep")); got != id {
		t.Errorf("keep = %d facts, want %d", got, id)
	}
}

// TestEngineDeltaHashing pins the hashed delta frontier: a rule whose
// recursive atom sits behind a negation barrier reaches the delta with bound
// columns and many bindings, so the engine must answer it with frontier
// probes — and produce the same fixpoint with hashing disabled.
func TestEngineDeltaHashing(t *testing.T) {
	const src = `
rel edge(a: int, b: int).
rel blocked(a: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), !blocked(Y), reach(Y, Z).
`
	build := func(hashing bool) *Engine {
		e, err := NewEngine(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(1)
		e.SetDeltaHashing(hashing)
		for i := 0; i < 400; i++ {
			base := (i / 8) * 9
			e.AddFact("edge", base+i%8, base+i%8+1)
		}
		e.AddFact("blocked", 4) // cuts the first chain
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	hashed, linear := build(true), build(false)
	if !hashed.DeltaHashingEnabled() || linear.DeltaHashingEnabled() {
		t.Fatal("SetDeltaHashing toggle not reflected")
	}
	if hashed.Stats().DeltaHashProbes == 0 {
		t.Error("delta-behind-barrier workload should use the frontier hash")
	}
	if linear.Stats().DeltaHashProbes != 0 {
		t.Error("disabled hashing still recorded frontier probes")
	}
	hf, lf := hashed.Facts("reach"), linear.Facts("reach")
	if len(hf) != len(lf) {
		t.Fatalf("reach facts differ: hashed %d, linear %d", len(hf), len(lf))
	}
	for i := range hf {
		if !hf[i].Equal(lf[i]) {
			t.Fatalf("reach[%d] differs: %v vs %v", i, hf[i], lf[i])
		}
	}
}

// TestEngineParallelismConfiguration covers the SetParallelism contract and
// the CYLOG_PARALLELISM default used by CI to force sequential runs.
func TestEngineParallelismConfiguration(t *testing.T) {
	e, err := NewEngine(MustParse(translationProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(3)
	if got := e.Parallelism(); got != 3 {
		t.Errorf("Parallelism = %d, want 3", got)
	}
	e.SetParallelism(0)
	if got := e.Parallelism(); got < 1 {
		t.Errorf("Parallelism after reset = %d, want >= 1", got)
	}

	t.Setenv("CYLOG_PARALLELISM", "5")
	e2, err := NewEngine(MustParse(translationProgram))
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Parallelism(); got != 5 {
		t.Errorf("Parallelism with CYLOG_PARALLELISM=5 = %d", got)
	}
	t.Setenv("CYLOG_PARALLELISM", "banana")
	e3, err := NewEngine(MustParse(translationProgram))
	if err != nil {
		t.Fatal(err)
	}
	if got := e3.Parallelism(); got < 1 {
		t.Errorf("Parallelism with invalid env = %d, want >= 1", got)
	}
}

// TestEngineParallelOpenRequestWorkflow re-runs the sequential-collaboration
// workflow end to end on the parallel engine: request generation, answering
// and re-derivation must behave exactly as in sequential mode.
func TestEngineParallelOpenRequestWorkflow(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(4)
	answered := 0
	_, err = e.RunToFixpointWithOracle(func(r OpenRequest) (map[string]any, bool) {
		answered++
		switch r.Relation {
		case "translated":
			sid, _ := r.Key()["sid"].AsInt()
			return map[string]any{"text": fmt.Sprintf("T%d", sid)}, true
		case "checked":
			return map[string]any{"ok": true}, true
		}
		return nil, false
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if answered != 4 {
		t.Errorf("oracle answered %d requests, want 4", answered)
	}
	if got := len(e.Facts("final")); got != 2 {
		t.Errorf("final = %d facts, want 2", got)
	}
	if len(e.PendingRequests()) != 0 {
		t.Errorf("pending = %v", e.PendingRequests())
	}
}
