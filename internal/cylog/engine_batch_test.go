package cylog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Error-path and concurrency coverage for the batched answer API: staging
// validation (unknown request, missing column, schema mismatch, duplicates),
// commit-time conflicts, single-use enforcement, and -race stress with
// staging concurrent to in-flight runs.

func newWorkflowEngineWithRequests(t *testing.T) (*Engine, []OpenRequest) {
	t.Helper()
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	return e, reqs
}

// TestAnswerBatchErrorPaths checks that every malformed item is rejected
// individually — unknown request id, missing open column, schema mismatch,
// duplicate answer, non-open/unknown relation, arity mismatch — while the
// valid items of the same batch stage and commit untouched.
func TestAnswerBatchErrorPaths(t *testing.T) {
	e, reqs := newWorkflowEngineWithRequests(t)
	b := e.NewAnswerBatch()

	if err := b.Answer("nope", map[string]any{"text": "x"}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown request id: %v", err)
	}
	if err := b.Answer(reqs[0].ID, map[string]any{}); err == nil {
		t.Error("missing open column should fail staging")
	}
	if err := b.AnswerFact("sentence", 9, "x"); err == nil {
		t.Error("non-open relation should fail staging")
	}
	if err := b.AnswerFact("missing", 1); err == nil {
		t.Error("unknown relation should fail staging")
	}
	if err := b.AnswerFact("translated", 1); err == nil {
		t.Error("arity mismatch should fail staging")
	}
	if err := b.AnswerFact("checked", 1, "not-a-bool"); err == nil {
		t.Error("schema mismatch should fail staging")
	}
	// Valid answers for both requests, then a duplicate for the first.
	for _, r := range reqs {
		sid, _ := r.Key()["sid"].AsInt()
		if err := b.Answer(r.ID, map[string]any{"text": fmt.Sprintf("T%d", sid)}); err != nil {
			t.Fatalf("valid answer rejected: %v", err)
		}
	}
	if err := b.Answer(reqs[0].ID, map[string]any{"text": "again"}); !errors.Is(err, ErrDuplicateAnswer) {
		t.Errorf("duplicate answer: %v", err)
	}
	if got := b.Len(); got != 2 {
		t.Errorf("staged items = %d, want 2", got)
	}
	errs := b.Errors()
	if len(errs) != 7 {
		t.Fatalf("batch errors = %v, want 7", errs)
	}
	// Indexes count every staging attempt, including the rejected ones.
	wantIdx := []int{0, 1, 2, 3, 4, 5, 8}
	for i, be := range errs {
		if be.Index != wantIdx[i] {
			t.Errorf("errs[%d].Index = %d, want %d", i, be.Index, wantIdx[i])
		}
		if be.Error() == "" || be.Unwrap() == nil {
			t.Errorf("errs[%d] should render and unwrap", i)
		}
	}

	// The rejected items must not poison the rest: committing inserts both
	// valid answers and derives the next stage's requests.
	next, err := e.RunIncremental(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.Facts("translated")); got != 2 {
		t.Errorf("translated = %v", e.Facts("translated"))
	}
	for _, r := range next {
		if r.Relation != "checked" {
			t.Errorf("expected checked requests after commit, got %v", r)
		}
	}
	if len(next) != 2 {
		t.Errorf("next round requests = %v", next)
	}
}

// TestAnswerBatchCommitConflict covers the stage-then-race window: a request
// answered through another path between staging and commit is reported as a
// per-item error at commit, and the batch's other items still apply.
func TestAnswerBatchCommitConflict(t *testing.T) {
	e, reqs := newWorkflowEngineWithRequests(t)
	b := e.NewAnswerBatch()
	for _, r := range reqs {
		if err := b.Answer(r.ID, map[string]any{"text": "batch"}); err != nil {
			t.Fatal(err)
		}
	}
	// Answer the first request directly, ahead of the batch.
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "direct"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(b); err != nil {
		t.Fatal(err)
	}
	errs := b.Errors()
	if len(errs) != 1 || !errors.Is(errs[0].Err, ErrUnknownRequest) {
		t.Fatalf("commit conflict errors = %v", errs)
	}
	// The conflict surfaced at commit time, so it must also appear in the
	// commit-scoped view (and classify as a closed request, not an unknown
	// id: the direct answer closed it).
	cerrs := b.CommitErrors()
	if len(cerrs) != 1 || !errors.Is(cerrs[0].Err, ErrRequestClosed) {
		t.Fatalf("CommitErrors = %v", cerrs)
	}
	// The conflicting item was skipped (the direct answer stands), the other
	// item applied.
	texts := map[string]bool{}
	for _, tup := range e.Facts("translated") {
		texts[tup[1].AsString()] = true
	}
	if !texts["direct"] || !texts["batch"] || len(texts) != 2 {
		t.Errorf("translated = %v", e.Facts("translated"))
	}
}

// TestAnswerBatchSingleUse pins the committed-batch contract: a second
// commit and any staging after commit report ErrBatchCommitted.
func TestAnswerBatchSingleUse(t *testing.T) {
	e, reqs := newWorkflowEngineWithRequests(t)
	b := e.NewAnswerBatch()
	if err := b.Answer(reqs[0].ID, map[string]any{"text": "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(b); !errors.Is(err, ErrBatchCommitted) {
		t.Errorf("second commit: %v", err)
	}
	if err := b.Answer(reqs[1].ID, map[string]any{"text": "y"}); !errors.Is(err, ErrBatchCommitted) {
		t.Errorf("staging after commit: %v", err)
	}
	if err := b.AnswerFact("translated", 7, "z"); !errors.Is(err, ErrBatchCommitted) {
		t.Errorf("fact staging after commit: %v", err)
	}
}

// TestAnswerBatchWrongEngine rejects committing a batch into an engine it
// was not staged against (its validation snapshots would be meaningless).
func TestAnswerBatchWrongEngine(t *testing.T) {
	e1, reqs := newWorkflowEngineWithRequests(t)
	e2, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	b := e1.NewAnswerBatch()
	if err := b.Answer(reqs[0].ID, map[string]any{"text": "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunIncremental(b); err == nil {
		t.Error("foreign batch should be rejected")
	}
}

// TestAnswerBatchConcurrentStagingRace is the -race workout for the staging
// contract: many goroutines stage answers and whole facts into shared and
// private batches while runs are in flight on another goroutine. Staging
// serializes on the engine lock, so everything must complete without races
// and every request must end up answered exactly once across the batches.
func TestAnswerBatchConcurrentStagingRace(t *testing.T) {
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 64; n++ {
		e.AddFact("node", n)
		if n%2 == 0 {
			e.AddFact("edge", n, n+1)
		}
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 64 {
		t.Fatalf("requests = %d, want 64", len(reqs))
	}

	// One shared batch staged from 4 goroutines, plus a private batch per
	// goroutine for whole facts, while a fifth goroutine keeps running the
	// engine (full Runs are idempotent and hold the same lock staging takes).
	shared := e.NewAnswerBatch()
	var wg sync.WaitGroup
	private := make([]*AnswerBatch, 4)
	for g := 0; g < 4; g++ {
		private[g] = e.NewAnswerBatch()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += 4 {
				n, _ := reqs[i].Key()["n"].AsInt()
				if err := shared.Answer(reqs[i].ID, map[string]any{"tag": fmt.Sprintf("t%d", n)}); err != nil {
					t.Errorf("shared staging: %v", err)
				}
				if err := private[g].AnswerFact("label", int(n), fmt.Sprintf("p%d", n)); err != nil {
					t.Errorf("private staging: %v", err)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := e.Run(); err != nil {
				t.Errorf("concurrent run: %v", err)
			}
		}
	}()
	wg.Wait()

	if got := shared.Len(); got != 64 {
		t.Fatalf("shared batch staged %d items, want 64", got)
	}
	if errs := shared.Errors(); len(errs) != 0 {
		t.Fatalf("shared batch errors: %v", errs)
	}
	if _, err := e.RunIncremental(shared); err != nil {
		t.Fatal(err)
	}
	// The private batches duplicate the same keys as whole facts: committing
	// them inserts nothing new (facts dedup, requests already closed).
	for _, p := range private {
		if _, err := e.RunIncremental(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Facts("labeled")); got != 2*64 {
		t.Fatalf("labeled = %d facts, want %d (batch answer + private fact per node)", got, 2*64)
	}
	if pending := e.PendingRequests(); len(pending) != 0 {
		t.Fatalf("pending after all batches = %v", pending)
	}
}
