package cylog

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// planCacheEngine builds an engine over the standard differential program
// with enough edge facts for the planner to have real statistics to chew on.
func planCacheEngine(t *testing.T, facts int) *Engine {
	t.Helper()
	e, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < facts; i++ {
		if err := e.AddFact("edge", i%16, (i+5)%16); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPlanCachePointerIdentity pins the cache's hit contract: repeated
// lookups under an unchanged (stats epochs, toggles) key return the same
// *compiledPlan, and a hit is counted while the plan is served.
func TestPlanCachePointerIdentity(t *testing.T) {
	e := planCacheEngine(t, 64)
	r := e.analysis.Program.Rules[0]
	var s Stats
	p1 := e.cachedPlan(r, -1, &s)
	p2 := e.cachedPlan(r, -1, &s)
	if p1 != p2 {
		t.Fatalf("back-to-back lookups returned distinct plans %p vs %p", p1, p2)
	}
	if s.PlanCacheHits == 0 {
		t.Fatalf("second lookup should be a hit, stats %+v", s)
	}
	// Distinct delta variants are distinct cache entries under the same key.
	pd := e.cachedPlan(r, 0, &s)
	if pd == p1 {
		t.Fatal("delta variant shared the unrestricted plan")
	}
	if again := e.cachedPlan(r, 0, &s); again != pd {
		t.Fatalf("delta-variant lookup not pointer-stable: %p vs %p", again, pd)
	}
}

// TestPlanCacheInvalidationProperty is the invalidation property test: after
// any stats-epoch bump of a relation in the rule's body, the old plan is
// never served again — the next lookup misses, recompiles, and publishes
// under the new key. Randomized over how much churn it takes to drift the
// estimates past the bump threshold.
func TestPlanCacheInvalidationProperty(t *testing.T) {
	f := func(extra []uint16) bool {
		e := planCacheEngine(t, 48)
		r := e.analysis.Program.Rules[0] // reach(X,Y) :- edge(X,Y).
		var s Stats
		stale := e.cachedPlan(r, -1, &s)
		keyBefore := e.ruleStatsKey(r)

		edge := e.db.Relation("edge")
		epochBefore := edge.StatsEpoch()
		// Churn the body relation until its stats epoch bumps. The drift
		// threshold guarantees this terminates: row count grows without
		// bound while the marker stays fixed.
		i := 0
		for edge.StatsEpoch() == epochBefore {
			v := 1000 + i
			if len(extra) > 0 {
				v = 1000 + int(extra[i%len(extra)]) + i
			}
			if _, err := edge.Insert(relstore.NewTuple(v, v+1)); err != nil {
				t.Fatal(err)
			}
			i++
		}

		if got := e.ruleStatsKey(r); got == keyBefore {
			t.Log("stats epoch bumped but the rule's cache key did not change")
			return false
		}
		var after Stats
		fresh := e.cachedPlan(r, -1, &after)
		if fresh == stale {
			t.Log("stale plan served after a stats-epoch bump")
			return false
		}
		if after.PlanCacheMisses == 0 || after.PlanCacheHits != 0 {
			t.Logf("post-bump lookup should be a pure miss, stats %+v", after)
			return false
		}
		// The recompiled plan is now the published one.
		if again := e.cachedPlan(r, -1, &after); again != fresh {
			t.Log("post-bump plan not pointer-stable")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPlanCacheEpochBumpCountsMisses asserts the same invariant black-box
// through the run loop: any run that observes stats-epoch bumps
// (StatsEpochBumps > 0) and evaluates rules must also record plan-cache
// misses — a bump always retires cached plans before they can be reused.
func TestPlanCacheEpochBumpCountsMisses(t *testing.T) {
	e, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 32; i++ {
			e.AddFact("edge", round*100+i, round*100+i+1)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		s := e.Stats()
		if s.StatsEpochBumps > 0 && s.PlanCacheMisses == 0 {
			t.Fatalf("round %d: %d epoch bumps but zero plan-cache misses (stale plans reused), stats %+v",
				round, s.StatsEpochBumps, s)
		}
	}
}

// TestPlanCacheConcurrentPointerIdentity is the -race workout for the cache:
// many goroutines race cold lookups of the same rule variants. Losers of the
// publish race must adopt the winner's plan, so every goroutine observes the
// same pointer per (rule, delta) pair — and later toggling cost planning off
// and on mid-flight never panics or serves a plan across the toggle key.
func TestPlanCacheConcurrentPointerIdentity(t *testing.T) {
	e := planCacheEngine(t, 64)
	rules := e.analysis.Program.Rules
	const goroutines = 16
	got := make([][]*compiledPlan, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, r := range rules {
				got[g] = append(got[g], e.cachedPlan(r, -1, nil))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range got[0] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw plan %p for rule %d, goroutine 0 saw %p",
					g, got[g][i], i, got[0][i])
			}
		}
	}
}

// TestPlanCacheToggleFingerprint pins the toggle half of the cache key: a
// plan compiled under one toggle byte is never served under another, and
// flipping back recompiles rather than resurrecting (the whole map retires
// on any key change).
func TestPlanCacheToggleFingerprint(t *testing.T) {
	e := planCacheEngine(t, 32)
	r := e.analysis.Program.Rules[0]
	p1 := e.cachedPlan(r, -1, nil)

	e.SetMode(Naive)
	var s Stats
	p2 := e.cachedPlan(r, -1, &s)
	if s.PlanCacheMisses != 1 || s.PlanCacheHits != 0 {
		t.Fatalf("toggle flip should force a miss, stats %+v", s)
	}
	if again := e.cachedPlan(r, -1, &s); again != p2 {
		t.Fatal("post-toggle plan not pointer-stable")
	}

	e.SetMode(SemiNaive)
	s = Stats{}
	p3 := e.cachedPlan(r, -1, &s)
	if s.PlanCacheMisses != 1 {
		t.Fatalf("flipping back should recompile (old map retired), stats %+v", s)
	}
	if p3 == p2 {
		t.Fatal("plan survived across a toggle change")
	}
	_ = p1
}
