package cylog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF      tokenKind = iota
	tokIdent              // lower-case identifier: relation names, keywords, symbol constants
	tokVariable           // upper-case identifier or _
	tokNumber             // integer or float literal
	tokString             // double-quoted string literal
	tokLParen             // (
	tokRParen             // )
	tokComma              // ,
	tokDot                // .
	tokColon              // :
	tokImplies            // :-
	tokBang               // !
	tokEq                 // =
	tokNe                 // !=
	tokLt                 // <
	tokLe                 // <=
	tokGt                 // >
	tokGe                 // >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokImplies:
		return "':-'"
	case tokBang:
		return "'!'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical token with its text and position.
type token struct {
	kind tokenKind
	text string
	pos  Position
}

// lexError is a lexical error with position information.
type lexError struct {
	pos Position
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("cylog: %s: %s", e.pos, e.msg) }

// lexer turns CyLog source text into tokens. Comments start with "//" or "#"
// and run to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(pos Position, format string, args ...any) error {
	return &lexError{pos: pos, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) pos() Position { return Position{Line: l.line, Col: l.col} }

func (l *lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == 0:
			return
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			l.skipLine()
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for {
		r := l.advance()
		if r == '\n' || r == 0 {
			return
		}
	}
}

// tokens lexes the whole input.
func (l *lexer) tokens() ([]token, error) {
	var out []token
	for {
		l.skipSpaceAndComments()
		pos := l.pos()
		r := l.peek()
		if r == 0 {
			out = append(out, token{kind: tokEOF, pos: pos})
			return out, nil
		}
		switch {
		case r == '(':
			l.advance()
			out = append(out, token{tokLParen, "(", pos})
		case r == ')':
			l.advance()
			out = append(out, token{tokRParen, ")", pos})
		case r == ',':
			l.advance()
			out = append(out, token{tokComma, ",", pos})
		case r == '.':
			l.advance()
			out = append(out, token{tokDot, ".", pos})
		case r == '!':
			l.advance()
			if l.peek() == '=' {
				l.advance()
				out = append(out, token{tokNe, "!=", pos})
			} else {
				out = append(out, token{tokBang, "!", pos})
			}
		case r == '=':
			l.advance()
			out = append(out, token{tokEq, "=", pos})
		case r == '<':
			l.advance()
			if l.peek() == '=' {
				l.advance()
				out = append(out, token{tokLe, "<=", pos})
			} else {
				out = append(out, token{tokLt, "<", pos})
			}
		case r == '>':
			l.advance()
			if l.peek() == '=' {
				l.advance()
				out = append(out, token{tokGe, ">=", pos})
			} else {
				out = append(out, token{tokGt, ">", pos})
			}
		case r == ':':
			l.advance()
			if l.peek() == '-' {
				l.advance()
				out = append(out, token{tokImplies, ":-", pos})
			} else {
				out = append(out, token{tokColon, ":", pos})
			}
		case r == '"':
			s, err := l.lexString(pos)
			if err != nil {
				return nil, err
			}
			out = append(out, token{tokString, s, pos})
		case unicode.IsDigit(r) || (r == '-' && l.nextIsDigit()):
			out = append(out, token{tokNumber, l.lexNumber(), pos})
		case unicode.IsLetter(r) || r == '_':
			text := l.lexIdent()
			kind := tokIdent
			first, _ := utf8.DecodeRuneInString(text)
			if unicode.IsUpper(first) || first == '_' {
				kind = tokVariable
			}
			out = append(out, token{kind, text, pos})
		default:
			return nil, l.errorf(pos, "unexpected character %q", r)
		}
	}
}

func (l *lexer) nextIsDigit() bool {
	rest := l.src[l.off:]
	if len(rest) < 2 {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest[1:])
	return unicode.IsDigit(r)
}

func (l *lexer) lexString(start Position) (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.advance()
		switch r {
		case 0, '\n':
			return "", l.errorf(start, "unterminated string literal")
		case '\\':
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", l.errorf(start, "unknown escape \\%c in string literal", esc)
			}
		case '"':
			return b.String(), nil
		default:
			b.WriteRune(r)
		}
	}
}

func (l *lexer) lexNumber() string {
	var b strings.Builder
	if l.peek() == '-' {
		b.WriteRune(l.advance())
	}
	for unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	if l.peek() == '.' {
		// Only part of the number if followed by a digit; otherwise it is the
		// statement terminator.
		rest := l.src[l.off:]
		if len(rest) >= 2 {
			r, _ := utf8.DecodeRuneInString(rest[1:])
			if unicode.IsDigit(r) {
				b.WriteRune(l.advance())
				for unicode.IsDigit(l.peek()) {
					b.WriteRune(l.advance())
				}
			}
		}
	}
	return b.String()
}

func (l *lexer) lexIdent() string {
	var b strings.Builder
	for {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(l.advance())
			continue
		}
		return b.String()
	}
}
