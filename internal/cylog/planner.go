package cylog

import (
	"sort"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// This file implements the rule planner: a greedy join orderer in the style
// of pattern-based Datalog engines (cf. janus-datalog's
// reorder-plan-by-relations). For every rule evaluation the planner decides
//
//   - the order in which body literals are joined, and
//   - which term positions of each atom are already bound when the atom is
//     reached (its probe columns), so the engine can answer the join with an
//     indexed equality lookup instead of a full-relation scan.
//
// Reordering is only ever applied to positive atoms over *closed* relations,
// because the engine's observable behaviour depends on the evaluation
// position of everything else:
//
//   - open atoms generate human task requests from the bindings that reach
//     them, so the set of literals evaluated before an open atom must stay
//     exactly as written;
//   - negated atoms and comparisons filter with respect to the variables
//     bound at their textual position (an unbound comparison drops bindings;
//     a partially bound negation matches more broadly), so moving them would
//     change rule semantics.
//
// Those literals therefore act as barriers: they stay in source order, and
// the planner greedily reorders only the runs of closed positive atoms
// between them. Within a run the choice is boundness-driven — atoms whose
// join columns are already bound come first (they can be answered by an index
// probe). Ties between equally-bound atoms break by estimated matches per
// probe when the catalog carries per-column distinct counts (cost-aware
// planning, cylog.SetCostPlanning), then by cardinality, then by source
// position so plans are deterministic and stable.

// planStep is one body literal in execution order.
type planStep struct {
	lit Literal
	// bodyIndex is the literal's position in the original rule body (used to
	// recognise the semi-naive delta atom and for stable ordering).
	bodyIndex int
	// probeCols lists the term positions of an atom that are bound when the
	// step runs: positions holding constants or variables bound by earlier
	// steps. The engine turns them into indexed equality probes. Empty for
	// comparisons and for atoms with no bound positions.
	probeCols []int
	// estMatches is the cost planner's estimate of how many tuples this step
	// matches per input binding — |R| / Π distinct(probe column), rounded up —
	// which the columnar join uses to pre-size its output batch. 0 means no
	// estimate (catalog without distinct counts, or an empty relation).
	estMatches int
}

// planCatalog supplies the planner with the catalog facts it needs: which
// relations are open, the current cardinality of a relation (the selectivity
// estimate for unbound atoms), and — when cost-aware planning is active —
// per-column distinct-count estimates. A nil distinct leaves the planner
// cardinality-only, the reference behaviour of SetCostPlanning(false).
type planCatalog struct {
	isOpen   func(predicate string) bool
	card     func(predicate string) int
	distinct func(predicate string, col int) int
}

// estMatchesPerProbe estimates how many tuples of the atom's relation match
// one input binding with the given columns bound: the relation's cardinality
// divided by the product of the bound columns' distinct counts — the uniform
// independence assumption every textbook selectivity model starts from. It
// returns -1 when the catalog has no distinct counts.
func estMatchesPerProbe(cat planCatalog, a *Atom, probeCols []int) float64 {
	if cat.distinct == nil {
		return -1
	}
	est := float64(cat.card(a.Predicate))
	for _, c := range probeCols {
		if d := cat.distinct(a.Predicate, c); d > 1 {
			est /= float64(d)
		}
	}
	return est
}

// planRule orders the body of r for one evaluation pass. deltaAtom is the
// body index of the atom restricted to an explicit tuple set — the semi-naive
// delta frontier, a seed delta of an incremental run, or a shard of a
// parallel full scan — and -1 for an unrestricted pass. Within its run the
// restricted atom is always scheduled first, since its tuple set is the
// smallest and most selective input of the pass (for full-scan shards the
// engine only restricts the atom this planner would have scheduled first
// anyway, so the plan is unchanged).
//
// Seeded incremental passes widen what deltaAtom can point at: a recursive
// fixpoint only restricts in-stratum (closed, derived) atoms, but a seed
// delta names any relation answers or fresh facts landed in — most often an
// *open* relation. Open atoms are barriers, so a seeded open delta atom is
// not pulled to the front: it keeps its source position (request generation
// depends on what is bound when it runs) and the restriction applies there,
// while the closed atoms around it reorder exactly as in a full pass.
func planRule(r *Rule, deltaAtom int, cat planCatalog) []planStep {
	bound := make(map[string]bool)
	steps := make([]planStep, 0, len(r.Body))

	var run []int // body indexes of the current run of reorderable atoms
	flush := func() {
		for len(run) > 0 {
			best := pickAtom(r, run, deltaAtom, bound, cat)
			atom := r.Body[run[best]].(*Atom)
			probe := probeColumns(atom, bound)
			steps = append(steps, planStep{
				lit:        atom,
				bodyIndex:  run[best],
				probeCols:  probe,
				estMatches: stepEstimate(cat, atom, probe),
			})
			bindAtomVars(atom, bound)
			run = append(run[:best], run[best+1:]...)
		}
	}

	for i, lit := range r.Body {
		if atom, ok := lit.(*Atom); ok && !atom.Negated && !cat.isOpen(atom.Predicate) {
			run = append(run, i)
			continue
		}
		flush()
		step := planStep{lit: lit, bodyIndex: i}
		if atom, ok := lit.(*Atom); ok {
			step.probeCols = probeColumns(atom, bound)
			if !atom.Negated {
				step.estMatches = stepEstimate(cat, atom, step.probeCols)
				bindAtomVars(atom, bound)
			}
		}
		steps = append(steps, step)
	}
	flush()
	return steps
}

// stepEstimate converts the per-probe match estimate into the integer hint a
// planStep carries: rounded up, at least 1 for any non-empty relation, and 0
// when there is no estimate to give.
func stepEstimate(cat planCatalog, a *Atom, probeCols []int) int {
	est := estMatchesPerProbe(cat, a, probeCols)
	if est <= 0 {
		return 0
	}
	n := int(est)
	if float64(n) < est {
		n++
	}
	return n
}

// planShardAtom returns the body index of the atom an unrestricted
// evaluation pass can be partitioned on — the plan's first step, when it is a
// closed positive atom answered by an unbound full scan — or -1 when the pass
// must stay whole (leading barrier, open atom, or a probe-answerable first
// atom, whose restriction would trade an index lookup for partition scans).
// Both partitioned evaluators lean on this: the parallel path splits the
// atom's relation into contiguous shards, the sharded path into hash
// partitions. It takes the already-computed plan (so shard-prefix decisions
// share the engine's compiled-plan cache instead of replanning); restricting
// the returned atom via the delta mechanism reproduces that plan exactly,
// since a restricted atom always leads its run.
func planShardAtom(steps []planStep, isOpen func(string) bool) int {
	if len(steps) == 0 {
		return -1
	}
	if a, ok := steps[0].lit.(*Atom); ok && !a.Negated && !isOpen(a.Predicate) && len(steps[0].probeCols) == 0 {
		return steps[0].bodyIndex
	}
	return -1
}

// identityPlan returns the body in source order with no probe columns — the
// seed scan-evaluation path, used when indexing is disabled and as the
// reference side of differential tests.
func identityPlan(r *Rule) []planStep {
	steps := make([]planStep, len(r.Body))
	for i, lit := range r.Body {
		steps[i] = planStep{lit: lit, bodyIndex: i}
	}
	return steps
}

// pickAtom returns the index into run of the atom to schedule next: the delta
// atom if present, otherwise the atom with the most bound term positions.
// Equally-bound atoms order by estimated matches per probe when the catalog
// carries distinct counts (real selectivity: a probe on a near-unique column
// of a large relation beats one fanning out over a skewed column of a small
// one), then by smaller relation cardinality, then by source position.
func pickAtom(r *Rule, run []int, deltaAtom int, bound map[string]bool, cat planCatalog) int {
	type score struct {
		runIndex  int
		boundCols int
		est       float64
		card      int
		bodyIndex int
	}
	scores := make([]score, len(run))
	for i, bi := range run {
		if bi == deltaAtom {
			return i
		}
		atom := r.Body[bi].(*Atom)
		probe := probeColumns(atom, bound)
		scores[i] = score{
			runIndex:  i,
			boundCols: len(probe),
			est:       estMatchesPerProbe(cat, atom, probe),
			card:      cat.card(atom.Predicate),
			bodyIndex: bi,
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		a, b := scores[i], scores[j]
		if a.boundCols != b.boundCols {
			return a.boundCols > b.boundCols
		}
		if a.est >= 0 && b.est >= 0 && a.est != b.est {
			return a.est < b.est
		}
		if a.card != b.card {
			return a.card < b.card
		}
		return a.bodyIndex < b.bodyIndex
	})
	return scores[0].runIndex
}

// probeColumns returns the term positions of the atom holding constants or
// variables already bound, i.e. the columns an equality probe can constrain.
// Repeated variables contribute every position once the variable is bound.
func probeColumns(a *Atom, bound map[string]bool) []int {
	var cols []int
	for i, term := range a.Terms {
		switch tm := term.(type) {
		case Constant:
			cols = append(cols, i)
		case Variable:
			if !tm.Anonymous() && bound[string(tm)] {
				cols = append(cols, i)
			}
		}
	}
	return cols
}

// bindAtomVars marks the atom's variables as bound after it is scheduled.
func bindAtomVars(a *Atom, bound map[string]bool) {
	for _, v := range a.Variables() {
		if v != "_" {
			bound[v] = true
		}
	}
}

// Binding-row slot schemas
//
// The columnar evaluation path replaces the map[string]Value binding with a
// flat []Value row: every variable of a rule is assigned a fixed slot, and
// each literal's terms are pre-resolved to slot references so the hot join
// loop never touches a map or a variable name. The schema is static per rule
// (it depends only on the rule text, not on the plan or the delta variant), so
// the engine builds it once at construction and shares it across concurrent
// rule evaluations.

// Sentinel slot values for terms that do not name a row slot.
const (
	// slotConstant marks a term holding a ground constant; konst carries it.
	slotConstant = -1
	// slotAnon marks the anonymous variable "_", which never binds.
	slotAnon = -2
)

// maxRowSlots is the widest rule the columnar path supports: boundness is a
// uint64 bitmask, one bit per slot. Rules with more variables (none exist in
// practice) transparently fall back to the map-binding path.
const maxRowSlots = 64

// termRef is one literal term resolved against a rule's slot schema: either a
// row slot (>= 0), a constant (slotConstant, value in konst), or the
// anonymous variable (slotAnon).
type termRef struct {
	slot  int
	konst relstore.Value
}

// value reads the term's value under a binding row (the row's slot values
// plus its bound-slot mask), reporting whether it is bound — the row-path
// counterpart of termValue.
func (ref termRef) value(row []relstore.Value, mask uint64) (relstore.Value, bool) {
	switch ref.slot {
	case slotConstant:
		return ref.konst, true
	case slotAnon:
		return relstore.Null(), false
	default:
		if mask&(uint64(1)<<uint(ref.slot)) != 0 {
			return row[ref.slot], true
		}
		return relstore.Null(), false
	}
}

// rowSchema is the compact variable→slot assignment of one rule plus the
// pre-resolved term references of every literal (and the head), so columnar
// evaluation addresses values by position only.
type rowSchema struct {
	// vars maps slot -> variable name (the analyzer's inventory order).
	vars []string
	// slots maps variable name -> slot.
	slots map[string]int
	// atoms holds the per-term slot references of every body atom.
	atoms map[*Atom][]termRef
	// comps holds the left/right slot references of every comparison.
	comps map[*Comparison][2]termRef
	// head holds the head terms' slot references, in head column order.
	head []termRef
}

// newRowSchema assigns slots for the rule's variable inventory (as computed by
// the analyzer) and resolves every literal. It returns nil when the rule has
// more variables than the bitmask supports, signalling the engine to fall back
// to map bindings for this rule.
func newRowSchema(r *Rule, vars []string) *rowSchema {
	if len(vars) > maxRowSlots {
		return nil
	}
	rs := &rowSchema{
		vars:  vars,
		slots: make(map[string]int, len(vars)),
		atoms: make(map[*Atom][]termRef, len(r.Body)),
		comps: make(map[*Comparison][2]termRef),
	}
	for i, v := range vars {
		rs.slots[v] = i
	}
	for _, lit := range r.Body {
		switch l := lit.(type) {
		case *Atom:
			rs.atoms[l] = rs.resolveTerms(l.Terms)
		case *Comparison:
			rs.comps[l] = [2]termRef{rs.resolveTerm(l.Left), rs.resolveTerm(l.Right)}
		}
	}
	rs.head = rs.resolveTerms(r.Head.Terms)
	return rs
}

func (rs *rowSchema) resolveTerms(terms []Term) []termRef {
	out := make([]termRef, len(terms))
	for i, t := range terms {
		out[i] = rs.resolveTerm(t)
	}
	return out
}

func (rs *rowSchema) resolveTerm(t Term) termRef {
	switch tm := t.(type) {
	case Constant:
		return termRef{slot: slotConstant, konst: tm.Value}
	case Variable:
		if tm.Anonymous() {
			return termRef{slot: slotAnon}
		}
		if s, ok := rs.slots[string(tm)]; ok {
			return termRef{slot: s}
		}
		// Unreachable for analyzed rules: the inventory covers every variable.
		return termRef{slot: slotAnon}
	default:
		return termRef{slot: slotAnon}
	}
}
