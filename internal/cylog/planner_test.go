package cylog

import (
	"fmt"
	"testing"
	"testing/quick"
)

// testCatalog builds a planCatalog from static cardinalities and an open set.
func testCatalog(card map[string]int, open ...string) planCatalog {
	openSet := make(map[string]bool, len(open))
	for _, o := range open {
		openSet[o] = true
	}
	return planCatalog{
		isOpen: func(p string) bool { return openSet[p] },
		card:   func(p string) int { return card[p] },
	}
}

func planOrder(steps []planStep) []int {
	out := make([]int, len(steps))
	for i, s := range steps {
		out[i] = s.bodyIndex
	}
	return out
}

func TestPlannerBoundnessDrivenOrder(t *testing.T) {
	// big is huge but its first column is bound by small, so after small is
	// joined the planner should prefer probing big over scanning mid.
	p := MustParse(`
rel small(x: int).
rel mid(y: int, z: int).
rel big(x: int, y: int).
rel out(x: int, z: int).
out(X, Z) :- mid(Y, Z), big(X, Y), small(X).
`)
	r := p.Rules[0]
	cat := testCatalog(map[string]int{"small": 10, "mid": 500, "big": 100000})
	steps := planRule(r, -1, cat)
	// Greedy: nothing bound yet -> smallest relation first (small, card 10).
	// That binds X -> big has one bound column, mid none -> big next, then mid.
	want := []int{2, 1, 0}
	got := planOrder(steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan order = %v, want %v", got, want)
		}
	}
	// big is reached with X bound: probe column 0.
	if len(steps[1].probeCols) != 1 || steps[1].probeCols[0] != 0 {
		t.Errorf("big probeCols = %v, want [0]", steps[1].probeCols)
	}
	// mid is reached with Y bound (from big): probe column 0.
	if len(steps[2].probeCols) != 1 || steps[2].probeCols[0] != 0 {
		t.Errorf("mid probeCols = %v, want [0]", steps[2].probeCols)
	}
}

func TestPlannerConstantsCountAsBound(t *testing.T) {
	p := MustParse(`
rel worker(w: string, lang: string).
rel sentence(s: int, text: string).
rel eligible(w: string, s: int).
eligible(W, S) :- sentence(S, _), worker(W, "en").
`)
	r := p.Rules[0]
	// worker is larger, but its constant-bound column makes it probeable, so
	// it is scheduled first.
	cat := testCatalog(map[string]int{"worker": 1000, "sentence": 100})
	steps := planRule(r, -1, cat)
	if got := planOrder(steps); got[0] != 1 || got[1] != 0 {
		t.Fatalf("plan order = %v, want [1 0]", got)
	}
	if len(steps[0].probeCols) != 1 || steps[0].probeCols[0] != 1 {
		t.Errorf("worker probeCols = %v, want [1]", steps[0].probeCols)
	}
}

func TestPlannerIsStable(t *testing.T) {
	p := MustParse(`
rel a(x: int).
rel b(x: int).
rel c(x: int).
rel out(x: int).
out(X) :- a(X), b(X), c(X).
`)
	r := p.Rules[0]
	// Equal cardinalities: ties resolve by source position, and repeated
	// planning yields the identical order.
	cat := testCatalog(map[string]int{"a": 7, "b": 7, "c": 7})
	first := planOrder(planRule(r, -1, cat))
	want := []int{0, 1, 2}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("tie-broken order = %v, want %v", first, want)
		}
	}
	for i := 0; i < 10; i++ {
		again := planOrder(planRule(r, -1, cat))
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("plan not stable: %v vs %v", again, first)
			}
		}
	}
}

func TestPlannerDeltaAtomFirst(t *testing.T) {
	p := MustParse(`
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`)
	r := p.Rules[0]
	// Even though edge is (claimed) far smaller than reach, the delta-
	// restricted atom leads its run: the delta frontier is the real input.
	cat := testCatalog(map[string]int{"reach": 100000, "edge": 10})
	steps := planRule(r, 0, cat)
	if got := planOrder(steps); got[0] != 0 || got[1] != 1 {
		t.Fatalf("delta plan order = %v, want [0 1]", got)
	}
	// edge is then probed on its first column (Y bound by the delta atom).
	if len(steps[1].probeCols) != 1 || steps[1].probeCols[0] != 0 {
		t.Errorf("edge probeCols = %v, want [0]", steps[1].probeCols)
	}
}

func TestPlannerBarriersStayInSourceOrder(t *testing.T) {
	p := MustParse(`
rel sentence(s: int).
rel done(s: int).
open rel translated(s: int, text: string) key(s) asks "translate".
rel pending(s: int).
pending(S) :- sentence(S), translated(S, _), !done(S), S > 0.
`)
	r := p.Rules[0]
	cat := testCatalog(map[string]int{"sentence": 50, "done": 50, "translated": 0}, "translated")
	steps := planRule(r, -1, cat)
	got := planOrder(steps)
	want := []int{0, 1, 2, 3} // open atom, negation and comparison are pinned
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("barrier order = %v, want %v", got, want)
		}
	}
	// The negated atom still gets probe columns from the bound set.
	if len(steps[2].probeCols) != 1 || steps[2].probeCols[0] != 0 {
		t.Errorf("negated done probeCols = %v, want [0]", steps[2].probeCols)
	}
}

func TestPlannerIdentityPlanPreservesBody(t *testing.T) {
	p := MustParse(`
rel a(x: int).
rel b(x: int).
rel out(x: int).
out(X) :- b(X), a(X), X > 0.
`)
	steps := identityPlan(p.Rules[0])
	if got := planOrder(steps); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("identity order = %v", got)
	}
	for _, s := range steps {
		if s.probeCols != nil {
			t.Errorf("identity plan should carry no probe columns, got %v", s.probeCols)
		}
	}
}

func TestEngineIndexHitsCounted(t *testing.T) {
	src := `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	e, err := NewEngine(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if !e.IndexingEnabled() {
		t.Fatal("indexing should be enabled by default")
	}
	// Enough edges to clear the auto-index threshold.
	for i := 0; i < 4*autoIndexMinRows; i++ {
		e.AddFact("edge", i, i+1)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.IndexProbes == 0 || s.IndexHits == 0 {
		t.Errorf("planner did not engage: stats = %+v", s)
	}
	if s.IndexHits > s.IndexProbes {
		t.Errorf("hits (%d) cannot exceed probes (%d)", s.IndexHits, s.IndexProbes)
	}
	// The recurring bound join key on edge(a) earned an index.
	if !e.Database().Relation("edge").HasIndex("a") {
		t.Errorf("edge should have an auto-created index on a; has %v",
			e.Database().Relation("edge").IndexedColumns())
	}

	// The scan path reports scans and no probes.
	e2, _ := NewEngine(MustParse(src))
	e2.SetIndexing(false)
	for i := 0; i < 4*autoIndexMinRows; i++ {
		e2.AddFact("edge", i, i+1)
	}
	e2.Run()
	s2 := e2.Stats()
	if s2.IndexProbes != 0 || s2.IndexHits != 0 {
		t.Errorf("scan path should not probe: stats = %+v", s2)
	}
	if s2.FullScans == 0 {
		t.Errorf("scan path should report full scans: stats = %+v", s2)
	}
}

func TestEngineSmallRelationsAreNotIndexed(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < autoIndexMinRows/2; i++ {
		e.AddFact("edge", i, i+1)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Database().Relation("edge").IndexedColumns()) != 0 {
		t.Errorf("tiny relation should not be auto-indexed: %v",
			e.Database().Relation("edge").IndexedColumns())
	}
}

// TestEngineIndexedAndScanFixpointsAgree is the differential test of the
// tentpole: on randomized programs the planned, index-probing pipeline must
// derive byte-identical fixpoints to the source-order scan path.
func TestEngineIndexedAndScanFixpointsAgree(t *testing.T) {
	src := `
rel edge(a: int, b: int).
rel label(a: int, l: string).
rel reach(a: int, b: int).
rel tagged(a: int, b: int, l: string).
rel far(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
tagged(X, Y, L) :- reach(X, Y), label(Y, L).
far(X, Y) :- reach(X, Y), !edge(X, Y), X != Y.
`
	labels := []string{"red", "green", "blue"}
	f := func(edges []uint8, labeled []uint8) bool {
		fingerprint := func(indexing bool) string {
			e, err := NewEngine(MustParse(src))
			if err != nil {
				return "parse-error"
			}
			e.SetIndexing(indexing)
			for i := 0; i+1 < len(edges); i += 2 {
				e.AddFact("edge", int(edges[i]%16), int(edges[i+1]%16))
			}
			for _, n := range labeled {
				e.AddFact("label", int(n%16), labels[int(n)%len(labels)])
			}
			if _, err := e.Run(); err != nil {
				return "run-error"
			}
			out := ""
			for _, rel := range []string{"reach", "tagged", "far"} {
				out += rel + ":"
				for _, tup := range e.Facts(rel) {
					out += tup.Key() + ";"
				}
			}
			return out
		}
		return fingerprint(true) == fingerprint(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineIndexedAndScanRequestsAgree checks the other observable output of
// evaluation — open task requests — is order-insensitive too, i.e. barrier
// handling preserves request generation exactly.
func TestEngineIndexedAndScanRequestsAgree(t *testing.T) {
	src := `
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "translate".
rel pending(sid: int).
pending(S) :- sentence(S, _), translated(S, _).
`
	f := func(sids []uint8) bool {
		requests := func(indexing bool) string {
			e, err := NewEngine(MustParse(src))
			if err != nil {
				return "parse-error"
			}
			e.SetIndexing(indexing)
			for _, s := range sids {
				e.AddFact("sentence", int(s%32), fmt.Sprintf("s%d", s))
			}
			reqs, err := e.Run()
			if err != nil {
				return "run-error"
			}
			out := ""
			for _, r := range reqs {
				out += r.ID + ";"
			}
			return out
		}
		return requests(true) == requests(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPlannerSeededDeltaSelection pins delta-variant planning for seeded
// relations (incremental runs restrict atoms over answered open relations
// and freshly added EDB facts, not just in-stratum recursion): a seeded
// closed atom leads its run regardless of boundness or cardinality, while a
// seeded *open* atom is a barrier and keeps its source position — the
// restriction applies where request generation expects it.
func TestPlannerSeededDeltaSelection(t *testing.T) {
	p := MustParse(`
rel big(a: int, b: int).
rel small(b: int).
open rel vote(a: int, ok: bool) key(a) asks "Vote".
rel out(a: int).
out(A) :- big(A, B), small(B), vote(A, true).
`)
	r := p.Rules[0]
	cat := testCatalog(map[string]int{"big": 100000, "small": 10}, "vote")

	// Unrestricted pass: small (card 10) before big, vote pinned last.
	if got := planOrder(planRule(r, -1, cat)); got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("unrestricted plan order = %v, want [1 0 2]", got)
	}

	// Seeded on big (a closed EDB atom): the delta leads its run even though
	// small is smaller and equally unbound.
	steps := planRule(r, 0, cat)
	if got := planOrder(steps); got[0] != 0 || got[2] != 2 {
		t.Fatalf("seeded-EDB plan order = %v, want big first and vote pinned", got)
	}

	// Seeded on vote (an open atom): barriers never move, so the plan equals
	// the unrestricted one and the restriction applies at source position.
	steps = planRule(r, 2, cat)
	if got := planOrder(steps); got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("seeded-open plan order = %v, want [1 0 2]", got)
	}
	if atom, ok := steps[2].lit.(*Atom); !ok || atom.Predicate != "vote" {
		t.Fatalf("step 2 is not the vote atom: %+v", steps[2])
	}
}
