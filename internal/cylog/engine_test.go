package cylog

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

func newTranslationEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(MustParse(translationProgram))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineLoadsDeclarationsAndFacts(t *testing.T) {
	e := newTranslationEngine(t)
	if !e.Database().Has("sentence") || !e.Database().Has("translated") {
		t.Error("declared relations should exist")
	}
	if len(e.Facts("sentence")) != 2 {
		t.Errorf("sentence facts = %d", len(e.Facts("sentence")))
	}
	if e.Facts("missing") != nil {
		t.Error("unknown relation should return nil facts")
	}
}

func TestEngineAddFact(t *testing.T) {
	e := newTranslationEngine(t)
	if err := e.AddFact("worker", "alice", "en"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFact("unknown", 1); err == nil {
		t.Error("adding to an unknown relation should fail")
	}
	if err := e.AddFact("eligible", "alice", 1); err == nil {
		t.Error("adding to a derived relation should fail")
	}
	if err := e.AddFact("sentence", "not-an-int", "x"); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestEngineDerivesEligible(t *testing.T) {
	e := newTranslationEngine(t)
	e.AddFact("worker", "alice", "en")
	e.AddFact("worker", "pierre", "fr")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	eligible := e.Facts("eligible")
	if len(eligible) != 2 { // alice × 2 sentences; pierre speaks fr, not eligible
		t.Fatalf("eligible = %v", eligible)
	}
	for _, tup := range eligible {
		if tup[0].AsString() != "alice" {
			t.Errorf("unexpected eligible tuple %v", tup)
		}
	}
}

func TestEngineGeneratesOpenRequests(t *testing.T) {
	e := newTranslationEngine(t)
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// final(S,T) :- translated(S,T), checked(S,true): with no translations
	// yet, the engine should ask for a translation of each sentence... but
	// the rule's first atom binds S from translated, which is empty, so no
	// binding reaches checked. The translated requests are keyed on sid which
	// is unbound at evaluation time (translated is the first body atom), so
	// nothing can be asked yet either.
	if len(reqs) != 0 {
		t.Fatalf("requests with unbound keys should not be generated, got %v", reqs)
	}

	// A driving rule that binds the key from sentence() produces requests.
	e2, err := NewEngine(MustParse(translationProgram + `
rel pendingTranslation(sid: int).
pendingTranslation(S) :- sentence(S, _), translated(S, _).
`))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err = e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("expected 2 translation requests, got %v", reqs)
	}
	r := reqs[0]
	if r.Relation != "translated" || r.Prompt != "Translate this subtitle line" || r.Scheme != "sequential" {
		t.Errorf("request = %+v", r)
	}
	if len(r.KeyColumns) != 1 || r.KeyColumns[0] != "sid" {
		t.Errorf("key columns = %v", r.KeyColumns)
	}
	if len(r.OpenColumns) != 1 || r.OpenColumns[0] != "text" {
		t.Errorf("open columns = %v", r.OpenColumns)
	}
	if !strings.Contains(r.String(), "translated") {
		t.Errorf("String() = %q", r.String())
	}
	if r.Key()["sid"].IsNull() {
		t.Error("Key() should expose the sid value")
	}
}

// sequentialWorkflowProgram drives the full translate → check → final flow.
const sequentialWorkflowProgram = `
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate" scheme "sequential".
open rel checked(sid: int, ok: bool) key(sid) asks "Check the translation".
rel needTranslation(sid: int).
rel needCheck(sid: int, text: string).
rel final(sid: int, text: string).

sentence(1, "Hello").
sentence(2, "Goodbye").

needTranslation(S) :- sentence(S, _), translated(S, _).
needCheck(S, T) :- translated(S, T), checked(S, _).
final(S, T) :- translated(S, T), checked(S, true).
`

func TestEngineSequentialWorkflowWithAnswers(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: translation requests for both sentences.
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("round 1 requests = %v", reqs)
	}
	for _, r := range reqs {
		if r.Relation != "translated" {
			t.Fatalf("round 1 should only request translations, got %v", r)
		}
		sid, _ := r.Key()["sid"].AsInt()
		if err := e.Answer(r.ID, map[string]any{"text": fmt.Sprintf("T%d", sid)}); err != nil {
			t.Fatal(err)
		}
	}
	// Round 2: translations exist, so check requests are generated
	// (dynamically generated follow-up tasks — sequential collaboration).
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("round 2 requests = %v", reqs)
	}
	for _, r := range reqs {
		if r.Relation != "checked" {
			t.Fatalf("round 2 should request checks, got %v", r)
		}
		if err := e.Answer(r.ID, map[string]any{"ok": true}); err != nil {
			t.Fatal(err)
		}
	}
	// Round 3: no requests remain and final/2 is derived for both sentences.
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("round 3 requests = %v", reqs)
	}
	final := e.Facts("final")
	if len(final) != 2 {
		t.Fatalf("final = %v", final)
	}
	if final[0][1].AsString() != "T1" || final[1][1].AsString() != "T2" {
		t.Errorf("final tuples = %v", final)
	}
}

func TestEngineAnswerErrors(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := e.Run()
	if err := e.Answer("nope", map[string]any{}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown request: %v", err)
	}
	if err := e.Answer(reqs[0].ID, map[string]any{}); err == nil {
		t.Error("missing open column should fail")
	}
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "ok"}); err != nil {
		t.Errorf("valid answer failed: %v", err)
	}
	// Answering the same request twice fails (it is no longer pending).
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "again"}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("second answer: %v", err)
	}
}

func TestEngineAnswerFact(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	before := len(e.PendingRequests())
	if before != 2 {
		t.Fatalf("pending = %d", before)
	}
	if err := e.AnswerFact("translated", 1, "Bonjour"); err != nil {
		t.Fatal(err)
	}
	if len(e.PendingRequests()) != 1 {
		t.Error("AnswerFact should clear the matching pending request")
	}
	if err := e.AnswerFact("sentence", 3, "x"); err == nil {
		t.Error("AnswerFact on a non-open relation should fail")
	}
	if err := e.AnswerFact("translated", "bad-sid-type-is-coerced?", "x"); err == nil {
		t.Error("AnswerFact with non-coercible values should fail")
	}
	if err := e.AnswerFact("missing", 1); err == nil {
		t.Error("AnswerFact on unknown relation should fail")
	}
}

func TestEngineRunToFixpointWithOracle(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	stats, err := e.RunToFixpointWithOracle(func(r OpenRequest) (map[string]any, bool) {
		answered++
		switch r.Relation {
		case "translated":
			return map[string]any{"text": "translation"}, true
		case "checked":
			return map[string]any{"ok": true}, true
		}
		return nil, false
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if answered != 4 {
		t.Errorf("oracle answered %d requests, want 4", answered)
	}
	if len(e.Facts("final")) != 2 {
		t.Errorf("final = %v", e.Facts("final"))
	}
	if stats.DerivedFacts == 0 || stats.Iterations == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// An oracle that refuses to answer terminates without spinning.
	e2, _ := NewEngine(MustParse(sequentialWorkflowProgram))
	if _, err := e2.RunToFixpointWithOracle(func(OpenRequest) (map[string]any, bool) { return nil, false }, 0); err != nil {
		t.Fatal(err)
	}
	if len(e2.PendingRequests()) == 0 {
		t.Error("unanswered requests should remain pending")
	}
}

func TestEngineNegationEvaluation(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel worker(w: string).
rel assigned(w: string).
rel idle(w: string).
worker("a").
worker("b").
assigned("a").
idle(W) :- worker(W), !assigned(W).
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	idle := e.Facts("idle")
	if len(idle) != 1 || idle[0][0].AsString() != "b" {
		t.Errorf("idle = %v", idle)
	}
}

func TestEngineRecursiveReachability(t *testing.T) {
	src := `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	for _, mode := range []EvalMode{Naive, SemiNaive} {
		e, err := NewEngine(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		e.SetMode(mode)
		// Chain 1 -> 2 -> ... -> 10 plus a branch.
		for i := 1; i < 10; i++ {
			e.AddFact("edge", i, i+1)
		}
		e.AddFact("edge", 3, 20)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		reach := e.Facts("reach")
		// 9+8+...+1 = 45 chain pairs plus 1->20, 2->20, 3->20.
		if len(reach) != 48 {
			t.Errorf("%s: reach = %d tuples, want 48", mode, len(reach))
		}
	}
}

func TestEngineNaiveAndSemiNaiveAgree(t *testing.T) {
	f := func(edges []uint8) bool {
		src := `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
		build := func(mode EvalMode) []relstore.Tuple {
			e, err := NewEngine(MustParse(src))
			if err != nil {
				return nil
			}
			e.SetMode(mode)
			for i := 0; i+1 < len(edges); i += 2 {
				e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8))
			}
			if _, err := e.Run(); err != nil {
				return nil
			}
			return e.Facts("reach")
		}
		a, b := build(Naive), build(SemiNaive)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEngineSemiNaiveDoesLessWork(t *testing.T) {
	src := `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	run := func(mode EvalMode) Stats {
		e, _ := NewEngine(MustParse(src))
		e.SetMode(mode)
		for i := 0; i < 40; i++ {
			e.AddFact("edge", i, i+1)
		}
		e.Run()
		return e.Stats()
	}
	naive, semi := run(Naive), run(SemiNaive)
	if naive.DerivedFacts != semi.DerivedFacts {
		t.Fatalf("derived facts differ: %d vs %d", naive.DerivedFacts, semi.DerivedFacts)
	}
	if semi.JoinedBindings >= naive.JoinedBindings {
		t.Errorf("semi-naive should join fewer bindings: %d vs naive %d", semi.JoinedBindings, naive.JoinedBindings)
	}
}

func TestEngineStratifiedNegationOverDerived(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel task(t: string).
rel done(t: string).
rel completed(t: string).
rel pending(t: string).
task("t1").
task("t2").
done("t1").
completed(T) :- task(T), done(T).
pending(T) :- task(T), !completed(T).
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	pending := e.Facts("pending")
	if len(pending) != 1 || pending[0][0].AsString() != "t2" {
		t.Errorf("pending = %v", pending)
	}
}

func TestEngineComparisonsAndAnonymous(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel score(w: string, s: float).
rel good(w: string).
score("a", 0.9).
score("b", 0.4).
score("c", 0.7).
good(W) :- score(W, S), S >= 0.7.
`))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	good := e.Facts("good")
	if len(good) != 2 {
		t.Errorf("good = %v", good)
	}
}

func TestEngineRequestDedupAcrossRuns(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := e.Run()
	r2, _ := e.Run()
	if len(r1) != len(r2) {
		t.Errorf("re-running without answers should not duplicate requests: %d vs %d", len(r1), len(r2))
	}
	// After answering, the request never reappears.
	e.Answer(r1[0].ID, map[string]any{"text": "x"})
	r3, _ := e.Run()
	for _, r := range r3 {
		if r.ID == r1[0].ID {
			t.Error("answered request reappeared")
		}
	}
}

func TestEngineStatsPopulated(t *testing.T) {
	e := newTranslationEngine(t)
	e.AddFact("worker", "alice", "en")
	e.Run()
	s := e.Stats()
	if s.Iterations == 0 || s.RuleEvaluations == 0 {
		t.Errorf("stats = %+v", s)
	}
	if e.Mode() != SemiNaive {
		t.Errorf("default mode = %v", e.Mode())
	}
	if SemiNaive.String() != "semi-naive" || Naive.String() != "naive" {
		t.Error("mode names wrong")
	}
}

func TestNewEngineRejectsBadProgram(t *testing.T) {
	if _, err := NewEngine(MustParse(`rel a(x: int). b(X) :- a(X).`)); err == nil {
		t.Error("NewEngine should reject semantically invalid programs")
	}
}
