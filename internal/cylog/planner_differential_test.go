package cylog

import (
	"fmt"
	"testing"
	"testing/quick"
)

// costConfig is one cell of the cost-planning differential matrix.
type costConfig struct {
	name        string
	cost        bool
	parallelism int
	shards      int
	incremental bool
}

// costMatrix enumerates {cost off, on} x {par 1,4} x {shards 1,4} x
// {incremental, full}. The first cell — cost off, par=1, shards=1, full — is
// the cardinality-only planner re-run on every pass, i.e. the exact pre-cost
// engine, and the byte-identical reference every other cell must match.
func costMatrix() []costConfig {
	var out []costConfig
	for _, cost := range []bool{false, true} {
		for _, par := range []int{1, 4} {
			for _, shards := range []int{1, 4} {
				for _, inc := range []bool{false, true} {
					out = append(out, costConfig{
						name: fmt.Sprintf("cost=%v/par%d/shards%d/incremental=%v",
							cost, par, shards, inc),
						cost:        cost,
						parallelism: par,
						shards:      shards,
						incremental: inc,
					})
				}
			}
		}
	}
	if out[0].cost || out[0].parallelism != 1 || out[0].shards != 1 || out[0].incremental {
		panic("costMatrix: reference cell moved")
	}
	return out
}

func (cfg costConfig) apply(e *Engine) {
	e.SetCostPlanning(cfg.cost)
	e.SetParallelism(cfg.parallelism)
	e.SetShards(cfg.shards)
	e.SetIncrementalAnswering(cfg.incremental)
}

// driveCostRounds runs the crowd loop for a fixed number of rounds under one
// configuration — full Run first, then batch + RunIncremental — answering a
// picks-driven subset of pending label requests per round, exactly like the
// sharded differential driver. It returns the per-round fingerprints
// (fixpoint + pending requests + request IDs) and per-round DerivedFacts,
// and asserts the plan-cache counters stay consistent with the toggle: a
// cost-off engine must never touch the cache.
func driveCostRounds(t *testing.T, cfg costConfig, edges, nodes, picks []uint8, rounds int) ([]string, []int) {
	t.Helper()
	e, err := NewEngine(MustParse(incrementalProgram))
	if err != nil {
		t.Fatal(err)
	}
	cfg.apply(e)
	for i := 0; i+1 < len(edges); i += 2 {
		if err := e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := e.AddFact("node", int(n%8)); err != nil {
			t.Fatal(err)
		}
	}
	var prints []string
	var derived []int
	var batch *AnswerBatch
	for round := 0; round < rounds; round++ {
		var reqs []OpenRequest
		var err error
		if batch == nil {
			reqs, err = e.Run()
		} else {
			reqs, err = e.RunIncremental(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		s := e.Stats()
		if !cfg.cost && (s.PlanCacheHits != 0 || s.PlanCacheMisses != 0) {
			t.Fatalf("%s: cost-off run touched the plan cache: %+v", cfg.name, s)
		}
		prints = append(prints, dbFingerprint(e, reqs))
		derived = append(derived, s.DerivedFacts)
		if len(reqs) == 0 {
			break
		}
		batch = e.NewAnswerBatch()
		answered := false
		for _, p := range picks {
			r := reqs[int(p)%len(reqs)]
			n, _ := r.Key()["n"].AsInt()
			if err := batch.Answer(r.ID, map[string]any{"tag": fmt.Sprintf("t%d", n)}); err == nil {
				answered = true
			}
		}
		if !answered {
			break
		}
	}
	return prints, derived
}

// TestCostPlanningDifferential is the acceptance check of cost-aware planning
// and the compiled plan cache: across random fact sets and random answer
// subsets, every round's fixpoint, pending requests, request IDs and
// DerivedFacts under {cost on, off} x {par 1,4} x {shards 1,4} x
// {incremental, full} are byte-identical to the cost-off/par=1/shards=1/full
// reference — the cardinality-only planner re-run on every pass. Selectivity
// tie-breaking, join pre-sizing and plan caching must be pure implementation
// detail; any divergence means a cached plan was either stale in a way that
// matters (it never can be — only closed positive atoms reorder) or the
// cost comparator broke the planner's determinism.
func TestCostPlanningDifferential(t *testing.T) {
	f := func(edges, nodes, picks []uint8) bool {
		if len(nodes) == 0 {
			nodes = []uint8{1}
		}
		if len(picks) == 0 {
			picks = []uint8{0}
		}
		if len(picks) > 5 {
			picks = picks[:5]
		}
		const rounds = 3
		matrix := costMatrix()
		refPrints, refDerived := driveCostRounds(t, matrix[0], edges, nodes, picks, rounds)
		for _, cfg := range matrix[1:] {
			prints, derived := driveCostRounds(t, cfg, edges, nodes, picks, rounds)
			if len(prints) != len(refPrints) {
				t.Logf("%s: %d rounds vs reference %d", cfg.name, len(prints), len(refPrints))
				return false
			}
			for i := range prints {
				if prints[i] != refPrints[i] {
					t.Logf("%s: round %d fingerprint diverges:\n%s\nvs reference:\n%s",
						cfg.name, i, prints[i], refPrints[i])
					return false
				}
				if derived[i] != refDerived[i] {
					t.Logf("%s: round %d derived %d facts vs reference %d",
						cfg.name, i, derived[i], refDerived[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestCostPlanningConfiguration covers the SetCostPlanning surface: default
// on, the getter, and the differential-reference contract that a cost-off
// engine plans live (no cache counters) while a cost-on engine records
// misses then hits.
func TestCostPlanningConfiguration(t *testing.T) {
	e, err := NewEngine(MustParse(differentialProgram))
	if err != nil {
		t.Fatal(err)
	}
	if !e.CostPlanningEnabled() {
		t.Fatal("cost planning should default to enabled")
	}
	e.SetCostPlanning(false)
	if e.CostPlanningEnabled() {
		t.Fatal("SetCostPlanning(false) did not stick")
	}
	for i := 0; i < 16; i++ {
		e.AddFact("edge", i, i+1)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.PlanCacheHits != 0 || s.PlanCacheMisses != 0 {
		t.Fatalf("cost-off run must not touch the plan cache, stats %+v", s)
	}

	e.SetCostPlanning(true)
	if !e.CostPlanningEnabled() {
		t.Fatal("SetCostPlanning(true) did not stick")
	}
	e.AddFact("edge", 100, 101)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PlanCacheMisses == 0 {
		t.Fatalf("first cost-on run should compile plans, stats %+v", s)
	}
}
