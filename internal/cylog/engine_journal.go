package cylog

import (
	"fmt"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Ingestion journal
//
// The engine's durable state is exactly the facts ingested from outside
// evaluation: AddFact seeds, request answers, and whole-fact answers
// (individually or through a committed AnswerBatch). Everything else — derived
// relations, pending open requests — is a pure function of those facts, and
// the incremental/retraction differential tests prove re-deriving equals the
// original run. The journal records each *applied* ingestion operation (an
// insert the relation actually accepted; duplicates and rejected batch items
// are not recorded, so replay applies exactly what the original run applied)
// so a write-ahead log can drain and persist them, and ReplayOps can re-apply
// a persisted sequence onto a recovered engine.

// OpKind identifies the ingestion path a journaled operation took.
type OpKind uint8

const (
	// OpAddFact is an external fact ingested through Engine.AddFact.
	OpAddFact OpKind = iota + 1
	// OpAnswer is a reply to a specific open request (Engine.Answer or a
	// request item of a committed AnswerBatch). RequestID records the request
	// it closed.
	OpAnswer
	// OpAnswerFact is a whole-fact answer to an open relation
	// (Engine.AnswerFact or a fact item of a committed AnswerBatch).
	OpAnswerFact
)

// String names the kind for logs and errors.
func (k OpKind) String() string {
	switch k {
	case OpAddFact:
		return "add-fact"
	case OpAnswer:
		return "answer"
	case OpAnswerFact:
		return "answer-fact"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// FactOp is one applied ingestion operation: the schema-coerced tuple that was
// inserted, the relation it went into, and for request answers the id of the
// request it closed. The tuple is stored post-coercion, so replaying it
// re-inserts byte-identical data.
type FactOp struct {
	Kind      OpKind
	RequestID string // set only for OpAnswer
	Relation  string
	Tuple     relstore.Tuple
}

// SetJournaling enables or disables recording applied ingestion operations.
// Enable it after recovery completes (so replayed operations are not recorded
// again) and before the first live ingestion the caller wants durable.
func (e *Engine) SetJournaling(enabled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journaling = enabled
	if !enabled {
		e.journal = nil
	}
}

// JournalingEnabled reports whether ingestion operations are being recorded.
func (e *Engine) JournalingEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.journaling
}

// DrainJournal returns the operations recorded since the last drain and
// clears the journal. The caller (the platform's commit path) persists them
// through the WAL before acking the round's workers.
func (e *Engine) DrainJournal() []FactOp {
	e.mu.Lock()
	defer e.mu.Unlock()
	ops := e.journal
	e.journal = nil
	return ops
}

// journalOp records an applied ingestion operation. Caller holds e.mu and has
// already inserted the tuple successfully.
func (e *Engine) journalOp(kind OpKind, requestID, relation string, tuple relstore.Tuple) {
	if !e.journaling {
		return
	}
	e.journal = append(e.journal, FactOp{Kind: kind, RequestID: requestID, Relation: relation, Tuple: tuple})
}

// ReplayOps re-applies a persisted operation sequence: each tuple is inserted
// into its relation (new insertions become seed deltas for the next
// incremental run, exactly like live ingestion) and answer operations close
// any pending request their fact satisfies. Replay is idempotent — an
// operation whose tuple is already present inserts nothing and stages no
// delta — and is never itself journaled, so recovery cannot re-record the
// operations it replays. It returns how many operations inserted a new tuple.
// Follow a replay with Run or RunIncremental(nil) to derive the consequences.
func (e *Engine) ReplayOps(ops []FactOp) (applied int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, op := range ops {
		rel := e.db.Relation(op.Relation)
		if rel == nil {
			return applied, fmt.Errorf("cylog: replay op %d (%s): relation %q is not declared", i, op.Kind, op.Relation)
		}
		switch op.Kind {
		case OpAddFact:
			if e.analysis.IDB[op.Relation] {
				return applied, fmt.Errorf("cylog: replay op %d: relation %q is derived by rules", i, op.Relation)
			}
		case OpAnswer, OpAnswerFact:
			decl := e.analysis.Program.DeclarationFor(op.Relation)
			if decl == nil || !decl.Open {
				return applied, fmt.Errorf("cylog: replay op %d (%s): relation %q is not an open relation", i, op.Kind, op.Relation)
			}
		default:
			return applied, fmt.Errorf("cylog: replay op %d: unknown kind %s", i, op.Kind)
		}
		added, err := rel.Insert(op.Tuple)
		if err != nil {
			return applied, fmt.Errorf("cylog: replay op %d (%s %s): %w", i, op.Kind, op.Relation, err)
		}
		if added {
			applied++
			e.stageDelta(op.Relation, op.Tuple)
		}
		if op.Kind == OpAnswer || op.Kind == OpAnswerFact {
			// Close any pending request the fact satisfies. On a fresh
			// recovery target the pending set is empty and the subsequent run
			// never re-issues these requests (keyExists sees the fact); on a
			// live engine this mirrors the original ingestion exactly.
			e.closeRequestsMatching(e.analysis.Program.DeclarationFor(op.Relation), op.Tuple)
		}
	}
	return applied, nil
}
