package cylog

import (
	"fmt"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Columnar binding rows
//
// This file is the columnar twin of the map-binding join loop in engine.go:
// the same three join strategies (index probe, hashed delta frontier, scan),
// the same negation/comparison filters and the same request generation, but
// bindings are flat, fixed-width []Value rows addressed by the rule's slot
// schema instead of map[string]Value clones. The rows of one evaluation step
// live in a single contiguous arena (rowBatch), so extending a binding is an
// append of W values with amortised allocation instead of a map clone per
// match, and filters compact the arena in place without allocating at all.
// SetColumnarBindings(false) keeps the map path available as the
// differential reference; both derive byte-identical fixpoints and open
// requests.

// rowBatch is a columnar batch of binding rows: len(masks) rows of fixed
// width, stored back to back in one values arena. Row i occupies
// vals[i*width:(i+1)*width]; masks[i] flags its bound slots (bit s == slot
// s). Join steps append extended rows to a fresh output batch
// (copy-on-extend at batch granularity); filter steps compact their input
// batch in place. Rows are never mutated once appended, so emitted row
// slices remain valid for the lifetime of the batch.
type rowBatch struct {
	width int
	vals  []relstore.Value
	masks []uint64
}

// rows returns the number of rows in the batch.
func (b *rowBatch) rows() int { return len(b.masks) }

// row returns the i-th row's slot values (empty for zero-width batches).
func (b *rowBatch) row(i int) []relstore.Value {
	if b.width == 0 {
		return nil
	}
	lo, hi := i*b.width, (i+1)*b.width
	return b.vals[lo:hi:hi]
}

// tryExtend unifies the atom's pre-resolved terms with the tuple under the
// source row and, on success, appends the extended row to the batch. Like
// matchAtom, it verifies before it copies: constants, already-bound slots
// and repeated fresh variables are checked against the source row and the
// tuple itself, and only a successful match appends — so the per-candidate
// cost of a failing scan join is the comparison, not a row copy, and the
// only allocations are the arena's amortised growth.
func (b *rowBatch) tryExtend(refs []termRef, t relstore.Tuple, src []relstore.Value, mask uint64) bool {
	if len(refs) != len(t) {
		return false
	}
	// Index-based access throughout: termRef embeds a Value constant, so a
	// range copy per term would dominate the scan-join hot loop.
	newMask := mask
	for i := 0; i < len(refs); i++ {
		slot := refs[i].slot
		switch slot {
		case slotAnon:
			// never binds
		case slotConstant:
			if !relstore.EqualValues(&refs[i].konst, &t[i]) {
				return false
			}
		default:
			bit := uint64(1) << uint(slot)
			if mask&bit != 0 {
				if !relstore.EqualValues(&src[slot], &t[i]) {
					return false
				}
				continue
			}
			if newMask&bit != 0 {
				// The variable was freshly bound by an earlier term of this
				// atom; find that occurrence and compare the tuple against
				// itself (the binding is not in src yet).
				for j := 0; j < i; j++ {
					if refs[j].slot == slot {
						if !relstore.EqualValues(&t[j], &t[i]) {
							return false
						}
						break
					}
				}
				continue
			}
			newMask |= bit
		}
	}
	base := len(b.vals)
	b.vals = append(b.vals, src...)
	row := b.vals[base:]
	written := mask
	for i := 0; i < len(refs); i++ {
		if slot := refs[i].slot; slot >= 0 {
			if bit := uint64(1) << uint(slot); written&bit == 0 {
				// First occurrence wins, exactly like matchAtom's binding.
				row[slot] = t[i]
				written |= bit
			}
		}
	}
	b.masks = append(b.masks, newMask)
	return true
}

// keep retains the i-th row of the batch, compacting it towards position n
// (the number of rows kept so far). Callers iterate i over the batch in
// order, call keep for the surviving rows, then truncate.
func (b *rowBatch) keep(n, i int) {
	if n != i {
		copy(b.vals[n*b.width:(n+1)*b.width], b.row(i))
		b.masks[n] = b.masks[i]
	}
}

// truncate shrinks the batch to its first n rows.
func (b *rowBatch) truncate(n int) {
	b.vals = b.vals[:n*b.width]
	b.masks = b.masks[:n]
}

// evaluateRuleRows is evaluateRule on binding rows: identical plan, identical
// literal dispatch and identical head projection, with row batches threaded
// through the columnar join/filter primitives below.
func (e *Engine) evaluateRuleRows(r *Rule, rs *rowSchema, v ruleVariant, stats *Stats, sink *requestSink) ([]relstore.Tuple, error) {
	steps := e.plan(r, v.deltaAtom, stats)

	// One initial row with no slot bound.
	in := &rowBatch{
		width: len(rs.vars),
		vals:  make([]relstore.Value, len(rs.vars)),
		masks: []uint64{0},
	}
	for _, st := range steps {
		if in.rows() == 0 {
			break
		}
		var err error
		switch l := st.lit.(type) {
		case *Atom:
			refs := rs.atoms[l]
			if l.Negated {
				err = e.filterNegatedBatch(l, refs, st.probeCols, in, stats)
				if err != nil {
					return nil, err
				}
			} else {
				var restrict []relstore.Tuple
				if v.deltaAtom == st.bodyIndex {
					restrict = v.deltaTuples
				}
				in, err = e.joinAtomBatch(l, refs, st.probeCols, in, restrict, st.estMatches, stats, sink)
				if err != nil {
					return nil, err
				}
			}
		case *Comparison:
			filterComparisonBatch(l, rs.comps[l], in)
		}
	}
	// Materialise head tuples straight from slots. Tuples are carved out of
	// shared arenas: emitted tuples are capped sub-slices, an arena is only
	// ever appended to, and relations keep inserted tuples verbatim
	// (immutable by contract), so sharing the backing array is safe and head
	// emission costs a handful of allocations per variant instead of one per
	// binding. Arenas are chunked: a retained tuple pins at most one chunk,
	// so a variant whose candidates are mostly duplicates cannot pin the
	// whole candidate set in memory through the few tuples the relation
	// keeps.
	width := len(rs.head)
	chunk := in.rows() * width
	if chunk > headArenaChunk {
		chunk = headArenaChunk
	}
	arena := make(relstore.Tuple, 0, chunk)
	out := make([]relstore.Tuple, 0, in.rows())
	for i := 0; i < in.rows(); i++ {
		row, mask := in.row(i), in.masks[i]
		if len(arena)+width > cap(arena) {
			arena = make(relstore.Tuple, 0, chunk)
		}
		base := len(arena)
		for _, ref := range rs.head {
			v, _ := ref.value(row, mask)
			arena = append(arena, v)
		}
		out = append(out, arena[base:len(arena):len(arena)])
	}
	return out, nil
}

// headArenaChunk caps the values per head-emission arena chunk (and with it
// the memory a single retained head tuple can pin).
const headArenaChunk = 4096

// joinPresizeMaxRows caps how many output rows a join pre-allocates from the
// planner's estimate, bounding the damage of a wildly high estimate.
const joinPresizeMaxRows = 4096

// joinAtomBatch extends each row of the batch with the tuples of the atom's
// relation that are consistent with it — joinAtom on binding rows, with the
// same three strategies and the same Stats accounting, so work counters
// agree between the columnar and the map path. The probe callback captures a
// shared cursor instead of the loop variable, so one closure serves the
// whole batch. estMatches is the planner's matches-per-probe estimate for
// this step (0 = no estimate); it only pre-sizes the output batch, never
// changes what is emitted.
func (e *Engine) joinAtomBatch(a *Atom, refs []termRef, probeCols []int, in *rowBatch, restrict []relstore.Tuple, estMatches int, stats *Stats, sink *requestSink) (*rowBatch, error) {
	rel := e.db.Relation(a.Predicate)
	if rel == nil {
		return nil, fmt.Errorf("cylog: relation %q is not declared", a.Predicate)
	}
	decl := e.analysis.Program.DeclarationFor(a.Predicate)
	open := decl != nil && decl.Open
	out := &rowBatch{width: in.width}
	if estMatches > 0 {
		rows := in.rows() * estMatches
		if rows > joinPresizeMaxRows {
			rows = joinPresizeMaxRows
		}
		out.vals = make([]relstore.Value, 0, rows*in.width)
		out.masks = make([]uint64, 0, rows)
	}

	if restrict == nil && len(probeCols) > 0 && e.shouldProbe(rel, probeCols) {
		vals := make([]relstore.Value, len(probeCols))
		var srcRow []relstore.Value
		var srcMask uint64
		matched := false
		emit := func(t relstore.Tuple) bool {
			if out.tryExtend(refs, t, srcRow, srcMask) {
				matched = true
				stats.JoinedBindings++
			}
			return true
		}
		for i := 0; i < in.rows(); i++ {
			srcRow, srcMask = in.row(i), in.masks[i]
			for j, ti := range probeCols {
				vals[j], _ = refs[ti].value(srcRow, srcMask)
			}
			matched = false
			indexed, err := rel.ScanEqAt(probeCols, vals, emit)
			if err != nil {
				return nil, err
			}
			stats.IndexProbes++
			if indexed {
				stats.IndexHits++
			}
			if open {
				e.maybeRequestRow(decl, a, refs, srcRow, srcMask, matched, sink)
			}
		}
		return out, nil
	}

	// Hashed delta frontier, keyed exactly like the map path so the output
	// row order (matches in restrict order per row) is identical.
	if restrict != nil && e.deltaHashing && len(probeCols) > 0 && in.rows() > 1 && len(restrict) >= deltaHashMinTuples {
		frontier := make(map[uint64][]relstore.Tuple, len(restrict))
		for _, t := range restrict {
			h := t.HashAt(probeCols...)
			frontier[h] = append(frontier[h], t)
		}
		vals := make([]relstore.Value, len(probeCols))
		for i := 0; i < in.rows(); i++ {
			srcRow, srcMask := in.row(i), in.masks[i]
			for j, ti := range probeCols {
				vals[j], _ = refs[ti].value(srcRow, srcMask)
			}
			matched := false
			for _, t := range frontier[relstore.HashValues(vals...)] {
				if out.tryExtend(refs, t, srcRow, srcMask) {
					matched = true
					stats.JoinedBindings++
				}
			}
			stats.DeltaHashProbes++
			if open {
				e.maybeRequestRow(decl, a, refs, srcRow, srcMask, matched, sink)
			}
		}
		return out, nil
	}

	tuples := restrict
	if tuples == nil {
		tuples = rel.All()
		stats.FullScans++
	}
	for i := 0; i < in.rows(); i++ {
		srcRow, srcMask := in.row(i), in.masks[i]
		matched := false
		for _, t := range tuples {
			if out.tryExtend(refs, t, srcRow, srcMask) {
				matched = true
				stats.JoinedBindings++
			}
		}
		if open {
			e.maybeRequestRow(decl, a, refs, srcRow, srcMask, matched, sink)
		}
	}
	return out, nil
}

// filterNegatedBatch keeps only the rows for which no tuple of the negated
// atom's relation matches, compacting the batch in place — filterNegated on
// binding rows.
func (e *Engine) filterNegatedBatch(a *Atom, refs []termRef, probeCols []int, in *rowBatch, stats *Stats) error {
	rel := e.db.Relation(a.Predicate)
	if rel == nil {
		return nil
	}
	probe := len(probeCols) > 0 && e.shouldProbe(rel, probeCols)
	var vals []relstore.Value
	if probe {
		vals = make([]relstore.Value, len(probeCols))
	} else if in.rows() > 0 {
		stats.FullScans++
	}
	// scratch receives the (discarded) trial extensions of the existence
	// checks; reusing one batch keeps the filter allocation-free after the
	// first hit.
	scratch := &rowBatch{width: in.width}
	var srcRow []relstore.Value
	var srcMask uint64
	matched := false
	check := func(t relstore.Tuple) bool {
		if scratch.tryExtend(refs, t, srcRow, srcMask) {
			scratch.truncate(0)
			matched = true
			return false
		}
		return true
	}
	n := 0
	for i := 0; i < in.rows(); i++ {
		srcRow, srcMask = in.row(i), in.masks[i]
		matched = false
		if probe {
			for j, ti := range probeCols {
				vals[j], _ = refs[ti].value(srcRow, srcMask)
			}
			indexed, err := rel.ScanEqAt(probeCols, vals, check)
			if err != nil {
				return err
			}
			stats.IndexProbes++
			if indexed {
				stats.IndexHits++
			}
		} else {
			rel.Scan(check)
		}
		if !matched {
			in.keep(n, i)
			n++
		}
	}
	in.truncate(n)
	return nil
}

// filterComparisonBatch keeps the rows satisfying the comparison, compacting
// the batch in place; rows with an unbound side are dropped, exactly like the
// map path.
func filterComparisonBatch(c *Comparison, refs [2]termRef, in *rowBatch) {
	n := 0
	for i := 0; i < in.rows(); i++ {
		row, mask := in.row(i), in.masks[i]
		l, lok := refs[0].value(row, mask)
		r, rok := refs[1].value(row, mask)
		if !lok || !rok {
			continue
		}
		if compareValues(l, r, c.Op) {
			in.keep(n, i)
			n++
		}
	}
	in.truncate(n)
}

// maybeRequestRow records an open-request candidate from a binding row; the
// request-construction logic is shared with the map path via maybeRequest's
// term accessor.
func (e *Engine) maybeRequestRow(decl *Declaration, a *Atom, refs []termRef, row []relstore.Value, mask uint64, matched bool, sink *requestSink) {
	e.maybeRequest(decl, a, func(i int) (relstore.Value, bool) { return refs[i].value(row, mask) }, matched, sink)
}
