// Package cylog implements the CyLog processor of Figure 2: a Datalog-like
// declarative language for crowdsourcing applications with complex data flows
// (Morishima et al. [7]). Requesters describe projects as CyLog programs; the
// processor interprets the rules, evaluates ordinary predicates against the
// relational store, and — for *open* predicates whose truth value is decided
// by humans — dynamically generates micro-task requests and resumes evaluation
// when worker answers arrive.
//
// The package contains the language front end (lexer, parser, AST), a semantic
// analyzer (safety and stratified negation), and a naive and semi-naive
// bottom-up evaluation engine on top of the relstore package.
package cylog

import (
	"fmt"
	"strings"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Program is a parsed CyLog program: relation declarations, base facts and
// derivation rules.
type Program struct {
	Declarations []*Declaration
	Facts        []*Fact
	Rules        []*Rule
}

// Declaration declares a relation. Open relations are evaluated by humans:
// when a rule needs a tuple of an open relation that is not yet known, the
// engine emits a task request asking workers to supply the missing columns.
type Declaration struct {
	Name    string
	Columns []ColumnDecl
	// Open marks a human-evaluated (open) predicate.
	Open bool
	// Key lists the columns that identify one human micro-task: when a rule
	// binds exactly these columns and no matching fact exists, a task is
	// generated. Empty Key means "all columns bound by the rule".
	Key []string
	// Prompt is the question shown to workers for open relations
	// (the `asks "..."` clause).
	Prompt string
	// Scheme optionally names the collaboration scheme for tasks generated
	// from this relation ("sequential", "simultaneous", "hybrid",
	// "individual"); empty means individual.
	Scheme string
	// Pos is the source position of the declaration.
	Pos Position
}

// ColumnDecl is one typed column of a declared relation.
type ColumnDecl struct {
	Name string
	Type relstore.Type
}

// Schema builds the relstore schema for the declaration.
func (d *Declaration) Schema() *relstore.Schema {
	cols := make([]relstore.Column, len(d.Columns))
	for i, c := range d.Columns {
		cols[i] = relstore.Column{Name: c.Name, Type: c.Type}
	}
	return relstore.NewSchema(cols...)
}

// ColumnIndex returns the position of the named column, or -1.
func (d *Declaration) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String renders the declaration in source syntax.
func (d *Declaration) String() string {
	var b strings.Builder
	if d.Open {
		b.WriteString("open ")
	}
	b.WriteString("rel ")
	b.WriteString(d.Name)
	b.WriteByte('(')
	for i, c := range d.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	if len(d.Key) > 0 {
		fmt.Fprintf(&b, " key(%s)", strings.Join(d.Key, ", "))
	}
	if d.Prompt != "" {
		fmt.Fprintf(&b, " asks %q", d.Prompt)
	}
	if d.Scheme != "" {
		fmt.Fprintf(&b, " scheme %q", d.Scheme)
	}
	b.WriteByte('.')
	return b.String()
}

// Fact is a ground base tuple asserted in the program text.
type Fact struct {
	Relation string
	Values   []relstore.Value
	Pos      Position
}

// String renders the fact in source syntax.
func (f *Fact) String() string {
	parts := make([]string, len(f.Values))
	for i, v := range f.Values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s).", f.Relation, strings.Join(parts, ", "))
}

// Rule is a Horn rule: Head :- Body1, ..., BodyN.
type Rule struct {
	Head *Atom
	Body []Literal
	Pos  Position
}

// String renders the rule in source syntax.
func (r *Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s :- %s.", r.Head, strings.Join(parts, ", "))
}

// Literal is a body element: a positive atom, a negated atom, or a comparison.
type Literal interface {
	fmt.Stringer
	// Variables returns the variable names appearing in the literal.
	Variables() []string
	literal()
}

// Atom is a predicate applied to terms, e.g. worker(W, "en").
type Atom struct {
	Predicate string
	Terms     []Term
	// Negated marks "!atom" in a rule body.
	Negated bool
	Pos     Position
}

func (*Atom) literal() {}

// Variables implements Literal.
func (a *Atom) Variables() []string {
	var out []string
	for _, t := range a.Terms {
		if v, ok := t.(Variable); ok {
			out = append(out, string(v))
		}
	}
	return out
}

// String renders the atom in source syntax.
func (a *Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	neg := ""
	if a.Negated {
		neg = "!"
	}
	return fmt.Sprintf("%s%s(%s)", neg, a.Predicate, strings.Join(parts, ", "))
}

// CompareOp is a comparison operator in rule bodies.
type CompareOp string

// Supported comparison operators.
const (
	OpEq CompareOp = "="
	OpNe CompareOp = "!="
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
)

// Comparison is a built-in constraint literal, e.g. Skill >= 0.7.
type Comparison struct {
	Left  Term
	Op    CompareOp
	Right Term
	Pos   Position
}

func (*Comparison) literal() {}

// Variables implements Literal.
func (c *Comparison) Variables() []string {
	var out []string
	if v, ok := c.Left.(Variable); ok {
		out = append(out, string(v))
	}
	if v, ok := c.Right.(Variable); ok {
		out = append(out, string(v))
	}
	return out
}

// String renders the comparison in source syntax.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Term is a variable or a constant appearing in atoms and comparisons.
type Term interface {
	fmt.Stringer
	term()
}

// Variable is a logic variable; variables start with an upper-case letter or
// underscore ("_" alone is the anonymous variable).
type Variable string

func (Variable) term() {}

// String implements fmt.Stringer.
func (v Variable) String() string { return string(v) }

// Anonymous reports whether the variable is the anonymous "_" placeholder.
func (v Variable) Anonymous() bool { return v == "_" }

// Constant is a ground value.
type Constant struct {
	Value relstore.Value
}

func (Constant) term() {}

// String implements fmt.Stringer.
func (c Constant) String() string { return c.Value.String() }

// Position is a 1-based source location used in diagnostics.
type Position struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// DeclarationFor returns the declaration of the named relation, or nil.
func (p *Program) DeclarationFor(name string) *Declaration {
	for _, d := range p.Declarations {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// IsOpen reports whether the named relation is declared open.
func (p *Program) IsOpen(name string) bool {
	d := p.DeclarationFor(name)
	return d != nil && d.Open
}

// String renders the whole program in source syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Declarations {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
