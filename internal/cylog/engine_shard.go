package cylog

import (
	"fmt"
	"sync"

	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Sharded fixpoint evaluation
//
// runStratumSharded runs one stratum's semi-naive fixpoint across N
// goroutine-confined engine shards. The partitioning unit is the tuple: a
// tuple belongs to shard relstore.ShardOf(t, N) — its value hash mod N — so
// ownership is stable across rounds, strata, runs and processes. Each round:
//
//  1. The coordinator (the single evaluation goroutine, holding e.mu)
//     hash-partitions the round's delta frontier and sends every shard its
//     partition over the shard's inbox channel. On the unrestricted first
//     round of a full pass (and every Naive-mode round) there is no frontier
//     yet; instead each rule's leading full scan — the atom planShardAtom
//     picks — is hash-partitioned the same way, and rules with no
//     partitionable atom run whole on shard 0.
//  2. Every shard derives its rule variants from its local partition and
//     evaluates them against the shared database, which is read-only for the
//     duration of the round (the same snapshot guarantee the parallel
//     evaluator relies on). Within a shard, variants run on a worker pool of
//     SetParallelism size, so sharding and parallelism compose.
//  3. At the round barrier the shards hand their outputs to the coordinator
//     over their outbox channels. The coordinator is the single-writer
//     merge: it inserts head tuples (deduplicated by the relation), admits
//     open requests (deduplicated by id) and journals nothing — journal ops
//     record ingestions, which never happen during evaluation — in
//     shard-then-plan order, so fixpoints and request IDs are deterministic
//     and byte-identical to the unsharded engine.
//  4. The merged new tuples form the next round's frontier. Each tuple is
//     routed to the shard owning its hash: tuples that stay on the shard
//     that derived them count as Stats.ShardLocalTuples, tuples crossing to
//     another shard as Stats.ShardExchanges. The exchange is the channel
//     send of step 1 — in-process today, the seam a networked transport
//     replaces tomorrow.
//
// The loop terminates like the other evaluators: a round that inserts no new
// tuple is the local fixpoint. SetShards(1) never reaches this file — the
// dispatch in runStratum keeps the unsharded paths as the byte-identical
// differential reference.

// shardRound is one round of work for one shard.
type shardRound struct {
	// delta is the shard's hash-partition of the round's frontier; the shard
	// derives its rule variants from it locally (semi-naive rounds).
	delta map[string][]relstore.Tuple
	// tasks is the precomputed task list of an unrestricted round — the
	// first iteration of a full pass, or every Naive-mode iteration — whose
	// leading full scans the coordinator hash-partitioned itself.
	tasks []evalTask
	// full marks an unrestricted round: tasks is authoritative, delta nil.
	full bool
}

// shardOutput is what one shard hands the merge writer at the round barrier.
type shardOutput struct {
	// tasks are the rule variants the shard evaluated, aligned with outs.
	tasks []evalTask
	outs  []evalOutput
	// evals counts the delta-round variants the shard built locally;
	// unrestricted rounds are counted once per rule by the coordinator.
	evals int
}

// runStratumSharded evaluates one stratum to a local fixpoint across
// `shards` goroutine-confined shards (see the file comment for the round
// protocol). idx, seed and derived mean what they mean for runStratum.
func (e *Engine) runStratumSharded(idx int, rules []*Rule, seed, derived map[string][]relstore.Tuple, stats *Stats, shards int) error {
	inboxes := make([]chan shardRound, shards)
	outboxes := make([]chan shardOutput, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		// Capacity 1 on both channels keeps the protocol deadlock-free
		// without a draining dance: a shard's send never blocks (the
		// coordinator reads every outbox each round), and closing the
		// inboxes releases every shard wherever it waits.
		in, out := make(chan shardRound, 1), make(chan shardOutput, 1)
		inboxes[s], outboxes[s] = in, out
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := range in {
				out <- e.evalShardRound(rules, round)
			}
		}()
	}
	defer func() {
		for _, in := range inboxes {
			close(in)
		}
		wg.Wait()
	}()

	delta := seed
	full := seed == nil
	for {
		stats.Iterations++
		var rounds []shardRound
		if full || e.mode == Naive {
			rounds = e.shardFullRounds(rules, shards, stats)
			stats.RuleEvaluations += len(rules)
		} else {
			rounds = make([]shardRound, shards)
			for s, part := range partitionDelta(delta, shards) {
				rounds[s] = shardRound{delta: part}
			}
		}
		for s, in := range inboxes {
			in <- rounds[s]
		}

		// Round barrier: collect every shard's output and merge
		// single-threaded, in shard-then-plan order.
		newDelta := make(map[string][]relstore.Tuple)
		derivedThisIteration := 0
		for s := 0; s < shards; s++ {
			out := <-outboxes[s]
			stats.RuleEvaluations += out.evals
			for i, o := range out.outs {
				if o.err != nil {
					return o.err
				}
				stats.merge(o.stats)
				r := out.tasks[i].rule
				head := e.db.Relation(r.Head.Predicate)
				for _, t := range o.tuples {
					added, err := e.insertHead(head, t)
					if err != nil {
						return fmt.Errorf("cylog: rule %s produced a tuple that does not match the schema of %s: %w", r, r.Head.Predicate, err)
					}
					if !added {
						continue
					}
					derivedThisIteration++
					newDelta[r.Head.Predicate] = append(newDelta[r.Head.Predicate], t)
					if relstore.ShardOf(t, shards) == s {
						stats.ShardLocalTuples++
					} else {
						stats.ShardExchanges++
					}
				}
				e.admitRequests(o.requests, idx)
			}
		}
		stats.DerivedFacts += derivedThisIteration
		accumulateDerived(derived, newDelta)
		if derivedThisIteration == 0 {
			return nil
		}
		delta = newDelta
		full = false
	}
}

// evalShardRound is the shard-side half of one round: build the shard's rule
// variants from its frontier partition (or take the coordinator's
// precomputed unrestricted tasks) and evaluate them against the shared
// read-only database view. It runs on the shard goroutine and touches no
// engine bookkeeping — head inserts and request admission belong to the
// merge writer.
func (e *Engine) evalShardRound(rules []*Rule, round shardRound) shardOutput {
	tasks := round.tasks
	evals := 0
	if !round.full {
		for _, r := range rules {
			for _, v := range e.ruleVariants(r, round.delta, false) {
				tasks = append(tasks, evalTask{rule: r, v: v})
				evals++
			}
		}
	}
	return shardOutput{tasks: tasks, outs: e.evaluateTasks(tasks, e.parallelism), evals: evals}
}

// shardFullRounds builds every shard's task list for an unrestricted round:
// each rule whose plan leads with a partitionable full scan
// (shardableFullScan) is split into one variant per shard, restricted to the
// hash partition of the leading relation; the union of the partitions is the
// whole relation, so the shards collectively evaluate exactly the
// unrestricted variant. Rules with no partitionable atom — leading barrier,
// open atom, probe-answerable first step — run whole on shard 0, the
// deterministic owner of unpartitionable work.
func (e *Engine) shardFullRounds(rules []*Rule, shards int, stats *Stats) []shardRound {
	rounds := make([]shardRound, shards)
	for s := range rounds {
		rounds[s].full = true
	}
	for _, r := range rules {
		atom, tuples := e.shardableFullScan(r, stats)
		if atom < 0 {
			rounds[0].tasks = append(rounds[0].tasks, evalTask{rule: r, v: ruleVariant{deltaAtom: -1}})
			continue
		}
		for s, part := range relstore.PartitionTuples(tuples, shards) {
			if len(part) == 0 {
				continue
			}
			rounds[s].tasks = append(rounds[s].tasks, evalTask{rule: r, v: ruleVariant{deltaAtom: atom, deltaTuples: part}})
		}
	}
	return rounds
}

// partitionDelta splits a frontier map into one map per shard, routing every
// tuple to the shard owning its hash. Relation slices keep their input order
// within a shard, so the shard-side variant construction is deterministic.
func partitionDelta(delta map[string][]relstore.Tuple, shards int) []map[string][]relstore.Tuple {
	parts := make([]map[string][]relstore.Tuple, shards)
	for s := range parts {
		parts[s] = make(map[string][]relstore.Tuple)
	}
	for rel, ts := range delta {
		for _, t := range ts {
			s := relstore.ShardOf(t, shards)
			parts[s][rel] = append(parts[s][rel], t)
		}
	}
	return parts
}
