package cylog

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestRowSchemaAssignment pins the slot schema the planner assigns: variables
// get slots in first-appearance order (body before head), constants and the
// anonymous variable resolve to sentinels, and the head is pre-resolved.
func TestRowSchemaAssignment(t *testing.T) {
	p := MustParse(`
rel edge(a: int, b: int).
rel tagged(a: int, t: string).
rel out(a: int, b: int, t: string).
out(X, Y, T) :- edge(X, Y), tagged(Y, T), edge(Y, _), X < 5, tagged(X, "seed").
`)
	a := MustAnalyze(p)
	r := p.Rules[0]
	wantVars := []string{"X", "Y", "T"}
	if got := a.RuleVars[r]; len(got) != len(wantVars) {
		t.Fatalf("RuleVars = %v, want %v", got, wantVars)
	} else {
		for i := range wantVars {
			if got[i] != wantVars[i] {
				t.Fatalf("RuleVars = %v, want %v", got, wantVars)
			}
		}
	}
	rs := newRowSchema(r, a.RuleVars[r])
	if rs == nil {
		t.Fatal("newRowSchema returned nil for a 3-variable rule")
	}
	for i, v := range wantVars {
		if rs.slots[v] != i {
			t.Errorf("slot[%s] = %d, want %d", v, rs.slots[v], i)
		}
	}
	// edge(Y, _): first term is slot 1, second is anonymous.
	anonAtom := r.Body[2].(*Atom)
	refs := rs.atoms[anonAtom]
	if refs[0].slot != 1 || refs[1].slot != slotAnon {
		t.Errorf("edge(Y, _) refs = %+v", refs)
	}
	// tagged(X, "seed"): constant second term carries the value.
	constAtom := r.Body[4].(*Atom)
	refs = rs.atoms[constAtom]
	if refs[0].slot != 0 || refs[1].slot != slotConstant || refs[1].konst.AsString() != "seed" {
		t.Errorf(`tagged(X, "seed") refs = %+v`, refs)
	}
	// X < 5: left is slot 0, right a constant.
	comp := r.Body[3].(*Comparison)
	crefs := rs.comps[comp]
	if crefs[0].slot != 0 || crefs[1].slot != slotConstant {
		t.Errorf("comparison refs = %+v", crefs)
	}
	// Head out(X, Y, T) resolves to slots 0, 1, 2.
	for i, want := range []int{0, 1, 2} {
		if rs.head[i].slot != want {
			t.Errorf("head[%d].slot = %d, want %d", i, rs.head[i].slot, want)
		}
	}
}

// TestSetColumnarBindingsToggle covers the toggle contract.
func TestSetColumnarBindingsToggle(t *testing.T) {
	e, err := NewEngine(MustParse(translationProgram))
	if err != nil {
		t.Fatal(err)
	}
	if !e.ColumnarBindingsEnabled() {
		t.Error("columnar bindings should be enabled by default")
	}
	e.SetColumnarBindings(false)
	if e.ColumnarBindingsEnabled() {
		t.Error("SetColumnarBindings(false) not reflected")
	}
	e.SetColumnarBindings(true)
	if !e.ColumnarBindingsEnabled() {
		t.Error("SetColumnarBindings(true) not reflected")
	}
}

// TestEngineColumnarDifferential is the differential quick-check of the
// columnar evaluator: across random edge/node sets, every combination of
// {columnar, map} × {par1, par4} × {indexed, scan} derives a byte-identical
// fixpoint — every relation's facts and every open request id.
func TestEngineColumnarDifferential(t *testing.T) {
	f := func(edges []uint8, nodes []uint8) bool {
		build := func(columnar bool, parallelism int, indexing bool) string {
			e, err := NewEngine(MustParse(differentialProgram))
			if err != nil {
				t.Fatal(err)
			}
			e.SetColumnarBindings(columnar)
			e.SetParallelism(parallelism)
			e.SetIndexing(indexing)
			for i := 0; i+1 < len(edges); i += 2 {
				e.AddFact("edge", int(edges[i]%8), int(edges[i+1]%8))
			}
			for _, n := range nodes {
				e.AddFact("node", int(n%8))
			}
			return fixpointFingerprint(t, e)
		}
		ref := build(false, 1, true)
		for _, columnar := range []bool{true, false} {
			for _, par := range []int{1, 4} {
				for _, indexing := range []bool{true, false} {
					if got := build(columnar, par, indexing); got != ref {
						t.Logf("columnar=%v par=%d indexing=%v diverges:\n%s\nvs reference:\n%s",
							columnar, par, indexing, got, ref)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestEngineColumnarDeltaHashDifferential drives the guarded-reach workload —
// the recursive delta behind a negation barrier, large enough to engage the
// frontier hash — through {columnar, map} × {hashed, linear} and requires
// identical reach sets.
func TestEngineColumnarDeltaHashDifferential(t *testing.T) {
	build := func(columnar, hashing bool) *Engine {
		e, err := NewEngine(MustParse(guardedReachProgram))
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(1)
		e.SetColumnarBindings(columnar)
		e.SetDeltaHashing(hashing)
		for i := 0; i < 400; i++ {
			base := (i / 8) * 9
			e.AddFact("edge", base+i%8, base+i%8+1)
		}
		e.AddFact("blocked", 4)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build(false, false).Facts("reach")
	for _, columnar := range []bool{true, false} {
		for _, hashing := range []bool{true, false} {
			e := build(columnar, hashing)
			if hashing && e.Stats().DeltaHashProbes == 0 {
				t.Errorf("columnar=%v: hashed run recorded no frontier probes", columnar)
			}
			got := e.Facts("reach")
			if len(got) != len(ref) {
				t.Fatalf("columnar=%v hashing=%v: reach = %d facts, want %d", columnar, hashing, len(got), len(ref))
			}
			for i := range ref {
				if !got[i].Equal(ref[i]) {
					t.Fatalf("columnar=%v hashing=%v: reach[%d] = %v, want %v", columnar, hashing, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestEngineColumnarStatsParity runs the transitive-closure workload on both
// binding layouts and requires identical work counters: the columnar path
// must issue exactly the same probes, scans and joins as the map path, not
// just reach the same fixpoint.
func TestEngineColumnarStatsParity(t *testing.T) {
	build := func(columnar bool) Stats {
		e, err := NewEngine(MustParse(`
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`))
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(1)
		e.SetColumnarBindings(columnar)
		for i := 0; i < 500; i++ {
			base := (i / 10) * 11
			e.AddFact("edge", base+i%10, base+i%10+1)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	cs, ms := build(true), build(false)
	if cs != ms {
		t.Errorf("stats diverge:\ncolumnar: %+v\nmap:      %+v", cs, ms)
	}
	if cs.JoinedBindings == 0 || cs.IndexHits == 0 {
		t.Errorf("workload should exercise joins and index hits, got %+v", cs)
	}
}

// TestEngineColumnarOpenRequestRounds replays the sequential-collaboration
// workflow on both binding layouts and requires the same requests, in the
// same order, in every crowdsourcing round.
func TestEngineColumnarOpenRequestRounds(t *testing.T) {
	build := func(columnar bool) []string {
		e, err := NewEngine(MustParse(sequentialWorkflowProgram))
		if err != nil {
			t.Fatal(err)
		}
		e.SetColumnarBindings(columnar)
		var ids []string
		_, err = e.RunToFixpointWithOracle(func(r OpenRequest) (map[string]any, bool) {
			ids = append(ids, r.ID)
			switch r.Relation {
			case "translated":
				sid, _ := r.Key()["sid"].AsInt()
				return map[string]any{"text": fmt.Sprintf("T%d", sid)}, true
			case "checked":
				return map[string]any{"ok": true}, true
			}
			return nil, false
		}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(e.Facts("final")); got != 2 {
			t.Fatalf("columnar=%v: final = %d facts, want 2", columnar, got)
		}
		return ids
	}
	rows, maps := build(true), build(false)
	if len(rows) != len(maps) {
		t.Fatalf("request sequences differ: %v vs %v", rows, maps)
	}
	for i := range rows {
		if rows[i] != maps[i] {
			t.Errorf("request[%d]: columnar %q vs map %q", i, rows[i], maps[i])
		}
	}
}

// TestEngineColumnarWideRuleFallback builds a rule wider than maxRowSlots
// variables: the engine must decline a slot schema for it and fall back to
// map bindings, deriving the same facts with columnar bindings nominally
// enabled.
func TestEngineColumnarWideRuleFallback(t *testing.T) {
	arity := maxRowSlots + 3
	var b strings.Builder
	b.WriteString("rel wide(")
	for i := 0; i < arity; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "c%d: int", i)
	}
	b.WriteString(").\nrel first(v: int).\nfirst(V0) :- wide(")
	for i := 0; i < arity; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "V%d", i)
	}
	b.WriteString(").\n")

	e, err := NewEngine(MustParse(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	rule := e.Analysis().Program.Rules[0]
	if e.rowSchemas[rule] != nil {
		t.Fatalf("rule with %d variables should not get a slot schema", arity)
	}
	vals := make([]any, arity)
	for i := range vals {
		vals[i] = i + 100
	}
	if err := e.AddFact("wide", vals...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	facts := e.Facts("first")
	if len(facts) != 1 {
		t.Fatalf("first = %v, want one fact", facts)
	}
	if v, _ := facts[0][0].AsInt(); v != 100 {
		t.Errorf("first = %v, want (100)", facts[0])
	}
}
