package cylog

import (
	"testing"
)

// FuzzParser asserts the front end's robustness contract: no source text may
// panic the lexer, parser or analyzer — malformed programs must surface as
// errors. Programs that do parse and analyze must also construct an engine
// and survive an empty run, so the fuzzer reaches schema validation,
// stratification and plan construction, not just tokenization.
func FuzzParser(f *testing.F) {
	f.Add(incrementalProgram)
	f.Add(differentialProgram)
	f.Add("")
	f.Add("rel p(n: int).")
	f.Add(`rel p(n: int). p(X) :- p(X).`)
	f.Add(`open rel q(n: int, tag: string) key(n) asks "label".`)
	f.Add(`rel p(n: int). rel q(n: int). q(N) :- p(N), !q(N).`)
	f.Add("rel p(n: int).\np(1).\np(2).")
	f.Add(`rel p(s: string). p("\x00\"").`)
	f.Add("rel p(n: int). p(X) :- p(Y), X > Y.")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		e, err := NewEngine(prog)
		if err != nil {
			return
		}
		if _, err := e.Run(); err != nil {
			return
		}
	})
}
