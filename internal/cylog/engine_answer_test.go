package cylog

import (
	"errors"
	"fmt"
	"testing"
)

// Error-path coverage for the open-request answering API beyond the basic
// cases in engine_test.go: type mismatches on answer values, arity mismatches
// on direct facts, and answering requests that were already closed out of
// band by AnswerFact.

func TestEngineAnswerTypeMismatch(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	for _, r := range reqs {
		if err := e.Answer(r.ID, map[string]any{"text": "ok"}); err != nil {
			t.Fatalf("translation answer: %v", err)
		}
	}

	// Drive the flow to the checked stage: checked.ok is a bool and must
	// reject a value that ParseBool cannot read.
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var checkReq *OpenRequest
	for i := range reqs {
		if reqs[i].Relation == "checked" {
			checkReq = &reqs[i]
			break
		}
	}
	if checkReq == nil {
		t.Fatalf("no checked request in %v", reqs)
	}
	pendingBefore := len(e.PendingRequests())
	if err := e.Answer(checkReq.ID, map[string]any{"ok": "not-a-bool"}); err == nil {
		t.Error("bool column should reject a non-boolean string")
	}
	if got := len(e.PendingRequests()); got != pendingBefore {
		t.Errorf("failed answer should leave the request pending: %d -> %d", pendingBefore, got)
	}
	// A valid answer for the same request still goes through afterwards.
	if err := e.Answer(checkReq.ID, map[string]any{"ok": true}); err != nil {
		t.Errorf("valid bool answer after failed one: %v", err)
	}
	if got := len(e.PendingRequests()); got != pendingBefore-1 {
		t.Errorf("pending after valid answer = %d, want %d", got, pendingBefore-1)
	}
}

func TestEngineAnswerFactArityMismatch(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	before := len(e.PendingRequests())
	if err := e.AnswerFact("translated", 1); err == nil {
		t.Error("too few values should fail")
	}
	if err := e.AnswerFact("translated", 1, "Bonjour", "extra"); err == nil {
		t.Error("too many values should fail")
	}
	if got := len(e.PendingRequests()); got != before {
		t.Errorf("failed AnswerFact changed pending from %d to %d", before, got)
	}
	if got := len(e.Facts("translated")); got != 0 {
		t.Errorf("failed AnswerFact inserted facts: %v", e.Facts("translated"))
	}
}

func TestEngineAnswerAfterAnswerFactClosedRequest(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	// Close the first request out of band: AnswerFact with a matching key
	// clears it from the pending set.
	sid, _ := reqs[0].Key()["sid"].AsInt()
	if err := e.AnswerFact("translated", sid, fmt.Sprintf("T%d", sid)); err != nil {
		t.Fatal(err)
	}
	// Answering the closed request through the normal path must now report
	// ErrUnknownRequest, not insert a second fact.
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "late"}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("answer after AnswerFact close: %v", err)
	}
	if got := len(e.Facts("translated")); got != 1 {
		t.Errorf("translated = %v, want exactly the AnswerFact tuple", e.Facts("translated"))
	}
	// Re-running must not re-issue the closed request.
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Relation == "translated" {
			key, _ := r.Key()["sid"].AsInt()
			if key == sid {
				t.Errorf("closed request re-issued: %v", r)
			}
		}
	}
}

// TestEngineDuplicateKeyColumnRequests covers an open declaration whose
// key() repeats a column: keyExists must collapse the duplicate positions
// (not silently treat every fact as absent), so a fact loaded for the key
// suppresses the request while an unanswered key still asks.
func TestEngineDuplicateKeyColumnRequests(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel item(id: int).
open rel rating(id: int, score: int) key(id, id) asks "Rate this item".
rel rated(id: int, score: int).
item(1).
item(2).
rated(I, S) :- item(I), rating(I, S).
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AnswerFact("rating", 1, 5); err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("requests = %v, want only the unanswered item 2", reqs)
	}
	if id, _ := reqs[0].KeyValues[0].AsInt(); id != 2 {
		t.Errorf("request key = %v, want 2", reqs[0].KeyValues)
	}
	if got := len(e.Facts("rated")); got != 1 {
		t.Errorf("rated = %v", e.Facts("rated"))
	}
}
