package cylog

import (
	"errors"
	"fmt"
	"testing"
)

// Error-path coverage for the open-request answering API beyond the basic
// cases in engine_test.go: type mismatches on answer values, arity mismatches
// on direct facts, and answering requests that were already closed out of
// band by AnswerFact.

func TestEngineAnswerTypeMismatch(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	for _, r := range reqs {
		if err := e.Answer(r.ID, map[string]any{"text": "ok"}); err != nil {
			t.Fatalf("translation answer: %v", err)
		}
	}

	// Drive the flow to the checked stage: checked.ok is a bool and must
	// reject a value that ParseBool cannot read.
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var checkReq *OpenRequest
	for i := range reqs {
		if reqs[i].Relation == "checked" {
			checkReq = &reqs[i]
			break
		}
	}
	if checkReq == nil {
		t.Fatalf("no checked request in %v", reqs)
	}
	pendingBefore := len(e.PendingRequests())
	if err := e.Answer(checkReq.ID, map[string]any{"ok": "not-a-bool"}); err == nil {
		t.Error("bool column should reject a non-boolean string")
	}
	if got := len(e.PendingRequests()); got != pendingBefore {
		t.Errorf("failed answer should leave the request pending: %d -> %d", pendingBefore, got)
	}
	// A valid answer for the same request still goes through afterwards.
	if err := e.Answer(checkReq.ID, map[string]any{"ok": true}); err != nil {
		t.Errorf("valid bool answer after failed one: %v", err)
	}
	if got := len(e.PendingRequests()); got != pendingBefore-1 {
		t.Errorf("pending after valid answer = %d, want %d", got, pendingBefore-1)
	}
}

func TestEngineAnswerFactArityMismatch(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	before := len(e.PendingRequests())
	if err := e.AnswerFact("translated", 1); err == nil {
		t.Error("too few values should fail")
	}
	if err := e.AnswerFact("translated", 1, "Bonjour", "extra"); err == nil {
		t.Error("too many values should fail")
	}
	if got := len(e.PendingRequests()); got != before {
		t.Errorf("failed AnswerFact changed pending from %d to %d", before, got)
	}
	if got := len(e.Facts("translated")); got != 0 {
		t.Errorf("failed AnswerFact inserted facts: %v", e.Facts("translated"))
	}
}

func TestEngineAnswerAfterAnswerFactClosedRequest(t *testing.T) {
	e, err := NewEngine(MustParse(sequentialWorkflowProgram))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	// Close the first request out of band: AnswerFact with a matching key
	// clears it from the pending set.
	sid, _ := reqs[0].Key()["sid"].AsInt()
	if err := e.AnswerFact("translated", sid, fmt.Sprintf("T%d", sid)); err != nil {
		t.Fatal(err)
	}
	// Answering the closed request through the normal path must now report
	// ErrUnknownRequest, not insert a second fact.
	if err := e.Answer(reqs[0].ID, map[string]any{"text": "late"}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("answer after AnswerFact close: %v", err)
	}
	if got := len(e.Facts("translated")); got != 1 {
		t.Errorf("translated = %v, want exactly the AnswerFact tuple", e.Facts("translated"))
	}
	// Re-running must not re-issue the closed request.
	reqs, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Relation == "translated" {
			key, _ := r.Key()["sid"].AsInt()
			if key == sid {
				t.Errorf("closed request re-issued: %v", r)
			}
		}
	}
}

// TestAnswerFactSubsetKeySweep is the regression test for the shared
// key-matching helper (matchesRequestKey): when an open relation's key
// columns are a strict subset of its columns, AnswerFact must clear exactly
// the pending request whose key values the fact carries — comparing key
// columns only, never the open columns — and leave the other requests
// pending.
func TestAnswerFactSubsetKeySweep(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel item(id: int).
open rel review(id: int, stars: int, note: string) key(id) asks "Review this item".
rel reviewed(id: int).
item(1).
item(2).
item(3).
reviewed(I) :- item(I), review(I, _, _).
`))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("requests = %v", reqs)
	}
	if err := e.AnswerFact("review", 2, 5, "solid"); err != nil {
		t.Fatal(err)
	}
	pending := e.PendingRequests()
	if len(pending) != 2 {
		t.Fatalf("pending after sweep = %v, want items 1 and 3", pending)
	}
	for _, r := range pending {
		if id, _ := r.Key()["id"].AsInt(); id == 2 {
			t.Errorf("request for item 2 should have been swept: %v", r)
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Facts("reviewed")); got != 1 {
		t.Errorf("reviewed = %v", e.Facts("reviewed"))
	}
	// A second fact for the same key (different open columns) sweeps nothing
	// further but must not error or resurrect the request.
	if err := e.AnswerFact("review", 2, 1, "changed my mind"); err != nil {
		t.Fatal(err)
	}
	if got := len(e.PendingRequests()); got != 2 {
		t.Errorf("pending after duplicate-key fact = %d, want 2", got)
	}
}

// TestAnswerFactSweepWithoutDeclaredKey covers the sweep's slow path: an open
// relation with no key() clause issues requests keyed on whatever columns the
// generating rule bound, so closing by fact must compare key values against
// every pending request of the relation instead of computing a request id.
func TestAnswerFactSweepWithoutDeclaredKey(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel pair(a: int, b: int).
open rel judge(a: int, b: int, ok: bool) asks "Judge this pair".
rel judged(a: int, b: int).
pair(1, 2).
pair(3, 4).
judged(A, B) :- pair(A, B), judge(A, B, _).
`))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	if len(reqs[0].KeyColumns) != 2 || len(reqs[0].OpenColumns) != 1 {
		t.Fatalf("default-key request shape = %+v", reqs[0])
	}
	if err := e.AnswerFact("judge", 1, 2, true); err != nil {
		t.Fatal(err)
	}
	pending := e.PendingRequests()
	if len(pending) != 1 {
		t.Fatalf("pending after sweep = %v, want only pair (3,4)", pending)
	}
	if a, _ := pending[0].Key()["a"].AsInt(); a != 3 {
		t.Errorf("remaining request = %v, want pair (3,4)", pending[0])
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Facts("judged")); got != 1 {
		t.Errorf("judged = %v", e.Facts("judged"))
	}
}

// TestEngineDuplicateKeyColumnRequests covers an open declaration whose
// key() repeats a column: keyExists must collapse the duplicate positions
// (not silently treat every fact as absent), so a fact loaded for the key
// suppresses the request while an unanswered key still asks.
func TestEngineDuplicateKeyColumnRequests(t *testing.T) {
	e, err := NewEngine(MustParse(`
rel item(id: int).
open rel rating(id: int, score: int) key(id, id) asks "Rate this item".
rel rated(id: int, score: int).
item(1).
item(2).
rated(I, S) :- item(I), rating(I, S).
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AnswerFact("rating", 1, 5); err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("requests = %v, want only the unanswered item 2", reqs)
	}
	if id, _ := reqs[0].KeyValues[0].AsInt(); id != 2 {
		t.Errorf("request key = %v, want 2", reqs[0].KeyValues)
	}
	if got := len(e.Facts("rated")); got != 1 {
		t.Errorf("rated = %v", e.Facts("rated"))
	}
}
