package cylog

import (
	"strings"
	"testing"
)

func TestAnalyzeTranslationProgram(t *testing.T) {
	p := MustParse(translationProgram)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IDB["eligible"] || !a.IDB["final"] {
		t.Errorf("IDB = %v", a.IDB)
	}
	if !a.EDB["sentence"] || !a.EDB["worker"] || !a.EDB["translated"] {
		t.Errorf("EDB = %v", a.EDB)
	}
	if !a.OpenRelations["translated"] || !a.OpenRelations["checked"] || a.OpenRelations["sentence"] {
		t.Errorf("OpenRelations = %v", a.OpenRelations)
	}
	if len(a.Strata) != 1 {
		t.Errorf("strata = %d", len(a.Strata))
	}
	if len(a.DependsOn["final"]) != 2 {
		t.Errorf("DependsOn[final] = %v", a.DependsOn["final"])
	}
	desc := a.Describe()
	if !strings.Contains(desc, "rules: 2") || !strings.Contains(desc, "stratum 0") {
		t.Errorf("Describe() = %q", desc)
	}
}

func TestAnalyzeStratifiedNegation(t *testing.T) {
	p := MustParse(`
rel worker(w: string).
rel assigned(w: string).
rel idle(w: string).
idle(W) :- worker(W), !assigned(W).
assigned(W) :- worker(W), busy(W).
rel busy(w: string).
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(a.Strata))
	}
	// assigned must be computed before idle.
	if a.Strata[0][0].Head.Predicate != "assigned" || a.Strata[1][0].Head.Predicate != "idle" {
		t.Errorf("stratum order wrong: %v then %v", a.Strata[0][0].Head.Predicate, a.Strata[1][0].Head.Predicate)
	}
}

func TestAnalyzeRecursionThroughNegationRejected(t *testing.T) {
	p := MustParse(`
rel p(x: int).
rel q(x: int).
rel base(x: int).
p(X) :- base(X), !q(X).
q(X) :- base(X), !p(X).
`)
	if _, err := Analyze(p); err == nil {
		t.Error("recursion through negation should be rejected")
	}
}

func TestAnalyzeRecursionWithoutNegationAllowed(t *testing.T) {
	p := MustParse(`
rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Strata) != 1 || len(a.Strata[0]) != 2 {
		t.Errorf("strata = %v", a.Strata)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undeclared fact relation", `rel a(x: int). b(1).`},
		{"fact arity", `rel a(x: int). a(1, 2).`},
		{"fact type", `rel a(x: int). a("not a number").`},
		{"undeclared head", `rel a(x: int). b(X) :- a(X).`},
		{"undeclared body", `rel a(x: int). a(X) :- b(X).`},
		{"head arity", `rel a(x: int). rel b(x: int, y: int). b(X) :- a(X).`},
		{"body arity", `rel a(x: int). rel b(x: int). b(X) :- a(X, Y).`},
		{"open head", `rel a(x: int). open rel h(x: int). h(X) :- a(X).`},
		{"unsafe head var", `rel a(x: int). rel b(x: int, y: int). b(X, Y) :- a(X).`},
		{"unsafe negation var", `rel a(x: int). rel b(x: int). rel c(x: int). c(X) :- a(X), !b(Y).`},
		{"unsafe comparison var", `rel a(x: int). rel c(x: int). c(X) :- a(X), Y > 3.`},
		{"no positive atom", `rel a(x: int). rel c(x: int). c(3) :- !a(3).`},
		{"anonymous in head", `rel a(x: int). rel c(x: int). c(_) :- a(_).`},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: unexpected parse error: %v", c.name, err)
		}
		if _, err := Analyze(p); err == nil {
			t.Errorf("%s: expected analysis error", c.name)
		}
	}
}

func TestAnalyzeNegationOverEDBStaysSingleStratum(t *testing.T) {
	p := MustParse(`
rel worker(w: string).
rel banned(w: string).
rel ok(w: string).
ok(W) :- worker(W), !banned(W).
`)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Strata) != 1 {
		t.Errorf("negation over EDB should not add strata, got %d", len(a.Strata))
	}
}

// TestAnalyzeStratumInputs pins the relation→stratum dependency map behind
// incremental stratum skipping: per stratum, exactly the relations read by a
// positive body atom — negated atoms excluded, because in an insert-only
// store their growth can only suppress derivations.
func TestAnalyzeStratumInputs(t *testing.T) {
	a := MustAnalyze(MustParse(incrementalProgram))
	if len(a.Strata) != 3 {
		t.Fatalf("strata = %d, want 3", len(a.Strata))
	}
	if len(a.StratumInputs) != len(a.Strata) {
		t.Fatalf("StratumInputs has %d entries for %d strata", len(a.StratumInputs), len(a.Strata))
	}
	want := []map[string]bool{
		{"edge": true, "reach": true, "node": true, "label": true},
		{"node": true, "endpoint": true}, // labeled/reach/source appear only negated
		{"labeled": true},
	}
	for i, inputs := range a.StratumInputs {
		if len(inputs) != len(want[i]) {
			t.Errorf("StratumInputs[%d] = %v, want %v", i, inputs, want[i])
			continue
		}
		for rel := range want[i] {
			if !inputs[rel] {
				t.Errorf("StratumInputs[%d] missing %q: %v", i, rel, inputs)
			}
		}
	}
}

// TestAnalyzeStratumNegInputs pins the negative twin of the dependency map:
// per stratum, exactly the relations read by a negated body atom — the
// relations whose changes force the retraction machinery to recompute the
// stratum's affected heads — plus the per-head NegDependsOn index.
func TestAnalyzeStratumNegInputs(t *testing.T) {
	a := MustAnalyze(MustParse(incrementalProgram))
	if len(a.StratumNegInputs) != len(a.Strata) {
		t.Fatalf("StratumNegInputs has %d entries for %d strata", len(a.StratumNegInputs), len(a.Strata))
	}
	want := []map[string]bool{
		{"edge": true}, // endpoint(N) :- node(N), !edge(N, _)
		{"labeled": true, "reach": true, "source": true},
		{"lonely": true},
	}
	for i, inputs := range a.StratumNegInputs {
		if len(inputs) != len(want[i]) {
			t.Errorf("StratumNegInputs[%d] = %v, want %v", i, inputs, want[i])
			continue
		}
		for rel := range want[i] {
			if !inputs[rel] {
				t.Errorf("StratumNegInputs[%d] missing %q: %v", i, rel, inputs)
			}
		}
	}
	if deps := a.NegDependsOn["unlabeled"]; len(deps) != 1 || deps[0] != "labeled" {
		t.Errorf("NegDependsOn[unlabeled] = %v, want [labeled]", deps)
	}
	if deps := a.NegDependsOn["labeled"]; len(deps) != 0 {
		t.Errorf("NegDependsOn[labeled] = %v, want none", deps)
	}
}

func TestMustAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyze should panic on a bad program")
		}
	}()
	MustAnalyze(MustParse(`rel a(x: int). b(X) :- a(X).`))
}

func TestAnalyzeEmptyProgram(t *testing.T) {
	a, err := Analyze(MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Strata) != 0 || len(a.IDB) != 0 {
		t.Errorf("empty program analysis = %+v", a)
	}
}
