package relstore

import (
	"hash/fnv"
	"strings"
)

// Tuple is an ordered list of values. Tuples are value objects: callers must
// not mutate a tuple after handing it to a Relation.
type Tuple []Value

// NewTuple builds a tuple from native Go values using FromGo.
func NewTuple(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = FromGo(v)
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(o)
}

// Hash combines the hashes of all values.
func (t Tuple) Hash() uint64 {
	h := fnv.New64a()
	for _, v := range t {
		writeUint64(h, v.Hash())
	}
	return h.Sum64()
}

// HashAt combines the hashes of the values at the given positions, using the
// same combination as HashValues over those values. It is the tuple-side
// counterpart composite indexes are built with: HashAt(t, p...) equals
// HashValues(t[p0], t[p1], ...), so external hash tables keyed on a column
// subset (e.g. the CyLog engine's delta-frontier hash) can insert tuples with
// HashAt and probe with HashValues.
func (t Tuple) HashAt(positions ...int) uint64 {
	if len(positions) == 1 {
		return t[positions[0]].Hash()
	}
	h := fnv.New64a()
	for _, p := range positions {
		writeUint64(h, t[p].Hash())
	}
	return h.Sum64()
}

// Key returns a string key uniquely identifying the tuple contents; used for
// set semantics in relations. Equal tuples produce equal keys.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte('0' + int(canonicalType(v))))
		b.WriteByte(':')
		b.WriteString(canonicalString(v))
	}
	return b.String()
}

// canonicalType folds int and float into a single numeric class so that
// Int(3) and Float(3) produce the same key, matching Equal.
func canonicalType(v Value) Type {
	if v.t == TypeFloat {
		return TypeInt
	}
	return v.t
}

func canonicalString(v Value) string {
	if v.isNumeric() {
		f, _ := v.AsFloat()
		if f == float64(int64(f)) {
			return Int(int64(f)).AsString()
		}
		return Float(f).AsString()
	}
	return v.AsString()
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns a new tuple containing the values at the given positions.
func (t Tuple) Project(positions ...int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}
