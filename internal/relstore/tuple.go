package relstore

import (
	"strconv"
	"strings"
)

// Tuple is an ordered list of values. Tuples are value objects: callers must
// not mutate a tuple after handing it to a Relation.
type Tuple []Value

// NewTuple builds a tuple from native Go values using FromGo.
func NewTuple(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = FromGo(v)
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(o)
}

// Hash combines the hashes of all values. It is allocation-free; relations
// use it to bucket tuples for set semantics.
func (t Tuple) Hash() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h = fnvUint64(h, v.Hash())
	}
	return h
}

// HashAt combines the hashes of the values at the given positions, using the
// same combination as HashValues over those values. It is the tuple-side
// counterpart composite indexes are built with: HashAt(t, p...) equals
// HashValues(t[p0], t[p1], ...), so external hash tables keyed on a column
// subset (e.g. the CyLog engine's delta-frontier hash) can insert tuples with
// HashAt and probe with HashValues.
func (t Tuple) HashAt(positions ...int) uint64 {
	if len(positions) == 1 {
		return t[positions[0]].Hash()
	}
	h := uint64(fnvOffset64)
	for _, p := range positions {
		h = fnvUint64(h, t[p].Hash())
	}
	return h
}

// Key returns a string key uniquely identifying the tuple contents; callers
// (join/dedupe helpers) use it for set semantics in external hash maps. Equal
// tuples produce equal keys. The key is built in a single byte buffer —
// two allocations per call regardless of arity.
func (t Tuple) Key() string {
	buf := make([]byte, 0, 12*len(t))
	for i, v := range t {
		if i > 0 {
			buf = append(buf, '\x1f')
		}
		buf = append(buf, byte('0'+int(canonicalType(v))), ':')
		buf = appendCanonical(buf, v)
	}
	return string(buf)
}

// appendCanonical appends canonicalString(v) without the intermediate string.
func appendCanonical(buf []byte, v Value) []byte {
	if v.isNumeric() {
		f, _ := v.AsFloat()
		if f == float64(int64(f)) {
			return strconv.AppendInt(buf, int64(f), 10)
		}
		return strconv.AppendFloat(buf, f, 'g', -1, 64)
	}
	return append(buf, v.AsString()...)
}

// canonicalType folds int and float into a single numeric class so that
// Int(3) and Float(3) produce the same key, matching Equal.
func canonicalType(v Value) Type {
	if v.t == TypeFloat {
		return TypeInt
	}
	return v.t
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns a new tuple containing the values at the given positions.
func (t Tuple) Project(positions ...int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}
