package relstore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndTypes(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{Null(), TypeNull},
		{Int(42), TypeInt},
		{Float(3.14), TypeFloat},
		{String("x"), TypeString},
		{Bool(true), TypeBool},
	}
	for _, c := range cases {
		if c.v.Type() != c.want {
			t.Errorf("Type() = %v, want %v", c.v.Type(), c.want)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
}

func TestValueAsInt(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
		ok   bool
	}{
		{Int(7), 7, true},
		{Float(7.9), 7, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{String("123"), 123, true},
		{String("abc"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsInt()
		if got != c.want || ok != c.ok {
			t.Errorf("%v.AsInt() = (%d,%v), want (%d,%v)", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int(3).AsFloat() = %v,%v", f, ok)
	}
	if f, ok := String("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf(`String("2.5").AsFloat() = %v,%v`, f, ok)
	}
	if _, ok := String("not a number").AsFloat(); ok {
		t.Error("expected failure parsing non-numeric string")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("NULL should not convert to float")
	}
}

func TestValueAsBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		ok   bool
	}{
		{Bool(true), true, true},
		{Int(0), false, true},
		{Int(5), true, true},
		{Float(0), false, true},
		{String("true"), true, true},
		{String("xyz"), false, false},
		{Null(), false, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsBool()
		if got != c.want || ok != c.ok {
			t.Errorf("%v.AsBool() = (%v,%v), want (%v,%v)", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{String("hi"), "hi"},
		{Bool(true), "true"},
		{Null(), ""},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%v.AsString() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not equal String(\"3\")")
	}
	if !Null().Equal(Null()) {
		t.Error("NULL should equal NULL")
	}
	if Null().Equal(Int(0)) {
		t.Error("NULL should not equal Int(0)")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.5), -1},
		{Float(2.5), Int(2), 1},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("%v.Compare(%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestValueHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(3), Float(3.0)},
		{String("abc"), String("abc")},
		{Bool(true), Bool(true)},
		{Null(), Null()},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("precondition: %v should equal %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v have different hashes", p[0], p[1])
		}
	}
}

func TestValueHashPropertyEqualImpliesSameHash(t *testing.T) {
	f := func(a int64) bool {
		return Int(a).Hash() == Float(float64(a)).Hash() == Int(a).Equal(Float(float64(a)))
	}
	// The property only holds when the float64 conversion is exact; restrict
	// to the exactly representable range.
	g := func(a int32) bool {
		x, y := Int(int64(a)), Float(float64(a))
		if !x.Equal(y) {
			return false
		}
		return x.Hash() == y.Hash()
	}
	_ = f
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueComparePropertyAntisymmetric(t *testing.T) {
	g := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		return sign(x.Compare(y)) == -sign(y.Compare(x))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "float": TypeFloat, "double": TypeFloat,
		"string": TypeString, "text": TypeString, "bool": TypeBool, "BOOLEAN": TypeBool,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v,%v want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestFromGo(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{42, Int(42)},
		{int64(7), Int(7)},
		{3.5, Float(3.5)},
		{float32(1.5), Float(1.5)},
		{"hello", String("hello")},
		{true, Bool(true)},
		{Int(9), Int(9)},
	}
	for _, c := range cases {
		if got := FromGo(c.in); !got.Equal(c.want) {
			t.Errorf("FromGo(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Unsupported kinds fall back to a string rendering.
	if got := FromGo([]int{1, 2}); got.Type() != TypeString {
		t.Errorf("FromGo(slice) type = %v, want string", got.Type())
	}
}

func TestValueStringRendering(t *testing.T) {
	if Null().String() != "NULL" {
		t.Errorf("Null().String() = %q", Null().String())
	}
	if String("a").String() != `"a"` {
		t.Errorf(`String("a").String() = %q`, String("a").String())
	}
	if Int(5).String() != "5" {
		t.Errorf("Int(5).String() = %q", Int(5).String())
	}
}

func TestValueFloatSpecials(t *testing.T) {
	inf := Float(math.Inf(1))
	if inf.Hash() == Float(math.Inf(-1)).Hash() {
		t.Log("hash collision between +Inf and -Inf is allowed but unexpected")
	}
	if !inf.Equal(Float(math.Inf(1))) {
		t.Error("+Inf should equal itself")
	}
}
