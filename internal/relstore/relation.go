package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// index is a hash index over one or more columns, bucketing the stored
// tuples by the combined hash of the indexed column values; lookups re-verify
// equality to tolerate hash collisions. Buckets reference the stored tuples
// directly, so a probe yields tuples with no intermediate key lookup or
// string materialisation, and the first tuple of each bucket is stored
// inline (first/overflow split) so indexing a tuple under a fresh hash —
// the overwhelmingly common case — allocates no bucket slice.
type index struct {
	cols     []int // column positions, sorted ascending
	first    map[uint64]Tuple
	overflow map[uint64][]Tuple
}

// newIndex allocates an index sized for the expected number of tuples, so
// building over an existing relation (the common case: auto-indexing fires
// once a join shape recurs) pays no incremental map growth — the planner-side
// half of hash-join build-side pre-sizing.
func newIndex(cols []int, sizeHint int) *index {
	return &index{cols: cols, first: make(map[uint64]Tuple, sizeHint), overflow: make(map[uint64][]Tuple)}
}

// probe calls fn for every tuple in the bucket of hash h, in insertion order
// modulo deletions, until fn returns false.
func (ix *index) probe(h uint64, fn func(Tuple) bool) {
	ft, ok := ix.first[h]
	if !ok {
		return
	}
	if !fn(ft) {
		return
	}
	for _, t := range ix.overflow[h] {
		if !fn(t) {
			return
		}
	}
}

// indexKey canonically names an index by its sorted column positions, so an
// index on (a, b) and one on (b, a) are the same index.
func indexKey(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// HashValues combines the hashes of the values in order; a single value
// hashes to its own hash so one-column composite indexes match the historic
// per-column index layout. The combination is the same one composite indexes
// and Tuple.HashAt use, so callers building their own hash tables over bound
// column values (e.g. the CyLog engine's delta-frontier hash) probe with keys
// compatible with tuple-side hashing.
func HashValues(vals ...Value) uint64 {
	if len(vals) == 1 {
		return vals[0].Hash()
	}
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = fnvUint64(h, v.Hash())
	}
	return h
}

// storedEqual is the set-semantics equality of the tuple store: Value.Equal
// plus NaN == NaN. The former canonical-key layout rendered every NaN as the
// same string, so NaN facts deduplicated; folding NaNs here preserves that —
// without it a rule deriving a NaN fact would re-insert it every fixpoint
// iteration and evaluation would never converge. Probe APIs (ScanEq*) keep
// plain Equal semantics: a NaN probe matches nothing, as before.
func storedEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualValues(&a[i], &b[i]) && !(a[i].isNaN() && b[i].isNaN()) {
			return false
		}
	}
	return true
}

func (ix *index) insert(t Tuple) {
	h := t.HashAt(ix.cols...)
	if _, ok := ix.first[h]; !ok {
		ix.first[h] = t
		return
	}
	ix.overflow[h] = append(ix.overflow[h], t)
}

func (ix *index) remove(t Tuple) {
	h := t.HashAt(ix.cols...)
	ft, ok := ix.first[h]
	bucket := ix.overflow[h]
	if ok && storedEqual(ft, t) {
		if len(bucket) > 0 {
			ix.first[h] = bucket[0]
			ix.setOverflow(h, bucket[1:])
		} else {
			delete(ix.first, h)
		}
		return
	}
	for i, bt := range bucket {
		if storedEqual(bt, t) {
			ix.setOverflow(h, append(bucket[:i], bucket[i+1:]...))
			return
		}
	}
}

func (ix *index) setOverflow(h uint64, bucket []Tuple) {
	if len(bucket) == 0 {
		delete(ix.overflow, h)
		return
	}
	ix.overflow[h] = bucket
}

// stored is one resident tuple plus its support record: whether the tuple
// was asserted as a base fact (loaded data, external input, a crowd answer —
// never removed by derivation maintenance) and how many rule derivations
// currently support it (counted inserts through InsertDerived, decremented by
// DecDerived, reset by ClearDerived). The struct is held by value in the
// bucket maps, so support maintenance costs no allocation on the insert path.
type stored struct {
	t       Tuple
	derived int32
	base    bool
}

// Relation is a named, schema-typed set of tuples with optional hash indexes
// on single columns or column combinations. All operations are safe for
// concurrent use.
//
// Relations have set semantics: inserting a tuple equal to an existing one is
// a no-op and Insert reports false. Alongside set membership every tuple
// carries a support record (see stored): Insert asserts base support,
// InsertDerived counts derivation support, and the deletion-propagation APIs
// (DecDerived, ClearDerived) remove tuples whose last support vanished — the
// storage half of the CyLog engine's retraction machinery.
//
// Read-only view guarantee: as long as no Insert, InsertDerived, Delete,
// DecDerived, DeleteWhere, Clear, ClearDerived or Restore runs, the tuple
// set observed by readers is stable — any number
// of goroutines may Scan, ScanEq/ScanEqAt, Select*, Project, All, Len and
// Contains concurrently and all see the same contents. CreateIndex,
// EnsureIndex and EnsureIndexAt are read-compatible: they change only access
// paths, never contents, so they may race freely with readers (and each
// other) without perturbing results. The CyLog engine's parallel evaluation
// phase relies on exactly this contract: workers share the live relations as
// a logical snapshot and defer every tuple mutation to a single-threaded
// merge step.
type Relation struct {
	name   string
	schema *Schema

	mu sync.RWMutex
	// rows buckets the stored tuples by Tuple.Hash; equality is re-verified
	// on insert and lookup, so hash collisions only cost a short linear walk.
	// Bucketing by hash instead of a canonical string key keeps Insert free
	// of per-tuple string materialisation — the dominant allocation of the
	// seed layout on the CyLog merge path — and the first tuple of each
	// bucket lives inline in rows (collisions spill to overflow), so the
	// common insert allocates nothing beyond amortised map growth. Entries
	// carry their support record by value (stored), so base/derived
	// accounting rides the same buckets at zero extra allocation.
	rows     map[uint64]stored
	overflow map[uint64][]stored
	count    int
	indexes  map[string]*index // indexKey -> composite hash index
	version  uint64
	// colCounts holds one value-hash refcount map per column; len(map) is the
	// column's distinct-count estimate. markRows/markDistinct capture the row
	// count and estimates at the last statsEpoch advance — the drift reference
	// points. statsEpoch is atomic so planners poll it without the lock. See
	// stats.go.
	colCounts    []map[uint64]int32
	markRows     int
	markDistinct []int
	statsEpoch   atomic.Uint64

	// pager, when non-nil, is the paging backend hook installed at creation
	// by a Backend that can move this relation's contents between memory and
	// secondary storage (see backend.go). Every content-touching public
	// method calls page() first, so a paged-out relation faults back in
	// transparently before any read or write. The field is written once at
	// construction and never mutated, so the hot-path check is a single nil
	// comparison — relations of the MemoryBackend (pager == nil) behave
	// byte-for-byte like the pre-seam storage.
	pager relationPager
	// paged reports that the contents (tuple buckets, index contents,
	// distinct-count maps) have been dropped and live only in the backend's
	// segment file. Flipped only by the pager while holding mu; read
	// lock-free on the fast path.
	paged atomic.Bool
	// lastTouch is the backend's logical clock value at the most recent
	// access — the recent-touch accounting behind hot-relation pinning.
	lastTouch atomic.Uint64
}

// page gives the paging backend its pre-access hook: it records the touch
// and faults the contents back in when they are paged out. Relations without
// a pager (the memory backend, engine-internal scratch relations) pay one
// nil check.
func (r *Relation) page() {
	if r.pager != nil {
		r.pager.ensure(r)
	}
}

// dropContentsLocked empties the tuple buckets, index contents and
// distinct-count maps, keeping the index *definitions*, the statistics
// markers, the stats epoch and the version — everything a paged-out relation
// must still answer without its contents. Caller holds the write lock and is
// responsible for having persisted the contents first.
func (r *Relation) dropContentsLocked() {
	r.rows = make(map[uint64]stored)
	r.overflow = make(map[uint64][]stored)
	r.count = 0
	for _, ix := range r.indexes {
		ix.first = make(map[uint64]Tuple)
		ix.overflow = make(map[uint64][]Tuple)
	}
	for i := range r.colCounts {
		r.colCounts[i] = make(map[uint64]int32)
	}
}

// adoptContentsLocked replaces the relation's contents with those of src — a
// freshly decoded twin with identical name, schema and tuple set — and
// rebuilds this relation's indexes over them. Statistics markers, epoch and
// version are left untouched: a fault-in restores exactly the state that was
// paged out, so nothing observable moves. Caller holds the write lock.
func (r *Relation) adoptContentsLocked(src *Relation) {
	r.rows = src.rows
	r.overflow = src.overflow
	r.count = src.count
	r.colCounts = src.colCounts
	for _, ix := range r.indexes {
		ix.first = make(map[uint64]Tuple, r.count)
		ix.overflow = make(map[uint64][]Tuple)
	}
	if len(r.indexes) > 0 {
		r.forEachLocked(func(t Tuple) bool {
			for _, ix := range r.indexes {
				ix.insert(t)
			}
			return true
		})
	}
}

// approxBytes estimates the relation's resident heap footprint for the
// backend's byte budget: per-entry bucket overhead plus value payloads plus
// per-index entries. It deliberately bypasses page() — the backend sizes
// resident relations without touching their recency accounting.
func (r *Relation) approxBytes() int64 {
	const entryOverhead = 48 // stored struct + map bucket share
	const valueOverhead = 24 // Value struct share
	const indexOverhead = 40 // tuple header in an index bucket
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b int64
	r.forEachLocked(func(t Tuple) bool {
		b += entryOverhead
		for i := range t {
			b += valueOverhead + int64(len(t[i].s))
		}
		return true
	})
	b += int64(r.count*len(r.indexes)) * indexOverhead
	for _, m := range r.colCounts {
		b += int64(len(m)) * 16
	}
	return b
}

// forEachLocked calls fn for every stored tuple until fn returns false.
// Callers must hold at least the read lock.
func (r *Relation) forEachLocked(fn func(Tuple) bool) {
	for h, s := range r.rows {
		if !fn(s.t) {
			return
		}
		for _, os := range r.overflow[h] {
			if !fn(os.t) {
				return
			}
		}
	}
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	r := &Relation{
		name:     name,
		schema:   schema,
		rows:     make(map[uint64]stored),
		overflow: make(map[uint64][]stored),
		indexes:  make(map[string]*index),
	}
	r.initStatsLocked()
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples (the relation's cardinality; query
// planners use it as the base selectivity estimate).
func (r *Relation) Len() int {
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// Version returns a counter incremented on every successful mutation. It lets
// callers (e.g. the CyLog engine) detect changes cheaply.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// columnPositions resolves column names to sorted, de-duplicated positions.
func (r *Relation) columnPositions(columns []string) ([]int, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("relstore: index on relation %q needs at least one column", r.name)
	}
	cols := make([]int, 0, len(columns))
	for _, c := range columns {
		ci := r.schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("relstore: relation %q has no column %q", r.name, c)
		}
		cols = append(cols, ci)
	}
	sort.Ints(cols)
	dedup := cols[:1]
	for _, c := range cols[1:] {
		if c != dedup[len(dedup)-1] {
			dedup = append(dedup, c)
		}
	}
	return dedup, nil
}

// CreateIndex builds (or rebuilds) a hash index on the named columns. A
// single column gives the classic per-column index; multiple columns build a
// composite index probed by SelectEqMulti. Indexes are maintained
// incrementally by Insert, Delete and Clear, and carried over by Clone.
func (r *Relation) CreateIndex(columns ...string) error {
	cols, err := r.columnPositions(columns)
	if err != nil {
		return err
	}
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	ix := newIndex(cols, r.count)
	r.forEachLocked(func(t Tuple) bool {
		ix.insert(t)
		return true
	})
	r.indexes[indexKey(cols)] = ix
	return nil
}

// EnsureIndex creates an index on the named columns unless one already
// exists. It is the idempotent variant used by the CyLog planner when it
// decides a recurring bound join key deserves an index.
func (r *Relation) EnsureIndex(columns ...string) error {
	cols, err := r.columnPositions(columns)
	if err != nil {
		return err
	}
	r.mu.RLock()
	_, ok := r.indexes[indexKey(cols)]
	r.mu.RUnlock()
	if ok {
		return nil
	}
	return r.CreateIndex(columns...)
}

// HasIndex reports whether an index exists on exactly the named column set
// (order-insensitive).
func (r *Relation) HasIndex(columns ...string) bool {
	cols, err := r.columnPositions(columns)
	if err != nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.indexes[indexKey(cols)]
	return ok
}

// checkPositions validates that positions are strictly ascending and within
// the schema arity — the contract of the position-based index and probe APIs.
func (r *Relation) checkPositions(positions []int) error {
	if len(positions) == 0 {
		return fmt.Errorf("relstore: relation %q needs at least one column position", r.name)
	}
	arity := r.schema.Arity()
	for i, p := range positions {
		if p < 0 || p >= arity {
			return fmt.Errorf("relstore: position %d out of range for relation %q", p, r.name)
		}
		if i > 0 && p <= positions[i-1] {
			return fmt.Errorf("relstore: positions must be strictly ascending, got %v", positions)
		}
	}
	return nil
}

// HasIndexAt reports whether an index exists on exactly the given column
// positions (strictly ascending). It is the allocation-free variant of
// HasIndex for callers that already hold resolved positions.
func (r *Relation) HasIndexAt(positions []int) bool {
	if r.checkPositions(positions) != nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.indexes[indexKey(positions)]
	return ok
}

// EnsureIndexAt creates an index on the given column positions (strictly
// ascending) unless one already exists — EnsureIndex for callers that
// already hold resolved positions.
func (r *Relation) EnsureIndexAt(positions []int) error {
	if err := r.checkPositions(positions); err != nil {
		return err
	}
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	k := indexKey(positions)
	if _, ok := r.indexes[k]; ok {
		return nil
	}
	ix := newIndex(append([]int(nil), positions...), r.count)
	r.forEachLocked(func(t Tuple) bool {
		ix.insert(t)
		return true
	})
	r.indexes[k] = ix
	return nil
}

// IndexedColumns returns the column-name sets of all indexes, each sorted by
// column position, the sets ordered deterministically. It is the index
// metadata the CyLog planner and tests inspect.
func (r *Relation) IndexedColumns() [][]string {
	r.mu.RLock()
	ixs := make([]*index, 0, len(r.indexes))
	for _, ix := range r.indexes {
		ixs = append(ixs, ix)
	}
	r.mu.RUnlock()
	sort.Slice(ixs, func(i, j int) bool { return indexKey(ixs[i].cols) < indexKey(ixs[j].cols) })
	out := make([][]string, len(ixs))
	for i, ix := range ixs {
		names := make([]string, len(ix.cols))
		for j, c := range ix.cols {
			names[j] = r.schema.Column(c).Name
		}
		out[i] = names
	}
	return out
}

// Insert adds the tuple (coerced to the schema types) with base support. It
// returns true when the tuple was new, false when an equal tuple was already
// present (in which case the existing tuple gains base support), and an error
// when the tuple does not fit the schema. Base-supported tuples are never
// removed by DecDerived or ClearDerived — only Delete/DeleteWhere/Clear can.
func (r *Relation) Insert(t Tuple) (bool, error) {
	return r.insertSupported(t, true)
}

// InsertDerived adds the tuple with one unit of derivation support: a new
// tuple is stored with derived count 1, an existing one has its count
// incremented. It returns true when the tuple was physically new. This is the
// counted insert the CyLog engine's merge step uses for rule-derived head
// tuples when retraction is enabled.
func (r *Relation) InsertDerived(t Tuple) (bool, error) {
	return r.insertSupported(t, false)
}

// insertWithSupport restores a tuple with its full support record in one
// step: base membership plus `derived` units of derivation count. It is the
// binary importer's O(1) alternative to calling InsertDerived in a loop —
// essential because the loop bound would come from untrusted stream bytes.
func (r *Relation) insertWithSupport(t Tuple, base bool, derived int32) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	h := ct.Hash()
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	bump := func(s *stored) {
		s.base = s.base || base
		s.derived += derived
	}
	if fs, ok := r.rows[h]; ok {
		if storedEqual(fs.t, ct) {
			bump(&fs)
			r.rows[h] = fs
			return false, nil
		}
		bucket := r.overflow[h]
		for i := range bucket {
			if storedEqual(bucket[i].t, ct) {
				bump(&bucket[i])
				return false, nil
			}
		}
		r.overflow[h] = append(bucket, stored{t: ct, base: base, derived: derived})
	} else {
		r.rows[h] = stored{t: ct, base: base, derived: derived}
	}
	r.count++
	for _, ix := range r.indexes {
		ix.insert(ct)
	}
	r.statsInsertLocked(ct)
	r.version++
	return true, nil
}

func (r *Relation) insertSupported(t Tuple, base bool) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	h := ct.Hash()
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	bump := func(s *stored) {
		if base {
			s.base = true
		} else {
			s.derived++
		}
	}
	if fs, ok := r.rows[h]; ok {
		if storedEqual(fs.t, ct) {
			bump(&fs)
			r.rows[h] = fs
			return false, nil
		}
		bucket := r.overflow[h]
		for i := range bucket {
			if storedEqual(bucket[i].t, ct) {
				bump(&bucket[i])
				return false, nil
			}
		}
		ns := stored{t: ct, base: base}
		if !base {
			ns.derived = 1
		}
		r.overflow[h] = append(bucket, ns)
	} else {
		ns := stored{t: ct, base: base}
		if !base {
			ns.derived = 1
		}
		r.rows[h] = ns
	}
	r.count++
	for _, ix := range r.indexes {
		ix.insert(ct)
	}
	r.statsInsertLocked(ct)
	r.version++
	return true, nil
}

// MustInsert inserts a tuple built from native Go values and panics on schema
// mismatch. It is a convenience for tests and static fixtures.
func (r *Relation) MustInsert(vals ...any) bool {
	ok, err := r.Insert(NewTuple(vals...))
	if err != nil {
		panic(err)
	}
	return ok
}

// InsertAll inserts every tuple and returns the count of newly added tuples.
func (r *Relation) InsertAll(tuples []Tuple) (int, error) {
	added := 0
	for _, t := range tuples {
		ok, err := r.Insert(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Delete removes the tuple equal to t regardless of its support. It returns
// true when a tuple was removed.
func (r *Relation) Delete(t Tuple) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(ct, nil), nil
}

// DecDerived removes one unit of derivation support from the tuple equal to
// t. A tuple whose derivation support reaches zero and that carries no base
// support is removed from the relation (and its indexes); it returns true
// exactly in that case. Decrementing an absent tuple is a no-op. The CyLog
// engine's stratum-granular retraction currently over-deletes with
// ClearDerived and re-derives; DecDerived is the per-derivation primitive
// for finer-grained (per-rule deletion variant) propagation.
func (r *Relation) DecDerived(t Tuple) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(ct, func(s *stored) bool {
		if s.derived > 0 {
			s.derived--
		}
		return s.derived <= 0 && !s.base
	}), nil
}

// removeLocked locates the stored entry equal to ct and removes it. When
// decide is non-nil it is applied to the entry first; a false verdict keeps
// the (mutated) entry in place and reports no removal. Caller holds the write
// lock.
func (r *Relation) removeLocked(ct Tuple, decide func(*stored) bool) bool {
	h := ct.Hash()
	fs, ok := r.rows[h]
	if !ok {
		return false
	}
	var victim Tuple
	bucket := r.overflow[h]
	if storedEqual(fs.t, ct) {
		if decide != nil && !decide(&fs) {
			r.rows[h] = fs
			return false
		}
		victim = fs.t
		if len(bucket) > 0 {
			r.rows[h] = bucket[0]
			r.setOverflow(h, bucket[1:])
		} else {
			delete(r.rows, h)
		}
	} else {
		found := -1
		for i := range bucket {
			if storedEqual(bucket[i].t, ct) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		if decide != nil && !decide(&bucket[found]) {
			return false
		}
		victim = bucket[found].t
		r.setOverflow(h, append(bucket[:found], bucket[found+1:]...))
	}
	r.count--
	for _, ix := range r.indexes {
		ix.remove(victim)
	}
	r.statsRemoveLocked(victim)
	r.version++
	return true
}

// ClearDerived removes every tuple with no base support and resets the
// derivation counts of the survivors to zero, returning the number removed.
// It is the over-deletion primitive of the CyLog engine's retraction phase:
// a recomputed stratum clears its head relations down to their base facts and
// re-derives the survivors with fresh counts. Indexes are rebuilt over the
// survivors.
func (r *Relation) ClearDerived() int {
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	rows := make(map[uint64]stored, len(r.rows))
	overflow := make(map[uint64][]stored)
	keep := func(h uint64, s stored) {
		s.derived = 0
		if _, ok := rows[h]; !ok {
			rows[h] = s
			return
		}
		overflow[h] = append(overflow[h], s)
	}
	for h, s := range r.rows {
		if s.base {
			keep(h, s)
		} else {
			removed++
		}
		for _, os := range r.overflow[h] {
			if os.base {
				keep(h, os)
			} else {
				removed++
			}
		}
	}
	if removed == 0 {
		// Nothing left the relation; only counts were reset, which no reader
		// can observe — keep the original buckets and version.
		for h, s := range rows {
			r.rows[h] = s
		}
		for h, b := range overflow {
			r.overflow[h] = b
		}
		return 0
	}
	r.rows = rows
	r.overflow = overflow
	r.count -= removed
	for _, ix := range r.indexes {
		ix.first = make(map[uint64]Tuple)
		ix.overflow = make(map[uint64][]Tuple)
	}
	r.forEachLocked(func(t Tuple) bool {
		for _, ix := range r.indexes {
			ix.insert(t)
		}
		return true
	})
	r.statsRebuildLocked()
	r.version++
	return removed
}

// ScanSupport calls fn for every stored tuple together with its support
// record until fn returns false. Iteration order is unspecified; fn must not
// call back into the relation's mutating methods. It is the bulk accessor the
// CyLog engine's retraction snapshots use — one pass instead of a per-tuple
// Support probe.
func (r *Relation) ScanSupport(fn func(t Tuple, base bool, derived int) bool) {
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for h, s := range r.rows {
		if !fn(s.t, s.base, int(s.derived)) {
			return
		}
		for _, os := range r.overflow[h] {
			if !fn(os.t, os.base, int(os.derived)) {
				return
			}
		}
	}
}

// Support reports the support record of the tuple equal to t: whether it
// carries base support, its current derivation count, and whether it is
// stored at all.
func (r *Relation) Support(t Tuple) (base bool, derived int, ok bool) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, 0, false
	}
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := ct.Hash()
	if fs, found := r.rows[h]; found {
		if storedEqual(fs.t, ct) {
			return fs.base, int(fs.derived), true
		}
		for _, os := range r.overflow[h] {
			if storedEqual(os.t, ct) {
				return os.base, int(os.derived), true
			}
		}
	}
	return false, 0, false
}

func (r *Relation) setOverflow(h uint64, bucket []stored) {
	if len(bucket) == 0 {
		delete(r.overflow, h)
		return
	}
	r.overflow[h] = bucket
}

// DeleteWhere removes every tuple for which pred returns true and returns the
// number removed.
func (r *Relation) DeleteWhere(pred func(Tuple) bool) int {
	victims := r.Select(pred)
	n := 0
	for _, t := range victims {
		if ok, _ := r.Delete(t); ok {
			n++
		}
	}
	return n
}

// Contains reports whether an equal tuple is stored.
func (r *Relation) Contains(t Tuple) bool {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false
	}
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := ct.Hash()
	if fs, ok := r.rows[h]; ok {
		if storedEqual(fs.t, ct) {
			return true
		}
		for _, os := range r.overflow[h] {
			if storedEqual(os.t, ct) {
				return true
			}
		}
	}
	return false
}

// All returns every tuple in deterministic (sorted) order.
func (r *Relation) All() []Tuple {
	r.page()
	r.mu.RLock()
	out := make([]Tuple, 0, r.count)
	r.forEachLocked(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Scan calls fn for every tuple until fn returns false. Iteration order is
// unspecified; fn must not call back into the relation's mutating methods.
func (r *Relation) Scan(fn func(Tuple) bool) {
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.forEachLocked(fn)
}

// lookup finds the index covering exactly the given column positions.
// Callers must hold at least the read lock and pass sorted positions. The
// candidates are compared positionally rather than through indexKey, so the
// per-probe lookup allocates nothing (relations carry at most a handful of
// indexes).
func (r *Relation) lookup(cols []int) *index {
	for _, ix := range r.indexes {
		if positionsEqual(ix.cols, cols) {
			return ix
		}
	}
	return nil
}

func positionsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ScanEq calls fn for every tuple whose values at the given columns equal the
// corresponding vals, until fn returns false. It probes an index covering
// exactly that column set when one exists and falls back to a full scan
// otherwise; it reports whether an index was used. Iteration order is
// unspecified; fn must not call back into the relation's mutating methods.
func (r *Relation) ScanEq(columns []string, vals []Value, fn func(Tuple) bool) (bool, error) {
	if len(columns) != len(vals) {
		return false, fmt.Errorf("relstore: ScanEq on %q got %d columns but %d values", r.name, len(columns), len(vals))
	}
	if len(columns) == 0 {
		return false, fmt.Errorf("relstore: ScanEq on %q needs at least one column", r.name)
	}
	type probe struct {
		pos int
		val Value
	}
	probes := make([]probe, len(columns))
	for i, c := range columns {
		ci := r.schema.ColumnIndex(c)
		if ci < 0 {
			return false, fmt.Errorf("relstore: relation %q has no column %q", r.name, c)
		}
		probes[i] = probe{pos: ci, val: vals[i]}
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i].pos < probes[j].pos })
	// Collapse duplicate columns; conflicting constraints can never match.
	dedup := probes[:1]
	for _, p := range probes[1:] {
		last := dedup[len(dedup)-1]
		if p.pos == last.pos {
			if !p.val.Equal(last.val) {
				return false, nil
			}
			continue
		}
		dedup = append(dedup, p)
	}
	positions := make([]int, len(dedup))
	probeVals := make([]Value, len(dedup))
	for i, p := range dedup {
		positions[i] = p.pos
		probeVals[i] = p.val
	}
	return r.ScanEqAt(positions, probeVals, fn)
}

// ScanEqAt is ScanEq with pre-resolved column positions: it calls fn for
// every tuple whose values at the given positions equal the corresponding
// vals. Positions must be strictly ascending and in schema range. It is the
// allocation-light primitive the CyLog join loop issues once per binding,
// skipping the per-call name resolution and sort that ScanEq performs.
func (r *Relation) ScanEqAt(positions []int, vals []Value, fn func(Tuple) bool) (bool, error) {
	if len(positions) != len(vals) {
		return false, fmt.Errorf("relstore: ScanEqAt on %q got %d positions and %d values", r.name, len(positions), len(vals))
	}
	if err := r.checkPositions(positions); err != nil {
		return false, err
	}
	matches := func(t Tuple) bool {
		for i, p := range positions {
			if !t[p].Equal(vals[i]) {
				return false
			}
		}
		return true
	}

	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ix := r.lookup(positions); ix != nil {
		ix.probe(HashValues(vals...), func(t Tuple) bool {
			return !matches(t) || fn(t)
		})
		return true, nil
	}
	r.forEachLocked(func(t Tuple) bool {
		return !matches(t) || fn(t)
	})
	return false, nil
}

// ContainsAt reports whether any tuple's values at the given positions
// (strictly ascending) equal the corresponding vals. It is the existence
// probe of the position-based API family: callers holding resolved positions
// and values — e.g. the CyLog engine checking whether an open relation
// already has a fact for a request key — probe without re-boxing values into
// tuples or resolving column names. An index covering exactly that column
// set answers in O(1); otherwise the scan stops at the first match.
func (r *Relation) ContainsAt(positions []int, vals []Value) (bool, error) {
	found := false
	_, err := r.ScanEqAt(positions, vals, func(Tuple) bool {
		found = true
		return false
	})
	return found, err
}

// Select returns every tuple satisfying pred, in deterministic order.
func (r *Relation) Select(pred func(Tuple) bool) []Tuple {
	r.page()
	r.mu.RLock()
	out := make([]Tuple, 0)
	r.forEachLocked(func(t Tuple) bool {
		if pred(t) {
			out = append(out, t)
		}
		return true
	})
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// SelectEq returns every tuple whose named column equals v, in deterministic
// order. It uses a hash index on the column when one exists, and otherwise
// scans.
func (r *Relation) SelectEq(column string, v Value) []Tuple {
	out, err := r.SelectEqMulti([]string{column}, []Value{v})
	if err != nil {
		return nil
	}
	return out
}

// SelectEqMulti returns every tuple whose values at the named columns equal
// the corresponding vals, in deterministic order. It probes a composite index
// on exactly that column set when one exists, and otherwise scans.
func (r *Relation) SelectEqMulti(columns []string, vals []Value) ([]Tuple, error) {
	var out []Tuple
	_, err := r.ScanEq(columns, vals, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Project returns the distinct projection of the relation onto the named
// columns, in deterministic order.
func (r *Relation) Project(columns ...string) ([]Tuple, error) {
	positions := make([]int, len(columns))
	for i, c := range columns {
		p := r.schema.ColumnIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("relstore: relation %q has no column %q", r.name, c)
		}
		positions[i] = p
	}
	seen := make(map[string]bool)
	var out []Tuple
	r.page()
	r.mu.RLock()
	r.forEachLocked(func(t Tuple) bool {
		p := t.Project(positions...)
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
		return true
	})
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Clear removes all tuples. Indexes remain defined but empty.
func (r *Relation) Clear() {
	r.page()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return
	}
	r.rows = make(map[uint64]stored)
	r.overflow = make(map[uint64][]stored)
	r.count = 0
	for _, ix := range r.indexes {
		ix.first = make(map[uint64]Tuple)
		ix.overflow = make(map[uint64][]Tuple)
	}
	r.statsRebuildLocked()
	r.version++
}

// Clone returns a deep copy of the relation; the clone carries the same
// indexed column sets, rebuilt over the copied tuples, preserves every
// tuple's support record (base flag and derivation count), and inherits the
// statistics state (distinct-count estimates, drift markers and stats epoch)
// so a snapshot plans exactly like its source.
func (r *Relation) Clone() *Relation {
	r.page()
	r.mu.RLock()
	colSets := make([][]int, 0, len(r.indexes))
	for _, ix := range r.indexes {
		colSets = append(colSets, append([]int(nil), ix.cols...))
	}
	entries := make([]stored, 0, r.count)
	for h, s := range r.rows {
		entries = append(entries, s)
		entries = append(entries, r.overflow[h]...)
	}
	markRows := r.markRows
	markDistinct := append([]int(nil), r.markDistinct...)
	epoch := r.statsEpoch.Load()
	r.mu.RUnlock()

	c := NewRelation(r.name, r.schema)
	for _, cols := range colSets {
		c.indexes[indexKey(cols)] = newIndex(cols, len(entries))
	}
	for _, s := range entries {
		h := s.t.Hash()
		if _, ok := c.rows[h]; ok {
			c.overflow[h] = append(c.overflow[h], s)
		} else {
			c.rows[h] = s
		}
		c.count++
		for _, ix := range c.indexes {
			ix.insert(s.t)
		}
		for i := range s.t {
			c.colCounts[i][s.t[i].Hash()]++
		}
	}
	c.markRows = markRows
	copy(c.markDistinct, markDistinct)
	c.statsEpoch.Store(epoch)
	c.version = 0
	return c
}

// String summarises the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s [%d tuples]", r.name, r.schema, r.Len())
}
