package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a named, schema-typed set of tuples with optional hash indexes
// on individual columns. All operations are safe for concurrent use.
//
// Relations have set semantics: inserting a tuple equal to an existing one is
// a no-op and Insert reports false.
type Relation struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	rows    map[string]Tuple      // key -> tuple
	indexes map[int]map[uint64][]string // column -> value hash -> tuple keys
	version uint64
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{
		name:    name,
		schema:  schema,
		rows:    make(map[string]Tuple),
		indexes: make(map[int]map[uint64][]string),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// Version returns a counter incremented on every successful mutation. It lets
// callers (e.g. the CyLog engine) detect changes cheaply.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// CreateIndex builds (or rebuilds) a hash index on the named column. Lookups
// via SelectEq on an indexed column avoid a full scan.
func (r *Relation) CreateIndex(column string) error {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relstore: relation %q has no column %q", r.name, column)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make(map[uint64][]string)
	for key, t := range r.rows {
		h := t[ci].Hash()
		idx[h] = append(idx[h], key)
	}
	r.indexes[ci] = idx
	return nil
}

// HasIndex reports whether an index exists on the named column.
func (r *Relation) HasIndex(column string) bool {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.indexes[ci]
	return ok
}

// Insert adds the tuple (coerced to the schema types). It returns true when
// the tuple was new, false when an equal tuple was already present, and an
// error when the tuple does not fit the schema.
func (r *Relation) Insert(t Tuple) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	key := ct.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.rows[key]; exists {
		return false, nil
	}
	r.rows[key] = ct
	for ci, idx := range r.indexes {
		h := ct[ci].Hash()
		idx[h] = append(idx[h], key)
	}
	r.version++
	return true, nil
}

// MustInsert inserts a tuple built from native Go values and panics on schema
// mismatch. It is a convenience for tests and static fixtures.
func (r *Relation) MustInsert(vals ...any) bool {
	ok, err := r.Insert(NewTuple(vals...))
	if err != nil {
		panic(err)
	}
	return ok
}

// InsertAll inserts every tuple and returns the count of newly added tuples.
func (r *Relation) InsertAll(tuples []Tuple) (int, error) {
	added := 0
	for _, t := range tuples {
		ok, err := r.Insert(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Delete removes the tuple equal to t. It returns true when a tuple was
// removed.
func (r *Relation) Delete(t Tuple) (bool, error) {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false, err
	}
	key := ct.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.rows[key]; !exists {
		return false, nil
	}
	delete(r.rows, key)
	for ci, idx := range r.indexes {
		h := ct[ci].Hash()
		keys := idx[h]
		for i, k := range keys {
			if k == key {
				idx[h] = append(keys[:i], keys[i+1:]...)
				break
			}
		}
		if len(idx[h]) == 0 {
			delete(idx, h)
		}
	}
	r.version++
	return true, nil
}

// DeleteWhere removes every tuple for which pred returns true and returns the
// number removed.
func (r *Relation) DeleteWhere(pred func(Tuple) bool) int {
	victims := r.Select(pred)
	n := 0
	for _, t := range victims {
		if ok, _ := r.Delete(t); ok {
			n++
		}
	}
	return n
}

// Contains reports whether an equal tuple is stored.
func (r *Relation) Contains(t Tuple) bool {
	ct, err := r.schema.Coerce(t)
	if err != nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.rows[ct.Key()]
	return ok
}

// All returns every tuple in deterministic (sorted) order.
func (r *Relation) All() []Tuple {
	r.mu.RLock()
	out := make([]Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Scan calls fn for every tuple until fn returns false. Iteration order is
// unspecified; fn must not call back into the relation's mutating methods.
func (r *Relation) Scan(fn func(Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, t := range r.rows {
		if !fn(t) {
			return
		}
	}
}

// Select returns every tuple satisfying pred, in deterministic order.
func (r *Relation) Select(pred func(Tuple) bool) []Tuple {
	r.mu.RLock()
	out := make([]Tuple, 0)
	for _, t := range r.rows {
		if pred(t) {
			out = append(out, t)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// SelectEq returns every tuple whose named column equals v. It uses a hash
// index on the column when one exists, and otherwise scans.
func (r *Relation) SelectEq(column string, v Value) []Tuple {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	r.mu.RLock()
	idx, hasIdx := r.indexes[ci]
	var out []Tuple
	if hasIdx {
		for _, key := range idx[v.Hash()] {
			t := r.rows[key]
			if t[ci].Equal(v) {
				out = append(out, t)
			}
		}
	} else {
		for _, t := range r.rows {
			if t[ci].Equal(v) {
				out = append(out, t)
			}
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Project returns the distinct projection of the relation onto the named
// columns, in deterministic order.
func (r *Relation) Project(columns ...string) ([]Tuple, error) {
	positions := make([]int, len(columns))
	for i, c := range columns {
		p := r.schema.ColumnIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("relstore: relation %q has no column %q", r.name, c)
		}
		positions[i] = p
	}
	seen := make(map[string]bool)
	var out []Tuple
	r.mu.RLock()
	for _, t := range r.rows {
		p := t.Project(positions...)
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Clear removes all tuples.
func (r *Relation) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rows) == 0 {
		return
	}
	r.rows = make(map[string]Tuple)
	for ci := range r.indexes {
		r.indexes[ci] = make(map[uint64][]string)
	}
	r.version++
}

// Clone returns a deep copy of the relation (indexes are rebuilt lazily: the
// clone starts with the same indexed columns).
func (r *Relation) Clone() *Relation {
	r.mu.RLock()
	cols := make([]int, 0, len(r.indexes))
	for ci := range r.indexes {
		cols = append(cols, ci)
	}
	tuples := make([]Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		tuples = append(tuples, t)
	}
	r.mu.RUnlock()

	c := NewRelation(r.name, r.schema)
	for _, ci := range cols {
		c.indexes[ci] = make(map[uint64][]string)
	}
	for _, t := range tuples {
		c.Insert(t) //nolint:errcheck // tuples came from a schema-validated relation
	}
	return c
}

// String summarises the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s [%d tuples]", r.name, r.schema, r.Len())
}
