package relstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fillRelation inserts n distinct wide-ish rows so residency estimates are
// comfortably non-trivial.
func fillRelation(t *testing.T, r *Relation, n, salt int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.MustInsert(i, fmt.Sprintf("payload-%d-%d-0123456789abcdef", salt, i))
	}
}

func TestDiskBackendEvictAndFault(t *testing.T) {
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	r := d.MustCreate("cold", MustSchema("x:int", "s:string"))
	fillRelation(t, r, 100, 1)
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	if !r.paged.Load() {
		t.Fatal("relation still resident after Maintain under a 1-byte budget")
	}
	s := b.Stats()
	if s.Evictions != 1 || s.SegmentWrites != 1 || s.ResidentRelations != 0 {
		t.Fatalf("stats after evict = %+v, want 1 eviction, 1 segment write, 0 resident", s)
	}
	// First content access faults the segment back in, byte-exact.
	if r.Len() != 100 || !r.Contains(NewTuple(7, "payload-1-7-0123456789abcdef")) {
		t.Fatal("faulted contents differ from what was evicted")
	}
	if r.paged.Load() {
		t.Fatal("relation still marked paged after access")
	}
	if got := b.Stats().Faults; got != 1 {
		t.Fatalf("faults = %d, want 1", got)
	}
}

func TestDiskBackendCleanEvictionSkipsRewrite(t *testing.T) {
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	r := d.MustCreate("cold", MustSchema("x:int", "s:string"))
	fillRelation(t, r, 50, 2)
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	r.Len() // fault back in, no mutation
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	if s.SegmentWrites != 1 {
		t.Fatalf("segment writes = %d, want 1 (clean re-eviction must reuse the segment)", s.SegmentWrites)
	}
}

func TestDiskBackendBudgetKeepsHotSet(t *testing.T) {
	// Budget sized for roughly two of the four relations: after Maintain the
	// resident estimate must fit the budget, and the most recently touched
	// relation must be among the survivors.
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	rels := make([]*Relation, 4)
	for i := range rels {
		rels[i] = d.MustCreate(fmt.Sprintf("rel%d", i), MustSchema("x:int", "s:string"))
		fillRelation(t, rels[i], 60, i)
		if err := b.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	// Touch rel3 last, then rebalance.
	rels[3].Len()
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.ResidentBytes > s.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d after Maintain", s.ResidentBytes, s.BudgetBytes)
	}
	if s.Relations != 4 {
		t.Fatalf("relations = %d, want 4", s.Relations)
	}
	if s.ResidentRelations == 0 {
		t.Fatal("budget should keep at least the hot relation resident")
	}
	if rels[3].paged.Load() {
		t.Fatal("most recently touched relation was evicted")
	}
	// Everything still answers correctly regardless of residency.
	for i, r := range rels {
		if r.Len() != 60 {
			t.Fatalf("rel%d: Len = %d, want 60", i, r.Len())
		}
	}
}

func TestDiskBackendOverBudgetRelationStaysUsable(t *testing.T) {
	// A single relation bigger than the whole budget: it pages out when cold
	// but faults back and stays usable while being the working set.
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	r := d.MustCreate("big", MustSchema("x:int", "s:string"))
	fillRelation(t, r, 200, 9)
	for round := 0; round < 3; round++ {
		if err := b.Maintain(); err != nil {
			t.Fatal(err)
		}
		if got, want := r.Len(), 200+round; got != want {
			t.Fatalf("round %d: Len = %d, want %d", round, got, want)
		}
		r.MustInsert(1000+round, "new-row")
	}
	if r.Len() != 203 {
		t.Fatalf("final Len = %d, want 203", r.Len())
	}
}

func TestDiskBackendVolatileExempt(t *testing.T) {
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	d.Backend().MarkVolatile("derived")
	r := d.MustCreate("derived", MustSchema("x:int"))
	r.MustInsert(1)
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	if r.paged.Load() || r.pager != nil {
		t.Fatal("volatile relation must never be managed by the pager")
	}
	if got := b.Stats().Relations; got != 0 {
		t.Fatalf("stats count %d managed relations, want 0 (volatile exempt)", got)
	}
}

func TestDiskBackendWipesStaleSegments(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.seg")
	if err := os.WriteFile(stale, []byte("junk from a previous process"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskBackend(DiskOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale segment survived NewDiskBackend (segments are cache, the WAL is truth)")
	}
}

func TestDiskBackendDropRemovesSegment(t *testing.T) {
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	r := d.MustCreate("gone", MustSchema("x:int"))
	r.MustInsert(1)
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	seg := b.segPath("gone")
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("expected segment after eviction: %v", err)
	}
	if !d.Drop("gone") {
		t.Fatal("Drop returned false")
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatal("segment survived Drop")
	}
	if got := b.Stats().Relations; got != 0 {
		t.Fatalf("stats count %d relations after Drop, want 0", got)
	}
}

func TestDiskBackendSegmentCorruptionPanics(t *testing.T) {
	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	r := d.MustCreate("bits", MustSchema("x:int", "s:string"))
	fillRelation(t, r, 40, 3)
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(b.segPath("bits"))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(b.segPath("bits"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("faulting a corrupt segment must panic, not serve wrong contents")
		}
	}()
	r.Len()
}

func TestDiskBackendImportSnapshotSpills(t *testing.T) {
	// Build a multi-relation snapshot on memory, import it into a
	// tiny-budget disk backend: the import must succeed with the post-import
	// resident set within budget, not hold every relation in memory.
	src := NewDatabase()
	for ri := 0; ri < 6; ri++ {
		r := src.MustCreate(fmt.Sprintf("rel%d", ri), MustSchema("x:int", "s:string"))
		fillRelation(t, r, 80, ri)
	}
	var snap bytes.Buffer
	if err := src.ExportSnapshot(nil, &snap); err != nil {
		t.Fatal(err)
	}

	b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabaseWith(b)
	names, err := d.ImportSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("imported %d relations, want 6", len(names))
	}
	s := b.Stats()
	if s.ResidentBytes > s.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d right after import", s.ResidentBytes, s.BudgetBytes)
	}
	if s.Evictions == 0 {
		t.Fatal("import of an over-budget snapshot should have spilled relations")
	}
	// Importing bumps each relation's stats epoch past the exported value
	// (restoreStatsMarkers never moves backwards), so a re-export is not
	// byte-identical to the source on any backend. The differential that must
	// hold: the disk backend's re-export — partly streamed straight from
	// segments — equals a memory backend's re-export of the same snapshot.
	mem := NewDatabase()
	if _, err := mem.ImportSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	var fromMem, fromDisk bytes.Buffer
	if err := mem.ExportSnapshot(nil, &fromMem); err != nil {
		t.Fatal(err)
	}
	if err := d.ExportSnapshot(nil, &fromDisk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromMem.Bytes(), fromDisk.Bytes()) {
		t.Fatal("snapshot re-exported from the disk backend differs from the memory backend's")
	}
}
