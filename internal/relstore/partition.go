package relstore

// Shard-stable hash partitioning.
//
// The sharded fixpoint evaluator (internal/cylog) splits delta frontiers and
// leading full scans across N engine shards by tuple hash. The partitioning
// lives here because it must be a property of the *storage* representation:
// Tuple.Hash is the inline FNV-1a digest of the tuple's coerced values, so a
// tuple's shard never depends on insertion order, index state, or which
// process computed it — the precondition for moving shards out of process
// later without re-partitioning disagreements. Every tuple lands on exactly
// one shard, and partitioning a relation loses nothing: reassembling the
// buckets (in any order) reproduces the relation's contents exactly, which
// the property tests in partition_test.go pin.

// ShardOf returns the shard owning t in an n-way hash partitioning:
// Tuple.Hash() mod shards. Shard counts below 2 collapse to the single shard
// 0. The assignment is stable across processes and relations — it depends
// only on the tuple's values.
func ShardOf(t Tuple, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(t.Hash() % uint64(shards))
}

// PartitionTuples splits ts into `shards` buckets by ShardOf, preserving the
// input order within each bucket. Every tuple lands in exactly one bucket,
// so concatenating the buckets is a permutation of ts. For shards <= 1 the
// single returned bucket shares ts's backing array (no copy).
func PartitionTuples(ts []Tuple, shards int) [][]Tuple {
	if shards <= 1 {
		return [][]Tuple{ts}
	}
	out := make([][]Tuple, shards)
	for _, t := range ts {
		s := ShardOf(t, shards)
		out[s] = append(out[s], t)
	}
	return out
}

// Partition splits the relation's current contents into `shards` hash
// buckets (sorted within each bucket, since they derive from All). It is a
// read-only snapshot: repartitioning with a different shard count, or
// reinserting the buckets into a fresh relation, round-trips the contents
// losslessly.
func (r *Relation) Partition(shards int) [][]Tuple {
	return PartitionTuples(r.All(), shards)
}
