package relstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Disk-paged backend
//
// DiskBackend keeps cold base relations as segment files under a project
// directory and pins hot relations in memory by recent-touch accounting
// against a configurable byte budget. A segment is one relation's ExportBinary
// payload wrapped in a small CRC-checked envelope, so segment bytes are the
// RSB2 relation encoding — snapshot export can stream a paged-out relation
// straight from its segment and produce output byte-identical to the memory
// backend's.
//
// Segments are a spill cache, not durability: the WAL remains the single
// source of truth. NewDiskBackend therefore wipes stale segments at open —
// recovery rebuilds state from the WAL snapshot + log and re-spills. This
// keeps exactly one owner of crash consistency (the WAL) and makes a segment
// directory always safe to delete.
//
// Locking: the backend mutex (mu) is a leaf — it is never held while taking a
// relation lock or doing file I/O that could block on a relation. Eviction and
// fault-in synchronize on each relation's own lock plus its version counter,
// and rebalance passes are serialized by rebalanceMu.

// DefaultDiskBudgetBytes is the residency budget used when DiskOptions leaves
// BudgetBytes unset.
const DefaultDiskBudgetBytes int64 = 256 << 20

const (
	segMagic     = "RSG1"
	segSuffix    = ".seg"
	segTmpSuffix = ".seg.tmp"
)

var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions configures NewDiskBackend.
type DiskOptions struct {
	// Dir is the segment directory. Required; created when absent. Stale
	// segments from a previous process are wiped at open (see package
	// comment above — segments are cache, the WAL is truth).
	Dir string
	// BudgetBytes caps the estimated heap bytes of resident managed
	// relations; <= 0 selects DefaultDiskBudgetBytes. A single relation
	// larger than the budget stays resident while in use — the budget
	// bounds the cold set, it cannot shrink the working set below one
	// relation.
	BudgetBytes int64
}

// diskEntry is the residency record of one managed (non-volatile) relation.
// All fields are guarded by DiskBackend.mu.
type diskEntry struct {
	rel *Relation
	// hasSegment reports a valid segment file for this relation.
	hasSegment bool
	// cleanVersion is rel.version at the moment the segment was written; the
	// segment matches memory exactly while rel.version == cleanVersion.
	cleanVersion uint64
	// segBytes is the segment payload size when hasSegment.
	segBytes int64
	// estBytes caches rel.approxBytes() measured at estVersion.
	estBytes   int64
	estVersion uint64
	estValid   bool
}

// DiskBackend implements Backend with lazy-loaded, budget-evicted segment
// storage. See the package comment block above for the design.
type DiskBackend struct {
	d      *Database
	dir    string
	budget int64

	// clock is the logical recency clock: bumped on every fault-in and at
	// the start of every rebalance pass. Relations record it on access
	// (Relation.lastTouch), giving coarse LRU without per-access locking.
	clock atomic.Uint64

	// rebalanceMu serializes eviction passes so concurrent faults and
	// Maintain calls do not double-evict.
	rebalanceMu sync.Mutex

	mu       sync.Mutex // leaf lock: entries, volatile set, counters
	entries  map[string]*diskEntry
	volatile map[string]bool

	faults        int64
	evictions     int64
	segmentWrites int64
	segmentBytes  int64
}

// NewDiskBackend opens a disk-paged backend rooted at opts.Dir for
// NewDatabaseWith. The directory is created when absent and cleared of stale
// segments.
func NewDiskBackend(opts DiskOptions) (*DiskBackend, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("relstore: disk backend needs a segment directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: disk backend: %w", err)
	}
	ents, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("relstore: disk backend: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, segSuffix) || strings.HasSuffix(name, segTmpSuffix) {
			if err := os.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, fmt.Errorf("relstore: disk backend: clearing stale segment: %w", err)
			}
		}
	}
	budget := opts.BudgetBytes
	if budget <= 0 {
		budget = DefaultDiskBudgetBytes
	}
	return &DiskBackend{
		dir:      opts.Dir,
		budget:   budget,
		entries:  make(map[string]*diskEntry),
		volatile: make(map[string]bool),
	}, nil
}

// Name implements Backend.
func (b *DiskBackend) Name() string { return "disk" }

func (b *DiskBackend) attach(d *Database) {
	if b.d != nil {
		panic("relstore: backend already attached to a database")
	}
	b.d = d
}

// Dir returns the segment directory.
func (b *DiskBackend) Dir() string { return b.dir }

// MarkVolatile implements Backend: the named relation, once created, is never
// paged (IDB relations are recomputed by the engine, which also holds direct
// pointers into them). Must run before the relation is created.
func (b *DiskBackend) MarkVolatile(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.volatile[name] = true
}

// OpenRelation implements Backend. Non-volatile relations get the pager hook
// and a residency entry; volatile ones are plain heap relations.
func (b *DiskBackend) OpenRelation(name string, schema *Schema) (*Relation, error) {
	r := NewRelation(name, schema)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.volatile[name] {
		return r, nil
	}
	r.pager = b
	r.lastTouch.Store(b.clock.Load())
	b.entries[name] = &diskEntry{rel: r}
	return r, nil
}

// ReleaseRelation implements Backend: forget the residency entry and delete
// the segment of a dropped relation.
func (b *DiskBackend) ReleaseRelation(name string) {
	b.mu.Lock()
	delete(b.entries, name)
	delete(b.volatile, name)
	b.mu.Unlock()
	os.Remove(b.segPath(name))
	os.Remove(b.segPath(name) + ".tmp")
}

// ensure implements relationPager: record the touch, fault in when paged out.
func (b *DiskBackend) ensure(r *Relation) {
	r.lastTouch.Store(b.clock.Load())
	if r.paged.Load() {
		b.fault(r)
	}
}

// fault loads a paged-out relation's contents back from its segment. Segment
// corruption or loss is an invariant violation — the backend wrote the file
// itself this process and nothing else may touch the directory — so failures
// panic rather than silently returning an empty relation (the WAL can rebuild
// state after a restart; serving wrong contents cannot be undone).
func (b *DiskBackend) fault(r *Relation) {
	r.mu.Lock()
	if !r.paged.Load() {
		r.mu.Unlock()
		return
	}
	payload, err := b.readSegment(r.name)
	if err == nil {
		var src *Relation
		tmp := NewDatabase()
		src, err = importBinary(tmp, bytes.NewReader(payload), binaryVersion2)
		if err == nil {
			// Adopt contents only; r keeps its own markers, epoch and
			// version — the segment was written clean, so they agree.
			r.adoptContentsLocked(src)
			r.paged.Store(false)
		}
	}
	r.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("relstore: disk backend: faulting relation %q: %v", r.name, err))
	}
	b.clock.Add(1)
	r.lastTouch.Store(b.clock.Load())
	b.mu.Lock()
	b.faults++
	b.mu.Unlock()
	b.rebalance()
}

// Maintain implements Backend: refresh size estimates and evict cold
// relations until the resident set fits the budget.
func (b *DiskBackend) Maintain() error {
	b.clock.Add(1)
	return b.rebalance()
}

// rebalance evicts least-recently-touched resident relations until the
// resident estimate fits the budget. Relations touched at the current clock
// value (the working set of the access that triggered us) are never victims,
// so a single over-budget relation stays resident while in use.
func (b *DiskBackend) rebalance() error {
	b.rebalanceMu.Lock()
	defer b.rebalanceMu.Unlock()
	for {
		victim, over := b.pickVictim()
		if !over || victim == nil {
			return nil
		}
		if err := b.evict(victim); err != nil {
			return err
		}
	}
}

// pickVictim refreshes residency estimates and returns the coldest evictable
// entry plus whether the resident total exceeds the budget.
func (b *DiskBackend) pickVictim() (*diskEntry, bool) {
	b.mu.Lock()
	resident := make([]*diskEntry, 0, len(b.entries))
	for _, e := range b.entries {
		if !e.rel.paged.Load() {
			resident = append(resident, e)
		}
	}
	b.mu.Unlock()

	// Refresh stale size estimates outside the backend lock (approxBytes
	// takes the relation's read lock).
	now := b.clock.Load()
	type sized struct {
		e     *diskEntry
		bytes int64
		touch uint64
	}
	all := make([]sized, 0, len(resident))
	var total int64
	for _, e := range resident {
		v := e.rel.Version()
		b.mu.Lock()
		valid := e.estValid && e.estVersion == v
		est := e.estBytes
		b.mu.Unlock()
		if !valid {
			est = e.rel.approxBytes()
			b.mu.Lock()
			e.estBytes, e.estVersion, e.estValid = est, v, true
			b.mu.Unlock()
		}
		total += est
		all = append(all, sized{e: e, bytes: est, touch: e.rel.lastTouch.Load()})
	}
	if total <= b.budget {
		return nil, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].touch != all[j].touch {
			return all[i].touch < all[j].touch
		}
		return all[i].e.rel.name < all[j].e.rel.name
	})
	for _, s := range all {
		if s.touch >= now {
			continue // current working set is pinned
		}
		return s.e, true
	}
	return nil, false
}

// evict flushes the entry's relation to its segment when dirty, then drops the
// in-memory contents. A relation mutated between flush and drop is left
// resident (the next rebalance retries with fresh bytes).
func (b *DiskBackend) evict(e *diskEntry) error {
	r := e.rel
	if r.paged.Load() {
		return nil
	}
	v0 := r.Version()
	b.mu.Lock()
	clean := e.hasSegment && e.cleanVersion == v0
	b.mu.Unlock()
	if !clean {
		var buf bytes.Buffer
		if err := ExportBinary(r, &buf); err != nil {
			return fmt.Errorf("relstore: disk backend: exporting %q: %w", r.name, err)
		}
		if r.Version() != v0 {
			return nil // dirtied mid-flush; retry on a later pass
		}
		if err := b.writeSegment(r.name, buf.Bytes()); err != nil {
			return err
		}
		b.mu.Lock()
		e.hasSegment = true
		e.cleanVersion = v0
		e.segBytes = int64(buf.Len())
		b.segmentWrites++
		b.segmentBytes += int64(buf.Len())
		b.mu.Unlock()
	}
	r.mu.Lock()
	if r.version != v0 || r.paged.Load() {
		r.mu.Unlock()
		return nil
	}
	r.dropContentsLocked()
	r.paged.Store(true)
	r.mu.Unlock()
	b.mu.Lock()
	e.estValid = false
	b.evictions++
	b.mu.Unlock()
	return nil
}

// ExportSnapshot implements Backend. The envelope and per-relation bytes are
// exactly ExportDatabaseBinary's; paged-out relations stream from their
// segments (whose payload is the ExportBinary encoding) instead of faulting
// in, so a snapshot of a mostly-cold database never materializes more than
// one relation at a time.
func (b *DiskBackend) ExportSnapshot(names []string, w io.Writer) error {
	if names == nil {
		names = b.d.Names()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(names)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, name := range names {
		r := b.d.Relation(name)
		if r == nil {
			return fmt.Errorf("relstore: binary export: relation %q does not exist", name)
		}
		streamed, err := b.streamSegment(r, bw)
		if err != nil {
			return err
		}
		if streamed {
			continue
		}
		if err := ExportBinary(r, bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// streamSegment copies a paged-out relation's segment payload to w, holding
// the relation's read lock so a concurrent fault-in + mutation cannot make
// the segment stale mid-copy. Reports whether it streamed.
func (b *DiskBackend) streamSegment(r *Relation, w io.Writer) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.paged.Load() {
		return false, nil
	}
	payload, err := b.readSegment(r.name)
	if err != nil {
		return false, err
	}
	_, err = w.Write(payload)
	return true, err
}

// ImportSnapshot implements Backend: relations are decoded one at a time and
// the budget is enforced between them, so importing a database larger than
// memory peaks near budget + one relation.
func (b *DiskBackend) ImportSnapshot(rd io.Reader) ([]string, error) {
	br := asByteReader(rd)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("relstore: binary import: reading magic: %w", err)
	}
	version := 0
	switch string(magic) {
	case binaryMagic:
		version = binaryVersion2
	case binaryMagicV1:
		version = binaryVersion1
	default:
		return nil, fmt.Errorf("relstore: binary import: bad magic %q (want %q or %q)", magic, binaryMagic, binaryMagicV1)
	}
	count, err := readUvarint(br, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("relstore: binary import: reading relation count: %w", err)
	}
	names := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		rel, err := importBinary(b.d, br, version)
		if err != nil {
			return nil, err
		}
		names = append(names, rel.Name())
		if err := b.Maintain(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// Stats implements Backend. Residency bytes reflect the estimates of the last
// rebalance pass.
func (b *DiskBackend) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BackendStats{
		Backend:       b.Name(),
		Relations:     len(b.entries),
		BudgetBytes:   b.budget,
		Faults:        b.faults,
		Evictions:     b.evictions,
		SegmentWrites: b.segmentWrites,
		SegmentBytes:  b.segmentBytes,
	}
	for _, e := range b.entries {
		if !e.rel.paged.Load() {
			s.ResidentRelations++
			if e.estValid {
				s.ResidentBytes += e.estBytes
			}
		}
	}
	return s
}

// Close implements Backend. Segments are a cache owned by the directory's
// creator; nothing to flush (the WAL owns durability).
func (b *DiskBackend) Close() error { return nil }

// segPath maps a relation name to its segment file. Names are hex-encoded so
// arbitrary relation names stay path-safe.
func (b *DiskBackend) segPath(name string) string {
	return filepath.Join(b.dir, hex.EncodeToString([]byte(name))+segSuffix)
}

// writeSegment persists one relation payload (its ExportBinary bytes) with a
// magic header and CRC trailer, via tmp + rename so readers never observe a
// torn segment.
func (b *DiskBackend) writeSegment(name string, payload []byte) error {
	buf := make([]byte, 0, len(segMagic)+len(payload)+4)
	buf = append(buf, segMagic...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, segCRCTable))
	final := b.segPath(name)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("relstore: disk backend: writing segment for %q: %w", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: disk backend: publishing segment for %q: %w", name, err)
	}
	return nil
}

// readSegment loads and verifies one relation's segment, returning the
// ExportBinary payload.
func (b *DiskBackend) readSegment(name string) ([]byte, error) {
	data, err := os.ReadFile(b.segPath(name))
	if err != nil {
		return nil, err
	}
	if len(data) < len(segMagic)+4 || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("relstore: disk backend: segment for %q: bad header", name)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, segCRCTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("relstore: disk backend: segment for %q: checksum mismatch", name)
	}
	return body[len(segMagic):], nil
}
