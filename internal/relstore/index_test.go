package relstore

import (
	"testing"
	"testing/quick"
)

func newAssignRelation() *Relation {
	r := NewRelation("assign", MustSchema("worker:string", "task:int", "score:float"))
	r.MustInsert("alice", 1, 0.9)
	r.MustInsert("alice", 2, 0.5)
	r.MustInsert("bob", 1, 0.7)
	r.MustInsert("bob", 3, 0.8)
	r.MustInsert("carol", 2, 0.6)
	return r
}

func TestCompositeIndexLookup(t *testing.T) {
	r := newAssignRelation()
	cols := []string{"worker", "task"}
	vals := []Value{String("alice"), Int(2)}

	noIdx, err := r.SelectEqMulti(cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(noIdx) != 1 {
		t.Fatalf("SelectEqMulti without index = %v", noIdx)
	}
	if err := r.CreateIndex("worker", "task"); err != nil {
		t.Fatal(err)
	}
	if !r.HasIndex("worker", "task") || !r.HasIndex("task", "worker") {
		t.Error("composite index should be order-insensitive")
	}
	if r.HasIndex("worker") {
		t.Error("a composite index is not a single-column index")
	}
	withIdx, err := r.SelectEqMulti(cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx) != 1 || !withIdx[0].Equal(noIdx[0]) {
		t.Errorf("indexed SelectEqMulti = %v, want %v", withIdx, noIdx)
	}
	// Column order in the query must not matter either.
	swapped, err := r.SelectEqMulti([]string{"task", "worker"}, []Value{Int(2), String("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if len(swapped) != 1 || !swapped[0].Equal(noIdx[0]) {
		t.Errorf("swapped-column SelectEqMulti = %v", swapped)
	}
}

func TestCompositeIndexMaintenance(t *testing.T) {
	r := newAssignRelation()
	if err := r.CreateIndex("worker", "task"); err != nil {
		t.Fatal(err)
	}
	r.MustInsert("dave", 1, 0.4)
	if got, _ := r.SelectEqMulti([]string{"worker", "task"}, []Value{String("dave"), Int(1)}); len(got) != 1 {
		t.Errorf("insert not reflected in index: %v", got)
	}
	if ok, _ := r.Delete(NewTuple("alice", 2, 0.5)); !ok {
		t.Fatal("delete failed")
	}
	if got, _ := r.SelectEqMulti([]string{"worker", "task"}, []Value{String("alice"), Int(2)}); len(got) != 0 {
		t.Errorf("delete not reflected in index: %v", got)
	}
	r.Clear()
	if got, _ := r.SelectEqMulti([]string{"worker", "task"}, []Value{String("bob"), Int(1)}); len(got) != 0 {
		t.Errorf("clear not reflected in index: %v", got)
	}
	// The index definition survives Clear and keeps working.
	r.MustInsert("erin", 9, 1.0)
	if got, _ := r.SelectEqMulti([]string{"worker", "task"}, []Value{String("erin"), Int(9)}); len(got) != 1 {
		t.Errorf("index dead after clear: %v", got)
	}
}

func TestCompositeIndexClone(t *testing.T) {
	r := newAssignRelation()
	r.CreateIndex("worker", "task")
	r.CreateIndex("task")
	c := r.Clone()
	if !c.HasIndex("worker", "task") || !c.HasIndex("task") {
		t.Fatalf("clone lost indexes: %v", c.IndexedColumns())
	}
	got, err := c.SelectEqMulti([]string{"worker", "task"}, []Value{String("bob"), Int(3)})
	if err != nil || len(got) != 1 {
		t.Errorf("clone composite lookup = %v (%v)", got, err)
	}
	// Mutating the clone must not affect the original.
	c.MustInsert("zed", 7, 0.1)
	if r.Len() == c.Len() {
		t.Error("clone shares storage with original")
	}
}

func TestPositionBasedIndexAPI(t *testing.T) {
	r := newAssignRelation()
	if r.HasIndexAt([]int{0, 1}) {
		t.Error("no index exists yet")
	}
	if err := r.EnsureIndexAt([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if !r.HasIndexAt([]int{0, 1}) || !r.HasIndex("worker", "task") {
		t.Error("position-built index should be visible to both APIs")
	}
	if err := r.EnsureIndexAt([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := r.IndexedColumns(); len(got) != 1 {
		t.Errorf("EnsureIndexAt created duplicates: %v", got)
	}
	// The built index answers probes and stays maintained.
	r.MustInsert("frank", 4, 0.2)
	n := 0
	idx, err := r.ScanEqAt([]int{0, 1}, []Value{String("frank"), Int(4)}, func(Tuple) bool { n++; return true })
	if err != nil || !idx || n != 1 {
		t.Errorf("ScanEqAt via EnsureIndexAt index: indexed=%v n=%d err=%v", idx, n, err)
	}
	if err := r.EnsureIndexAt([]int{1, 0}); err == nil {
		t.Error("descending positions should fail")
	}
	if err := r.EnsureIndexAt(nil); err == nil {
		t.Error("empty positions should fail")
	}
	if r.HasIndexAt([]int{9}) {
		t.Error("out-of-range position should report false")
	}
}

func TestEnsureIndexIdempotent(t *testing.T) {
	r := newAssignRelation()
	if err := r.EnsureIndex("worker", "task"); err != nil {
		t.Fatal(err)
	}
	if err := r.EnsureIndex("task", "worker"); err != nil {
		t.Fatal(err)
	}
	if got := r.IndexedColumns(); len(got) != 1 {
		t.Errorf("EnsureIndex created duplicates: %v", got)
	}
}

func TestIndexedColumnsMetadata(t *testing.T) {
	r := newAssignRelation()
	if got := r.IndexedColumns(); len(got) != 0 {
		t.Fatalf("fresh relation reports indexes: %v", got)
	}
	r.CreateIndex("score")
	r.CreateIndex("task", "worker")
	got := r.IndexedColumns()
	if len(got) != 2 {
		t.Fatalf("IndexedColumns = %v", got)
	}
	// Sets come back sorted by column position: (worker,task) then (score).
	if got[0][0] != "worker" || got[0][1] != "task" || got[1][0] != "score" {
		t.Errorf("IndexedColumns = %v", got)
	}
}

func TestScanEqEdgeCases(t *testing.T) {
	r := newAssignRelation()
	if _, err := r.ScanEq([]string{"worker"}, nil, func(Tuple) bool { return true }); err == nil {
		t.Error("mismatched columns/values should fail")
	}
	if _, err := r.ScanEq(nil, nil, func(Tuple) bool { return true }); err == nil {
		t.Error("zero columns should fail, not panic")
	}
	if _, err := r.SelectEqMulti(nil, nil); err == nil {
		t.Error("SelectEqMulti with no columns should fail")
	}
	if _, err := r.ScanEqAt([]int{5}, []Value{Int(1)}, func(Tuple) bool { return true }); err == nil {
		t.Error("out-of-range position should fail")
	}
	if _, err := r.ScanEqAt([]int{1, 0}, []Value{Int(1), Int(2)}, func(Tuple) bool { return true }); err == nil {
		t.Error("descending positions should fail")
	}
	if _, err := r.ScanEq([]string{"nope"}, []Value{Int(1)}, func(Tuple) bool { return true }); err == nil {
		t.Error("unknown column should fail")
	}
	if err := r.CreateIndex(); err == nil {
		t.Error("CreateIndex with no columns should fail")
	}
	if r.HasIndex("nope") {
		t.Error("HasIndex on unknown column should be false")
	}
	// Duplicate column with equal values collapses; with conflicting values
	// nothing can match.
	n := 0
	if _, err := r.ScanEq([]string{"task", "task"}, []Value{Int(1), Int(1)}, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("duplicate equal constraint matched %d rows, want 2", n)
	}
	n = 0
	if _, err := r.ScanEq([]string{"task", "task"}, []Value{Int(1), Int(2)}, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("conflicting constraint matched %d rows, want 0", n)
	}
	// Early termination stops the scan.
	n = 0
	r.ScanEq([]string{"task"}, []Value{Int(1)}, func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop scanned %d rows, want 1", n)
	}
}

// TestSelectEqMultiMatchesScan quick-checks that indexed composite lookups
// return exactly the tuples a predicate scan returns, over random data.
func TestSelectEqMultiMatchesScan(t *testing.T) {
	f := func(rows []uint8, probeA, probeB uint8) bool {
		r := NewRelation("t", MustSchema("a:int", "b:int"))
		for i := 0; i+1 < len(rows); i += 2 {
			r.MustInsert(int(rows[i]%8), int(rows[i+1]%8))
		}
		if err := r.CreateIndex("a", "b"); err != nil {
			return false
		}
		va, vb := Int(int64(probeA%8)), Int(int64(probeB%8))
		indexed, err := r.SelectEqMulti([]string{"a", "b"}, []Value{va, vb})
		if err != nil {
			return false
		}
		scanned := r.Select(func(t Tuple) bool { return t[0].Equal(va) && t[1].Equal(vb) })
		if len(indexed) != len(scanned) {
			return false
		}
		for i := range indexed {
			if !indexed[i].Equal(scanned[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContainsAt(t *testing.T) {
	r := NewRelation("w", MustSchema("a:int", "b:string"))
	r.MustInsert(1, "x")
	r.MustInsert(2, "y")

	found, err := r.ContainsAt([]int{0, 1}, []Value{Int(1), String("x")})
	if err != nil || !found {
		t.Errorf("ContainsAt existing = %v, %v", found, err)
	}
	found, err = r.ContainsAt([]int{0}, []Value{Int(3)})
	if err != nil || found {
		t.Errorf("ContainsAt missing = %v, %v", found, err)
	}
	// Indexed probes answer the same way.
	if err := r.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	found, err = r.ContainsAt([]int{0}, []Value{Int(2)})
	if err != nil || !found {
		t.Errorf("ContainsAt indexed = %v, %v", found, err)
	}
	// Contract violations surface as errors.
	if _, err := r.ContainsAt([]int{1, 0}, []Value{Int(1), Int(2)}); err == nil {
		t.Error("descending positions should error")
	}
	if _, err := r.ContainsAt(nil, nil); err == nil {
		t.Error("empty positions should error")
	}
}

// TestIndexBucketPromotionOnDelete drives the first/overflow bucket split of
// the inline-first index layout: several tuples sharing one indexed value
// land in the same bucket, and deleting them in various orders must keep
// probes exact (including promoting an overflow tuple to the inline slot).
func TestIndexBucketPromotionOnDelete(t *testing.T) {
	r := NewRelation("w", MustSchema("a:int", "b:int"))
	if err := r.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		r.MustInsert(7, b)
	}
	probe := func() []Tuple {
		out, err := r.SelectEqMulti([]string{"a"}, []Value{Int(7)})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := probe(); len(got) != 4 {
		t.Fatalf("bucket = %v, want 4 tuples", got)
	}
	// Delete the first-inserted tuple: an overflow tuple must be promoted.
	if ok, _ := r.Delete(NewTuple(7, 0)); !ok {
		t.Fatal("delete (7,0) failed")
	}
	if got := probe(); len(got) != 3 {
		t.Fatalf("after first delete: %v", got)
	}
	// Delete from the middle of the overflow list.
	if ok, _ := r.Delete(NewTuple(7, 2)); !ok {
		t.Fatal("delete (7,2) failed")
	}
	got := probe()
	if len(got) != 2 {
		t.Fatalf("after second delete: %v", got)
	}
	want := []Tuple{NewTuple(7, 1), NewTuple(7, 3)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Drain the bucket entirely and reinsert.
	r.Delete(NewTuple(7, 1))
	r.Delete(NewTuple(7, 3))
	if got := probe(); len(got) != 0 {
		t.Fatalf("after drain: %v", got)
	}
	r.MustInsert(7, 9)
	if got := probe(); len(got) != 1 || !got[0].Equal(NewTuple(7, 9)) {
		t.Fatalf("after reinsert: %v", got)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}
