package relstore

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func workerSchema() *Schema {
	return MustSchema("id:int", "name:string", "lang:string", "skill:float")
}

func newWorkerRelation(t *testing.T) *Relation {
	t.Helper()
	r := NewRelation("worker", workerSchema())
	r.MustInsert(1, "alice", "en", 0.9)
	r.MustInsert(2, "bob", "en", 0.7)
	r.MustInsert(3, "carol", "ja", 0.8)
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := workerSchema()
	if s.Arity() != 4 {
		t.Fatalf("Arity = %d, want 4", s.Arity())
	}
	if s.ColumnIndex("lang") != 2 {
		t.Errorf("ColumnIndex(lang) = %d", s.ColumnIndex("lang"))
	}
	if s.ColumnIndex("missing") != -1 {
		t.Errorf("ColumnIndex(missing) = %d", s.ColumnIndex("missing"))
	}
	if !s.HasColumn("name") || s.HasColumn("nope") {
		t.Error("HasColumn misbehaves")
	}
	if got := s.Names(); strings.Join(got, ",") != "id,name,lang,skill" {
		t.Errorf("Names() = %v", got)
	}
	if !s.Equal(workerSchema()) {
		t.Error("identical schemas should be Equal")
	}
	if s.Equal(MustSchema("id:int")) {
		t.Error("different schemas should not be Equal")
	}
	if !strings.Contains(s.String(), "skill float") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate column name")
		}
	}()
	NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "a", Type: TypeInt})
}

func TestSchemaValidateAndCoerce(t *testing.T) {
	s := workerSchema()
	good := NewTuple(1, "alice", "en", 0.5)
	if err := s.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	if err := s.Validate(NewTuple(1, "x")); err == nil {
		t.Error("Validate should reject wrong arity")
	}
	coerced, err := s.Coerce(NewTuple("7", "alice", "en", "0.25"))
	if err != nil {
		t.Fatalf("Coerce: %v", err)
	}
	if n, _ := coerced[0].AsInt(); n != 7 {
		t.Errorf("coerced id = %v", coerced[0])
	}
	if f, _ := coerced[3].AsFloat(); f != 0.25 {
		t.Errorf("coerced skill = %v", coerced[3])
	}
	if _, err := s.Coerce(NewTuple("abc", "x", "en", 0.1)); err == nil {
		t.Error("Coerce should fail on non-numeric id")
	}
	// NULLs pass through untouched.
	withNull, err := s.Coerce(Tuple{Null(), String("x"), Null(), Null()})
	if err != nil {
		t.Fatalf("Coerce with nulls: %v", err)
	}
	if !withNull[0].IsNull() || !withNull[3].IsNull() {
		t.Error("NULL values should be preserved")
	}
}

func TestTupleBasics(t *testing.T) {
	a := NewTuple(1, "x", 2.5)
	b := NewTuple(1, "x", 2.5)
	c := NewTuple(1, "y", 2.5)
	if !a.Equal(b) || a.Equal(c) {
		t.Error("tuple equality misbehaves")
	}
	if a.Key() != b.Key() {
		t.Error("equal tuples should share a key")
	}
	if a.Key() == c.Key() {
		t.Error("different tuples should have different keys")
	}
	if a.Compare(c) >= 0 {
		t.Error("expected a < c")
	}
	clone := a.Clone()
	clone[0] = Int(99)
	if !a[0].Equal(Int(1)) {
		t.Error("Clone should not share backing storage")
	}
	if got := a.Project(2, 0); !got.Equal(NewTuple(2.5, 1)) {
		t.Errorf("Project = %v", got)
	}
	if !strings.HasPrefix(a.String(), "(1, ") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestTupleKeyNumericCanonicalisation(t *testing.T) {
	// Int(3) and Float(3.0) are Equal, so their keys must match for set
	// semantics to hold.
	a := Tuple{Int(3)}
	b := Tuple{Float(3.0)}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestRelationInsertSetSemantics(t *testing.T) {
	r := newWorkerRelation(t)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	ok, err := r.Insert(NewTuple(1, "alice", "en", 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("duplicate insert should report false")
	}
	if r.Len() != 3 {
		t.Errorf("Len after duplicate insert = %d", r.Len())
	}
	v0 := r.Version()
	r.MustInsert(4, "dave", "fr", 0.6)
	if r.Version() <= v0 {
		t.Error("Version should increase after insert")
	}
}

func TestRelationInsertSchemaMismatch(t *testing.T) {
	r := NewRelation("t", MustSchema("id:int"))
	if _, err := r.Insert(NewTuple("not-an-int")); err == nil {
		t.Error("expected schema error")
	}
	if _, err := r.Insert(NewTuple(1, 2)); err == nil {
		t.Error("expected arity error")
	}
}

func TestRelationDelete(t *testing.T) {
	r := newWorkerRelation(t)
	ok, err := r.Delete(NewTuple(2, "bob", "en", 0.7))
	if err != nil || !ok {
		t.Fatalf("Delete = %v,%v", ok, err)
	}
	if r.Len() != 2 || r.Contains(NewTuple(2, "bob", "en", 0.7)) {
		t.Error("tuple still present after Delete")
	}
	ok, _ = r.Delete(NewTuple(2, "bob", "en", 0.7))
	if ok {
		t.Error("second delete should report false")
	}
}

func TestRelationDeleteWhere(t *testing.T) {
	r := newWorkerRelation(t)
	n := r.DeleteWhere(func(t Tuple) bool { return t[2].AsString() == "en" })
	if n != 2 || r.Len() != 1 {
		t.Errorf("DeleteWhere removed %d, len %d", n, r.Len())
	}
}

func TestRelationSelectEqWithAndWithoutIndex(t *testing.T) {
	r := newWorkerRelation(t)
	noIdx := r.SelectEq("lang", String("en"))
	if len(noIdx) != 2 {
		t.Fatalf("SelectEq without index = %d rows", len(noIdx))
	}
	if err := r.CreateIndex("lang"); err != nil {
		t.Fatal(err)
	}
	if !r.HasIndex("lang") {
		t.Error("HasIndex(lang) = false after CreateIndex")
	}
	withIdx := r.SelectEq("lang", String("en"))
	if len(withIdx) != len(noIdx) {
		t.Fatalf("indexed result %d != scan result %d", len(withIdx), len(noIdx))
	}
	for i := range withIdx {
		if !withIdx[i].Equal(noIdx[i]) {
			t.Errorf("row %d differs: %v vs %v", i, withIdx[i], noIdx[i])
		}
	}
	// Index stays correct across inserts and deletes.
	r.MustInsert(5, "eve", "en", 0.5)
	r.Delete(NewTuple(1, "alice", "en", 0.9))
	got := r.SelectEq("lang", String("en"))
	if len(got) != 2 {
		t.Errorf("after mutations, indexed SelectEq = %d rows, want 2", len(got))
	}
	if r.SelectEq("missing", Int(1)) != nil {
		t.Error("SelectEq on missing column should return nil")
	}
}

func TestRelationCreateIndexUnknownColumn(t *testing.T) {
	r := newWorkerRelation(t)
	if err := r.CreateIndex("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestRelationAllDeterministicOrder(t *testing.T) {
	r := newWorkerRelation(t)
	a := r.All()
	b := r.All()
	if len(a) != 3 {
		t.Fatalf("All = %d rows", len(a))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Error("All() order is not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Compare(a[i]) > 0 {
			t.Error("All() is not sorted")
		}
	}
}

func TestRelationScanEarlyStop(t *testing.T) {
	r := newWorkerRelation(t)
	count := 0
	r.Scan(func(Tuple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Scan visited %d rows after returning false", count)
	}
}

func TestRelationSelectAndProject(t *testing.T) {
	r := newWorkerRelation(t)
	highSkill := r.Select(func(t Tuple) bool {
		f, _ := t[3].AsFloat()
		return f >= 0.8
	})
	if len(highSkill) != 2 {
		t.Errorf("Select high skill = %d rows", len(highSkill))
	}
	langs, err := r.Project("lang")
	if err != nil {
		t.Fatal(err)
	}
	if len(langs) != 2 {
		t.Errorf("Project(lang) = %d distinct values, want 2", len(langs))
	}
	if _, err := r.Project("zzz"); err == nil {
		t.Error("Project on unknown column should fail")
	}
}

func TestRelationClearAndClone(t *testing.T) {
	r := newWorkerRelation(t)
	r.CreateIndex("id")
	c := r.Clone()
	r.Clear()
	if r.Len() != 0 {
		t.Error("Clear did not empty relation")
	}
	if c.Len() != 3 {
		t.Error("Clone should be unaffected by Clear on the original")
	}
	if got := c.SelectEq("id", Int(3)); len(got) != 1 {
		t.Errorf("clone SelectEq = %d rows", len(got))
	}
}

func TestRelationConcurrentInserts(t *testing.T) {
	r := NewRelation("nums", MustSchema("n:int", "worker:int"))
	r.CreateIndex("n")
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.MustInsert(i, w)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*per {
		t.Errorf("Len = %d, want %d", r.Len(), workers*per)
	}
	if rows := r.SelectEq("n", Int(10)); len(rows) != workers {
		t.Errorf("SelectEq(n=10) = %d rows, want %d", len(rows), workers)
	}
}

func TestRelationPropertyInsertDeleteRoundTrip(t *testing.T) {
	f := func(ids []int16) bool {
		r := NewRelation("p", MustSchema("id:int"))
		uniq := make(map[int16]bool)
		for _, id := range ids {
			uniq[id] = true
			r.MustInsert(int(id))
		}
		if r.Len() != len(uniq) {
			return false
		}
		for id := range uniq {
			if ok, _ := r.Delete(NewTuple(int(id))); !ok {
				return false
			}
		}
		return r.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatabaseCreateAndLookup(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("w", workerSchema())
	if d.Relation("w") != r {
		t.Error("Relation(w) should return the created relation")
	}
	if _, err := d.Create("w", workerSchema()); err == nil {
		t.Error("duplicate Create should fail")
	}
	if !d.Has("w") || d.Has("x") {
		t.Error("Has misbehaves")
	}
	got, err := d.GetOrCreate("w", workerSchema())
	if err != nil || got != r {
		t.Errorf("GetOrCreate existing = %v,%v", got, err)
	}
	if _, err := d.GetOrCreate("w", MustSchema("a:int")); err == nil {
		t.Error("GetOrCreate with conflicting schema should fail")
	}
	d.MustCreate("t", MustSchema("id:int"))
	if names := d.Names(); len(names) != 2 || names[0] != "t" || names[1] != "w" {
		t.Errorf("Names = %v", names)
	}
	if !d.Drop("t") || d.Drop("t") {
		t.Error("Drop misbehaves")
	}
}

func TestDatabaseSnapshotRestore(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("w", workerSchema())
	r.MustInsert(1, "alice", "en", 0.9)
	snap := d.Snapshot()
	r.MustInsert(2, "bob", "en", 0.7)
	d.MustCreate("extra", MustSchema("x:int"))
	if snap.Relation("w").Len() != 1 {
		t.Error("snapshot should not see later inserts")
	}
	if snap.Has("extra") {
		t.Error("snapshot should not see later relations")
	}
	d.Restore(snap)
	if d.Relation("w").Len() != 1 || d.Has("extra") {
		t.Error("Restore did not roll back state")
	}
	if d.TotalTuples() != 1 {
		t.Errorf("TotalTuples = %d", d.TotalTuples())
	}
}

func TestDatabaseStringer(t *testing.T) {
	d := NewDatabase()
	d.MustCreate("a", MustSchema("x:int"))
	if s := d.String(); !strings.Contains(s, "1 relations") {
		t.Errorf("String() = %q", s)
	}
}

func TestJoinNaturalSharedColumn(t *testing.T) {
	d := NewDatabase()
	w := d.MustCreate("worker", MustSchema("wid:int", "lang:string"))
	a := d.MustCreate("assign", MustSchema("wid:int", "task:string"))
	w.MustInsert(1, "en")
	w.MustInsert(2, "ja")
	a.MustInsert(1, "t1")
	a.MustInsert(1, "t2")
	a.MustInsert(3, "t3")
	rows, schema, err := Join(w, a)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 3 {
		t.Errorf("join schema = %s", schema)
	}
	if len(rows) != 2 {
		t.Fatalf("join rows = %d, want 2 (%v)", len(rows), rows)
	}
	for _, row := range rows {
		id, _ := row[0].AsInt()
		if id != 1 {
			t.Errorf("unexpected joined row %v", row)
		}
	}
}

func TestJoinCrossProductWhenNoSharedColumns(t *testing.T) {
	d := NewDatabase()
	a := d.MustCreate("a", MustSchema("x:int"))
	b := d.MustCreate("b", MustSchema("y:int"))
	a.MustInsert(1)
	a.MustInsert(2)
	b.MustInsert(10)
	b.MustInsert(20)
	rows, schema, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || schema.Arity() != 2 {
		t.Errorf("cross product rows=%d schema=%s", len(rows), schema)
	}
}

func TestUnionDifferenceIntersect(t *testing.T) {
	d := NewDatabase()
	a := d.MustCreate("a", MustSchema("x:int"))
	b := d.MustCreate("b", MustSchema("x:int"))
	for _, v := range []int{1, 2, 3} {
		a.MustInsert(v)
	}
	for _, v := range []int{3, 4} {
		b.MustInsert(v)
	}
	u, err := Union(a, b)
	if err != nil || len(u) != 4 {
		t.Errorf("Union = %v,%v", u, err)
	}
	diff, err := Difference(a, b)
	if err != nil || len(diff) != 2 {
		t.Errorf("Difference = %v,%v", diff, err)
	}
	inter, err := Intersect(a, b)
	if err != nil || len(inter) != 1 {
		t.Errorf("Intersect = %v,%v", inter, err)
	}
	c := d.MustCreate("c", MustSchema("y:string"))
	if _, err := Union(a, c); err == nil {
		t.Error("Union with mismatched schema should fail")
	}
	if _, err := Difference(a, c); err == nil {
		t.Error("Difference with mismatched schema should fail")
	}
	if _, err := Intersect(a, c); err == nil {
		t.Error("Intersect with mismatched schema should fail")
	}
}

func TestAggregate(t *testing.T) {
	r := newWorkerRelation(t)
	count, err := Aggregate(r, "count", "")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := count.AsInt(); n != 3 {
		t.Errorf("count = %v", count)
	}
	sum, _ := Aggregate(r, "sum", "skill")
	if f, _ := sum.AsFloat(); f < 2.39 || f > 2.41 {
		t.Errorf("sum = %v", sum)
	}
	avg, _ := Aggregate(r, "avg", "skill")
	if f, _ := avg.AsFloat(); f < 0.79 || f > 0.81 {
		t.Errorf("avg = %v", avg)
	}
	min, _ := Aggregate(r, "min", "skill")
	if f, _ := min.AsFloat(); f != 0.7 {
		t.Errorf("min = %v", min)
	}
	max, _ := Aggregate(r, "max", "name")
	if max.AsString() != "carol" {
		t.Errorf("max name = %v", max)
	}
	if _, err := Aggregate(r, "median", "skill"); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if _, err := Aggregate(r, "sum", "missing"); err == nil {
		t.Error("aggregate on missing column should fail")
	}
	empty := NewRelation("e", MustSchema("x:float"))
	if v, _ := Aggregate(empty, "avg", "x"); !v.IsNull() {
		t.Errorf("avg of empty relation = %v, want NULL", v)
	}
	if v, _ := Aggregate(empty, "min", "x"); !v.IsNull() {
		t.Errorf("min of empty relation = %v, want NULL", v)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := newWorkerRelation(t)
	var buf bytes.Buffer
	if err := ExportCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	d := NewDatabase()
	r2 := d.MustCreate("worker", workerSchema())
	n, err := ImportCSV(r2, &buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || r2.Len() != 3 {
		t.Errorf("ImportCSV added %d rows", n)
	}
	a, b := r.All(), r2.All()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("row %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestImportCSVWithoutHeaderAndBadRows(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("t", MustSchema("id:int", "name:string"))
	n, err := ImportCSV(r, strings.NewReader("1,alice\n2,bob\n"), false)
	if err != nil || n != 2 {
		t.Fatalf("ImportCSV = %d,%v", n, err)
	}
	_, err = ImportCSV(r, strings.NewReader("1,two,three\n"), false)
	if err == nil {
		t.Error("expected arity error")
	}
	_, err = ImportCSV(r, strings.NewReader("bad_header,name\n1,x\n"), true)
	if err == nil {
		t.Error("expected unknown header error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := newWorkerRelation(t)
	var buf bytes.Buffer
	if err := ExportJSON(r, &buf); err != nil {
		t.Fatal(err)
	}
	d := NewDatabase()
	r2, err := ImportJSON(d, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name() != "worker" || r2.Len() != 3 {
		t.Errorf("imported %q with %d rows", r2.Name(), r2.Len())
	}
	a, b := r.All(), r2.All()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("row %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestImportJSONBadPayload(t *testing.T) {
	d := NewDatabase()
	if _, err := ImportJSON(d, strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ImportJSON(d, strings.NewReader(`{"name":"x","columns":[{"name":"a","type":"blob"}],"rows":[]}`)); err == nil {
		t.Error("expected unknown type error")
	}
}

func ExampleRelation_SelectEq() {
	r := NewRelation("worker", MustSchema("id:int", "lang:string"))
	r.MustInsert(1, "en")
	r.MustInsert(2, "ja")
	r.MustInsert(3, "en")
	for _, t := range r.SelectEq("lang", String("en")) {
		fmt.Println(t)
	}
	// Output:
	// (1, "en")
	// (3, "en")
}

// TestRelationNaNSetSemantics pins the set semantics of NaN facts: under the
// former canonical-key layout every NaN rendered as the same key, so a NaN
// tuple deduplicated with itself; the hash-bucket layout must preserve that
// (storedEqual folds NaNs) or a rule deriving a NaN fact would be re-inserted
// on every fixpoint iteration and evaluation would never converge.
func TestRelationNaNSetSemantics(t *testing.T) {
	r := NewRelation("n", MustSchema("x:float"))
	nan := math.NaN()
	if ok, err := r.Insert(NewTuple(nan)); !ok || err != nil {
		t.Fatalf("first insert: %v %v", ok, err)
	}
	if ok, err := r.Insert(NewTuple(nan)); ok || err != nil {
		t.Errorf("second NaN insert should dedupe, got inserted=%v err=%v", ok, err)
	}
	// A NaN with a different payload must dedupe too (the old key rendered
	// every NaN identically).
	otherNaN := math.Float64frombits(math.Float64bits(nan) ^ 1)
	if !math.IsNaN(otherNaN) {
		t.Fatal("payload flip should still be NaN")
	}
	if ok, _ := r.Insert(NewTuple(otherNaN)); ok {
		t.Error("NaN with different payload should dedupe")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(NewTuple(nan)) {
		t.Error("Contains(NaN) should be true")
	}
	if ok, err := r.Delete(NewTuple(nan)); !ok || err != nil {
		t.Errorf("Delete(NaN): %v %v", ok, err)
	}
	if r.Len() != 0 {
		t.Errorf("Len after delete = %d", r.Len())
	}
}

// TestSupportCounting covers the support-record half of the storage layer:
// base inserts vs counted derivation inserts, decrement-to-removal, and the
// invariant that base-supported tuples survive every derivation-maintenance
// API.
func TestSupportCounting(t *testing.T) {
	r := NewRelation("fact", MustSchema("id:int"))
	if err := r.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}

	// A derived tuple counts its supports and dies with the last one.
	if added, err := r.InsertDerived(NewTuple(1)); err != nil || !added {
		t.Fatalf("first derivation: added=%v err=%v", added, err)
	}
	if added, _ := r.InsertDerived(NewTuple(1)); added {
		t.Error("second derivation of the same tuple should not re-add it")
	}
	if base, derived, ok := r.Support(NewTuple(1)); base || derived != 2 || !ok {
		t.Fatalf("Support = (%v, %d, %v), want (false, 2, true)", base, derived, ok)
	}
	if removed, _ := r.DecDerived(NewTuple(1)); removed {
		t.Error("one remaining support should keep the tuple")
	}
	if removed, _ := r.DecDerived(NewTuple(1)); !removed {
		t.Error("last support gone: tuple should be removed")
	}
	if r.Contains(NewTuple(1)) || r.Len() != 0 {
		t.Fatalf("tuple should be gone, len=%d", r.Len())
	}
	if got := r.SelectEq("id", NewTuple(1)[0]); len(got) != 0 {
		t.Errorf("index still answers for removed tuple: %v", got)
	}
	// Decrementing an absent tuple is a no-op.
	if removed, err := r.DecDerived(NewTuple(42)); removed || err != nil {
		t.Errorf("DecDerived(absent) = (%v, %v)", removed, err)
	}

	// Base support shields a tuple from derivation maintenance.
	r.MustInsert(2)
	if added, _ := r.InsertDerived(NewTuple(2)); added {
		t.Error("derivation over an existing base tuple should not re-add")
	}
	if base, derived, ok := r.Support(NewTuple(2)); !base || derived != 1 || !ok {
		t.Fatalf("Support = (%v, %d, %v), want (true, 1, true)", base, derived, ok)
	}
	if removed, _ := r.DecDerived(NewTuple(2)); removed {
		t.Error("base tuple must survive losing its derivations")
	}
	if !r.Contains(NewTuple(2)) {
		t.Error("base tuple vanished")
	}
	// Insert over an existing derived tuple promotes it to base.
	r.InsertDerived(NewTuple(3)) //nolint:errcheck
	if added, err := r.Insert(NewTuple(3)); err != nil || added {
		t.Fatalf("base assert over derived tuple: added=%v err=%v", added, err)
	}
	if removed, _ := r.DecDerived(NewTuple(3)); removed {
		t.Error("promoted tuple must survive losing its derivation")
	}
	if err := func() error { _, err := r.InsertDerived(NewTuple("nope")); return err }(); err == nil {
		t.Error("schema mismatch should error")
	}
}

// TestClearDerived pins the over-deletion primitive: every derived-only tuple
// goes, base tuples stay with their counts reset, and indexes answer for
// exactly the survivors.
func TestClearDerived(t *testing.T) {
	r := NewRelation("fact", MustSchema("id:int"))
	if err := r.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	r.MustInsert(1)
	r.InsertDerived(NewTuple(1)) //nolint:errcheck // base + one derivation
	for i := 2; i <= 40; i++ {
		r.InsertDerived(NewTuple(i)) //nolint:errcheck
	}
	v := r.Version()
	if removed := r.ClearDerived(); removed != 39 {
		t.Fatalf("ClearDerived removed %d, want 39", removed)
	}
	if r.Len() != 1 || !r.Contains(NewTuple(1)) {
		t.Fatalf("survivors = %v", r.All())
	}
	if base, derived, ok := r.Support(NewTuple(1)); !base || derived != 0 || !ok {
		t.Errorf("survivor support = (%v, %d, %v), want (true, 0, true)", base, derived, ok)
	}
	if r.Version() == v {
		t.Error("removal should bump the version")
	}
	if got := r.SelectEq("id", NewTuple(7)[0]); len(got) != 0 {
		t.Errorf("index still answers for cleared tuple: %v", got)
	}
	if got := r.SelectEq("id", NewTuple(1)[0]); len(got) != 1 {
		t.Errorf("index lost the surviving tuple: %v", got)
	}
	// A second clear finds nothing to remove and must not disturb contents or
	// version.
	v = r.Version()
	if removed := r.ClearDerived(); removed != 0 {
		t.Errorf("second ClearDerived removed %d", removed)
	}
	if r.Version() != v || r.Len() != 1 {
		t.Error("no-op clear must leave version and contents alone")
	}
}

// TestCloneCarriesSupport checks Clone preserves base flags and derivation
// counts, so a cloned database retracts exactly like the original.
func TestCloneCarriesSupport(t *testing.T) {
	r := NewRelation("fact", MustSchema("id:int"))
	r.MustInsert(1)
	r.InsertDerived(NewTuple(2)) //nolint:errcheck
	r.InsertDerived(NewTuple(2)) //nolint:errcheck
	c := r.Clone()
	if base, derived, ok := c.Support(NewTuple(1)); !base || derived != 0 || !ok {
		t.Errorf("clone support(1) = (%v, %d, %v)", base, derived, ok)
	}
	if base, derived, ok := c.Support(NewTuple(2)); base || derived != 2 || !ok {
		t.Errorf("clone support(2) = (%v, %d, %v)", base, derived, ok)
	}
	if removed := c.ClearDerived(); removed != 1 {
		t.Errorf("clone ClearDerived removed %d, want 1", removed)
	}
	if r.Len() != 2 {
		t.Error("clearing the clone must not touch the original")
	}
}
