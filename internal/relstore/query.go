package relstore

import (
	"fmt"
	"sort"
)

// Join computes the natural join of two relations: tuples are combined when
// every commonly named column is equal. The result schema is the left schema
// followed by the right columns that are not shared. The join uses a hash join
// on the shared columns.
func Join(left, right *Relation) ([]Tuple, *Schema, error) {
	ls, rs := left.Schema(), right.Schema()

	// Determine shared columns and the right-only columns.
	var sharedL, sharedR []int
	var rightOnly []int
	for i := 0; i < rs.Arity(); i++ {
		name := rs.Column(i).Name
		if li := ls.ColumnIndex(name); li >= 0 {
			sharedL = append(sharedL, li)
			sharedR = append(sharedR, i)
		} else {
			rightOnly = append(rightOnly, i)
		}
	}

	outCols := ls.Columns()
	for _, ri := range rightOnly {
		outCols = append(outCols, rs.Column(ri))
	}
	outSchema := NewSchema(outCols...)

	// With no shared columns the natural join degenerates to a cross product.
	leftRows := left.All()
	rightRows := right.All()

	var out []Tuple
	if len(sharedL) == 0 {
		for _, lt := range leftRows {
			for _, rt := range rightRows {
				out = append(out, combineJoined(lt, rt, rightOnly))
			}
		}
		return dedupe(out), outSchema, nil
	}

	// Hash the right side on the shared key.
	buckets := make(map[string][]Tuple, len(rightRows))
	for _, rt := range rightRows {
		k := rt.Project(sharedR...).Key()
		buckets[k] = append(buckets[k], rt)
	}
	for _, lt := range leftRows {
		k := lt.Project(sharedL...).Key()
		for _, rt := range buckets[k] {
			if joinMatches(lt, rt, sharedL, sharedR) {
				out = append(out, combineJoined(lt, rt, rightOnly))
			}
		}
	}
	return dedupe(out), outSchema, nil
}

func joinMatches(lt, rt Tuple, sharedL, sharedR []int) bool {
	for i := range sharedL {
		if !lt[sharedL[i]].Equal(rt[sharedR[i]]) {
			return false
		}
	}
	return true
}

func combineJoined(lt, rt Tuple, rightOnly []int) Tuple {
	out := make(Tuple, 0, len(lt)+len(rightOnly))
	out = append(out, lt...)
	for _, ri := range rightOnly {
		out = append(out, rt[ri])
	}
	return out
}

func dedupe(ts []Tuple) []Tuple {
	seen := make(map[string]bool, len(ts))
	out := ts[:0]
	for _, t := range ts {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Union returns the set union of two same-schema relations as a tuple slice.
func Union(a, b *Relation) ([]Tuple, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relstore: union requires identical schemas (%s vs %s)", a.Schema(), b.Schema())
	}
	out := append(a.All(), b.All()...)
	return dedupe(out), nil
}

// Difference returns the tuples of a that are not in b. Schemas must match.
func Difference(a, b *Relation) ([]Tuple, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relstore: difference requires identical schemas (%s vs %s)", a.Schema(), b.Schema())
	}
	var out []Tuple
	for _, t := range a.All() {
		if !b.Contains(t) {
			out = append(out, t)
		}
	}
	return out, nil
}

// Intersect returns the tuples common to a and b. Schemas must match.
func Intersect(a, b *Relation) ([]Tuple, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relstore: intersect requires identical schemas (%s vs %s)", a.Schema(), b.Schema())
	}
	var out []Tuple
	for _, t := range a.All() {
		if b.Contains(t) {
			out = append(out, t)
		}
	}
	return out, nil
}

// Aggregate computes a single aggregate over one column of a relation.
// Supported functions: "count", "sum", "avg", "min", "max". For "count" the
// column may be empty, meaning count of all tuples.
func Aggregate(r *Relation, fn, column string) (Value, error) {
	if fn == "count" && column == "" {
		return Int(int64(r.Len())), nil
	}
	ci := r.Schema().ColumnIndex(column)
	if ci < 0 {
		return Null(), fmt.Errorf("relstore: relation %q has no column %q", r.Name(), column)
	}
	rows := r.All()
	switch fn {
	case "count":
		n := 0
		for _, t := range rows {
			if !t[ci].IsNull() {
				n++
			}
		}
		return Int(int64(n)), nil
	case "sum", "avg":
		sum := 0.0
		n := 0
		for _, t := range rows {
			if f, ok := t[ci].AsFloat(); ok {
				sum += f
				n++
			}
		}
		if fn == "sum" {
			return Float(sum), nil
		}
		if n == 0 {
			return Null(), nil
		}
		return Float(sum / float64(n)), nil
	case "min", "max":
		var best Value
		first := true
		for _, t := range rows {
			if t[ci].IsNull() {
				continue
			}
			if first {
				best = t[ci]
				first = false
				continue
			}
			c := t[ci].Compare(best)
			if (fn == "min" && c < 0) || (fn == "max" && c > 0) {
				best = t[ci]
			}
		}
		if first {
			return Null(), nil
		}
		return best, nil
	default:
		return Null(), fmt.Errorf("relstore: unknown aggregate %q", fn)
	}
}
