package relstore

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns identified by name. Column names are
// case-sensitive and must be unique within a schema.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. It panics if a column name
// is duplicated or empty, because schemas are always constructed from static
// program definitions and an invalid schema is a programming error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			panic("relstore: empty column name")
		}
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("relstore: duplicate column %q", c.Name))
		}
		s.index[c.Name] = i
	}
	return s
}

// MustSchema builds a schema from "name:type" strings, e.g. "id:int",
// "name:string". It panics on malformed specs; it is intended for tests and
// static definitions.
func MustSchema(specs ...string) *Schema {
	cols := make([]Column, 0, len(specs))
	for _, sp := range specs {
		name, typ, ok := strings.Cut(sp, ":")
		if !ok {
			panic(fmt.Sprintf("relstore: malformed column spec %q (want name:type)", sp))
		}
		t, err := ParseType(typ)
		if err != nil {
			panic(err)
		}
		cols = append(cols, Column{Name: strings.TrimSpace(name), Type: t})
	}
	return NewSchema(cols...)
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.cols) }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex returns the position of the named column, or -1 when absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the named column exists.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// Names returns the ordered column names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical column names and types in
// the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Validate checks that a tuple conforms to the schema: correct arity and each
// value either NULL or coercible to the declared column type.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.cols) {
		return fmt.Errorf("relstore: tuple arity %d does not match schema arity %d", len(t), len(s.cols))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		c := s.cols[i]
		switch c.Type {
		case TypeInt, TypeFloat:
			if !v.isNumeric() {
				if _, ok := v.AsFloat(); !ok {
					return fmt.Errorf("relstore: column %q expects %s, got %s", c.Name, c.Type, v.Type())
				}
			}
		case TypeString:
			// every value renders as a string
		case TypeBool:
			if _, ok := v.AsBool(); !ok {
				return fmt.Errorf("relstore: column %q expects bool, got %s", c.Name, v.Type())
			}
		}
	}
	return nil
}

// Coerce returns a copy of the tuple with every value converted to the
// declared column type (NULLs are preserved). It returns an error when a value
// cannot be represented in the column type.
func (s *Schema) Coerce(t Tuple) (Tuple, error) {
	if len(t) != len(s.cols) {
		return nil, fmt.Errorf("relstore: tuple arity %d does not match schema arity %d", len(t), len(s.cols))
	}
	// Fast path: a tuple whose values already carry the declared types needs
	// no conversion — every case below is the identity for an exact-type
	// value. Returning t unchanged (tuples are immutable by contract) spares
	// a copy per inserted tuple on the CyLog merge path, where rule heads
	// always produce exact-typed values.
	exact := true
	for i, v := range t {
		if v.t != TypeNull && v.t != s.cols[i].Type {
			exact = false
			break
		}
	}
	if exact {
		return t, nil
	}
	out := make(Tuple, len(t))
	for i, v := range t {
		if v.IsNull() {
			out[i] = v
			continue
		}
		switch s.cols[i].Type {
		case TypeInt:
			n, ok := v.AsInt()
			if !ok {
				return nil, fmt.Errorf("relstore: cannot coerce %s to int for column %q", v, s.cols[i].Name)
			}
			out[i] = Int(n)
		case TypeFloat:
			f, ok := v.AsFloat()
			if !ok {
				return nil, fmt.Errorf("relstore: cannot coerce %s to float for column %q", v, s.cols[i].Name)
			}
			out[i] = Float(f)
		case TypeString:
			out[i] = String(v.AsString())
		case TypeBool:
			b, ok := v.AsBool()
			if !ok {
				return nil, fmt.Errorf("relstore: cannot coerce %s to bool for column %q", v, s.cols[i].Name)
			}
			out[i] = Bool(b)
		default:
			out[i] = v
		}
	}
	return out, nil
}
