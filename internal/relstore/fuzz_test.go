package relstore

import (
	"bytes"
	"testing"
)

// fuzzSeedExport builds a small database exercising every value kind plus
// the v2 stats trailer, exported to bytes — the structurally valid seed the
// fuzzer mutates from.
func fuzzSeedExport(f *testing.F) []byte {
	f.Helper()
	d := NewDatabase()
	r, err := d.Create("mixed", MustSchema("n:int", "s:string", "ok:bool"))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := r.Insert(NewTuple(i, "label", i%2 == 0)); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := d.Create("empty", MustSchema("x:int")); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportDatabaseBinary(d, nil, &buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzImportDatabaseBinary asserts the codec's robustness contract: no input
// — truncated, bit-flipped, adversarial length fields, wrong magic — may
// ever panic or wedge the importer; corruption must surface as an error.
// Inputs that do import must round-trip: re-exporting the imported state and
// importing again yields the same relations (the decoded state is always
// internally consistent, never half-applied garbage that the exporter then
// chokes on).
func FuzzImportDatabaseBinary(f *testing.F) {
	seed := fuzzSeedExport(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("RSB2"))
	f.Add([]byte("RSB1"))
	f.Add(seed[:len(seed)/2])
	// Flip a byte inside the stats trailer / tuple area.
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	// A huge claimed count with no data behind it.
	f.Add(append(append([]byte(nil), seed[:8]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDatabase()
		names, err := ImportDatabaseBinary(d, bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful import must leave an exportable, re-importable database.
		var buf bytes.Buffer
		if err := ExportDatabaseBinary(d, names, &buf); err != nil {
			t.Fatalf("imported database failed to re-export: %v", err)
		}
		d2 := NewDatabase()
		names2, err := ImportDatabaseBinary(d2, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-exported database failed to import: %v", err)
		}
		if len(names2) != len(names) {
			t.Fatalf("round-trip changed relation count: %d vs %d", len(names2), len(names))
		}
		for _, n := range names {
			r1, r2 := d.Relation(n), d2.Relation(n)
			if r2 == nil {
				t.Fatalf("round-trip lost relation %q", n)
			}
			if r1.Len() != r2.Len() {
				t.Fatalf("relation %q: %d tuples vs %d after round-trip", n, r1.Len(), r2.Len())
			}
		}
	})
}
