package relstore

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ExportCSV writes the relation to w as CSV with a header row of column names.
// Tuples are written in deterministic order.
func ExportCSV(r *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().Names()); err != nil {
		return err
	}
	for _, t := range r.All() {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.AsString()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads CSV rows from rd into the relation. When header is true the
// first row is treated as column names and used to reorder fields to match the
// schema; otherwise fields must appear in schema order. It returns the number
// of newly inserted tuples.
func ImportCSV(r *Relation, rd io.Reader, header bool) (int, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	order := make([]int, r.Schema().Arity())
	for i := range order {
		order[i] = i
	}
	first := true
	added := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return added, err
		}
		if first && header {
			first = false
			// The header must name every schema column exactly once: a short
			// header would leave part of the identity order in place (some
			// columns silently filled from the wrong field, others never
			// filled), and a duplicate would overwrite one column twice while
			// leaving another empty.
			if len(rec) != r.Schema().Arity() {
				return added, fmt.Errorf("relstore: CSV header has %d columns, schema %s expects %d", len(rec), r.Schema(), r.Schema().Arity())
			}
			seen := make(map[int]bool, len(rec))
			for i, name := range rec {
				ci := r.Schema().ColumnIndex(name)
				if ci < 0 {
					return added, fmt.Errorf("relstore: CSV header column %q not in schema %s", name, r.Schema())
				}
				if seen[ci] {
					return added, fmt.Errorf("relstore: CSV header names column %q twice", name)
				}
				seen[ci] = true
				order[i] = ci
			}
			continue
		}
		first = false
		if len(rec) != r.Schema().Arity() {
			return added, fmt.Errorf("relstore: CSV row has %d fields, schema %s expects %d", len(rec), r.Schema(), r.Schema().Arity())
		}
		t := make(Tuple, r.Schema().Arity())
		for i, field := range rec {
			t[order[i]] = parseField(field, r.Schema().Column(order[i]).Type)
		}
		ok, err := r.Insert(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func parseField(s string, t Type) Value {
	if s == "" {
		return Null()
	}
	switch t {
	case TypeInt:
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(n)
		}
	case TypeFloat:
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Float(f)
		}
	case TypeBool:
		if b, err := strconv.ParseBool(s); err == nil {
			return Bool(b)
		}
	}
	return String(s)
}

// relationJSON is the wire format used by ExportJSON/ImportJSON.
type relationJSON struct {
	Name    string       `json:"name"`
	Columns []columnJSON `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// ExportJSON writes the relation (schema + rows) to w as JSON.
func ExportJSON(r *Relation, w io.Writer) error {
	out := relationJSON{Name: r.Name()}
	for _, c := range r.Schema().Columns() {
		out.Columns = append(out.Columns, columnJSON{Name: c.Name, Type: c.Type.String()})
	}
	for _, t := range r.All() {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = valueToJSON(v)
		}
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func valueToJSON(v Value) any {
	switch v.Type() {
	case TypeNull:
		return nil
	case TypeInt:
		n, _ := v.AsInt()
		return n
	case TypeFloat:
		f, _ := v.AsFloat()
		return f
	case TypeBool:
		b, _ := v.AsBool()
		return b
	default:
		return v.AsString()
	}
}

// ImportJSON reads a relation previously written by ExportJSON into the
// database, creating the relation if needed. It returns the relation.
func ImportJSON(d *Database, rd io.Reader) (*Relation, error) {
	var in relationJSON
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, err
	}
	cols := make([]Column, 0, len(in.Columns))
	for _, c := range in.Columns {
		t, err := ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: c.Name, Type: t})
	}
	rel, err := d.GetOrCreate(in.Name, NewSchema(cols...))
	if err != nil {
		return nil, err
	}
	for _, row := range in.Rows {
		t := make(Tuple, len(row))
		for i, cell := range row {
			t[i] = jsonToValue(cell)
		}
		if _, err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func jsonToValue(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null()
	case float64:
		if t == float64(int64(t)) {
			return Int(int64(t))
		}
		return Float(t)
	case bool:
		return Bool(t)
	case string:
		return String(t)
	default:
		return String(fmt.Sprint(t))
	}
}
