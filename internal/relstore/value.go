// Package relstore implements an embedded, in-memory relational store used as
// the storage substrate for the Crowd4U platform and its CyLog rule engine.
//
// The store provides typed schemas, tuples, relations with hash indexes,
// snapshot/restore, and relational-algebra helpers (selection, projection and
// natural join). It intentionally supports only the operations CyLog and the
// platform need, keeping the implementation dependency-free and deterministic.
package relstore

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Type identifies the type of a Value stored in a relation column.
type Type int

// Supported column types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType converts a type name (as used in schema declarations and CyLog
// programs) into a Type. It returns an error for unknown names.
func ParseType(name string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "int", "integer", "long":
		return TypeInt, nil
	case "float", "double", "real":
		return TypeFloat, nil
	case "string", "text", "varchar":
		return TypeString, nil
	case "bool", "boolean":
		return TypeBool, nil
	case "null":
		return TypeNull, nil
	default:
		return TypeNull, fmt.Errorf("relstore: unknown type %q", name)
	}
}

// Value is a single typed value stored in a tuple. The zero Value is NULL.
type Value struct {
	t Type
	i int64
	f float64
	s string
	b bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{t: TypeInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{t: TypeFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{t: TypeString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{t: TypeBool, b: v} }

// Type reports the type of the value.
func (v Value) Type() Type { return v.t }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.t == TypeNull }

// AsInt returns the value as an int64. Floats are truncated; booleans map to
// 0/1; strings are parsed when possible. The second return value reports
// whether the conversion was exact enough to be meaningful.
func (v Value) AsInt() (int64, bool) {
	switch v.t {
	case TypeInt:
		return v.i, true
	case TypeFloat:
		return int64(v.f), true
	case TypeBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case TypeString:
		n, err := strconv.ParseInt(v.s, 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat returns the value as a float64 when a numeric interpretation exists.
func (v Value) AsFloat() (float64, bool) {
	switch v.t {
	case TypeInt:
		return float64(v.i), true
	case TypeFloat:
		return v.f, true
	case TypeBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case TypeString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsString returns the value rendered as a string. NULL renders as "".
func (v Value) AsString() string {
	switch v.t {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		return strconv.FormatBool(v.b)
	default:
		return ""
	}
}

// AsBool returns the value interpreted as a boolean.
func (v Value) AsBool() (bool, bool) {
	switch v.t {
	case TypeBool:
		return v.b, true
	case TypeInt:
		return v.i != 0, true
	case TypeFloat:
		return v.f != 0, true
	case TypeString:
		b, err := strconv.ParseBool(v.s)
		return b, err == nil
	default:
		return false, false
	}
}

// String implements fmt.Stringer; NULL is rendered as "NULL" and strings are
// quoted so that tuples print unambiguously.
func (v Value) String() string {
	switch v.t {
	case TypeNull:
		return "NULL"
	case TypeString:
		return strconv.Quote(v.s)
	default:
		return v.AsString()
	}
}

// Equal reports value equality. Numeric values of different types (int vs
// float) compare by numeric value, matching CyLog comparison semantics.
func (v Value) Equal(o Value) bool {
	if v.t == o.t {
		switch v.t {
		case TypeNull:
			return true
		case TypeInt:
			return v.i == o.i
		case TypeFloat:
			return v.f == o.f
		case TypeString:
			return v.s == o.s
		case TypeBool:
			return v.b == o.b
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

func (v Value) isNumeric() bool { return v.t == TypeInt || v.t == TypeFloat }

// Compare orders two values. NULL sorts before everything; mixed numeric types
// compare numerically; otherwise values are compared within their type, and
// across incomparable types the ordering falls back to the type id so that the
// relation's ordering is total and deterministic.
func (v Value) Compare(o Value) int {
	if v.t == TypeNull || o.t == TypeNull {
		switch {
		case v.t == o.t:
			return 0
		case v.t == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.t != o.t {
		return int(v.t) - int(o.t)
	}
	switch v.t {
	case TypeString:
		return strings.Compare(v.s, o.s)
	case TypeBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Hash returns a stable hash of the value, used by relation indexes. Values
// that are Equal hash identically (ints and equal-valued floats share the
// numeric hash path).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch {
	case v.t == TypeNull:
		h.Write([]byte{0})
	case v.isNumeric():
		f, _ := v.AsFloat()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Integral values hash by their integer representation so that
			// Int(3) and Float(3.0) collide, matching Equal.
			h.Write([]byte{1})
			writeUint64(h, uint64(int64(f)))
		} else {
			h.Write([]byte{2})
			writeUint64(h, math.Float64bits(f))
		}
	case v.t == TypeString:
		h.Write([]byte{3})
		h.Write([]byte(v.s))
	case v.t == TypeBool:
		h.Write([]byte{4})
		if v.b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, x uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(x >> (8 * uint(i)))
	}
	h.Write(buf[:])
}

// FromGo converts a native Go value into a Value. Supported inputs are nil,
// bool, all integer kinds, float32/64, and string. Unsupported kinds become a
// string via fmt.Sprint so callers never lose data silently.
func FromGo(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null()
	case Value:
		return t
	case bool:
		return Bool(t)
	case int:
		return Int(int64(t))
	case int8:
		return Int(int64(t))
	case int16:
		return Int(int64(t))
	case int32:
		return Int(int64(t))
	case int64:
		return Int(t)
	case uint:
		return Int(int64(t))
	case uint32:
		return Int(int64(t))
	case uint64:
		return Int(int64(t))
	case float32:
		return Float(float64(t))
	case float64:
		return Float(t)
	case string:
		return String(t)
	default:
		return String(fmt.Sprint(x))
	}
}
