// Package relstore implements an embedded, in-memory relational store used as
// the storage substrate for the Crowd4U platform and its CyLog rule engine.
//
// The store provides typed schemas, tuples, relations with hash indexes,
// snapshot/restore, and relational-algebra helpers (selection, projection and
// natural join). It intentionally supports only the operations CyLog and the
// platform need, keeping the implementation dependency-free and deterministic.
package relstore

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the type of a Value stored in a relation column.
type Type int

// Supported column types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType converts a type name (as used in schema declarations and CyLog
// programs) into a Type. It returns an error for unknown names.
func ParseType(name string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "int", "integer", "long":
		return TypeInt, nil
	case "float", "double", "real":
		return TypeFloat, nil
	case "string", "text", "varchar":
		return TypeString, nil
	case "bool", "boolean":
		return TypeBool, nil
	case "null":
		return TypeNull, nil
	default:
		return TypeNull, fmt.Errorf("relstore: unknown type %q", name)
	}
}

// Value is a single typed value stored in a tuple. The zero Value is NULL.
type Value struct {
	t Type
	i int64
	f float64
	s string
	b bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{t: TypeInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{t: TypeFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{t: TypeString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{t: TypeBool, b: v} }

// Type reports the type of the value.
func (v Value) Type() Type { return v.t }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.t == TypeNull }

// AsInt returns the value as an int64. Floats are truncated; booleans map to
// 0/1; strings are parsed when possible. The second return value reports
// whether the conversion was exact enough to be meaningful.
func (v Value) AsInt() (int64, bool) {
	switch v.t {
	case TypeInt:
		return v.i, true
	case TypeFloat:
		return int64(v.f), true
	case TypeBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case TypeString:
		n, err := strconv.ParseInt(v.s, 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat returns the value as a float64 when a numeric interpretation exists.
func (v Value) AsFloat() (float64, bool) {
	switch v.t {
	case TypeInt:
		return float64(v.i), true
	case TypeFloat:
		return v.f, true
	case TypeBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case TypeString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsString returns the value rendered as a string. NULL renders as "".
func (v Value) AsString() string {
	switch v.t {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		return strconv.FormatBool(v.b)
	default:
		return ""
	}
}

// AsBool returns the value interpreted as a boolean.
func (v Value) AsBool() (bool, bool) {
	switch v.t {
	case TypeBool:
		return v.b, true
	case TypeInt:
		return v.i != 0, true
	case TypeFloat:
		return v.f != 0, true
	case TypeString:
		b, err := strconv.ParseBool(v.s)
		return b, err == nil
	default:
		return false, false
	}
}

// String implements fmt.Stringer; NULL is rendered as "NULL" and strings are
// quoted so that tuples print unambiguously.
func (v Value) String() string {
	switch v.t {
	case TypeNull:
		return "NULL"
	case TypeString:
		return strconv.Quote(v.s)
	default:
		return v.AsString()
	}
}

// Equal reports value equality. Numeric values of different types (int vs
// float) compare by numeric value, matching CyLog comparison semantics.
func (v Value) Equal(o Value) bool {
	return EqualValues(&v, &o)
}

// EqualValues is Equal through pointers: values in the engine's hot join
// loops live in slices, and passing them by value copies the full struct
// twice per comparison. Semantics are identical to Equal.
func EqualValues(v, o *Value) bool {
	if v.t == o.t {
		switch v.t {
		case TypeNull:
			return true
		case TypeInt:
			return v.i == o.i
		case TypeFloat:
			return v.f == o.f
		case TypeString:
			return v.s == o.s
		case TypeBool:
			return v.b == o.b
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

func (v Value) isNumeric() bool { return v.t == TypeInt || v.t == TypeFloat }

// isNaN reports whether the value is a floating-point NaN.
func (v Value) isNaN() bool { return v.t == TypeFloat && math.IsNaN(v.f) }

// Compare orders two values. NULL sorts before everything; mixed numeric types
// compare numerically; otherwise values are compared within their type, and
// across incomparable types the ordering falls back to the type id so that the
// relation's ordering is total and deterministic.
func (v Value) Compare(o Value) int {
	if v.t == TypeNull || o.t == TypeNull {
		switch {
		case v.t == o.t:
			return 0
		case v.t == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.t != o.t {
		return int(v.t) - int(o.t)
	}
	switch v.t {
	case TypeString:
		return strings.Compare(v.s, o.s)
	case TypeBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// FNV-1a, inlined. hash/fnv's New64a allocates a hasher per call, which made
// hashing the single largest allocator in the CyLog join loop (every index
// probe, index insert and frontier probe hashes values). These helpers fold
// bytes into a plain uint64 accumulator instead; they produce bit-identical
// digests to writing the same bytes into hash/fnv's Sum64a.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvUint64 folds the 8 little-endian bytes of x into h.
func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*uint(i))))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Hash returns a stable hash of the value, used by relation indexes. Values
// that are Equal hash identically (ints and equal-valued floats share the
// numeric hash path). The implementation is allocation-free: it runs once per
// probed or inserted value on the engine's hot path.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset64)
	switch {
	case v.t == TypeNull:
		h = fnvByte(h, 0)
	case v.isNumeric():
		f, _ := v.AsFloat()
		if math.IsNaN(f) {
			// All NaN payloads hash alike, matching storedEqual's NaN
			// folding (relation set semantics).
			h = fnvByte(h, 5)
		} else if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Integral values hash by their integer representation so that
			// Int(3) and Float(3.0) collide, matching Equal.
			h = fnvByte(h, 1)
			h = fnvUint64(h, uint64(int64(f)))
		} else {
			h = fnvByte(h, 2)
			h = fnvUint64(h, math.Float64bits(f))
		}
	case v.t == TypeString:
		h = fnvByte(h, 3)
		h = fnvString(h, v.s)
	case v.t == TypeBool:
		h = fnvByte(h, 4)
		if v.b {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}

// FromGo converts a native Go value into a Value. Supported inputs are nil,
// bool, all integer kinds, float32/64, and string. Unsupported kinds become a
// string via fmt.Sprint so callers never lose data silently.
func FromGo(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null()
	case Value:
		return t
	case bool:
		return Bool(t)
	case int:
		return Int(int64(t))
	case int8:
		return Int(int64(t))
	case int16:
		return Int(int64(t))
	case int32:
		return Int(int64(t))
	case int64:
		return Int(t)
	case uint:
		return Int(int64(t))
	case uint32:
		return Int(int64(t))
	case uint64:
		return Int(int64(t))
	case float32:
		return Float(float64(t))
	case float64:
		return Float(t)
	case string:
		return String(t)
	default:
		return String(fmt.Sprint(x))
	}
}
