package relstore

import (
	"fmt"
	"io"
)

// Backend is the storage seam of a Database: it decides where relation
// contents live and how database-level snapshots move in and out. The seam
// deliberately governs lifecycle, paging and snapshot I/O only — Relation
// stays a concrete struct and its insert/probe methods never dispatch through
// an interface, so the hot join path pays nothing for pluggability (the
// memory backend's relations carry a nil pager and behave byte-for-byte like
// the pre-seam store).
//
// Backends are single-database: NewDatabaseWith attaches the backend exactly
// once and attach panics on reuse.
type Backend interface {
	// Name identifies the backend ("memory", "disk") in stats and logs.
	Name() string

	// attach binds the backend to the database it stores. Called exactly
	// once by NewDatabaseWith; package-private so the seam stays closed to
	// out-of-package implementations (the invariants below lean on
	// package internals).
	attach(d *Database)

	// OpenRelation returns the relation to register under name. Paging
	// backends install their pager hook here; the returned relation must be
	// empty.
	OpenRelation(name string, schema *Schema) (*Relation, error)

	// ReleaseRelation forgets any backend state (segment files, residency
	// accounting) for a dropped relation. Called by Database.Drop after the
	// relation left the registry.
	ReleaseRelation(name string)

	// MarkVolatile exempts the named relation from paging — derived (IDB)
	// relations are recomputed, not persisted, and the engine's evaluator
	// holds direct pointers into them. Must be called before the relation is
	// created to take effect.
	MarkVolatile(name string)

	// ExportSnapshot writes the named relations (all when nil) as a
	// database-level binary export — the RSB2 envelope of
	// ExportDatabaseBinary, byte-identical across backends for equal
	// contents. A paging backend streams paged-out relations from their
	// segments instead of faulting them in.
	ExportSnapshot(names []string, w io.Writer) error

	// ImportSnapshot reads a database-level binary export into the database,
	// returning the imported relation names. A paging backend may spill
	// relations as they arrive so the peak footprint stays near its budget.
	ImportSnapshot(rd io.Reader) ([]string, error)

	// Maintain enforces the backend's resource policy (e.g. evicting cold
	// relations past the byte budget). Callers invoke it at quiescent points
	// — after a commit, after an import. A no-op for the memory backend.
	Maintain() error

	// Stats reports residency and I/O counters for observability and tests.
	Stats() BackendStats

	// Close releases backend resources. The database must not be used after.
	Close() error
}

// BackendStats is a point-in-time observability snapshot of a backend.
type BackendStats struct {
	// Backend is the backend name ("memory", "disk").
	Backend string
	// Relations is the number of relations the backend manages (for the
	// disk backend: non-volatile relations with residency accounting).
	Relations int
	// ResidentRelations counts managed relations currently in memory.
	ResidentRelations int
	// ResidentBytes is the estimated heap footprint of resident managed
	// relations. Zero for the memory backend (nothing is accounted).
	ResidentBytes int64
	// BudgetBytes is the configured residency budget (0 = unbounded).
	BudgetBytes int64
	// Faults counts paged-out relations loaded back from their segments.
	Faults int64
	// Evictions counts relations dropped back to their segments.
	Evictions int64
	// SegmentWrites counts segment files written (evictions of dirty
	// relations and import-side spills).
	SegmentWrites int64
	// SegmentBytes totals the payload bytes of written segments.
	SegmentBytes int64
}

// relationPager is the hook a paging backend installs on the relations it
// manages. ensure runs before every content access: it records the touch for
// recency accounting and faults the contents in when they are paged out.
type relationPager interface {
	ensure(r *Relation)
}

// MemoryBackend is the classic hash-bucketed in-memory store, extracted
// behind the Backend seam. Relations live entirely on the heap for the
// database's lifetime; snapshots go through the RSB2 codec directly.
type MemoryBackend struct {
	d *Database
}

// NewMemoryBackend returns a fresh in-memory backend for NewDatabaseWith.
func NewMemoryBackend() *MemoryBackend { return &MemoryBackend{} }

// Name implements Backend.
func (b *MemoryBackend) Name() string { return "memory" }

func (b *MemoryBackend) attach(d *Database) {
	if b.d != nil {
		panic("relstore: backend already attached to a database")
	}
	b.d = d
}

// OpenRelation implements Backend: a plain heap relation, no pager.
func (b *MemoryBackend) OpenRelation(name string, schema *Schema) (*Relation, error) {
	return NewRelation(name, schema), nil
}

// ReleaseRelation implements Backend (no per-relation state to release).
func (b *MemoryBackend) ReleaseRelation(string) {}

// MarkVolatile implements Backend (nothing pages, so nothing to exempt).
func (b *MemoryBackend) MarkVolatile(string) {}

// ExportSnapshot implements Backend via the RSB2 database export.
func (b *MemoryBackend) ExportSnapshot(names []string, w io.Writer) error {
	return ExportDatabaseBinary(b.d, names, w)
}

// ImportSnapshot implements Backend via the RSB2 database import.
func (b *MemoryBackend) ImportSnapshot(rd io.Reader) ([]string, error) {
	return ImportDatabaseBinary(b.d, rd)
}

// Maintain implements Backend as a no-op.
func (b *MemoryBackend) Maintain() error { return nil }

// Stats implements Backend. Every relation is resident by definition; byte
// accounting is not maintained (nothing consumes it).
func (b *MemoryBackend) Stats() BackendStats {
	n := 0
	if b.d != nil {
		n = len(b.d.Names())
	}
	return BackendStats{Backend: b.Name(), Relations: n, ResidentRelations: n}
}

// Close implements Backend as a no-op.
func (b *MemoryBackend) Close() error { return nil }

// OpenBackend constructs a backend by name: "memory" (or "") for the
// in-memory store, "disk" for the disk-paged store rooted at opts.Dir. It is
// the single switch the platform and command-line layers use to honor
// CYLOG_BACKEND / -backend selections.
func OpenBackend(kind string, opts DiskOptions) (Backend, error) {
	switch kind {
	case "", "memory":
		return NewMemoryBackend(), nil
	case "disk":
		return NewDiskBackend(opts)
	default:
		return nil, fmt.Errorf("relstore: unknown backend %q (want memory or disk)", kind)
	}
}
