package relstore

import (
	"fmt"
	"testing"
)

// benchRelation builds a relation of n rows over 100 distinct (a) values and
// 1000 distinct (a, b) combinations.
func benchRelation(n int) *Relation {
	r := NewRelation("bench", MustSchema("a:int", "b:int", "payload:string"))
	for i := 0; i < n; i++ {
		r.MustInsert(i%100, i%1000/100, fmt.Sprintf("row%d", i))
	}
	return r
}

func BenchmarkSelectEq(b *testing.B) {
	const n = 10000
	for _, indexed := range []bool{false, true} {
		name := "scan"
		if indexed {
			name = "indexed"
		}
		b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
			r := benchRelation(n)
			if indexed {
				if err := r.CreateIndex("a"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := r.SelectEq("a", Int(int64(i%100))); len(got) != n/100 {
					b.Fatalf("SelectEq = %d rows", len(got))
				}
			}
		})
	}
}

func BenchmarkSelectEqMulti(b *testing.B) {
	const n = 10000
	for _, indexed := range []bool{false, true} {
		name := "scan"
		if indexed {
			name = "indexed"
		}
		b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
			r := benchRelation(n)
			if indexed {
				if err := r.CreateIndex("a", "b"); err != nil {
					b.Fatal(err)
				}
			}
			cols := []string{"a", "b"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := r.SelectEqMulti(cols, []Value{Int(int64(i % 100)), Int(int64(i % 10))})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != n/1000 {
					b.Fatalf("SelectEqMulti = %d rows", len(got))
				}
			}
		})
	}
}

// BenchmarkScanEq measures the allocation-light probe primitive the CyLog
// join loop uses (no result sorting or slice materialisation).
func BenchmarkScanEq(b *testing.B) {
	const n = 10000
	r := benchRelation(n)
	if err := r.CreateIndex("a", "b"); err != nil {
		b.Fatal(err)
	}
	cols := []string{"a", "b"}
	vals := make([]Value, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0], vals[1] = Int(int64(i%100)), Int(int64(i%10))
		matches := 0
		if _, err := r.ScanEq(cols, vals, func(Tuple) bool { matches++; return true }); err != nil {
			b.Fatal(err)
		}
		if matches != n/1000 {
			b.Fatalf("ScanEq matched %d rows", matches)
		}
	}
}
