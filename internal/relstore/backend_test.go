package relstore

import (
	"bytes"
	"fmt"
	"testing"
)

// backendVariant opens a fresh database on one backend configuration. The
// maintain hook drives the backend's policy at the points a real caller
// would (after a batch of mutations); for the tiny-budget disk variant it
// forces actual evictions, so every conformance check below also runs
// against relations that have been paged out and faulted back in.
type backendVariant struct {
	name string
	open func(t *testing.T) *Database
}

func backendVariants() []backendVariant {
	return []backendVariant{
		{"memory", func(t *testing.T) *Database { return NewDatabase() }},
		{"disk", func(t *testing.T) *Database {
			b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			return NewDatabaseWith(b)
		}},
		{"disk-tiny", func(t *testing.T) *Database {
			// A budget far below one relation's footprint: every Maintain
			// call evicts everything not in the current working set.
			b, err := NewDiskBackend(DiskOptions{Dir: t.TempDir(), BudgetBytes: 1})
			if err != nil {
				t.Fatal(err)
			}
			return NewDatabaseWith(b)
		}},
	}
}

// maintain runs the backend policy and fails the test on error.
func maintain(t *testing.T, d *Database) {
	t.Helper()
	if err := d.Backend().Maintain(); err != nil {
		t.Fatal(err)
	}
}

func TestBackendConformanceInsertAndScan(t *testing.T) {
	for _, v := range backendVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("people", MustSchema("id:int", "name:string"))
			r.MustInsert(1, "ada")
			r.MustInsert(2, "bob")
			if dup, err := r.Insert(NewTuple(1, "ada")); err != nil || dup {
				t.Fatalf("duplicate insert = (%v, %v), want (false, nil)", dup, err)
			}
			maintain(t, d)
			if got := r.Len(); got != 2 {
				t.Fatalf("Len = %d, want 2", got)
			}
			if !r.Contains(NewTuple(2, "bob")) {
				t.Fatal("Contains(2, bob) = false after maintain")
			}
			var seen int
			r.Scan(func(Tuple) bool { seen++; return true })
			if seen != 2 {
				t.Fatalf("Scan visited %d tuples, want 2", seen)
			}
		})
	}
}

func TestBackendConformanceDerivedSupport(t *testing.T) {
	for _, v := range backendVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("facts", MustSchema("x:int"))
			r.MustInsert(1)
			if _, err := r.InsertDerived(NewTuple(2)); err != nil {
				t.Fatal(err)
			}
			if _, err := r.InsertDerived(NewTuple(2)); err != nil {
				t.Fatal(err)
			}
			r.MustInsert(3)
			if _, err := r.InsertDerived(NewTuple(3)); err != nil {
				t.Fatal(err)
			}
			maintain(t, d)
			for _, tc := range []struct {
				x       int
				base    bool
				derived int
			}{{1, true, 0}, {2, false, 2}, {3, true, 1}} {
				base, derived, ok := r.Support(NewTuple(tc.x))
				if !ok || base != tc.base || derived != tc.derived {
					t.Fatalf("Support(%d) = (%v,%d,%v), want (%v,%d,true)", tc.x, base, derived, ok, tc.base, tc.derived)
				}
			}
			maintain(t, d)
			if removed := r.ClearDerived(); removed != 1 {
				t.Fatalf("ClearDerived removed %d, want 1", removed)
			}
			if r.Len() != 2 {
				t.Fatalf("Len after ClearDerived = %d, want 2", r.Len())
			}
		})
	}
}

func TestBackendConformanceIndexes(t *testing.T) {
	for _, v := range backendVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("edge", MustSchema("a:int", "b:int"))
			if err := r.EnsureIndexAt([]int{0}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				r.MustInsert(i%5, i)
			}
			maintain(t, d)
			// The index must survive an evict/fault cycle: definitions are
			// kept, postings rebuilt from the faulted contents.
			if !r.HasIndexAt([]int{0}) {
				t.Fatal("index on column 0 lost after maintain")
			}
			var hits int
			if _, err := r.ScanEqAt([]int{0}, []Value{Int(3)}, func(Tuple) bool { hits++; return true }); err != nil {
				t.Fatal(err)
			}
			if hits != 4 {
				t.Fatalf("ScanEqAt(a=3) found %d rows, want 4", hits)
			}
		})
	}
}

func TestBackendConformanceStats(t *testing.T) {
	for _, v := range backendVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("tags", MustSchema("n:int", "label:string"))
			for i := 0; i < 12; i++ {
				r.MustInsert(i, fmt.Sprintf("label-%d", i%4))
			}
			epoch := r.StatsEpoch()
			maintain(t, d)
			if got := r.ColumnDistinct(1); got != 4 {
				t.Fatalf("ColumnDistinct(label) = %d, want 4", got)
			}
			if r.StatsEpoch() < epoch {
				t.Fatalf("stats epoch went backwards: %d -> %d", epoch, r.StatsEpoch())
			}
			maintain(t, d)
			if got := r.Len(); got != 12 {
				t.Fatalf("Len = %d, want 12", got)
			}
		})
	}
}

func TestBackendConformanceClone(t *testing.T) {
	for _, v := range backendVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("src", MustSchema("x:int"))
			r.MustInsert(1)
			r.MustInsert(2)
			maintain(t, d)
			c := r.Clone()
			r.MustInsert(3)
			if c.Len() != 2 || !c.Contains(NewTuple(1)) {
				t.Fatalf("clone has %d rows, want the 2 pre-clone rows", c.Len())
			}
		})
	}
}

// TestBackendConformanceBinaryRoundTrip proves the relation-level binary
// codec is backend-agnostic: export from any backend, import into any other,
// contents equal and the export bytes identical.
func TestBackendConformanceBinaryRoundTrip(t *testing.T) {
	variants := backendVariants()
	exports := make(map[string][]byte)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			d := v.open(t)
			r := d.MustCreate("people", MustSchema("id:int", "name:string"))
			for i := 0; i < 30; i++ {
				r.MustInsert(i, fmt.Sprintf("name-%d", i))
			}
			maintain(t, d)
			var buf bytes.Buffer
			if err := ExportBinary(r, &buf); err != nil {
				t.Fatal(err)
			}
			exports[v.name] = buf.Bytes()

			for _, dst := range variants {
				dd := dst.open(t)
				got, err := ImportBinary(dd, bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("import into %s: %v", dst.name, err)
				}
				if got.Len() != 30 {
					t.Fatalf("import into %s: %d rows, want 30", dst.name, got.Len())
				}
			}
		})
	}
	want := exports["memory"]
	for name, got := range exports {
		if !bytes.Equal(got, want) {
			t.Fatalf("export bytes from %s differ from memory backend", name)
		}
	}
}

// TestBackendConformanceSnapshot proves database-level snapshots are
// byte-identical across backends for equal contents — including when the
// disk backend streams paged-out relations straight from their segments —
// and that each backend can import the other's snapshot.
func TestBackendConformanceSnapshot(t *testing.T) {
	build := func(t *testing.T, v backendVariant) (*Database, []byte) {
		d := v.open(t)
		for ri := 0; ri < 4; ri++ {
			r := d.MustCreate(fmt.Sprintf("rel%d", ri), MustSchema("x:int", "s:string"))
			for i := 0; i < 50; i++ {
				r.MustInsert(i, fmt.Sprintf("row-%d-%d", ri, i))
			}
		}
		maintain(t, d)
		var buf bytes.Buffer
		if err := d.ExportSnapshot(nil, &buf); err != nil {
			t.Fatal(err)
		}
		return d, buf.Bytes()
	}
	variants := backendVariants()
	snaps := make(map[string][]byte)
	for _, v := range variants {
		_, snap := build(t, v)
		snaps[v.name] = snap
	}
	want := snaps["memory"]
	for name, got := range snaps {
		if !bytes.Equal(got, want) {
			t.Fatalf("snapshot bytes from %s differ from memory backend (%d vs %d bytes)", name, len(got), len(want))
		}
	}
	for _, dst := range variants {
		d := dst.open(t)
		names, err := d.ImportSnapshot(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("import into %s: %v", dst.name, err)
		}
		if len(names) != 4 {
			t.Fatalf("import into %s restored %d relations, want 4", dst.name, len(names))
		}
		for ri := 0; ri < 4; ri++ {
			r := d.Relation(fmt.Sprintf("rel%d", ri))
			if r == nil || r.Len() != 50 {
				t.Fatalf("import into %s: rel%d missing or wrong size", dst.name, ri)
			}
		}
	}
}

func TestOpenBackend(t *testing.T) {
	for _, kind := range []string{"", "memory"} {
		b, err := OpenBackend(kind, DiskOptions{})
		if err != nil || b.Name() != "memory" {
			t.Fatalf("OpenBackend(%q) = %v, %v; want memory backend", kind, b, err)
		}
	}
	b, err := OpenBackend("disk", DiskOptions{Dir: t.TempDir()})
	if err != nil || b.Name() != "disk" {
		t.Fatalf("OpenBackend(disk) = %v, %v", b, err)
	}
	if _, err := OpenBackend("papyrus", DiskOptions{}); err == nil {
		t.Fatal("OpenBackend(papyrus): want error")
	}
	if _, err := OpenBackend("disk", DiskOptions{}); err == nil {
		t.Fatal("OpenBackend(disk) without a directory: want error")
	}
}

func TestMemoryBackendStats(t *testing.T) {
	d := NewDatabase()
	d.MustCreate("a", MustSchema("x:int"))
	d.MustCreate("b", MustSchema("x:int"))
	s := d.Backend().Stats()
	if s.Backend != "memory" || s.Relations != 2 || s.ResidentRelations != 2 {
		t.Fatalf("stats = %+v, want memory backend with 2 resident relations", s)
	}
}
