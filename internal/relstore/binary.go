package relstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary relation codec
//
// The binary export is the persistence format of the durable answer log
// (internal/wal): relation snapshots are written with ExportDatabaseBinary and
// loaded back with ImportDatabaseBinary during crash recovery, and the WAL's
// per-record fact encoding reuses the value codec (AppendValueBinary /
// DecodeValueBinary). The format is deliberately simple — length-prefixed
// strings, varint integers, fixed 8-byte floats — with no compression and no
// internal checksums: framing, checksumming and torn-write detection belong to
// the layer that owns the file (the WAL wraps both snapshots and records in
// CRC32-validated envelopes).
//
// Tuples are written in the relation's canonical sorted order together with
// their support records (base flag + derivation count), so exports are
// deterministic byte-for-byte for equal contents and a restored relation
// answers Support queries exactly like the original — ClearDerived and the
// retraction machinery keep working across a snapshot/restore cycle.

// binaryMagic identifies a database-level binary export; the trailing digit is
// the format version. Version 2 extends each relation's header with its
// statistics state (stats epoch + drift markers, see stats.go) so cost-planner
// inputs survive snapshot round-trips; version 1 payloads (no stats section)
// are still imported for snapshots written before the extension.
const (
	binaryMagic   = "RSB2"
	binaryMagicV1 = "RSB1"
)

// Per-relation payload versions, threaded through the importer so a database
// envelope's magic decides how each relation is decoded.
const (
	binaryVersion1 = 1
	binaryVersion2 = 2
)

// Decoding sanity caps: a corrupt length prefix must not make the importer
// attempt an absurd allocation. Payloads are small (relation names, column
// names, string values), so anything past these caps is corruption.
const (
	maxBinaryString = 1 << 24 // 16 MiB per string value
	maxBinaryArity  = 1 << 12 // columns per relation
)

// AppendValueBinary appends the binary encoding of a value: a type byte
// followed by the payload (varint for ints, 8 little-endian bytes for floats,
// uvarint length + bytes for strings, one byte for bools, nothing for NULL).
func AppendValueBinary(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.t))
	switch v.t {
	case TypeInt:
		buf = binary.AppendVarint(buf, v.i)
	case TypeFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case TypeString:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		buf = append(buf, v.s...)
	case TypeBool:
		if v.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeValueBinary decodes one value from the front of data, returning the
// value and the number of bytes consumed.
func DecodeValueBinary(data []byte) (Value, int, error) {
	if len(data) == 0 {
		return Null(), 0, io.ErrUnexpectedEOF
	}
	t := Type(data[0])
	rest := data[1:]
	switch t {
	case TypeNull:
		return Null(), 1, nil
	case TypeInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Null(), 0, fmt.Errorf("relstore: malformed varint in binary value")
		}
		return Int(i), 1 + n, nil
	case TypeFloat:
		if len(rest) < 8 {
			return Null(), 0, io.ErrUnexpectedEOF
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(rest))), 9, nil
	case TypeString:
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > maxBinaryString {
			return Null(), 0, fmt.Errorf("relstore: malformed string length in binary value")
		}
		if uint64(len(rest)-n) < l {
			return Null(), 0, io.ErrUnexpectedEOF
		}
		return String(string(rest[n : n+int(l)])), 1 + n + int(l), nil
	case TypeBool:
		if len(rest) < 1 {
			return Null(), 0, io.ErrUnexpectedEOF
		}
		return Bool(rest[0] != 0), 2, nil
	default:
		return Null(), 0, fmt.Errorf("relstore: unknown value type %d in binary data", int(t))
	}
}

// AppendTupleBinary appends the binary encoding of a tuple: a uvarint arity
// followed by each value.
func AppendTupleBinary(buf []byte, t Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = AppendValueBinary(buf, v)
	}
	return buf
}

// DecodeTupleBinary decodes one tuple from the front of data, returning the
// tuple and the number of bytes consumed.
func DecodeTupleBinary(data []byte) (Tuple, int, error) {
	arity, n := binary.Uvarint(data)
	if n <= 0 || arity > maxBinaryArity {
		return nil, 0, fmt.Errorf("relstore: malformed tuple arity in binary data")
	}
	off := n
	t := make(Tuple, arity)
	for i := range t {
		v, vn, err := DecodeValueBinary(data[off:])
		if err != nil {
			return nil, 0, err
		}
		t[i] = v
		off += vn
	}
	return t, off, nil
}

// supportedTuple pairs a tuple with its support record for deterministic
// export ordering.
type supportedTuple struct {
	t       Tuple
	base    bool
	derived int
}

// ExportBinary writes one relation — schema, statistics state, tuples and
// support records — to w. Tuples are written in canonical sorted order, so
// exports are byte-identical for equal relation contents and equal statistics
// state (the stats epoch and drift markers depend on mutation history, not
// just on the final tuple set).
func ExportBinary(r *Relation, w io.Writer) error {
	rows := make([]supportedTuple, 0, r.Len())
	r.ScanSupport(func(t Tuple, base bool, derived int) bool {
		rows = append(rows, supportedTuple{t: t, base: base, derived: derived})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].t.Compare(rows[j].t) < 0 })

	buf := make([]byte, 0, 256)
	buf = appendString(buf, r.Name())
	cols := r.Schema().Columns()
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	epoch, markRows, markDistinct := r.statsMarkers()
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(markRows))
	for _, d := range markDistinct {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, row := range rows {
		buf = buf[:0]
		flags := byte(0)
		if row.base {
			flags |= 1
		}
		if row.derived > 0 {
			flags |= 2
		}
		buf = append(buf, flags)
		if row.derived > 0 {
			buf = binary.AppendUvarint(buf, uint64(row.derived))
		}
		for _, v := range row.t {
			buf = AppendValueBinary(buf, v)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ImportBinary reads one relation previously written by ExportBinary into the
// database, creating the relation when absent (an existing relation must have
// the same schema). Tuples restore with their support records: base tuples are
// inserted as base facts and derivation counts are re-established, so
// ClearDerived and Support behave exactly as on the exported relation. The
// statistics state restores too: distinct-count estimates rebuild from the
// inserted tuples and the exported drift markers are reinstated, so the stats
// epoch keeps invalidating cached plans exactly as on the exported relation.
func ImportBinary(d *Database, rd io.Reader) (*Relation, error) {
	return importBinary(d, asByteReader(rd), binaryVersion2)
}

func importBinary(d *Database, br byteReader, version int) (*Relation, error) {
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("relstore: binary import: reading relation name: %w", err)
	}
	arity, err := readUvarint(br, maxBinaryArity)
	if err != nil {
		return nil, fmt.Errorf("relstore: binary import of %s: reading arity: %w", name, err)
	}
	cols := make([]Column, arity)
	seenCols := make(map[string]bool, arity)
	for i := range cols {
		cname, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("relstore: binary import of %s: reading column: %w", name, err)
		}
		// Validate here rather than letting NewSchema panic: column names in
		// the stream are untrusted input, and corruption must surface as an
		// error.
		if cname == "" {
			return nil, fmt.Errorf("relstore: binary import of %s: empty column name", name)
		}
		if seenCols[cname] {
			return nil, fmt.Errorf("relstore: binary import of %s: duplicate column %q", name, cname)
		}
		seenCols[cname] = true
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("relstore: binary import of %s: reading column type: %w", name, err)
		}
		if Type(tb) < TypeNull || Type(tb) > TypeBool {
			return nil, fmt.Errorf("relstore: binary import of %s: unknown column type %d", name, int(tb))
		}
		cols[i] = Column{Name: cname, Type: Type(tb)}
	}
	rel, err := d.GetOrCreate(name, NewSchema(cols...))
	if err != nil {
		return nil, err
	}
	var statsEpoch, statsRows uint64
	var statsDistinct []int
	if version >= binaryVersion2 {
		statsEpoch, err = readUvarint(br, 1<<40)
		if err != nil {
			return nil, fmt.Errorf("relstore: binary import of %s: reading stats epoch: %w", name, err)
		}
		statsRows, err = readUvarint(br, 1<<40)
		if err != nil {
			return nil, fmt.Errorf("relstore: binary import of %s: reading stats row marker: %w", name, err)
		}
		statsDistinct = make([]int, arity)
		for i := range statsDistinct {
			v, err := readUvarint(br, 1<<40)
			if err != nil {
				return nil, fmt.Errorf("relstore: binary import of %s: reading stats distinct marker: %w", name, err)
			}
			statsDistinct[i] = int(v)
		}
	}
	count, err := readUvarint(br, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("relstore: binary import of %s: reading tuple count: %w", name, err)
	}
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("relstore: binary import of %s: reading tuple flags: %w", name, err)
		}
		derived := uint64(0)
		if flags&2 != 0 {
			// Derivation counts are stored as int32; a larger claim cannot
			// come from a real export and is rejected as corruption (it also
			// must never size a restore loop — see insertWithSupport).
			derived, err = readUvarint(br, math.MaxInt32)
			if err != nil {
				return nil, fmt.Errorf("relstore: binary import of %s: reading derivation count: %w", name, err)
			}
		}
		t := make(Tuple, arity)
		for c := range t {
			v, err := readValue(br)
			if err != nil {
				return nil, fmt.Errorf("relstore: binary import of %s: reading tuple %d: %w", name, i, err)
			}
			t[c] = v
		}
		if flags&1 != 0 || derived > 0 {
			if _, err := rel.insertWithSupport(t, flags&1 != 0, int32(derived)); err != nil {
				return nil, fmt.Errorf("relstore: binary import of %s: %w", name, err)
			}
		}
	}
	if version >= binaryVersion2 {
		rel.restoreStatsMarkers(statsEpoch, int(statsRows), statsDistinct)
	}
	return rel, nil
}

// ExportDatabaseBinary writes the named relations (all of them when names is
// nil) to w: a magic header, a relation count, then each relation's
// ExportBinary payload, in sorted name order. Relations named but absent are
// an error.
func ExportDatabaseBinary(d *Database, names []string, w io.Writer) error {
	if names == nil {
		names = d.Names()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(names)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, name := range names {
		r := d.Relation(name)
		if r == nil {
			return fmt.Errorf("relstore: binary export: relation %q does not exist", name)
		}
		if err := ExportBinary(r, bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportDatabaseBinary reads a database-level binary export into d, creating
// relations as needed, and returns the names of the imported relations.
func ImportDatabaseBinary(d *Database, rd io.Reader) ([]string, error) {
	br := asByteReader(rd)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("relstore: binary import: reading magic: %w", err)
	}
	version := 0
	switch string(magic) {
	case binaryMagic:
		version = binaryVersion2
	case binaryMagicV1:
		version = binaryVersion1
	default:
		return nil, fmt.Errorf("relstore: binary import: bad magic %q (want %q or %q)", magic, binaryMagic, binaryMagicV1)
	}
	count, err := readUvarint(br, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("relstore: binary import: reading relation count: %w", err)
	}
	names := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		rel, err := importBinary(d, br, version)
		if err != nil {
			return nil, err
		}
		names = append(names, rel.Name())
	}
	return names, nil
}

// byteReader is the reader shape the decoders need: streamed bytes plus
// single-byte reads for varints.
type byteReader interface {
	io.Reader
	io.ByteReader
}

func asByteReader(rd io.Reader) byteReader {
	if br, ok := rd.(byteReader); ok {
		return br
	}
	return bufio.NewReader(rd)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(br byteReader, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("length %d exceeds sanity cap %d", v, max)
	}
	return v, nil
}

func readString(br byteReader) (string, error) {
	l, err := readUvarint(br, maxBinaryString)
	if err != nil {
		return "", err
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// readValue decodes one value from a stream; the streamed twin of
// DecodeValueBinary.
func readValue(br byteReader) (Value, error) {
	tb, err := br.ReadByte()
	if err != nil {
		return Null(), err
	}
	switch Type(tb) {
	case TypeNull:
		return Null(), nil
	case TypeInt:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return Null(), err
		}
		return Int(i), nil
	case TypeFloat:
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	case TypeString:
		s, err := readString(br)
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case TypeBool:
		bb, err := br.ReadByte()
		if err != nil {
			return Null(), err
		}
		return Bool(bb != 0), nil
	default:
		return Null(), fmt.Errorf("unknown value type %d", int(tb))
	}
}
