package relstore

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Database is a named collection of relations. It is the unit the CyLog engine
// and the Crowd4U platform operate on. All methods are safe for concurrent
// use; individual relations carry their own finer-grained locks.
//
// Every database owns exactly one storage Backend (see backend.go) that
// decides where relation contents live. NewDatabase wires the classic
// in-memory store; NewDatabaseWith picks another (e.g. the disk-paged one).
type Database struct {
	mu        sync.RWMutex
	relations map[string]*Relation
	backend   Backend
}

// NewDatabase creates an empty database over the in-memory backend — the
// historical behavior, byte-for-byte.
func NewDatabase() *Database {
	return NewDatabaseWith(NewMemoryBackend())
}

// NewDatabaseWith creates an empty database whose relations are stored by the
// given backend. The backend must be fresh: backends are single-database and
// attach panics on reuse.
func NewDatabaseWith(b Backend) *Database {
	d := &Database{relations: make(map[string]*Relation), backend: b}
	b.attach(d)
	return d
}

// Backend returns the database's storage backend.
func (d *Database) Backend() Backend { return d.backend }

// ExportSnapshot writes the named relations (all relations when names is nil)
// as a database-level binary export (RSB2 envelope) through the backend, which
// may stream paged-out relations straight from their segments instead of
// materializing them. The bytes are identical to ExportDatabaseBinary for
// equal contents regardless of backend.
func (d *Database) ExportSnapshot(names []string, w io.Writer) error {
	return d.backend.ExportSnapshot(names, w)
}

// ImportSnapshot reads a database-level binary export through the backend,
// which may spill relations to secondary storage as they arrive instead of
// keeping the whole set resident. It returns the imported relation names.
func (d *Database) ImportSnapshot(rd io.Reader) ([]string, error) {
	return d.backend.ImportSnapshot(rd)
}

// Create adds a new empty relation. It returns an error if a relation with the
// same name already exists.
func (d *Database) Create(name string, schema *Schema) (*Relation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.relations[name]; exists {
		return nil, fmt.Errorf("relstore: relation %q already exists", name)
	}
	r, err := d.backend.OpenRelation(name, schema)
	if err != nil {
		return nil, err
	}
	d.relations[name] = r
	return r, nil
}

// MustCreate is Create but panics on error; for static setup code and tests.
func (d *Database) MustCreate(name string, schema *Schema) *Relation {
	r, err := d.Create(name, schema)
	if err != nil {
		panic(err)
	}
	return r
}

// GetOrCreate returns the named relation, creating it with the given schema
// when absent. It returns an error if the relation exists with a different
// schema.
func (d *Database) GetOrCreate(name string, schema *Schema) (*Relation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, exists := d.relations[name]; exists {
		if !r.Schema().Equal(schema) {
			return nil, fmt.Errorf("relstore: relation %q exists with schema %s, requested %s", name, r.Schema(), schema)
		}
		return r, nil
	}
	r, err := d.backend.OpenRelation(name, schema)
	if err != nil {
		return nil, err
	}
	d.relations[name] = r
	return r, nil
}

// Relation returns the named relation, or nil when absent.
func (d *Database) Relation(name string) *Relation {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.relations[name]
}

// Has reports whether the named relation exists.
func (d *Database) Has(name string) bool { return d.Relation(name) != nil }

// Drop removes the named relation. It reports whether a relation was removed.
func (d *Database) Drop(name string) bool {
	d.mu.Lock()
	if _, exists := d.relations[name]; !exists {
		d.mu.Unlock()
		return false
	}
	delete(d.relations, name)
	d.mu.Unlock()
	d.backend.ReleaseRelation(name)
	return true
}

// Names returns the sorted names of all relations.
func (d *Database) Names() []string {
	d.mu.RLock()
	out := make([]string, 0, len(d.relations))
	for name := range d.relations {
		out = append(out, name)
	}
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}

// TotalTuples returns the total number of tuples across all relations.
func (d *Database) TotalTuples() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, r := range d.relations {
		n += r.Len()
	}
	return n
}

// Snapshot returns a deep copy of the database. Snapshots let the platform
// run what-if assignment rounds and let tests assert on intermediate states.
func (d *Database) Snapshot() *Database {
	d.mu.RLock()
	rels := make([]*Relation, 0, len(d.relations))
	for _, r := range d.relations {
		rels = append(rels, r)
	}
	d.mu.RUnlock()

	s := NewDatabase()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rels {
		s.relations[r.Name()] = r.Clone()
	}
	return s
}

// Restore replaces the database contents with those of the snapshot.
func (d *Database) Restore(snapshot *Database) {
	copyOf := snapshot.Snapshot()
	d.mu.Lock()
	defer d.mu.Unlock()
	copyOf.mu.RLock()
	defer copyOf.mu.RUnlock()
	d.relations = make(map[string]*Relation, len(copyOf.relations))
	for name, r := range copyOf.relations {
		d.relations[name] = r
	}
}

// String summarises the database.
func (d *Database) String() string {
	names := d.Names()
	return fmt.Sprintf("Database[%d relations: %v, %d tuples]", len(names), names, d.TotalTuples())
}
