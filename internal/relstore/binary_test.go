package relstore

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestValueBinaryRoundTrip(t *testing.T) {
	values := []Value{
		Null(),
		Int(0), Int(42), Int(-7), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(3.25), Float(-1e300), Float(math.Inf(1)),
		String(""), String("hello"), String(strings.Repeat("x", 1000)), String("uni\x00code\xff"),
		Bool(true), Bool(false),
	}
	var buf []byte
	for _, v := range values {
		buf = AppendValueBinary(buf, v)
	}
	off := 0
	for i, want := range values {
		got, n, err := DecodeValueBinary(buf[off:])
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Type() != want.Type() || !got.Equal(want) {
			t.Fatalf("value %d: got %v want %v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestValueBinaryNaN(t *testing.T) {
	buf := AppendValueBinary(nil, Float(math.NaN()))
	got, _, err := DecodeValueBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := got.AsFloat(); !math.IsNaN(f) {
		t.Fatalf("got %v, want NaN", got)
	}
}

func TestValueBinaryErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"unknown type":     {99},
		"truncated float":  {byte(TypeFloat), 1, 2, 3},
		"truncated string": append([]byte{byte(TypeString)}, 200, 1),
		"truncated bool":   {byte(TypeBool)},
		"bad varint":       append([]byte{byte(TypeInt)}, bytes.Repeat([]byte{0x80}, 11)...),
	}
	for name, data := range cases {
		if _, _, err := DecodeValueBinary(data); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestTupleBinaryRoundTrip(t *testing.T) {
	want := NewTuple(int64(1), "two", 3.5, true, nil)
	buf := AppendTupleBinary(nil, want)
	got, n, err := DecodeTupleBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || !got.Equal(want) {
		t.Fatalf("got %v (%d bytes), want %v (%d bytes)", got, n, want, len(buf))
	}
	if _, _, err := DecodeTupleBinary([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("absurd arity: want error")
	}
}

func TestRelationBinaryRoundTrip(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("people", MustSchema("id:int", "name:string", "score:float", "ok:bool"))
	r.MustInsert(1, "ada", 9.5, true)
	r.MustInsert(2, "bob", 7.25, false)
	r.MustInsert(3, "eve", 0.0, true)

	var buf bytes.Buffer
	if err := ExportBinary(r, &buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewDatabase()
	got, err := ImportBinary(d2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "people" || !got.Schema().Equal(r.Schema()) {
		t.Fatalf("restored %s %s, want people %s", got.Name(), got.Schema(), r.Schema())
	}
	wantAll, gotAll := r.All(), got.All()
	if len(gotAll) != len(wantAll) {
		t.Fatalf("restored %d tuples, want %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if !gotAll[i].Equal(wantAll[i]) {
			t.Fatalf("tuple %d: got %v want %v", i, gotAll[i], wantAll[i])
		}
	}
}

func TestRelationBinaryDeterministic(t *testing.T) {
	// Equal contents inserted in different orders must export byte-identically
	// (the WAL diffs snapshot bytes in tests and dedupes on content).
	build := func(order []int) *Relation {
		r := NewRelation("t", MustSchema("a:int", "b:string"))
		for _, i := range order {
			r.MustInsert(i, "v")
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := ExportBinary(build([]int{1, 2, 3, 4}), &b1); err != nil {
		t.Fatal(err)
	}
	if err := ExportBinary(build([]int{4, 3, 2, 1}), &b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("exports of equal contents differ")
	}
}

func TestRelationBinarySupportRoundTrip(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("facts", MustSchema("x:int"))
	r.MustInsert(1) // base only
	if _, err := r.InsertDerived(NewTuple(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InsertDerived(NewTuple(2)); err != nil {
		t.Fatal(err)
	}
	r.MustInsert(3) // base + derived
	if _, err := r.InsertDerived(NewTuple(3)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ExportBinary(r, &buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewDatabase()
	got, err := ImportBinary(d2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x       int
		base    bool
		derived int
	}{{1, true, 0}, {2, false, 2}, {3, true, 1}} {
		base, derived, ok := got.Support(NewTuple(tc.x))
		if !ok || base != tc.base || derived != tc.derived {
			t.Fatalf("Support(%d) = (%v,%d,%v), want (%v,%d,true)", tc.x, base, derived, ok, tc.base, tc.derived)
		}
	}
	// ClearDerived must behave exactly like on the original: only the
	// derived-only tuple leaves.
	if removed := got.ClearDerived(); removed != 1 {
		t.Fatalf("ClearDerived removed %d, want 1", removed)
	}
	if got.Len() != 2 {
		t.Fatalf("after ClearDerived len = %d, want 2", got.Len())
	}
}

func TestDatabaseBinaryRoundTrip(t *testing.T) {
	d := NewDatabase()
	a := d.MustCreate("alpha", MustSchema("x:int"))
	b := d.MustCreate("beta", MustSchema("s:string", "f:float"))
	a.MustInsert(1)
	a.MustInsert(2)
	b.MustInsert("one", 1.0)

	var buf bytes.Buffer
	if err := ExportDatabaseBinary(d, nil, &buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewDatabase()
	names, err := ImportDatabaseBinary(d2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("imported %v, want [alpha beta]", names)
	}
	if d2.Relation("alpha").Len() != 2 || d2.Relation("beta").Len() != 1 {
		t.Fatalf("restored sizes %d/%d, want 2/1", d2.Relation("alpha").Len(), d2.Relation("beta").Len())
	}
}

func TestDatabaseBinarySubsetAndMissing(t *testing.T) {
	d := NewDatabase()
	d.MustCreate("keep", MustSchema("x:int")).MustInsert(1)
	d.MustCreate("skip", MustSchema("x:int")).MustInsert(2)

	var buf bytes.Buffer
	if err := ExportDatabaseBinary(d, []string{"keep"}, &buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewDatabase()
	names, err := ImportDatabaseBinary(d2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "keep" || d2.Has("skip") {
		t.Fatalf("imported %v (skip present: %v), want only keep", names, d2.Has("skip"))
	}
	if err := ExportDatabaseBinary(d, []string{"absent"}, &bytes.Buffer{}); err == nil {
		t.Fatal("exporting a missing relation: want error")
	}
}

func TestDatabaseBinaryImportErrors(t *testing.T) {
	d := NewDatabase()
	d.MustCreate("r", MustSchema("x:int")).MustInsert(1)
	var buf bytes.Buffer
	if err := ExportDatabaseBinary(d, nil, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte("XXXX"), full[4:]...)
		if _, err := ImportDatabaseBinary(NewDatabase(), bytes.NewReader(data)); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{3, 5, len(full) - 1} {
			if _, err := ImportDatabaseBinary(NewDatabase(), bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("truncation at %d: want error", cut)
			}
		}
	})
	t.Run("schema conflict", func(t *testing.T) {
		d2 := NewDatabase()
		d2.MustCreate("r", MustSchema("x:string"))
		if _, err := ImportDatabaseBinary(d2, bytes.NewReader(full)); err == nil {
			t.Fatal("want schema-conflict error")
		}
	})
	t.Run("unknown column type", func(t *testing.T) {
		// Single-relation payload with a corrupt column type byte.
		var rbuf bytes.Buffer
		if err := ExportBinary(d.Relation("r"), &rbuf); err != nil {
			t.Fatal(err)
		}
		data := rbuf.Bytes()
		// Layout: len("r")=1, 'r', arity=1, len("x")=1, 'x', typeByte.
		data[5] = 99
		if _, err := ImportBinary(NewDatabase(), bytes.NewReader(data)); err == nil {
			t.Fatal("want unknown-type error")
		}
	})
}
