package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestRelationReadOnlyViewGuarantee exercises the documented read-only view
// contract under the race detector: while no mutating method runs, many
// goroutines scan, probe and auto-create indexes concurrently, and every
// reader observes the same stable contents. This is the contract the CyLog
// engine's parallel evaluation phase depends on.
func TestRelationReadOnlyViewGuarantee(t *testing.T) {
	r := NewRelation("edge", MustSchema("a:int", "b:int"))
	const rows = 2000
	for i := 0; i < rows; i++ {
		r.MustInsert(i%50, i)
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				// Index auto-creation races with probes and scans by design.
				if err := r.EnsureIndexAt([]int{0}); err != nil {
					errs <- err
					return
				}
				n := 0
				if _, err := r.ScanEqAt([]int{0}, []Value{Int(int64(g % 50))}, func(Tuple) bool {
					n++
					return true
				}); err != nil {
					errs <- err
					return
				}
				if n != rows/50 {
					errs <- fmt.Errorf("reader %d round %d: %d matches, want %d", g, round, n, rows/50)
					return
				}
				if got := r.Len(); got != rows {
					errs <- fmt.Errorf("reader %d: Len = %d, want %d", g, got, rows)
					return
				}
				count := 0
				r.Scan(func(Tuple) bool { count++; return true })
				if count != rows {
					errs <- fmt.Errorf("reader %d: scanned %d tuples, want %d", g, count, rows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTupleHashAtMatchesHashValues pins the compatibility contract between
// tuple-side and value-side hashing that external hash tables rely on.
func TestTupleHashAtMatchesHashValues(t *testing.T) {
	tup := NewTuple(7, "x", 3.5, true)
	cases := [][]int{{0}, {1}, {0, 2}, {1, 3}, {0, 1, 2, 3}}
	for _, cols := range cases {
		vals := make([]Value, len(cols))
		for i, c := range cols {
			vals[i] = tup[c]
		}
		if tup.HashAt(cols...) != HashValues(vals...) {
			t.Errorf("HashAt(%v) != HashValues of the same values", cols)
		}
	}
	// Single-column hashing must match the value's own hash (the historic
	// per-column index layout).
	if tup.HashAt(0) != tup[0].Hash() {
		t.Error("single-position HashAt should equal Value.Hash")
	}
}
