package relstore

// Per-column statistics
//
// Every relation maintains, alongside its tuple buckets, one refcount map per
// column keyed by value hash: the map's size is the relation's distinct-count
// estimate for that column (exact up to value-hash collisions, which only
// ever undercount). Together with the row count these are the selectivity
// inputs of the CyLog cost-aware planner: the expected matches of an equality
// probe on a column set is |R| / Π distinct(col).
//
// Estimates change on every insert and delete, but plans should not: the
// planner caches compiled plans and only replans when the statistics have
// drifted enough to plausibly change join order. That staleness contract is
// the stats epoch — a monotonic counter advanced when the row count or any
// column's distinct estimate moves past the drift threshold relative to the
// values captured at the previous advance (the markers). Readers poll the
// epoch lock-free; equal epochs guarantee the stats a cached plan was built
// from are within the drift bound of the current ones.
//
// Maintenance is O(arity) map operations per physical tuple add/remove,
// unconditional: statistics are storage-level truth, and the planner toggle
// (cylog.SetCostPlanning) decides only whether anyone consumes them.

// statsDriftSlack is the additive slack of the drift rule: small relations
// may drift by up to ~slack/2 rows without bumping, so the epoch is quiet
// while a relation trickles from empty to a handful of tuples.
const statsDriftSlack = 16

// statsDrifted reports whether cur has moved far enough from the marker value
// captured at the last epoch bump: the drift must exceed half the marker plus
// half the slack (roughly a 50% relative change). Growth from a marker of 0
// first bumps at 9; from 100 at 159 (or 41 shrinking) — logarithmically many
// bumps over any growth, so steady-state incremental rounds that add a few
// tuples to large relations leave the epoch (and cached plans) alone.
func statsDrifted(mark, cur int) bool {
	d := cur - mark
	if d < 0 {
		d = -d
	}
	return 2*d > mark+statsDriftSlack
}

// initStatsLocked allocates the per-column refcount maps and markers.
func (r *Relation) initStatsLocked() {
	arity := r.schema.Arity()
	r.colCounts = make([]map[uint64]int32, arity)
	for i := range r.colCounts {
		r.colCounts[i] = make(map[uint64]int32)
	}
	r.markDistinct = make([]int, arity)
}

// statsInsertLocked records one physically added tuple. Caller holds the
// write lock and must call it only when the tuple entered the store (support
// bumps on existing tuples leave the statistics untouched).
func (r *Relation) statsInsertLocked(t Tuple) {
	for i := range t {
		r.colCounts[i][t[i].Hash()]++
	}
	r.statsMaybeBumpLocked()
}

// statsRemoveLocked records one physically removed tuple.
func (r *Relation) statsRemoveLocked(t Tuple) {
	for i := range t {
		h := t[i].Hash()
		if c := r.colCounts[i][h]; c <= 1 {
			delete(r.colCounts[i], h)
		} else {
			r.colCounts[i][h] = c - 1
		}
	}
	r.statsMaybeBumpLocked()
}

// statsRebuildLocked recomputes the refcount maps from the stored tuples —
// the bulk path of ClearDerived, which swaps the buckets wholesale.
func (r *Relation) statsRebuildLocked() {
	for i := range r.colCounts {
		r.colCounts[i] = make(map[uint64]int32)
	}
	r.forEachLocked(func(t Tuple) bool {
		for i := range t {
			r.colCounts[i][t[i].Hash()]++
		}
		return true
	})
	r.statsMaybeBumpLocked()
}

// statsMaybeBumpLocked advances the epoch when the row count or any column's
// distinct estimate has drifted past the threshold since the last bump,
// capturing the current values as the new markers.
func (r *Relation) statsMaybeBumpLocked() {
	drifted := statsDrifted(r.markRows, r.count)
	if !drifted {
		for i, m := range r.colCounts {
			if statsDrifted(r.markDistinct[i], len(m)) {
				drifted = true
				break
			}
		}
	}
	if !drifted {
		return
	}
	r.markRows = r.count
	for i, m := range r.colCounts {
		r.markDistinct[i] = len(m)
	}
	r.statsEpoch.Add(1)
}

// StatsEpoch returns the relation's statistics epoch: a monotonic counter
// advanced whenever the row count or a column's distinct-count estimate
// drifts past the threshold (see statsDrifted). Plan caches key on it — an
// unchanged epoch means the statistics a plan was built from are still
// within the drift bound. The read is lock-free, so evaluation-side planners
// may poll it from any goroutine.
func (r *Relation) StatsEpoch() uint64 {
	return r.statsEpoch.Load()
}

// ColumnDistinct returns the estimated number of distinct values stored in
// the column at the given position (0 for out-of-range positions). The
// estimate counts distinct value hashes, so collisions undercount slightly —
// acceptable for selectivity estimation, which only needs the right order of
// magnitude.
func (r *Relation) ColumnDistinct(col int) int {
	r.page()
	r.mu.RLock()
	defer r.mu.RUnlock()
	if col < 0 || col >= len(r.colCounts) {
		return 0
	}
	return len(r.colCounts[col])
}

// statsMarkers returns the epoch and the marker values it was last advanced
// at, for the binary codec: exports carry them so a restored relation resumes
// drift tracking exactly where the exported one stood.
func (r *Relation) statsMarkers() (epoch uint64, rows int, distinct []int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.statsEpoch.Load(), r.markRows, append([]int(nil), r.markDistinct...)
}

// restoreStatsMarkers reinstates exported drift markers after an import. The
// epoch never moves backwards: inserting the imported tuples may already have
// advanced it past the exported value, in which case it advances once more
// instead — cached plans keyed on any earlier epoch stay invalidated.
func (r *Relation) restoreStatsMarkers(epoch uint64, rows int, distinct []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.markRows = rows
	for i := range r.markDistinct {
		if i < len(distinct) {
			r.markDistinct[i] = distinct[i]
		}
	}
	if cur := r.statsEpoch.Load(); epoch <= cur {
		epoch = cur + 1
	}
	r.statsEpoch.Store(epoch)
}
