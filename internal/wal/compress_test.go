package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Compression tests: log-record flate compression is a writer-side option —
// frames are self-tagged (recBatchFlate), so any reader replays any mix of
// compressed and plain records, and the record CRC still covers the stored
// (compressed) bytes.

func TestCompressRecordRoundTrip(t *testing.T) {
	raw := append([]byte{recBatch}, bytes.Repeat([]byte("abcabcabc"), 200)...)
	fr, ok := compressRecord(raw)
	if !ok {
		t.Fatal("highly repetitive payload did not compress")
	}
	if fr[0] != recBatchFlate {
		t.Fatalf("frame tag = %#x, want recBatchFlate", fr[0])
	}
	if len(fr) >= len(raw) {
		t.Fatalf("compressed frame is %d bytes, raw %d", len(fr), len(raw))
	}
	got, err := inflateRecord(fr[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("inflate(compress(raw)) != raw")
	}
}

func TestCompressRecordSkipsIncompressible(t *testing.T) {
	// A short payload gains nothing from deflate framing; compressRecord
	// must refuse rather than grow the record.
	if fr, ok := compressRecord([]byte{recBatch, 1, 2, 3}); ok {
		t.Fatalf("incompressible payload compressed to %d bytes", len(fr))
	}
}

func TestInflateRecordErrors(t *testing.T) {
	good, ok := compressRecord(append([]byte{recBatch}, bytes.Repeat([]byte("xyz"), 300)...))
	if !ok {
		t.Fatal("setup: payload did not compress")
	}
	cases := map[string][]byte{
		"empty":             {},
		"bad varint":        bytes.Repeat([]byte{0x80}, 11),
		"oversized rawLen":  binary.AppendUvarint(nil, maxRecordSize+1),
		"garbage deflate":   append(binary.AppendUvarint(nil, 100), 0xDE, 0xAD, 0xBE, 0xEF),
		"truncated deflate": good[1 : len(good)-5],
	}
	for name, data := range cases {
		if _, err := inflateRecord(data); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	// Length-mismatch: a frame declaring fewer bytes than the stream holds.
	short := binary.AppendUvarint(nil, 3)
	short = append(short, good[len(binary.AppendUvarint(nil, uint64(901)))+1:]...)
	if _, err := inflateRecord(short); err == nil {
		t.Error("declared-length mismatch: want error, got none")
	}
}

func TestCompressedAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff, CompressMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 12, 2)
	st := l.Stats()
	if st.CompressedAppends == 0 {
		t.Fatalf("stats = %+v; no record compressed with CompressMin=1", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery uses default options — the reader needs no compression
	// setting, the frame tag is in the record itself.
	rec, rstats := recoverFresh(t, dir)
	if rstats.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rstats)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestCompressMinThresholdRespected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff, CompressMin: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ingestChain(t, l, 8, 2)
	if st := l.Stats(); st.CompressedAppends != 0 {
		t.Fatalf("stats = %+v; records below the threshold must stay plain", st)
	}
	l.Close()
}

func TestPlainLogReplaysUnderCompressingReader(t *testing.T) {
	// Old logs written before the compression option replay unchanged when
	// the process is later configured with CompressMin.
	dir, _, liveFP := buildLogDir(t)
	l, err := Open(dir, Options{Policy: SyncOff, CompressMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := newTestEngine(t)
	if _, err := l.Recover(e); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, e); got != liveFP {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, liveFP)
	}
}

// buildCompressedLogDir is buildLogDir with compression on; it also verifies
// the log actually holds compressed frames so the corruption cases below
// damage what they claim to.
func buildCompressedLogDir(t *testing.T) (dir, logPath string, liveFP string) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff, CompressMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 12, 2)
	if l.Stats().CompressedAppends == 0 {
		t.Fatal("setup: no compressed appends")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, logName), fingerprint(t, live)
}

// TestCompressedCorruption extends the corruption table to compressed frames:
// damage inside the deflate bytes is caught by the record CRC; a CRC-valid
// frame holding garbage deflate (or an absurd declared length) is rejected by
// the parse layer — either way recovery keeps the longest valid prefix and
// never errors out or resurrects damaged data.
func TestCompressedCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, d []byte) []byte
	}{
		{"flipped byte inside compressed payload", func(t *testing.T, d []byte) []byte {
			offs := recordOffsets(t, d)
			last := offs[len(offs)-1]
			d[last+8+5] ^= 0xFF
			return d
		}},
		{"CRC-valid garbage deflate", func(t *testing.T, d []byte) []byte {
			// A well-formed header whose payload is a recBatchFlate tag,
			// a plausible length, and bytes that are not a deflate stream.
			payload := append(binary.AppendUvarint([]byte{recBatchFlate}, 500), 0xDE, 0xAD, 0xBE, 0xEF)
			h := make([]byte, 8)
			binary.LittleEndian.PutUint32(h[:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, crcTable))
			return append(append(d, h...), payload...)
		}},
		{"CRC-valid frame with oversized declared length", func(t *testing.T, d []byte) []byte {
			payload := binary.AppendUvarint([]byte{recBatchFlate}, maxRecordSize+1)
			h := make([]byte, 8)
			binary.LittleEndian.PutUint32(h[:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, crcTable))
			return append(append(d, h...), payload...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, logPath, liveFP := buildCompressedLogDir(t)
			data, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			nrecs := len(recordOffsets(t, data))
			data = tc.mutate(t, append([]byte(nil), data...))
			if err := os.WriteFile(logPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			rec, rstats := recoverFresh(t, dir)
			if strings.HasPrefix(tc.name, "flipped") {
				// The final record was damaged: a strict prefix replays.
				if rstats.RecordsReplayed >= nrecs {
					t.Fatalf("replayed %d records from a log whose record %d was damaged", rstats.RecordsReplayed, nrecs)
				}
			} else {
				// The appended garbage frame is dropped; the intact log
				// replays fully and byte-identically.
				if rstats.RecordsReplayed != nrecs {
					t.Fatalf("replayed %d records, want %d", rstats.RecordsReplayed, nrecs)
				}
				if got := fingerprint(t, rec); got != liveFP {
					t.Fatalf("recovered state differs:\n got %s\nwant %s", got, liveFP)
				}
			}
		})
	}
}
