// Package wal provides a durable answer log for the CyLog engine: an
// append-only, checksummed, length-prefixed write-ahead log whose unit of
// durability is the committed ingestion operation (request answers, whole-fact
// answers, AddFact seeds — the engine's FactOp journal), plus periodic binary
// relation snapshots. Recovery loads the newest valid snapshot and replays the
// log suffix through the engine's incremental fixpoint machinery; the engine's
// differential guarantees (replay equals from-scratch) make the recovered
// state byte-identical to an uninterrupted run.
//
// The log tolerates torn tails: a partially written or corrupted final record
// is detected by its CRC32 (or truncated framing) and dropped at Open, and
// every record before it recovers. Snapshots are written to a temporary file
// and renamed into place, so a crash mid-snapshot never damages the previous
// one.
package wal

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — maximum durability, one disk
	// flush per crowd round.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on the first append after Options.Interval has
	// elapsed since the previous sync (piggybacked on appends; no timer
	// goroutine). A crash loses at most the last interval's answers — which
	// recovery re-asks, so nothing is silently wrong, only re-done.
	SyncInterval
	// SyncOff never fsyncs. The OS page cache still survives kill -9 (only a
	// kernel crash or power loss loses it); this is the benchmark baseline
	// and the right setting for simulations.
	SyncOff
)

// String names the policy for logs and stats.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the minimum time between fsyncs under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// WriteObserver, when set, is called immediately before every physical
	// file write with a label and the byte count about to be written. The
	// crash-replay harness uses it to kill the process between the length
	// header and the payload of a record — the exact window that produces a
	// torn tail under kill -9.
	WriteObserver func(kind string, bytes int)
	// CompressMin, when positive, flate-compresses record payloads of at
	// least this many bytes. Compressed records carry their own frame type
	// byte, so a log freely mixes compressed and raw records and logs
	// written before compression existed replay unchanged. A compressed
	// frame that would not shrink the record is discarded and the raw
	// payload written instead.
	CompressMin int
}

const (
	logMagic      = "C4W1"
	snapMagic     = "C4S1"
	logName       = "wal.log"
	snapPrefix    = "snap-"
	snapSuffix    = ".bin"
	recBatch      = 0x01
	recBatchFlate = 0x02 // flate-compressed recBatch: [type][uvarint rawLen][deflate bytes]
	maxRecordSize = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stats describes a log's activity since Open.
type Stats struct {
	Dir               string
	Policy            SyncPolicy
	Appends           int    // records appended
	AppendedOps       int    // operations inside appended records
	AppendedBytes     int64  // bytes written to the log (headers + payloads)
	CompressedAppends int    // appended records written as flate frames
	Syncs             int    // fsyncs issued
	Snapshots         int    // snapshots written
	LastSeq           uint64 // sequence of the newest log record
	SnapshotSeq       uint64 // sequence covered by the newest on-disk snapshot
	TornBytesDropped  int64  // trailing bytes discarded at Open
}

// Log is an append-only write-ahead log plus its snapshot directory. Append,
// Snapshot, TruncateObsolete, Stats and Close are safe for concurrent use —
// the platform already serializes commits per project, but the log guards its
// own sequence counter and file offset so a racing caller corrupts nothing.
// Open and Recover are startup-only and must complete before any of the
// above run.
type Log struct {
	dir  string
	opts Options

	// mu guards the file handle, sequence counters and stats below: an
	// append is two physical writes (header, payload) that must not
	// interleave with another append or a truncation's handle swap.
	mu       sync.Mutex
	f        *os.File
	lastSeq  uint64
	snapSeq  uint64 // newest on-disk snapshot's sequence (0 = none)
	lastSync time.Time
	stats    Stats
}

// Open opens (creating if needed) the write-ahead log in dir. Existing log
// contents are scanned; a torn or corrupted tail — truncated framing or a CRC
// mismatch — is discarded along with everything after it, and the file is
// truncated to the last valid record. Leftover temporary snapshot files from
// an interrupted Snapshot are removed.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, f: f, lastSync: time.Now()}
	l.stats.Dir = dir
	l.stats.Policy = opts.Policy
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	if snaps, err := l.snapshotSeqs(); err == nil && len(snaps) > 0 {
		l.snapSeq = snaps[len(snaps)-1]
		l.stats.SnapshotSeq = l.snapSeq
		// A snapshot can outrun the log tail (records truncated as obsolete,
		// or a torn tail dropped). New appends must still sequence above the
		// snapshot, or recovery would consider them covered and skip them.
		if l.snapSeq > l.lastSeq {
			l.lastSeq = l.snapSeq
			l.stats.LastSeq = l.lastSeq
		}
	}
	// Sweep temp files from snapshots interrupted before their rename.
	if tmps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return l, nil
}

// scan validates the existing log contents, truncating at the first torn or
// corrupt record, and positions the write offset at the end.
func (l *Log) scan() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		if err := l.writeAll("log-magic", []byte(logMagic)); err != nil {
			return err
		}
		return l.f.Sync()
	}
	if len(data) < len(logMagic) {
		// A file torn inside the magic was never appended to: start over.
		l.stats.TornBytesDropped += int64(len(data))
		if err := l.f.Truncate(0); err != nil {
			return err
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if err := l.writeAll("log-magic", []byte(logMagic)); err != nil {
			return err
		}
		return l.f.Sync()
	}
	if string(data[:len(logMagic)]) != logMagic {
		return fmt.Errorf("wal: %s is not a wal log (bad magic)", filepath.Join(l.dir, logName))
	}
	off := len(logMagic)
	valid := off
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 8 {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxRecordSize || int(length) > len(rest)-8 {
			break // torn or insane payload
		}
		payload := rest[8 : 8+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt record: drop it and everything after
		}
		seq, _, err := parseRecord(payload)
		if err != nil {
			break
		}
		l.lastSeq = seq
		off += 8 + int(length)
		valid = off
	}
	if valid < len(data) {
		l.stats.TornBytesDropped += int64(len(data) - valid)
		if err := l.f.Truncate(int64(valid)); err != nil {
			return err
		}
	}
	_, err = l.f.Seek(int64(valid), io.SeekStart)
	l.stats.LastSeq = l.lastSeq
	return err
}

// Append serializes the operations as one record and writes it to the log,
// returning the record's sequence number. An empty batch writes nothing. The
// record is written as two physical writes — framing header, then payload —
// so a crash between them leaves exactly the torn tail Open tolerates. The
// fsync policy decides whether the record is flushed before returning.
func (l *Log) Append(ops []cylog.FactOp) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(ops) == 0 {
		return l.lastSeq, nil
	}
	seq := l.lastSeq + 1
	payload := []byte{recBatch}
	payload = binary.AppendUvarint(payload, seq)
	payload = binary.AppendUvarint(payload, uint64(len(ops)))
	for _, op := range ops {
		payload = appendOp(payload, op)
	}
	if len(payload) > maxRecordSize {
		return l.lastSeq, fmt.Errorf("wal: record of %d bytes exceeds maximum", len(payload))
	}
	compressed := false
	if l.opts.CompressMin > 0 && len(payload) >= l.opts.CompressMin {
		if fr, ok := compressRecord(payload); ok {
			payload = fr
			compressed = true
		}
	}
	header := make([]byte, 8)
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if err := l.writeAll("append-header", header); err != nil {
		return l.lastSeq, err
	}
	if err := l.writeAll("append-payload", payload); err != nil {
		return l.lastSeq, err
	}
	l.lastSeq = seq
	l.stats.Appends++
	if compressed {
		l.stats.CompressedAppends++
	}
	l.stats.AppendedOps += len(ops)
	l.stats.AppendedBytes += int64(len(header) + len(payload))
	l.stats.LastSeq = seq
	return seq, l.maybeSync()
}

func (l *Log) maybeSync() error {
	switch l.opts.Policy {
	case SyncAlways:
		l.stats.Syncs++
		return l.f.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			l.lastSync = time.Now()
			l.stats.Syncs++
			return l.f.Sync()
		}
	}
	return nil
}

func (l *Log) writeAll(kind string, b []byte) error {
	if l.opts.WriteObserver != nil {
		l.opts.WriteObserver(kind, len(b))
	}
	_, err := l.f.Write(b)
	return err
}

// snapshotWriter streams snapshot bytes to the temporary file while folding
// them into the running CRC and reporting each physical write to the
// observer. The trailer (the CRC itself) is written with trailing set, so it
// stays outside its own checksum.
type snapshotWriter struct {
	f        *os.File
	obs      func(kind string, bytes int)
	sum      uint32
	trailing bool
}

func (w *snapshotWriter) Write(p []byte) (int, error) {
	if w.obs != nil {
		w.obs("snapshot", len(p))
	}
	if !w.trailing {
		w.sum = crc32.Update(w.sum, crcTable, p)
	}
	return w.f.Write(p)
}

// Snapshot writes a binary snapshot of the engine's ingested state — every
// non-derived relation (EDB plus open relations); IDB relations are a pure
// function of those and re-derive on recovery — covering all log records up
// to the current sequence. The body streams through the database backend's
// export hook, so a disk-backed project snapshots without materializing its
// paged-out relations in memory (the backend copies their segment bytes
// straight into the stream). The snapshot is written to a temporary file and
// renamed into place, so an interrupted snapshot never replaces a valid one.
// It returns the sequence the snapshot covers.
func (l *Log) Snapshot(e *cylog.Engine) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0)
	for _, name := range e.Database().Names() {
		if !e.Analysis().IDB[name] {
			names = append(names, name)
		}
	}
	seq := l.lastSeq

	final := filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (uint64, error) {
		tf.Close()
		os.Remove(tmp)
		return 0, err
	}
	w := &snapshotWriter{f: tf, obs: l.opts.WriteObserver}
	var hdr []byte
	hdr = append(hdr, snapMagic...)
	hdr = binary.AppendUvarint(hdr, seq)
	if _, err := w.Write(hdr); err != nil {
		return fail(err)
	}
	if err := e.Database().ExportSnapshot(names, w); err != nil {
		return fail(err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], w.sum)
	w.trailing = true
	if _, err := w.Write(trailer[:]); err != nil {
		return fail(err)
	}
	if l.opts.Policy != SyncOff {
		if err := tf.Sync(); err != nil {
			tf.Close()
			os.Remove(tmp)
			return 0, err
		}
		l.stats.Syncs++
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if l.opts.WriteObserver != nil {
		l.opts.WriteObserver("snapshot-rename", 0)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	l.snapSeq = seq
	l.stats.Snapshots++
	l.stats.SnapshotSeq = seq
	return seq, nil
}

// TruncateObsolete drops state the newest snapshot makes redundant: snapshot
// files older than the newest, and log records whose sequence the snapshot
// covers. The log is rewritten through a temporary file and renamed into
// place. Sequence numbers keep increasing across truncations.
func (l *Log) TruncateObsolete() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	seqs, err := l.snapshotSeqs()
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return nil
	}
	newest := seqs[len(seqs)-1]
	for _, s := range seqs[:len(seqs)-1] {
		os.Remove(filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", snapPrefix, s, snapSuffix)))
	}
	// Keep only records the snapshot does not cover.
	records, err := l.readRecords()
	if err != nil {
		return err
	}
	var keep []record
	for _, r := range records {
		if r.seq > newest {
			keep = append(keep, r)
		}
	}
	if len(keep) == len(records) {
		return nil
	}
	tmpPath := filepath.Join(l.dir, logName+".tmp")
	tf, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	out := []byte(logMagic)
	for _, r := range keep {
		out = append(out, r.raw...)
	}
	if _, err := tf.Write(out); err != nil {
		tf.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	logPath := filepath.Join(l.dir, logName)
	if err := os.Rename(tmpPath, logPath); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Reopen the handle on the renamed file and seek to its end.
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(logPath, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	l.f = f
	return nil
}

// Stats returns a copy of the log's activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Policy != SyncOff {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

// record is one parsed log record plus its raw on-disk bytes (header
// included), so truncation can re-emit records without re-serializing.
type record struct {
	seq uint64
	ops []cylog.FactOp
	raw []byte
}

// readRecords parses every valid record currently in the log file, leaving
// the write offset at the end.
func (l *Log) readRecords() ([]record, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(l.f)
	if err != nil {
		return nil, err
	}
	var out []record
	off := len(logMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			break
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		if int(length) > len(data)-off-8 {
			break
		}
		payload := data[off+8 : off+8+int(length)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			break
		}
		seq, ops, err := parseRecord(payload)
		if err != nil {
			break
		}
		out = append(out, record{seq: seq, ops: ops, raw: data[off : off+8+int(length)]})
		off += 8 + int(length)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return out, nil
}

// snapshotSeqs lists the sequences of on-disk snapshot files, ascending.
func (l *Log) snapshotSeqs() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), "%d", &seq); err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// compressRecord wraps a raw record payload in a flate frame:
// [recBatchFlate][uvarint rawLen][deflate bytes]. It reports false when the
// frame would not be smaller than the raw payload, in which case the caller
// writes the raw record.
func compressRecord(raw []byte) ([]byte, bool) {
	out := []byte{recBatchFlate}
	out = binary.AppendUvarint(out, uint64(len(raw)))
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, false
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, false
	}
	if err := zw.Close(); err != nil {
		return nil, false
	}
	out = append(out, buf.Bytes()...)
	if len(out) >= len(raw) {
		return nil, false
	}
	return out, true
}

// inflateRecord decodes a flate frame back to the raw record payload. The
// declared length bounds the decompression (a corrupt or adversarial frame
// cannot balloon past maxRecordSize) and must match exactly.
func inflateRecord(data []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(data)
	if n <= 0 || rawLen > maxRecordSize {
		return nil, fmt.Errorf("wal: bad compressed record length")
	}
	zr := flate.NewReader(bytes.NewReader(data[n:]))
	defer zr.Close()
	raw, err := io.ReadAll(io.LimitReader(zr, int64(rawLen)+1))
	if err != nil {
		return nil, fmt.Errorf("wal: inflating record: %w", err)
	}
	if uint64(len(raw)) != rawLen {
		return nil, fmt.Errorf("wal: compressed record decodes to %d bytes, frame declares %d", len(raw), rawLen)
	}
	return raw, nil
}

// parseRecord decodes a record payload into its sequence and operations,
// transparently inflating compressed frames.
func parseRecord(payload []byte) (uint64, []cylog.FactOp, error) {
	if len(payload) > 0 && payload[0] == recBatchFlate {
		raw, err := inflateRecord(payload[1:])
		if err != nil {
			return 0, nil, err
		}
		payload = raw
	}
	if len(payload) == 0 || payload[0] != recBatch {
		return 0, nil, fmt.Errorf("wal: unknown record type")
	}
	rest := payload[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: bad record sequence")
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("wal: bad record op count")
	}
	rest = rest[n:]
	ops := make([]cylog.FactOp, 0, count)
	for i := uint64(0); i < count; i++ {
		op, m, err := decodeOp(rest)
		if err != nil {
			return 0, nil, fmt.Errorf("wal: record op %d: %w", i, err)
		}
		ops = append(ops, op)
		rest = rest[m:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("wal: %d trailing bytes in record", len(rest))
	}
	return seq, ops, nil
}

// appendOp serializes one FactOp: kind byte, request id, relation name, then
// the self-describing tuple encoding shared with the snapshot codec.
func appendOp(buf []byte, op cylog.FactOp) []byte {
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(op.RequestID)))
	buf = append(buf, op.RequestID...)
	buf = binary.AppendUvarint(buf, uint64(len(op.Relation)))
	buf = append(buf, op.Relation...)
	return relstore.AppendTupleBinary(buf, op.Tuple)
}

func decodeOp(data []byte) (cylog.FactOp, int, error) {
	var op cylog.FactOp
	if len(data) == 0 {
		return op, 0, fmt.Errorf("truncated op")
	}
	op.Kind = cylog.OpKind(data[0])
	off := 1
	s, n, err := decodeString(data[off:])
	if err != nil {
		return op, 0, fmt.Errorf("request id: %w", err)
	}
	op.RequestID = s
	off += n
	s, n, err = decodeString(data[off:])
	if err != nil {
		return op, 0, fmt.Errorf("relation: %w", err)
	}
	op.Relation = s
	off += n
	t, n, err := relstore.DecodeTupleBinary(data[off:])
	if err != nil {
		return op, 0, err
	}
	op.Tuple = t
	off += n
	return op, off, nil
}

func decodeString(data []byte) (string, int, error) {
	length, n := binary.Uvarint(data)
	if n <= 0 || length > uint64(len(data)-n) {
		return "", 0, fmt.Errorf("truncated string")
	}
	return string(data[n : n+int(length)]), n + int(length), nil
}
