package wal

import (
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
)

// BenchmarkOracleLoopDurable measures what durability costs on the crowd
// loop: the same 10k-scale transitive-closure workload as the cylog package's
// BenchmarkOracleLoop/incremental-10k (1000 endpoints approved 100 per
// round), but with every round's answer batch journaled and appended to a
// write-ahead log before the next round starts — the platform's commit path.
// fsync=off is the pure serialization + page-cache-write overhead (the
// acceptance ceiling: ≤15% over the non-durable loop); fsync=interval adds
// the flush cadence a real deployment would run.

const crowdTCProgram = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this endpoint".
rel approved(n: int).
rel rejected(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
approved(N) :- endpoint(N), approve(N, true).
rejected(N) :- endpoint(N), !approved(N).
`

func loadCrowdTC(b *testing.B, e *cylog.Engine, edges int) {
	b.Helper()
	const chain = 10
	for i := 0; i < edges; i++ {
		base := (i / chain) * (chain + 1)
		if err := e.AddFact("edge", base+i%chain, base+i%chain+1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOracleLoopDurable drives the round-based crowd loop by hand — run,
// answer a wave of requests into a batch, commit through RunIncremental,
// append the drained journal to the WAL — mirroring the cylog benchmark's
// engine configuration (retraction off, sequential, incremental answering)
// so the delta against its incremental-10k baseline isolates WAL cost.
func benchOracleLoopDurable(b *testing.B, edges, wave int, policy SyncPolicy) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := cylog.NewEngine(cylog.MustParse(crowdTCProgram))
		if err != nil {
			b.Fatal(err)
		}
		e.SetRetraction(false)
		e.SetParallelism(1)
		e.SetIncrementalAnswering(true)
		l, err := Open(b.TempDir(), Options{Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		e.SetJournaling(true)
		loadCrowdTC(b, e, edges)
		b.StartTimer()

		reqs, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Append(e.DrainJournal()); err != nil {
			b.Fatal(err)
		}
		for round := 0; len(reqs) > 0 && round < 1000; round++ {
			batch := e.NewAnswerBatch()
			for j, r := range reqs {
				if j >= wave {
					break
				}
				if err := batch.Answer(r.ID, map[string]any{"ok": true}); err != nil {
					b.Fatal(err)
				}
			}
			if batch.Len() == 0 {
				break
			}
			if reqs, err = e.RunIncremental(batch); err != nil {
				b.Fatal(err)
			}
			if _, err := l.Append(e.DrainJournal()); err != nil {
				b.Fatal(err)
			}
		}

		b.StopTimer()
		if got := len(e.Facts("approved")); got != edges/10 {
			b.Fatalf("approved = %d facts, want %d", got, edges/10)
		}
		st := l.Stats()
		if st.AppendedOps != edges+edges/10 {
			b.Fatalf("journaled %d ops, want %d edges + %d answers", st.AppendedOps, edges, edges/10)
		}
		if policy == SyncOff && st.Syncs != 0 {
			b.Fatalf("fsync=off issued %d syncs", st.Syncs)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkOracleLoopDurable(b *testing.B) {
	b.Run("fsync-off-10k", func(b *testing.B) { benchOracleLoopDurable(b, 10000, 100, SyncOff) })
	b.Run("fsync-interval-10k", func(b *testing.B) { benchOracleLoopDurable(b, 10000, 100, SyncInterval) })
}
