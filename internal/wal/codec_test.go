package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// White-box tests for the record and op wire codec plus the maintenance
// paths (scan repair, truncation rewrite, snapshot validation) that the
// end-to-end crash tests only graze.

func sampleOp() cylog.FactOp {
	return cylog.FactOp{Kind: cylog.OpAnswer, RequestID: "approve#n=3",
		Relation: "approve", Tuple: relstore.Tuple{relstore.Int(3), relstore.Bool(true)}}
}

func TestParseRecordErrors(t *testing.T) {
	op := sampleOp()
	valid := []byte{recBatch}
	valid = binary.AppendUvarint(valid, 7)
	valid = binary.AppendUvarint(valid, 1)
	valid = appendOp(valid, op)

	if seq, ops, err := parseRecord(valid); err != nil || seq != 7 || len(ops) != 1 {
		t.Fatalf("valid record: seq=%d ops=%d err=%v", seq, len(ops), err)
	}

	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"empty", nil, "unknown record type"},
		{"unknown-type", []byte{0xEE, 0x01}, "unknown record type"},
		{"missing-seq", []byte{recBatch}, "bad record sequence"},
		{"missing-count", []byte{recBatch, 0x07}, "bad record op count"},
		{"torn-count-varint", []byte{recBatch, 0x07, 0xFF}, "bad record op count"},
		{"count-exceeds-data", []byte{recBatch, 0x07, 0x05}, "bad record op count"},
		{"torn-op", []byte{recBatch, 0x07, 0x01, byte(cylog.OpAddFact)}, "record op 0"},
		{"trailing-bytes", append(append([]byte{}, valid...), 0x00), "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := parseRecord(tc.payload)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestDecodeOpErrors(t *testing.T) {
	op := sampleOp()
	enc := appendOp(nil, op)
	got, n, err := decodeOp(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decodeOp round trip: n=%d err=%v", n, err)
	}
	if got.Kind != op.Kind || got.RequestID != op.RequestID || got.Relation != op.Relation {
		t.Fatalf("decodeOp = %+v, want %+v", got, op)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated op"},
		{"missing-request-id", []byte{byte(cylog.OpAnswer)}, "request id"},
		{"missing-relation", []byte{byte(cylog.OpAnswer), 0x00}, "relation"},
		{"missing-tuple", []byte{byte(cylog.OpAnswer), 0x00, 0x00}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := decodeOp(tc.data); err == nil ||
				!strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestDecodeStringErrors(t *testing.T) {
	if s, n, err := decodeString([]byte{0x02, 'h', 'i', 'x'}); err != nil || s != "hi" || n != 3 {
		t.Fatalf("decodeString = %q/%d/%v", s, n, err)
	}
	for name, data := range map[string][]byte{
		"empty":           nil,
		"torn-varint":     {0xFF},
		"length-past-end": {0x05, 'h', 'i'},
		"length-only":     {0x01},
	} {
		if _, _, err := decodeString(data); err == nil {
			t.Errorf("%s: decodeString accepted %v", name, data)
		}
	}
}

// A file torn inside the magic was never appended to: Open starts it over
// instead of rejecting the directory.
func TestScanRepairsFileTornInsideMagic(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, logName)
	if err := os.WriteFile(logPath, []byte(logMagic[:2]), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().TornBytesDropped; got != 2 {
		t.Fatalf("TornBytesDropped = %d, want 2", got)
	}
	if _, err := l.Append([]cylog.FactOp{{Kind: cylog.OpAddFact, Relation: "edge",
		Tuple: relstore.Tuple{relstore.Int(1), relstore.Int(2)}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.readRecords()
	if err != nil || len(recs) != 1 || recs[0].seq != 1 {
		t.Fatalf("after repair: records=%v err=%v", recs, err)
	}
}

// readRecords stops at garbage a concurrent writer (or test) slipped past
// scan: a torn header, and a record whose CRC holds but whose payload does
// not parse.
func TestReadRecordsStopsAtGarbage(t *testing.T) {
	appendRaw := func(t *testing.T, path string, b []byte) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("torn-header", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append([]cylog.FactOp{sampleOp()}); err != nil {
			t.Fatal(err)
		}
		appendRaw(t, filepath.Join(dir, logName), []byte{0xAB, 0xCD, 0xEF})
		recs, err := l.readRecords()
		if err != nil || len(recs) != 1 {
			t.Fatalf("records = %d, err = %v, want 1 valid record", len(recs), err)
		}
	})
	t.Run("valid-crc-bad-payload", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append([]cylog.FactOp{sampleOp()}); err != nil {
			t.Fatal(err)
		}
		payload := []byte{0xEE} // checksums fine, parses as nothing
		frame := make([]byte, 8, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		appendRaw(t, filepath.Join(dir, logName), append(frame, payload...))
		recs, err := l.readRecords()
		if err != nil || len(recs) != 1 {
			t.Fatalf("records = %d, err = %v, want 1 valid record", len(recs), err)
		}
	})
}

func TestTruncateObsoleteWithoutSnapshotsIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]cylog.FactOp{sampleOp()}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateObsolete(); err != nil {
		t.Fatal(err)
	}
	if recs, err := l.readRecords(); err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, err = %v, want untouched log", len(recs), err)
	}
}

// Truncating with records past the snapshot rewrites the log to exactly that
// suffix, and the rewritten log keeps accepting appends.
func TestTruncateObsoleteKeepsUncoveredSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := newTestEngine(t)
	e.SetJournaling(true)
	if err := e.AddFact("edge", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(e.DrainJournal()); err != nil { // record 1
		t.Fatal(err)
	}
	if _, err := l.Snapshot(e); err != nil { // covers seq 1
		t.Fatal(err)
	}
	if err := e.AddFact("edge", 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(e.DrainJournal()); err != nil { // record 2, uncovered
		t.Fatal(err)
	}
	if err := l.TruncateObsolete(); err != nil {
		t.Fatal(err)
	}
	recs, err := l.readRecords()
	if err != nil || len(recs) != 1 || recs[0].seq != 2 {
		t.Fatalf("after truncate: records=%+v err=%v, want only seq 2", recs, err)
	}
	if err := e.AddFact("edge", 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(e.DrainJournal()); err != nil { // record 3, post-truncate
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, stats := recoverFresh(t, dir)
	if stats.SnapshotSeq != 1 || stats.RecordsReplayed != 2 {
		t.Fatalf("recovery = %+v, want snapshot 1 + 2 replayed records", stats)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, e); got != want {
		t.Fatalf("recovered engine differs:\n got %s\nwant %s", got, want)
	}
}

func TestSnapshotSyncOffSkipsSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := newTestEngine(t)
	if err := e.AddFact("edge", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 0 || st.Snapshots != 1 {
		t.Fatalf("stats = %+v, want one unsynced snapshot", st)
	}
}

// Every way a snapshot file can lie — torn short, magic clobbered (with the
// checksum recomputed so only the magic check can catch it), a stored
// sequence that disagrees with the filename, an unparseable sequence — is
// rejected, and recovery falls back to replaying the full log.
func TestLoadSnapshotRejectsMalformedFiles(t *testing.T) {
	build := func(t *testing.T) (string, string, string) {
		t.Helper()
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		e := ingestChain(t, l, 4, 2)
		if _, err := l.Snapshot(e); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		snaps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
		if err != nil || len(snaps) != 1 {
			t.Fatalf("snapshots = %v, err = %v", snaps, err)
		}
		return dir, snaps[0], fingerprint(t, e)
	}
	reseal := func(t *testing.T, body []byte) []byte {
		t.Helper()
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(body, crcTable))
		return append(body, trailer[:]...)
	}
	corruptions := map[string]func(t *testing.T, path string){
		"torn-short": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(snapMagic[:3]), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bad-magic-valid-crc": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			body := append([]byte{}, data[:len(data)-4]...)
			body[0] ^= 0xFF
			if err := os.WriteFile(path, reseal(t, body), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bad-seq-varint": func(t *testing.T, path string) {
			body := append([]byte(snapMagic), 0xFF) // torn uvarint
			if err := os.WriteFile(path, reseal(t, body), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"seq-mismatch": func(t *testing.T, path string) {
			// The valid seq-2 snapshot renamed to claim seq 9: the checksum
			// holds, only the stored-sequence check can reject it.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			lied := filepath.Join(filepath.Dir(path), snapPrefix+"0000000000000009"+snapSuffix)
			if err := os.WriteFile(lied, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir, snapPath, liveFP := build(t)
			corrupt(t, snapPath)
			rec, stats := recoverFresh(t, dir)
			if stats.CorruptSnapshots != 1 || stats.SnapshotSeq != 0 {
				t.Fatalf("stats = %+v, want the snapshot rejected", stats)
			}
			if stats.RecordsReplayed != 2 {
				t.Fatalf("replayed %d records, want the full log", stats.RecordsReplayed)
			}
			if got := fingerprint(t, rec); got != liveFP {
				t.Fatalf("recovered engine differs:\n got %s\nwant %s", got, liveFP)
			}
		})
	}
}

// Files that merely look snapshot-ish (unparseable sequence in the name) are
// ignored rather than treated as recovery candidates.
func TestSnapshotSeqsSkipsForeignNames(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := os.WriteFile(filepath.Join(dir, snapPrefix+"garbage"+snapSuffix), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	seqs, err := l.snapshotSeqs()
	if err != nil || len(seqs) != 0 {
		t.Fatalf("seqs = %v, err = %v, want none", seqs, err)
	}
}

func TestCloseAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err == nil {
		t.Fatal("second Close should fail on the closed handle")
	}
}

// Recovery surfaces replay failures instead of silently skipping records: a
// log written against one program cannot replay into an engine whose program
// never declared those relations.
func TestRecoverErrors(t *testing.T) {
	t.Run("foreign-program", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		ingestChain(t, l, 4, 2)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		e, err := cylog.NewEngine(cylog.MustParse(`rel other(x: int).`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l2.Recover(e); err == nil ||
			!strings.Contains(err.Error(), "replaying record") {
			t.Fatalf("err = %v, want a replay failure", err)
		}
	})
	t.Run("directory-removed", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Recover(newTestEngine(t)); err == nil {
			t.Fatal("recover should fail once the directory is gone")
		}
	})
}

// Snapshot I/O failures abort cleanly: a blocked temp path fails the write,
// a blocked final path fails the rename (and removes the temp file).
func TestSnapshotIOFailures(t *testing.T) {
	snapName := snapPrefix + "0000000000000000" + snapSuffix
	t.Run("tmp-path-blocked", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := os.Mkdir(filepath.Join(dir, snapName+".tmp"), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Snapshot(newTestEngine(t)); err == nil {
			t.Fatal("snapshot should fail when its temp path is unwritable")
		}
	})
	t.Run("rename-blocked", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := os.Mkdir(filepath.Join(dir, snapName), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Snapshot(newTestEngine(t)); err == nil {
			t.Fatal("snapshot should fail when the final path is unrenamable")
		}
		if _, err := os.Stat(filepath.Join(dir, snapName+".tmp")); !os.IsNotExist(err) {
			t.Fatalf("failed snapshot left its temp file behind (err=%v)", err)
		}
	})
}

func TestTruncateObsoleteTmpBlocked(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]cylog.FactOp{sampleOp()}); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(e); err != nil { // covers record 1, forcing a rewrite
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, logName+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateObsolete(); err == nil {
		t.Fatal("truncate should fail when the rewrite path is unwritable")
	}
}

// A length header promising more bytes than the file holds stops the read at
// the last whole record.
func TestReadRecordsStopsAtOversizedLength(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]cylog.FactOp{sampleOp()}); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 8)
	binary.LittleEndian.PutUint32(frame[:4], 1<<20) // promises a megabyte
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := l.readRecords()
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, err = %v, want 1 valid record", len(recs), err)
	}
}

// An over-large batch is rejected before anything reaches the file.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := cylog.FactOp{Kind: cylog.OpAddFact, Relation: "edge",
		Tuple: relstore.Tuple{relstore.String(strings.Repeat("x", maxRecordSize))}}
	if _, err := l.Append([]cylog.FactOp{huge}); err == nil {
		t.Fatal("append should reject a record beyond maxRecordSize")
	}
	if recs, err := l.readRecords(); err != nil || len(recs) != 0 {
		t.Fatalf("records = %d, err = %v, want empty log", len(recs), err)
	}
}
