package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
)

// Shared harness: a small crowd program (transitive closure + an open
// approval relation), an engine factory, and a state fingerprint covering
// every relation's tuples plus the sorted pending request ids — the exact
// observables the crash-replay differential compares.

const testProgram = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this node".
rel approved(n: int).
rel rejected(n: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
approved(N) :- reach(_, N), approve(N, true).
rejected(N) :- reach(_, N), !approved(N).
`

func newTestEngine(t testing.TB) *cylog.Engine {
	t.Helper()
	e, err := cylog.NewEngine(cylog.MustParse(testProgram))
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(1)
	return e
}

func fingerprint(t testing.TB, e *cylog.Engine) string {
	t.Helper()
	var b strings.Builder
	for _, name := range e.Database().Names() {
		fmt.Fprintf(&b, "%s:", name)
		for _, tup := range e.Facts(name) {
			fmt.Fprintf(&b, "%v;", tup)
		}
		b.WriteString("\n")
	}
	ids := make([]string, 0)
	for _, r := range e.PendingRequests() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "pending:%v\n", ids)
	return b.String()
}

// ingestChain drives the engine through a journaled crowd session — a chain
// of edges, a run, and answers for a subset of the approval requests —
// appending each drained journal slice as one WAL record. It returns the
// engine at its final fixpoint.
func ingestChain(t testing.TB, l *Log, nodes int, answerEvery int) *cylog.Engine {
	t.Helper()
	e := newTestEngine(t)
	e.SetJournaling(true)
	for i := 1; i < nodes; i++ {
		if err := e.AddFact("edge", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(e.DrainJournal()); err != nil {
		t.Fatal(err)
	}
	b := e.NewAnswerBatch()
	for i, r := range reqs {
		if i%answerEvery != 0 {
			continue
		}
		n, _ := r.Key()["n"].AsInt()
		if err := b.Answer(r.ID, map[string]any{"ok": n%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunIncremental(b); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(e.DrainJournal()); err != nil {
		t.Fatal(err)
	}
	return e
}

func recoverFresh(t testing.TB, dir string) (*cylog.Engine, RecoveryStats) {
	t.Helper()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := newTestEngine(t)
	stats, err := l.Recover(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, stats
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 8, 2)
	st := l.Stats()
	if st.Appends != 2 || st.AppendedOps == 0 || st.LastSeq != 2 || st.Syncs < 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, rstats := recoverFresh(t, dir)
	if rstats.SnapshotSeq != 0 || rstats.RecordsReplayed != 2 || rstats.OpsReplayed != st.AppendedOps {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	if rstats.OpsApplied != rstats.OpsReplayed {
		t.Fatalf("fresh recovery applied %d of %d ops", rstats.OpsApplied, rstats.OpsReplayed)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	if rstats.PendingRequests != len(rec.PendingRequests()) {
		t.Fatalf("stats report %d pending, engine has %d", rstats.PendingRequests, len(rec.PendingRequests()))
	}
}

func TestSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 8, 2)
	if _, err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	// More answers after the snapshot — the log suffix recovery must replay.
	b := live.NewAnswerBatch()
	for _, r := range live.PendingRequests() {
		n, _ := r.Key()["n"].AsInt()
		if err := b.Answer(r.ID, map[string]any{"ok": n%3 == 0}); err != nil {
			t.Fatal(err)
		}
		break // answer just one
	}
	if _, err := live.RunIncremental(b); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(live.DrainJournal()); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Snapshots != 1 || st.SnapshotSeq != 2 || st.LastSeq != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, rstats := recoverFresh(t, dir)
	if rstats.SnapshotSeq != 2 || rstats.RecordsReplayed != 1 {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	if rstats.SnapshotRelations == 0 {
		t.Fatal("snapshot restored no relations")
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestTruncateObsolete(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 6, 2)
	if _, err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateObsolete(); err != nil {
		t.Fatal(err)
	}
	// Only the newest snapshot file survives, and the log holds no records
	// the snapshot already covers.
	snaps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %v, want 1", snaps)
	}
	recs, err := l.readRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("log still holds %d covered records", len(recs))
	}
	// Sequences keep increasing after truncation.
	if err := live.AddFact("edge", 100, 101); err != nil {
		t.Fatal(err)
	}
	if _, err := live.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(live.DrainJournal())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-truncate seq = %d, want 3", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, rstats := recoverFresh(t, dir)
	if rstats.SnapshotSeq != 2 || rstats.RecordsReplayed != 1 {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestAppendEmptyWritesNothing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.Append(nil)
	if err != nil || seq != 0 {
		t.Fatalf("Append(nil) = (%d, %v), want (0, nil)", seq, err)
	}
	if st := l.Stats(); st.Appends != 0 || st.AppendedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSyncPolicies(t *testing.T) {
	op := func(e *cylog.Engine) []cylog.FactOp {
		e.SetJournaling(true)
		if err := e.AddFact("edge", 1, 2); err != nil {
			t.Fatal(err)
		}
		return e.DrainJournal()
	}
	t.Run("off", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(op(newTestEngine(t))); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 0 {
			t.Fatalf("SyncOff issued %d syncs", st.Syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Policy: SyncInterval, Interval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(op(newTestEngine(t))); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 0 {
			t.Fatalf("interval elapsed prematurely: %d syncs", st.Syncs)
		}
		l.lastSync = time.Now().Add(-2 * time.Hour)
		e := newTestEngine(t)
		e.SetJournaling(true)
		if err := e.AddFact("edge", 2, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(e.DrainJournal()); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 1 {
			t.Fatalf("elapsed interval did not sync: %d syncs", st.Syncs)
		}
	})
	t.Run("always", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Policy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(op(newTestEngine(t))); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 1 {
			t.Fatalf("SyncAlways issued %d syncs, want 1", st.Syncs)
		}
	})
	for p, want := range map[SyncPolicy]string{SyncAlways: "always", SyncInterval: "interval", SyncOff: "off", SyncPolicy(9): "policy(9)"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestWriteObserverSeesRecordWrites(t *testing.T) {
	var kinds []string
	l, err := Open(t.TempDir(), Options{Policy: SyncOff, WriteObserver: func(kind string, n int) {
		kinds = append(kinds, kind)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	live := ingestChain(t, l, 4, 2)
	if _, err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"log-magic", "append-header", "append-payload", "snapshot", "snapshot-rename"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("observer never saw %q: %v", want, kinds)
		}
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	rec, rstats := recoverFresh(t, filepath.Join(t.TempDir(), "fresh"))
	if rstats.SnapshotSeq != 0 || rstats.RecordsReplayed != 0 || rstats.TornBytesDropped != 0 {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	// An empty directory recovers to the program's own fixpoint.
	want := newTestEngine(t)
	if _, err := want.Run(); err != nil {
		t.Fatal(err)
	}
	if got, w := fingerprint(t, rec), fingerprint(t, want); got != w {
		t.Fatalf("empty recovery differs:\n got %s\nwant %s", got, w)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("want bad-magic error")
	}
}
