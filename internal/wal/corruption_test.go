package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// Corruption table-tests: every way a crash or disk fault can damage the log
// — torn header, torn payload, a bit flip mid-record, duplicated records,
// snapshots outrunning the log tail, corrupt snapshots — must either recover
// the longest valid prefix or fall back to older state, never error out or
// resurrect damaged data.

// buildLogDir ingests a 6-node chain (two records) and closes the log,
// returning the directory, the log file path, and the live engine's
// fingerprint for comparison.
func buildLogDir(t *testing.T) (dir, logPath string, liveFP string) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 6, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, logName), fingerprint(t, live)
}

// prefixFingerprint recovers a fresh engine from only the first record
// (edges, no answers) — the state a one-record prefix must reproduce.
func prefixFingerprint(t *testing.T) string {
	t.Helper()
	e := newTestEngine(t)
	for i := 1; i < 6; i++ {
		if err := e.AddFact("edge", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, e)
}

// recordOffsets parses the raw log file into per-record offsets.
func recordOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := len(logMagic)
	for off+8 <= len(data) {
		offs = append(offs, off)
		length := binary.LittleEndian.Uint32(data[off : off+4])
		off += 8 + int(length)
	}
	if off != len(data) {
		t.Fatalf("log does not parse cleanly: offset %d of %d", off, len(data))
	}
	return offs
}

func TestCorruptionTornAndFlipped(t *testing.T) {
	cases := []struct {
		name string
		// mutate damages the raw log bytes.
		mutate func(t *testing.T, data []byte) []byte
		// wantFP selects the expected recovered fingerprint: "full" (both
		// records survive), "prefix" (only record 1), "empty" (none).
		wantFP string
	}{
		{"torn header", func(t *testing.T, d []byte) []byte { return append(d, 0x33, 0x44, 0x55) }, "full"},
		{"torn payload", func(t *testing.T, d []byte) []byte {
			// A full header promising 100 bytes, followed by only 5.
			h := make([]byte, 8)
			binary.LittleEndian.PutUint32(h[:4], 100)
			return append(append(d, h...), 1, 2, 3, 4, 5)
		}, "full"},
		{"flipped byte in final record", func(t *testing.T, d []byte) []byte {
			offs := recordOffsets(t, d)
			d[offs[1]+8+3] ^= 0xFF
			return d
		}, "prefix"},
		{"flipped byte in first record drops the rest", func(t *testing.T, d []byte) []byte {
			offs := recordOffsets(t, d)
			d[offs[0]+8+3] ^= 0xFF
			return d
		}, "empty"},
		{"flipped length header", func(t *testing.T, d []byte) []byte {
			offs := recordOffsets(t, d)
			binary.LittleEndian.PutUint32(d[offs[1]:offs[1]+4], 0xFFFFFFF0)
			return d
		}, "prefix"},
		{"duplicated final record", func(t *testing.T, d []byte) []byte {
			offs := recordOffsets(t, d)
			dup := append([]byte(nil), d[offs[1]:]...)
			return append(d, dup...)
		}, "full"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, logPath, liveFP := buildLogDir(t)
			data, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			orig := len(data)
			data = tc.mutate(t, append([]byte(nil), data...))
			if err := os.WriteFile(logPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			rec, rstats := recoverFresh(t, dir)
			var want string
			switch tc.wantFP {
			case "full":
				want = liveFP
			case "prefix":
				want = prefixFingerprint(t)
			case "empty":
				e := newTestEngine(t)
				if _, err := e.Run(); err != nil {
					t.Fatal(err)
				}
				want = fingerprint(t, e)
			}
			if got := fingerprint(t, rec); got != want {
				t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
			}
			if len(data) != orig && tc.wantFP != "full" && rstats.TornBytesDropped == 0 {
				t.Fatalf("damage went unreported: %+v", rstats)
			}
			// Reopening after recovery must be clean: the torn tail was
			// physically truncated, so a second Open drops nothing.
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if st := l2.Stats(); st.TornBytesDropped != 0 {
				t.Fatalf("second open still drops %d bytes", st.TornBytesDropped)
			}
			l2.Close()
		})
	}
}

func TestDuplicateRecordReplayIsIdempotent(t *testing.T) {
	dir, logPath, liveFP := buildLogDir(t)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	// Duplicate the answers record (record 2) twice more.
	dup := append([]byte(nil), data[offs[1]:]...)
	data = append(append(data, dup...), dup...)
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, rstats := recoverFresh(t, dir)
	if rstats.RecordsReplayed != 4 {
		t.Fatalf("replayed %d records, want 4", rstats.RecordsReplayed)
	}
	if rstats.OpsApplied >= rstats.OpsReplayed {
		t.Fatalf("duplicate ops should apply nothing: %+v", rstats)
	}
	if got := fingerprint(t, rec); got != liveFP {
		t.Fatalf("duplicated replay diverged:\n got %s\nwant %s", got, liveFP)
	}
}

func TestSnapshotNewerThanLogTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 6, 2)
	if _, err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the whole log tail: only the magic remains, so the snapshot (seq
	// 2) is now newer than every log record.
	if err := os.Truncate(filepath.Join(dir, logName), int64(len(logMagic))); err != nil {
		t.Fatal(err)
	}
	rec, rstats := recoverFresh(t, dir)
	if rstats.SnapshotSeq != 2 || rstats.RecordsReplayed != 0 {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("snapshot-only recovery differs:\n got %s\nwant %s", got, want)
	}

	// New appends must sequence above the snapshot, or the next recovery
	// would consider them covered and drop them.
	l2, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if st := l2.Stats(); st.LastSeq != 2 {
		t.Fatalf("reopened LastSeq = %d, want snapshot seq 2", st.LastSeq)
	}
	live.SetJournaling(true)
	if err := live.AddFact("edge", 50, 51); err != nil {
		t.Fatal(err)
	}
	if _, err := live.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append(live.DrainJournal())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("append after snapshot-covered log got seq %d, want 3", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, rstats2 := recoverFresh(t, dir)
	if rstats2.RecordsReplayed != 1 {
		t.Fatalf("post-snapshot append not replayed: %+v", rstats2)
	}
	if got, want := fingerprint(t, rec2), fingerprint(t, live); got != want {
		t.Fatalf("recovery after re-append differs:\n got %s\nwant %s", got, want)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := ingestChain(t, l, 6, 2)
	if _, err := l.Snapshot(live); err != nil { // snap-2
		t.Fatal(err)
	}
	live.SetJournaling(true)
	if err := live.AddFact("edge", 60, 61); err != nil {
		t.Fatal(err)
	}
	if _, err := live.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(live.DrainJournal()); err != nil { // record 3
		t.Fatal(err)
	}
	if _, err := l.Snapshot(live); err != nil { // snap-3
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the newest snapshot's body.
	newest := filepath.Join(dir, "snap-0000000000000003.bin")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, rstats := recoverFresh(t, dir)
	if rstats.CorruptSnapshots != 1 || rstats.SnapshotSeq != 2 {
		t.Fatalf("recovery stats = %+v", rstats)
	}
	if rstats.RecordsReplayed != 1 {
		t.Fatalf("fallback should replay record 3: %+v", rstats)
	}
	if got, want := fingerprint(t, rec), fingerprint(t, live); got != want {
		t.Fatalf("fallback recovery differs:\n got %s\nwant %s", got, want)
	}
}

func TestInterruptedSnapshotTmpIsSwept(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapPrefix+"0000000000000009"+snapSuffix+".tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp snapshot not swept: %v", err)
	}
	if st := l.Stats(); st.SnapshotSeq != 0 {
		t.Fatalf("tmp file counted as snapshot: %+v", st)
	}
}
