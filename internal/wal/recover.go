package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
)

// RecoveryStats describes the outcome of a Recover call.
type RecoveryStats struct {
	// SnapshotSeq is the sequence of the snapshot that was loaded (0 when
	// recovery started from an empty database).
	SnapshotSeq uint64
	// SnapshotRelations is how many relations the snapshot restored.
	SnapshotRelations int
	// CorruptSnapshots is how many newer snapshot files failed their
	// checksum and were skipped (recovery falls back to the next older one).
	CorruptSnapshots int
	// RecordsReplayed and OpsReplayed count the log suffix that was replayed
	// (records with sequence above the snapshot's); OpsApplied is how many of
	// those operations inserted a tuple the snapshot did not already hold.
	RecordsReplayed int
	OpsReplayed     int
	OpsApplied      int
	// TornBytesDropped mirrors the bytes Open discarded from the log tail.
	TornBytesDropped int64
	// PendingRequests is the size of the engine's pending set after the
	// recovery fixpoint — the questions still owed to the crowd.
	PendingRequests int
}

// Recover rebuilds engine state from the log directory: the newest valid
// snapshot (corrupt ones are skipped, falling back to older snapshots, then
// to nothing) is imported into the engine's database, a full run brings it to
// a fixpoint, and every log record with a sequence above the snapshot's is
// replayed through the incremental machinery — exactly the live commit path,
// so the recovered fixpoint, pending requests, and request ids are
// byte-identical to a run that never crashed.
//
// The engine must be freshly constructed (program loaded, no ingestion yet)
// and must not have journaling enabled until Recover returns; replay is never
// journaled, so enabling journaling afterwards starts the next durable epoch
// cleanly.
func (l *Log) Recover(e *cylog.Engine) (RecoveryStats, error) {
	stats := RecoveryStats{TornBytesDropped: l.stats.TornBytesDropped}
	seqs, err := l.snapshotSeqs()
	if err != nil {
		return stats, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		names, err := l.loadSnapshot(seqs[i], e)
		if err != nil {
			stats.CorruptSnapshots++
			continue
		}
		stats.SnapshotSeq = seqs[i]
		stats.SnapshotRelations = len(names)
		break
	}
	if _, err := e.Run(); err != nil {
		return stats, fmt.Errorf("wal: recovery fixpoint: %w", err)
	}
	records, err := l.readRecords()
	if err != nil {
		return stats, err
	}
	for _, r := range records {
		if r.seq <= stats.SnapshotSeq {
			continue
		}
		applied, err := e.ReplayOps(r.ops)
		if err != nil {
			return stats, fmt.Errorf("wal: replaying record %d: %w", r.seq, err)
		}
		stats.RecordsReplayed++
		stats.OpsReplayed += len(r.ops)
		stats.OpsApplied += applied
		if _, err := e.RunIncremental(nil); err != nil {
			return stats, fmt.Errorf("wal: fixpoint after record %d: %w", r.seq, err)
		}
	}
	stats.PendingRequests = len(e.PendingRequests())
	return stats, nil
}

// loadSnapshot validates the snapshot file for seq and imports it into the
// engine's database. The trailing CRC32 covers the magic, sequence, and body,
// so any torn or bit-flipped snapshot is rejected as a unit.
func (l *Log) loadSnapshot(seq uint64, e *cylog.Engine) ([]string, error) {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("wal: snapshot %s truncated", path)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("wal: snapshot %s failed checksum", path)
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: snapshot %s has bad magic", path)
	}
	rest := body[len(snapMagic):]
	storedSeq, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wal: snapshot %s has bad sequence", path)
	}
	if storedSeq != seq {
		return nil, fmt.Errorf("wal: snapshot %s stores sequence %d", path, storedSeq)
	}
	// Import through the backend so a disk-backed database can spill
	// relations to segments as they arrive instead of holding the whole
	// snapshot resident.
	return e.Database().ImportSnapshot(bytes.NewReader(rest[n:]))
}
