// Package metrics provides the small statistics and table-rendering helpers
// the experiment harness uses to print paper-style result tables (see
// EXPERIMENTS.md).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P95    float64
}

// Summarize computes descriptive statistics. An empty sample returns a zero
// summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(xs)))
	s.P50 = Percentile(xs, 0.50)
	s.P95 = Percentile(xs, 0.95)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of the sample using
// nearest-rank interpolation. An empty sample returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is 0; used for speedups and quality ratios.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// DurationsToSeconds converts durations to float seconds for summarising.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Table is a simple experiment-result table rendered as aligned text or
// Markdown; every experiment in EXPERIMENTS.md prints one or more of these.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v, floats with 3 decimals
// and durations in a human-friendly unit.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = renderCell(c)
	}
	t.Rows = append(t.Rows, row)
	return t
}

// AddNote appends a footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

func renderCell(c any) string {
	switch v := c.(type) {
	case float64:
		return fmt.Sprintf("%.3f", v)
	case float32:
		return fmt.Sprintf("%.3f", v)
	case time.Duration:
		switch {
		case v >= time.Second:
			return fmt.Sprintf("%.2fs", v.Seconds())
		case v >= time.Millisecond:
			return fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000)
		default:
			return fmt.Sprintf("%dµs", v.Microseconds())
		}
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
