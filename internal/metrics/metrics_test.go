package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Errorf("p95 = %v", s.P95)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 40 {
		t.Error("extreme percentiles wrong")
	}
	if p := Percentile(xs, 0.5); p != 25 {
		t.Errorf("median = %v, want 25", p)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Percentile must not mutate the input.
	orig := []float64{3, 1, 2}
	Percentile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 {
		t.Error("input was sorted in place")
	}
}

func TestPercentilePropertyWithinBounds(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255
		v := Percentile(xs, p)
		s := Summarize(xs)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean wrong")
	}
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestDurationsToSeconds(t *testing.T) {
	out := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if len(out) != 2 || out[0] != 1 || out[1] != 0.5 {
		t.Errorf("out = %v", out)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("E3: assignment algorithms", "algorithm", "n", "affinity", "time")
	tbl.AddRow("greedy", 100, 0.81234, 15*time.Millisecond)
	tbl.AddRow("exact", 12, 0.95, 2*time.Second)
	tbl.AddRow("random", 100, 0.4, 150*time.Microsecond)
	tbl.AddNote("exact limited to %d candidates", 24)

	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "E3: assignment algorithms") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "0.812") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "15.00ms") || !strings.Contains(out, "2.00s") || !strings.Contains(out, "150µs") {
		t.Errorf("duration formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "note: exact limited to 24 candidates") {
		t.Error("note missing")
	}
	// Header separator row present and aligned.
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("too few lines:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Speedups", "mode", "speedup")
	tbl.AddRow("semi-naive", 2.5)
	tbl.AddNote("relative to naive")
	var buf bytes.Buffer
	tbl.Markdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "### Speedups") || !strings.Contains(out, "| mode | speedup |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "*relative to naive*") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}

func TestRenderCellKinds(t *testing.T) {
	if renderCell(float32(1.5)) != "1.500" {
		t.Error("float32 formatting")
	}
	if renderCell("x") != "x" || renderCell(7) != "7" {
		t.Error("default formatting")
	}
	if pad("ab", 4) != "ab  " || pad("abcd", 2) != "abcd" {
		t.Error("pad wrong")
	}
}
