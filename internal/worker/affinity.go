package worker

import (
	"math"
	"sort"
	"sync"
)

// AffinityMatrix stores pairwise worker-to-worker affinity values in [0,1].
// The matrix is symmetric and sparse: unset pairs fall back to a configurable
// default. The paper's assignment controller consumes this matrix to find
// teams (cliques) with high intra-affinity (§2.2).
type AffinityMatrix struct {
	mu      sync.RWMutex
	pairs   map[[2]ID]float64
	def     float64
	workers map[ID]bool
}

// NewAffinityMatrix creates an empty matrix with a default affinity of 0.
func NewAffinityMatrix() *AffinityMatrix {
	return &AffinityMatrix{pairs: make(map[[2]ID]float64), workers: make(map[ID]bool)}
}

// SetDefault changes the affinity assumed for pairs with no explicit entry.
func (a *AffinityMatrix) SetDefault(v float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.def = clamp01(v)
}

// Default returns the default affinity for unset pairs.
func (a *AffinityMatrix) Default() float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.def
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func pairKey(x, y ID) [2]ID {
	if x > y {
		x, y = y, x
	}
	return [2]ID{x, y}
}

// Set records the affinity between two workers (symmetric). Values are clamped
// to [0,1]. Setting a worker's affinity with itself is ignored.
func (a *AffinityMatrix) Set(x, y ID, v float64) {
	if x == y {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pairs[pairKey(x, y)] = clamp01(v)
	a.workers[x] = true
	a.workers[y] = true
}

// Get returns the affinity between two workers, falling back to the default
// for unset pairs. A worker's affinity with itself is 1.
func (a *AffinityMatrix) Get(x, y ID) float64 {
	if x == y {
		return 1
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if v, ok := a.pairs[pairKey(x, y)]; ok {
		return v
	}
	return a.def
}

// Has reports whether an explicit entry exists for the pair.
func (a *AffinityMatrix) Has(x, y ID) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.pairs[pairKey(x, y)]
	return ok
}

// RemoveWorker deletes every entry involving the worker.
func (a *AffinityMatrix) RemoveWorker(id ID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for k := range a.pairs {
		if k[0] == id || k[1] == id {
			delete(a.pairs, k)
		}
	}
	delete(a.workers, id)
}

// Pairs returns the number of explicit entries.
func (a *AffinityMatrix) Pairs() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.pairs)
}

// GroupAffinity returns the mean pairwise affinity inside the group, the
// measure maximised by the assignment algorithms. Groups of size 0 or 1 have
// affinity 0 (a singleton has no collaboration synergy).
func (a *AffinityMatrix) GroupAffinity(group []ID) float64 {
	if len(group) < 2 {
		return 0
	}
	sum := 0.0
	n := 0
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			sum += a.Get(group[i], group[j])
			n++
		}
	}
	return sum / float64(n)
}

// MinPairAffinity returns the smallest pairwise affinity in the group, used by
// quality floors ("every pair must get along at least this well"). Empty or
// singleton groups return 1.
func (a *AffinityMatrix) MinPairAffinity(group []ID) float64 {
	if len(group) < 2 {
		return 1
	}
	min := math.Inf(1)
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			if v := a.Get(group[i], group[j]); v < min {
				min = v
			}
		}
	}
	return min
}

// TotalAffinity returns the sum (rather than mean) of pairwise affinities,
// which is the objective used by [9]'s AffinityAware formulations.
func (a *AffinityMatrix) TotalAffinity(group []ID) float64 {
	if len(group) < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			sum += a.Get(group[i], group[j])
		}
	}
	return sum
}

// Neighbors returns the ids with an explicit affinity entry with id of at
// least threshold, sorted by descending affinity (ties by id).
func (a *AffinityMatrix) Neighbors(id ID, threshold float64) []ID {
	type nb struct {
		id ID
		v  float64
	}
	a.mu.RLock()
	var nbs []nb
	for k, v := range a.pairs {
		var other ID
		switch {
		case k[0] == id:
			other = k[1]
		case k[1] == id:
			other = k[0]
		default:
			continue
		}
		if v >= threshold {
			nbs = append(nbs, nb{other, v})
		}
	}
	a.mu.RUnlock()
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].v != nbs[j].v {
			return nbs[i].v > nbs[j].v
		}
		return nbs[i].id < nbs[j].id
	})
	out := make([]ID, len(nbs))
	for i, n := range nbs {
		out[i] = n.id
	}
	return out
}

// FillFromLocations derives affinities from worker locations: workers in the
// same region get regionAffinity; otherwise affinity decays exponentially with
// distance, halving every halfDistanceKm. This mirrors the paper's
// surveillance example where "if workers live in the same geographic area,
// their affinity value is larger".
func (a *AffinityMatrix) FillFromLocations(workers []*Worker, regionAffinity, halfDistanceKm float64) {
	if halfDistanceKm <= 0 {
		halfDistanceKm = 50
	}
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			wi, wj := workers[i], workers[j]
			var v float64
			if wi.Factors.Location.Region != "" && wi.Factors.Location.Region == wj.Factors.Location.Region {
				v = regionAffinity
			} else {
				d := wi.Factors.Location.DistanceKm(wj.Factors.Location)
				v = regionAffinity * math.Exp(-d/halfDistanceKm*math.Ln2)
			}
			a.Set(wi.ID, wj.ID, v)
		}
	}
}
