// Package worker implements the Crowd4U worker manager: rich worker entities
// with human factors (languages, location, skills and application-specific
// factors), the worker-to-worker affinity matrix, the explicit worker↔task
// relationships described in §2.2 of the paper (Eligible, InterestedIn,
// Undertakes), and online skill estimation from completed tasks (§2.4).
package worker

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// ID identifies a worker.
type ID string

// ErrUnknownWorker is returned when an operation references a worker id that
// has not been registered with the manager.
var ErrUnknownWorker = errors.New("worker: unknown worker")

// Location is a geographic position used for proximity-driven affinity
// (e.g. surveillance tasks prefer workers who live in the same area).
type Location struct {
	Lat float64
	Lon float64
	// Region is a coarse label ("tsukuba", "paris-5e", ...). Workers sharing a
	// region get an affinity boost even when coordinates are missing.
	Region string
}

// DistanceKm returns the great-circle distance between two locations using the
// haversine formula.
func (l Location) DistanceKm(o Location) float64 {
	const earthRadiusKm = 6371.0
	lat1, lon1 := l.Lat*math.Pi/180, l.Lon*math.Pi/180
	lat2, lon2 := o.Lat*math.Pi/180, o.Lon*math.Pi/180
	dLat, dLon := lat2-lat1, lon2-lon1
	a := math.Sin(dLat/2)*math.Sin(dLat/2) + math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// HumanFactors is the set of per-worker attributes that task assignment and
// eligibility rules consult (Figure 4 of the paper). Skills and Custom hold
// application-specific factors keyed by name, valued in [0,1] for skills.
type HumanFactors struct {
	NativeLanguages []string
	OtherLanguages  []string
	Location        Location
	// Skills maps a skill/domain name ("translation:en-ja", "journalism",
	// "surveillance") to a proficiency in [0,1]. Skills may be self-declared at
	// registration or estimated from completed tasks.
	Skills map[string]float64
	// Custom holds free-form application-specific human factors
	// ("camera:true", "student:false", ...).
	Custom map[string]string
	// WagePerTask is the (virtual) cost of involving this worker in one task.
	// Crowd4U is volunteer based, so this defaults to 1 — a unit of effort —
	// but the assignment cost constraint still applies.
	WagePerTask float64
}

// CloneHumanFactors returns a deep copy.
func (h HumanFactors) Clone() HumanFactors {
	c := h
	c.NativeLanguages = append([]string(nil), h.NativeLanguages...)
	c.OtherLanguages = append([]string(nil), h.OtherLanguages...)
	c.Skills = make(map[string]float64, len(h.Skills))
	for k, v := range h.Skills {
		c.Skills[k] = v
	}
	c.Custom = make(map[string]string, len(h.Custom))
	for k, v := range h.Custom {
		c.Custom[k] = v
	}
	return c
}

// Speaks reports whether the worker speaks the given language natively or
// otherwise. Language codes are matched case-insensitively.
func (h HumanFactors) Speaks(lang string) bool {
	return h.SpeaksNatively(lang) || containsFold(h.OtherLanguages, lang)
}

// SpeaksNatively reports whether lang is one of the worker's native languages.
func (h HumanFactors) SpeaksNatively(lang string) bool {
	return containsFold(h.NativeLanguages, lang)
}

func containsFold(xs []string, x string) bool {
	for _, s := range xs {
		if strings.EqualFold(s, x) {
			return true
		}
	}
	return false
}

// Skill returns the proficiency for the named skill, 0 when unknown.
func (h HumanFactors) Skill(name string) float64 {
	if h.Skills == nil {
		return 0
	}
	return h.Skills[name]
}

// Worker is a participant registered on the platform.
type Worker struct {
	ID      ID
	Name    string
	Factors HumanFactors
	// SNSID is the worker's contact/collaboration-tool identity (e.g. a Google
	// account), solicited at the start of a simultaneous collaboration (§2.3).
	SNSID string
	// LoggedIn reports whether the worker has an authenticated session; some
	// projects restrict eligibility to logged-in workers.
	LoggedIn bool
	// Registered is when the account was created.
	Registered time.Time
	// CompletedTasks counts tasks this worker has finished on the platform.
	CompletedTasks int
}

// Clone returns a deep copy of the worker.
func (w *Worker) Clone() *Worker {
	c := *w
	c.Factors = w.Factors.Clone()
	return &c
}

// String renders a short description.
func (w *Worker) String() string {
	return fmt.Sprintf("worker(%s %q langs=%v)", w.ID, w.Name, w.Factors.NativeLanguages)
}

// Relationship is one of the three explicit worker↔task relationship kinds
// managed by Crowd4U (§2.2).
type Relationship int

const (
	// Eligible means the worker may perform the task; computed by the CyLog
	// processor from the project description and the worker's human factors.
	Eligible Relationship = iota
	// InterestedIn means the worker declared interest after seeing the task in
	// the eligible-task list on their user page.
	InterestedIn
	// Undertakes means the worker confirmed they are performing the task. A
	// pair may enter this state only when the worker is Eligible.
	Undertakes
)

// String returns the paper's name for the relationship.
func (r Relationship) String() string {
	switch r {
	case Eligible:
		return "Eligible"
	case InterestedIn:
		return "InterestedIn"
	case Undertakes:
		return "Undertakes"
	default:
		return fmt.Sprintf("Relationship(%d)", int(r))
	}
}

// Manager is the worker manager component of Figure 2: it stores worker
// profiles and human factors, the affinity matrix, and the worker↔task
// relationship tables, and it answers eligibility and team-candidate queries
// from the task assignment controller. All methods are safe for concurrent
// use.
type Manager struct {
	mu        sync.RWMutex
	workers   map[ID]*Worker
	affinity  *AffinityMatrix
	relations map[Relationship]map[string]map[ID]time.Time // rel -> taskID -> worker -> when
	skills    *SkillEstimator
	nowFn     func() time.Time
}

// NewManager creates an empty worker manager.
func NewManager() *Manager {
	m := &Manager{
		workers:   make(map[ID]*Worker),
		affinity:  NewAffinityMatrix(),
		relations: make(map[Relationship]map[string]map[ID]time.Time),
		skills:    NewSkillEstimator(DefaultSkillPrior),
		nowFn:     time.Now,
	}
	for _, r := range []Relationship{Eligible, InterestedIn, Undertakes} {
		m.relations[r] = make(map[string]map[ID]time.Time)
	}
	return m
}

// SetClock overrides the time source; tests use it for determinism.
func (m *Manager) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nowFn = now
}

// Register adds a worker. Registering an existing id replaces the profile but
// keeps relationship state and affinity entries.
func (m *Manager) Register(w *Worker) error {
	if w == nil || w.ID == "" {
		return errors.New("worker: cannot register worker with empty id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := w.Clone()
	if cp.Registered.IsZero() {
		cp.Registered = m.nowFn()
	}
	if cp.Factors.WagePerTask == 0 {
		cp.Factors.WagePerTask = 1
	}
	m.workers[w.ID] = cp
	return nil
}

// Unregister removes a worker along with its relationships and affinities.
func (m *Manager) Unregister(id ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.workers[id]; !ok {
		return false
	}
	delete(m.workers, id)
	for _, byTask := range m.relations {
		for _, byWorker := range byTask {
			delete(byWorker, id)
		}
	}
	m.affinity.RemoveWorker(id)
	return true
}

// Get returns a copy of the worker profile.
func (m *Manager) Get(id ID) (*Worker, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	w, ok := m.workers[id]
	if !ok {
		return nil, false
	}
	return w.Clone(), true
}

// Count returns the number of registered workers.
func (m *Manager) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.workers)
}

// IDs returns all worker ids in sorted order.
func (m *Manager) IDs() []ID {
	m.mu.RLock()
	out := make([]ID, 0, len(m.workers))
	for id := range m.workers {
		out = append(out, id)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns copies of all workers in sorted id order.
func (m *Manager) All() []*Worker {
	ids := m.IDs()
	out := make([]*Worker, 0, len(ids))
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, id := range ids {
		out = append(out, m.workers[id].Clone())
	}
	return out
}

// UpdateFactors replaces a worker's human factors (the worker page of Fig. 4
// lets workers update them).
func (m *Manager) UpdateFactors(id ID, f HumanFactors) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	if f.WagePerTask == 0 {
		f.WagePerTask = w.Factors.WagePerTask
	}
	w.Factors = f.Clone()
	return nil
}

// SetSNSID records the contact id solicited during simultaneous collaboration.
func (m *Manager) SetSNSID(id ID, sns string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	w.SNSID = sns
	return nil
}

// SetLoggedIn marks the worker's session state.
func (m *Manager) SetLoggedIn(id ID, in bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	w.LoggedIn = in
	return nil
}

// Affinity returns the manager's affinity matrix; callers use it directly for
// reads and updates.
func (m *Manager) Affinity() *AffinityMatrix { return m.affinity }

// Skills returns the manager's skill estimator.
func (m *Manager) Skills() *SkillEstimator { return m.skills }

// SetRelationship records rel(worker, task). Undertakes requires that the
// worker is currently Eligible for the task, per the paper's invariant.
func (m *Manager) SetRelationship(rel Relationship, taskID string, id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.workers[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	if rel == Undertakes {
		if !m.hasRelationLocked(Eligible, taskID, id) {
			return fmt.Errorf("worker: %s cannot undertake task %s without being eligible", id, taskID)
		}
	}
	byTask := m.relations[rel]
	if byTask[taskID] == nil {
		byTask[taskID] = make(map[ID]time.Time)
	}
	byTask[taskID][id] = m.nowFn()
	return nil
}

// ClearRelationship removes rel(worker, task). Removing Eligible cascades to
// InterestedIn and Undertakes so the invariant is preserved.
func (m *Manager) ClearRelationship(rel Relationship, taskID string, id ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.relations[rel][taskID], id)
	if rel == Eligible {
		delete(m.relations[InterestedIn][taskID], id)
		delete(m.relations[Undertakes][taskID], id)
	}
}

// HasRelationship reports whether rel(worker, task) holds.
func (m *Manager) HasRelationship(rel Relationship, taskID string, id ID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hasRelationLocked(rel, taskID, id)
}

func (m *Manager) hasRelationLocked(rel Relationship, taskID string, id ID) bool {
	byWorker, ok := m.relations[rel][taskID]
	if !ok {
		return false
	}
	_, ok = byWorker[id]
	return ok
}

// WorkersWith returns the sorted ids of workers in rel with the task.
func (m *Manager) WorkersWith(rel Relationship, taskID string) []ID {
	m.mu.RLock()
	byWorker := m.relations[rel][taskID]
	out := make([]ID, 0, len(byWorker))
	for id := range byWorker {
		out = append(out, id)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TasksWith returns the sorted task ids for which the worker is in rel.
func (m *Manager) TasksWith(rel Relationship, id ID) []string {
	m.mu.RLock()
	var out []string
	for taskID, byWorker := range m.relations[rel] {
		if _, ok := byWorker[id]; ok {
			out = append(out, taskID)
		}
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ClearTask removes every relationship involving the task (used when a task
// completes or is withdrawn).
func (m *Manager) ClearTask(taskID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, byTask := range m.relations {
		delete(byTask, taskID)
	}
}

// EligibilityRule decides whether a worker may perform a task of a given
// project; the CyLog processor compiles project descriptions into such rules.
type EligibilityRule func(w *Worker) bool

// ComputeEligibility evaluates the rule over all workers, records the Eligible
// relationship for those that pass, clears it (cascading) for those that fail,
// and returns the sorted eligible ids.
func (m *Manager) ComputeEligibility(taskID string, rule EligibilityRule) []ID {
	ids := m.IDs()
	var eligible []ID
	for _, id := range ids {
		w, _ := m.Get(id)
		if rule == nil || rule(w) {
			if err := m.SetRelationship(Eligible, taskID, id); err == nil {
				eligible = append(eligible, id)
			}
		} else {
			m.ClearRelationship(Eligible, taskID, id)
		}
	}
	return eligible
}

// Candidates returns workers who are both Eligible for and InterestedIn the
// task — exactly the pool the assignment controller builds teams from (§2.2.1
// step 5).
func (m *Manager) Candidates(taskID string) []ID {
	eligible := m.WorkersWith(Eligible, taskID)
	var out []ID
	for _, id := range eligible {
		if m.HasRelationship(InterestedIn, taskID, id) {
			out = append(out, id)
		}
	}
	return out
}

// RecordCompletion increments the worker's completed-task counter and feeds
// the outcome into the skill estimator.
func (m *Manager) RecordCompletion(id ID, skill string, quality float64) error {
	m.mu.Lock()
	w, ok := m.workers[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	w.CompletedTasks++
	m.mu.Unlock()
	m.skills.Observe(id, skill, quality)
	// Reflect the new estimate into the worker's factors so that eligibility
	// rules and assignment immediately see learned skills (§2.4).
	est, n := m.skills.Estimate(id, skill)
	if n > 0 {
		m.mu.Lock()
		if w.Factors.Skills == nil {
			w.Factors.Skills = make(map[string]float64)
		}
		w.Factors.Skills[skill] = est
		m.mu.Unlock()
	}
	return nil
}
