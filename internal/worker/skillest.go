package worker

import (
	"sort"
	"sync"
)

// DefaultSkillPrior is the Beta-style prior used by the skill estimator:
// before any observation a worker's skill estimate is PriorMean, and the
// prior carries PriorWeight pseudo-observations so early results do not swing
// the estimate wildly.
var DefaultSkillPrior = SkillPrior{PriorMean: 0.5, PriorWeight: 2}

// SkillPrior configures the estimator's prior belief about worker skill.
type SkillPrior struct {
	PriorMean   float64
	PriorWeight float64
}

// SkillEstimator learns worker skills from the quality of completed tasks
// (§2.4: factors are "computed by the system based on previously performed
// tasks", in the spirit of Rahman et al. [10]). It keeps, per (worker, skill),
// the running sum of observed qualities and the observation count, and
// produces a smoothed posterior-mean estimate.
type SkillEstimator struct {
	mu    sync.RWMutex
	prior SkillPrior
	sum   map[ID]map[string]float64
	count map[ID]map[string]int
}

// NewSkillEstimator creates an estimator with the given prior.
func NewSkillEstimator(prior SkillPrior) *SkillEstimator {
	if prior.PriorWeight < 0 {
		prior.PriorWeight = 0
	}
	prior.PriorMean = clamp01(prior.PriorMean)
	return &SkillEstimator{
		prior: prior,
		sum:   make(map[ID]map[string]float64),
		count: make(map[ID]map[string]int),
	}
}

// Observe records one completed task for the worker with an observed outcome
// quality in [0,1] (e.g. the fraction of the worker's contribution accepted
// during a sequential check step, or a qualification-test score).
func (e *SkillEstimator) Observe(id ID, skill string, quality float64) {
	quality = clamp01(quality)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sum[id] == nil {
		e.sum[id] = make(map[string]float64)
		e.count[id] = make(map[string]int)
	}
	e.sum[id][skill] += quality
	e.count[id][skill]++
}

// Estimate returns the smoothed skill estimate and the number of observations
// behind it. With zero observations it returns the prior mean and 0.
func (e *SkillEstimator) Estimate(id ID, skill string) (float64, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.count[id][skill]
	s := e.sum[id][skill]
	est := (s + e.prior.PriorMean*e.prior.PriorWeight) / (float64(n) + e.prior.PriorWeight)
	if e.prior.PriorWeight == 0 && n == 0 {
		est = e.prior.PriorMean
	}
	return clamp01(est), n
}

// Observations returns the number of recorded observations for (worker, skill).
func (e *SkillEstimator) Observations(id ID, skill string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.count[id][skill]
}

// Skills returns the sorted list of skills observed for the worker.
func (e *SkillEstimator) Skills(id ID) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.count[id]))
	for s := range e.count[id] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Reset forgets everything recorded for the worker.
func (e *SkillEstimator) Reset(id ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.sum, id)
	delete(e.count, id)
}
