package worker

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestWorker(id, name string, langs []string, skills map[string]float64) *Worker {
	return &Worker{
		ID:   ID(id),
		Name: name,
		Factors: HumanFactors{
			NativeLanguages: langs,
			Skills:          skills,
			WagePerTask:     1,
		},
		LoggedIn: true,
	}
}

func newPopulatedManager(t *testing.T) *Manager {
	t.Helper()
	m := NewManager()
	m.SetClock(func() time.Time { return time.Date(2016, 9, 5, 0, 0, 0, 0, time.UTC) })
	workers := []*Worker{
		newTestWorker("w1", "alice", []string{"en"}, map[string]float64{"translation": 0.9}),
		newTestWorker("w2", "bob", []string{"en", "fr"}, map[string]float64{"translation": 0.6}),
		newTestWorker("w3", "carol", []string{"ja"}, map[string]float64{"translation": 0.8, "journalism": 0.7}),
		newTestWorker("w4", "dan", []string{"ja"}, map[string]float64{"surveillance": 0.5}),
	}
	for _, w := range workers {
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestHumanFactorsSpeaks(t *testing.T) {
	f := HumanFactors{NativeLanguages: []string{"en"}, OtherLanguages: []string{"Ja"}}
	if !f.SpeaksNatively("EN") {
		t.Error("case-insensitive native language match failed")
	}
	if f.SpeaksNatively("ja") {
		t.Error("ja is not native")
	}
	if !f.Speaks("ja") || !f.Speaks("en") {
		t.Error("Speaks should cover native and other languages")
	}
	if f.Speaks("fr") {
		t.Error("fr is not spoken")
	}
}

func TestHumanFactorsSkillAndClone(t *testing.T) {
	f := HumanFactors{Skills: map[string]float64{"x": 0.4}, Custom: map[string]string{"camera": "true"}}
	if f.Skill("x") != 0.4 || f.Skill("y") != 0 {
		t.Error("Skill lookup misbehaves")
	}
	var empty HumanFactors
	if empty.Skill("x") != 0 {
		t.Error("Skill on nil map should be 0")
	}
	c := f.Clone()
	c.Skills["x"] = 0.9
	c.Custom["camera"] = "false"
	if f.Skills["x"] != 0.4 || f.Custom["camera"] != "true" {
		t.Error("Clone should not share maps")
	}
}

func TestLocationDistance(t *testing.T) {
	tsukuba := Location{Lat: 36.08, Lon: 140.11}
	tokyo := Location{Lat: 35.68, Lon: 139.77}
	d := tsukuba.DistanceKm(tokyo)
	if d < 40 || d > 70 {
		t.Errorf("Tsukuba-Tokyo distance = %.1f km, want ~55", d)
	}
	if tsukuba.DistanceKm(tsukuba) != 0 {
		t.Error("distance to self should be 0")
	}
}

func TestManagerRegisterGetUnregister(t *testing.T) {
	m := newPopulatedManager(t)
	if m.Count() != 4 {
		t.Fatalf("Count = %d", m.Count())
	}
	w, ok := m.Get("w1")
	if !ok || w.Name != "alice" {
		t.Fatalf("Get(w1) = %v,%v", w, ok)
	}
	if w.Registered.IsZero() {
		t.Error("Registered should be set at registration")
	}
	// Returned worker is a copy.
	w.Name = "mallory"
	w2, _ := m.Get("w1")
	if w2.Name != "alice" {
		t.Error("Get should return a copy")
	}
	if err := m.Register(nil); err == nil {
		t.Error("Register(nil) should fail")
	}
	if err := m.Register(&Worker{}); err == nil {
		t.Error("Register with empty id should fail")
	}
	if !m.Unregister("w4") || m.Unregister("w4") {
		t.Error("Unregister misbehaves")
	}
	if m.Count() != 3 {
		t.Errorf("Count after unregister = %d", m.Count())
	}
	ids := m.IDs()
	if len(ids) != 3 || ids[0] != "w1" || ids[2] != "w3" {
		t.Errorf("IDs = %v", ids)
	}
	if len(m.All()) != 3 {
		t.Errorf("All = %d workers", len(m.All()))
	}
}

func TestManagerUpdateFactorsAndSNS(t *testing.T) {
	m := newPopulatedManager(t)
	err := m.UpdateFactors("w2", HumanFactors{NativeLanguages: []string{"fr"}, Skills: map[string]float64{"translation": 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.Get("w2")
	if !w.Factors.SpeaksNatively("fr") || w.Factors.Skill("translation") != 0.95 {
		t.Error("UpdateFactors did not apply")
	}
	if w.Factors.WagePerTask != 1 {
		t.Errorf("WagePerTask should be preserved, got %v", w.Factors.WagePerTask)
	}
	if err := m.UpdateFactors("zzz", HumanFactors{}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("expected ErrUnknownWorker, got %v", err)
	}
	if err := m.SetSNSID("w2", "bob@gmail.example"); err != nil {
		t.Fatal(err)
	}
	w, _ = m.Get("w2")
	if w.SNSID != "bob@gmail.example" {
		t.Error("SetSNSID did not apply")
	}
	if err := m.SetSNSID("zzz", "x"); err == nil {
		t.Error("SetSNSID unknown worker should fail")
	}
	if err := m.SetLoggedIn("w2", false); err != nil {
		t.Fatal(err)
	}
	w, _ = m.Get("w2")
	if w.LoggedIn {
		t.Error("SetLoggedIn(false) did not apply")
	}
	if err := m.SetLoggedIn("zzz", true); err == nil {
		t.Error("SetLoggedIn unknown worker should fail")
	}
}

func TestRelationshipLifecycle(t *testing.T) {
	m := newPopulatedManager(t)
	const task = "task-1"

	// Undertakes before Eligible must fail (paper invariant).
	if err := m.SetRelationship(Undertakes, task, "w1"); err == nil {
		t.Error("Undertakes without Eligible should fail")
	}
	if err := m.SetRelationship(Eligible, task, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRelationship(InterestedIn, task, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRelationship(Undertakes, task, "w1"); err != nil {
		t.Errorf("Undertakes after Eligible should succeed: %v", err)
	}
	if !m.HasRelationship(Undertakes, task, "w1") {
		t.Error("HasRelationship(Undertakes) = false")
	}
	if err := m.SetRelationship(Eligible, task, "zzz"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown worker: %v", err)
	}

	// Clearing Eligible cascades.
	m.ClearRelationship(Eligible, task, "w1")
	if m.HasRelationship(InterestedIn, task, "w1") || m.HasRelationship(Undertakes, task, "w1") {
		t.Error("clearing Eligible should cascade to InterestedIn and Undertakes")
	}
}

func TestRelationshipQueries(t *testing.T) {
	m := newPopulatedManager(t)
	for _, id := range []ID{"w1", "w2", "w3"} {
		m.SetRelationship(Eligible, "t1", id)
	}
	m.SetRelationship(Eligible, "t2", "w1")
	m.SetRelationship(InterestedIn, "t1", "w2")
	m.SetRelationship(InterestedIn, "t1", "w3")

	if got := m.WorkersWith(Eligible, "t1"); len(got) != 3 {
		t.Errorf("WorkersWith(Eligible,t1) = %v", got)
	}
	if got := m.TasksWith(Eligible, "w1"); len(got) != 2 || got[0] != "t1" {
		t.Errorf("TasksWith(Eligible,w1) = %v", got)
	}
	if got := m.Candidates("t1"); len(got) != 2 || got[0] != "w2" || got[1] != "w3" {
		t.Errorf("Candidates(t1) = %v", got)
	}
	m.ClearTask("t1")
	if len(m.WorkersWith(Eligible, "t1")) != 0 {
		t.Error("ClearTask should remove all relationships")
	}
	if len(m.TasksWith(Eligible, "w1")) != 1 {
		t.Error("ClearTask should not affect other tasks")
	}
}

func TestUnregisterClearsRelationships(t *testing.T) {
	m := newPopulatedManager(t)
	m.SetRelationship(Eligible, "t1", "w1")
	m.Affinity().Set("w1", "w2", 0.9)
	m.Unregister("w1")
	if m.HasRelationship(Eligible, "t1", "w1") {
		t.Error("relationships should be removed with the worker")
	}
	if m.Affinity().Has("w1", "w2") {
		t.Error("affinity entries should be removed with the worker")
	}
}

func TestComputeEligibility(t *testing.T) {
	m := newPopulatedManager(t)
	rule := func(w *Worker) bool { return w.LoggedIn && w.Factors.SpeaksNatively("en") }
	eligible := m.ComputeEligibility("t1", rule)
	if len(eligible) != 2 || eligible[0] != "w1" || eligible[1] != "w2" {
		t.Errorf("eligible = %v", eligible)
	}
	// Re-running with a changed profile revokes eligibility and cascades.
	m.SetRelationship(InterestedIn, "t1", "w2")
	m.SetLoggedIn("w2", false)
	eligible = m.ComputeEligibility("t1", rule)
	if len(eligible) != 1 || eligible[0] != "w1" {
		t.Errorf("eligible after logout = %v", eligible)
	}
	if m.HasRelationship(InterestedIn, "t1", "w2") {
		t.Error("interest should be revoked when eligibility is revoked")
	}
	// nil rule means everyone is eligible.
	if got := m.ComputeEligibility("t2", nil); len(got) != 4 {
		t.Errorf("nil rule eligible = %v", got)
	}
}

func TestRelationshipStringer(t *testing.T) {
	if Eligible.String() != "Eligible" || InterestedIn.String() != "InterestedIn" || Undertakes.String() != "Undertakes" {
		t.Error("Relationship.String misbehaves")
	}
	if Relationship(99).String() == "" {
		t.Error("unknown relationship should still render")
	}
}

func TestWorkerStringer(t *testing.T) {
	w := newTestWorker("w1", "alice", []string{"en"}, nil)
	if s := w.String(); s == "" || s == "worker()" {
		t.Errorf("String() = %q", s)
	}
}

func TestAffinityMatrixBasics(t *testing.T) {
	a := NewAffinityMatrix()
	if a.Get("x", "y") != 0 {
		t.Error("default affinity should be 0")
	}
	a.SetDefault(0.3)
	if a.Get("x", "y") != 0.3 || a.Default() != 0.3 {
		t.Error("SetDefault did not apply")
	}
	a.Set("x", "y", 0.8)
	if a.Get("x", "y") != 0.8 || a.Get("y", "x") != 0.8 {
		t.Error("affinity should be symmetric")
	}
	if !a.Has("y", "x") || a.Has("x", "z") {
		t.Error("Has misbehaves")
	}
	if a.Get("x", "x") != 1 {
		t.Error("self affinity should be 1")
	}
	a.Set("x", "x", 0.1)
	if a.Pairs() != 1 {
		t.Error("self pair should not be stored")
	}
	a.Set("x", "z", 1.7) // clamped
	if a.Get("x", "z") != 1 {
		t.Errorf("clamping failed: %v", a.Get("x", "z"))
	}
	a.Set("x", "w", -0.5)
	if a.Get("x", "w") != 0 {
		t.Errorf("clamping failed: %v", a.Get("x", "w"))
	}
	a.RemoveWorker("x")
	if a.Pairs() != 0 {
		t.Errorf("Pairs after RemoveWorker = %d", a.Pairs())
	}
}

func TestAffinityGroupMeasures(t *testing.T) {
	a := NewAffinityMatrix()
	a.Set("a", "b", 0.8)
	a.Set("a", "c", 0.6)
	a.Set("b", "c", 0.4)
	group := []ID{"a", "b", "c"}
	if g := a.GroupAffinity(group); math.Abs(g-0.6) > 1e-9 {
		t.Errorf("GroupAffinity = %v, want 0.6", g)
	}
	if m := a.MinPairAffinity(group); m != 0.4 {
		t.Errorf("MinPairAffinity = %v", m)
	}
	if tot := a.TotalAffinity(group); math.Abs(tot-1.8) > 1e-9 {
		t.Errorf("TotalAffinity = %v", tot)
	}
	if a.GroupAffinity([]ID{"a"}) != 0 || a.TotalAffinity(nil) != 0 {
		t.Error("degenerate groups should have 0 affinity")
	}
	if a.MinPairAffinity([]ID{"a"}) != 1 {
		t.Error("singleton MinPairAffinity should be 1")
	}
}

func TestAffinityNeighbors(t *testing.T) {
	a := NewAffinityMatrix()
	a.Set("a", "b", 0.9)
	a.Set("a", "c", 0.5)
	a.Set("a", "d", 0.2)
	a.Set("b", "c", 0.99)
	nbs := a.Neighbors("a", 0.4)
	if len(nbs) != 2 || nbs[0] != "b" || nbs[1] != "c" {
		t.Errorf("Neighbors = %v", nbs)
	}
	if len(a.Neighbors("zzz", 0)) != 0 {
		t.Error("unknown worker should have no neighbors")
	}
}

func TestAffinityFillFromLocations(t *testing.T) {
	a := NewAffinityMatrix()
	ws := []*Worker{
		{ID: "near1", Factors: HumanFactors{Location: Location{Lat: 36.08, Lon: 140.11, Region: "tsukuba"}}},
		{ID: "near2", Factors: HumanFactors{Location: Location{Lat: 36.09, Lon: 140.10, Region: "tsukuba"}}},
		{ID: "far", Factors: HumanFactors{Location: Location{Lat: 48.85, Lon: 2.35, Region: "paris"}}},
	}
	a.FillFromLocations(ws, 0.9, 50)
	same := a.Get("near1", "near2")
	far := a.Get("near1", "far")
	if same != 0.9 {
		t.Errorf("same-region affinity = %v, want 0.9", same)
	}
	if far >= same || far > 0.01 {
		t.Errorf("far affinity = %v, should be near 0 and below same-region", far)
	}
	// Zero half-distance falls back to a sane default rather than dividing by zero.
	b := NewAffinityMatrix()
	b.FillFromLocations(ws[:2], 0.9, 0)
	if v := b.Get("near1", "near2"); v != 0.9 {
		t.Errorf("fallback half-distance affinity = %v", v)
	}
}

func TestAffinityPropertySymmetricAndClamped(t *testing.T) {
	f := func(v float64, xi, yi uint8) bool {
		x := ID(fmt.Sprintf("w%d", xi))
		y := ID(fmt.Sprintf("w%d", yi))
		if x == y {
			return true
		}
		a := NewAffinityMatrix()
		a.Set(x, y, v)
		got := a.Get(y, x)
		return got >= 0 && got <= 1 && got == a.Get(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAffinityConcurrentAccess(t *testing.T) {
	a := NewAffinityMatrix()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				x := ID(fmt.Sprintf("w%d", i))
				y := ID(fmt.Sprintf("w%d", j%7))
				a.Set(x, y, float64(j)/100)
				_ = a.Get(x, y)
				_ = a.GroupAffinity([]ID{x, y, "w0"})
			}
		}(i)
	}
	wg.Wait()
}

func TestSkillEstimatorPriorAndConvergence(t *testing.T) {
	e := NewSkillEstimator(SkillPrior{PriorMean: 0.5, PriorWeight: 2})
	est, n := e.Estimate("w1", "translation")
	if est != 0.5 || n != 0 {
		t.Errorf("prior estimate = %v,%d", est, n)
	}
	// A consistently excellent worker converges toward their true skill.
	for i := 0; i < 50; i++ {
		e.Observe("w1", "translation", 0.9)
	}
	est, n = e.Estimate("w1", "translation")
	if n != 50 {
		t.Errorf("observations = %d", n)
	}
	if est < 0.85 || est > 0.9 {
		t.Errorf("estimate after 50 obs = %v, want close to 0.9", est)
	}
	// Few observations stay pulled toward the prior.
	e.Observe("w2", "translation", 1.0)
	est, _ = e.Estimate("w2", "translation")
	if est > 0.85 {
		t.Errorf("single observation estimate = %v, should be shrunk toward prior", est)
	}
	if got := e.Observations("w1", "translation"); got != 50 {
		t.Errorf("Observations = %d", got)
	}
	e.Observe("w1", "journalism", 0.7)
	if skills := e.Skills("w1"); len(skills) != 2 || skills[0] != "journalism" {
		t.Errorf("Skills = %v", skills)
	}
	e.Reset("w1")
	if _, n := e.Estimate("w1", "translation"); n != 0 {
		t.Error("Reset should clear observations")
	}
}

func TestSkillEstimatorClampsQuality(t *testing.T) {
	e := NewSkillEstimator(SkillPrior{PriorMean: 0.5, PriorWeight: 0})
	e.Observe("w", "s", 7.5)
	e.Observe("w", "s", -3)
	est, n := e.Estimate("w", "s")
	if n != 2 || est != 0.5 {
		t.Errorf("estimate = %v,%d want 0.5,2", est, n)
	}
	// Zero prior weight with zero observations returns prior mean, not NaN.
	if est, _ := e.Estimate("other", "s"); math.IsNaN(est) {
		t.Error("estimate should not be NaN")
	}
}

func TestSkillEstimatorPropertyWithinBounds(t *testing.T) {
	f := func(obs []float64) bool {
		e := NewSkillEstimator(DefaultSkillPrior)
		for _, q := range obs {
			e.Observe("w", "s", q)
		}
		est, n := e.Estimate("w", "s")
		return est >= 0 && est <= 1 && n == len(obs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestManagerRecordCompletionUpdatesSkillFactor(t *testing.T) {
	m := newPopulatedManager(t)
	for i := 0; i < 20; i++ {
		if err := m.RecordCompletion("w4", "surveillance", 0.95); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := m.Get("w4")
	if w.CompletedTasks != 20 {
		t.Errorf("CompletedTasks = %d", w.CompletedTasks)
	}
	if w.Factors.Skill("surveillance") < 0.85 {
		t.Errorf("learned skill = %v, want > 0.85", w.Factors.Skill("surveillance"))
	}
	if err := m.RecordCompletion("zzz", "x", 1); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown worker: %v", err)
	}
	// A worker with no Skills map gets one created.
	m.Register(&Worker{ID: "w9", Name: "nina"})
	if err := m.RecordCompletion("w9", "journalism", 0.8); err != nil {
		t.Fatal(err)
	}
	w9, _ := m.Get("w9")
	if w9.Factors.Skill("journalism") <= 0 {
		t.Error("skill factor should be created for new skill")
	}
}

func TestManagerConcurrentUse(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ID(fmt.Sprintf("w%d", i))
			m.Register(&Worker{ID: id, Name: fmt.Sprintf("worker %d", i)})
			m.SetRelationship(Eligible, "t", id)
			m.SetRelationship(InterestedIn, "t", id)
			m.Affinity().Set(id, "w0", 0.5)
			m.RecordCompletion(id, "s", 0.7)
			_ = m.Candidates("t")
		}(i)
	}
	wg.Wait()
	if m.Count() != 16 {
		t.Errorf("Count = %d", m.Count())
	}
	if len(m.Candidates("t")) != 16 {
		t.Errorf("Candidates = %d", len(m.Candidates("t")))
	}
}
