// Package assign implements Crowd4U's collaborative task-assignment component
// (§2.2): given the pool of workers who are Eligible for and InterestedIn a
// task, it finds a team — a clique in the worker affinity graph — that
// maximises intra-team affinity while satisfying the task's skill (quality),
// cost and upper-critical-mass constraints.
//
// The underlying optimisation problem is NP-complete (Rahman et al., ICDM'15),
// so the package provides an exact branch-and-bound solver for small candidate
// pools together with several practical approximation algorithms, plus the
// baselines used by the experiments in EXPERIMENTS.md.
package assign

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Candidate is one worker available for a task, with the factors the
// algorithms consult. Candidates are built by the controller from the worker
// manager.
type Candidate struct {
	ID    worker.ID
	Skill float64 // proficiency in the task's required skill, in [0,1]
	Cost  float64 // wage / effort units charged if selected
}

// Team is a proposed group of workers for one task.
type Team struct {
	TaskID  task.ID
	Members []worker.ID
	// Affinity is the mean pairwise affinity of the team.
	Affinity float64
	// TotalAffinity is the sum of pairwise affinities (the objective of [9]).
	TotalAffinity float64
	// Skill is the aggregate (sum) skill of the members.
	Skill float64
	// Cost is the total cost of the members.
	Cost float64
	// Algorithm records which algorithm produced the team.
	Algorithm string
}

// Size returns the number of members.
func (t Team) Size() int { return len(t.Members) }

// Contains reports whether the worker is on the team.
func (t Team) Contains(id worker.ID) bool {
	for _, m := range t.Members {
		if m == id {
			return true
		}
	}
	return false
}

// String renders a short description of the team.
func (t Team) String() string {
	return fmt.Sprintf("team(%s size=%d affinity=%.3f skill=%.2f cost=%.1f via %s)",
		t.TaskID, len(t.Members), t.Affinity, t.Skill, t.Cost, t.Algorithm)
}

// Problem is one team-formation instance: the candidate pool, the affinity
// matrix restricted to it, and the task constraints.
type Problem struct {
	Task       *task.Task
	Candidates []Candidate
	Affinity   *worker.AffinityMatrix
}

// ErrInfeasible is returned when no team satisfying the constraints exists in
// the candidate pool. The platform reacts by suggesting the requester relax
// their input (§2.2.1).
var ErrInfeasible = errors.New("assign: no feasible team for the given constraints")

// Algorithm is a team-formation strategy.
type Algorithm interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// FormTeam returns the best team the algorithm can find for the problem,
	// or ErrInfeasible.
	FormTeam(p Problem) (Team, error)
}

// candidateByID builds a lookup map.
func candidateByID(cands []Candidate) map[worker.ID]Candidate {
	m := make(map[worker.ID]Candidate, len(cands))
	for _, c := range cands {
		m[c.ID] = c
	}
	return m
}

// evaluate computes the team metrics for a member set.
func evaluate(p Problem, members []worker.ID, algo string) Team {
	byID := candidateByID(p.Candidates)
	t := Team{TaskID: p.Task.ID, Members: append([]worker.ID(nil), members...), Algorithm: algo}
	sort.Slice(t.Members, func(i, j int) bool { return t.Members[i] < t.Members[j] })
	for _, m := range t.Members {
		c := byID[m]
		t.Skill += c.Skill
		t.Cost += c.Cost
	}
	t.Affinity = p.Affinity.GroupAffinity(t.Members)
	t.TotalAffinity = p.Affinity.TotalAffinity(t.Members)
	return t
}

// feasible checks the structural constraints of §2.2 for a member set:
// team-size bounds (min size, upper critical mass), per-worker minimum skill,
// aggregate team skill (quality), cost budget and minimum pairwise affinity.
func feasible(p Problem, members []worker.ID) bool {
	c := p.Task.Constraints
	if len(members) < c.MinTeamSize || len(members) > c.UpperCriticalMass {
		return false
	}
	byID := candidateByID(p.Candidates)
	skill, cost := 0.0, 0.0
	for _, m := range members {
		cand, ok := byID[m]
		if !ok {
			return false
		}
		if c.RequiredSkill != "" && cand.Skill < c.MinSkill {
			return false
		}
		skill += cand.Skill
		cost += cand.Cost
	}
	if skill < c.MinTeamSkill {
		return false
	}
	if c.CostBudget > 0 && cost > c.CostBudget {
		return false
	}
	if c.MinPairAffinity > 0 && p.Affinity.MinPairAffinity(members) < c.MinPairAffinity {
		return false
	}
	return true
}

// Feasible reports whether the member set satisfies the problem's constraints.
// It is exported for tests, the controller and the experiment harness.
func Feasible(p Problem, members []worker.ID) bool { return feasible(p, members) }

// Evaluate builds a Team (with metrics filled in) for an explicit member set.
func Evaluate(p Problem, members []worker.ID, algo string) Team { return evaluate(p, members, algo) }

// better orders teams by the optimisation objective: higher total affinity
// first, then higher skill, then lower cost, then smaller size, then members
// lexicographically for determinism.
func better(a, b Team) bool {
	if a.TotalAffinity != b.TotalAffinity {
		return a.TotalAffinity > b.TotalAffinity
	}
	if a.Skill != b.Skill {
		return a.Skill > b.Skill
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if len(a.Members) != len(b.Members) {
		return len(a.Members) < len(b.Members)
	}
	return fmt.Sprint(a.Members) < fmt.Sprint(b.Members)
}

// filterEligibleCandidates drops candidates that can never appear in a
// feasible team (below the per-worker minimum skill). All algorithms apply it
// first; the paper notes that "skills are used to filter out unqualified
// workers".
func filterEligibleCandidates(p Problem) []Candidate {
	c := p.Task.Constraints
	out := make([]Candidate, 0, len(p.Candidates))
	for _, cand := range p.Candidates {
		if c.RequiredSkill != "" && cand.Skill < c.MinSkill {
			continue
		}
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExactBranchAndBound enumerates candidate subsets up to the critical mass
// with affinity-based pruning, returning a provably optimal team. Its running
// time grows combinatorially, matching the paper's statement that optimal
// assignment "is often infeasible for a large real-time crowdsourcing
// platform"; it is used as the quality yardstick in experiment E3 and for
// small pools in production.
type ExactBranchAndBound struct {
	// MaxCandidates guards against accidental exponential blow-ups; pools
	// larger than this return an error. 0 means DefaultExactLimit.
	MaxCandidates int
}

// DefaultExactLimit is the largest candidate pool the exact solver accepts by
// default.
const DefaultExactLimit = 24

// Name implements Algorithm.
func (ExactBranchAndBound) Name() string { return "exact" }

// FormTeam implements Algorithm.
func (e ExactBranchAndBound) FormTeam(p Problem) (Team, error) {
	limit := e.MaxCandidates
	if limit <= 0 {
		limit = DefaultExactLimit
	}
	cands := filterEligibleCandidates(p)
	if len(cands) > limit {
		return Team{}, fmt.Errorf("assign: exact solver limited to %d candidates, got %d", limit, len(cands))
	}
	cons := p.Task.Constraints
	ids := make([]worker.ID, len(cands))
	for i, c := range cands {
		ids[i] = c.ID
	}

	var best Team
	found := false
	cur := make([]worker.ID, 0, cons.UpperCriticalMass)

	// Precompute, for pruning, the highest affinity any pair can contribute.
	maxPair := 0.0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if a := p.Affinity.Get(ids[i], ids[j]); a > maxPair {
				maxPair = a
			}
		}
	}

	var rec func(start int)
	rec = func(start int) {
		if len(cur) >= cons.MinTeamSize && feasible(p, cur) {
			t := evaluate(p, cur, "exact")
			if !found || better(t, best) {
				best, found = t, true
			}
		}
		if len(cur) == cons.UpperCriticalMass {
			return
		}
		for i := start; i < len(ids); i++ {
			cur = append(cur, ids[i])
			// Upper bound on the total affinity reachable from this prefix: the
			// current total plus maxPair for every pair still addable.
			if found {
				curTotal := p.Affinity.TotalAffinity(cur)
				remaining := cons.UpperCriticalMass - len(cur)
				addablePairs := remaining*(remaining-1)/2 + remaining*len(cur)
				if curTotal+float64(addablePairs)*maxPair < best.TotalAffinity-1e-12 {
					cur = cur[:len(cur)-1]
					continue
				}
			}
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)

	if !found {
		return Team{}, ErrInfeasible
	}
	return best, nil
}

// AffinityGreedy grows a team by repeatedly adding the candidate whose
// addition increases total affinity the most, starting from the best pair,
// and stops once the constraints are satisfied and no addition improves the
// objective (or the critical mass is reached). It is the workhorse practical
// algorithm, in the spirit of [9]'s efficient heuristics.
type AffinityGreedy struct{}

// Name implements Algorithm.
func (AffinityGreedy) Name() string { return "greedy" }

// FormTeam implements Algorithm.
func (AffinityGreedy) FormTeam(p Problem) (Team, error) {
	cands := filterEligibleCandidates(p)
	cons := p.Task.Constraints
	if len(cands) == 0 {
		return Team{}, ErrInfeasible
	}

	// Seed: for teams of size >=2, the highest-affinity feasible pair; for
	// min size 1, the highest-skill candidate.
	var members []worker.ID
	if cons.UpperCriticalMass == 1 || len(cands) == 1 {
		bestIdx, bestSkill := -1, -1.0
		for i, c := range cands {
			if c.Skill > bestSkill {
				bestIdx, bestSkill = i, c.Skill
			}
		}
		members = []worker.ID{cands[bestIdx].ID}
	} else {
		bi, bj, bestAff := -1, -1, -1.0
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				a := p.Affinity.Get(cands[i].ID, cands[j].ID)
				if a > bestAff {
					bi, bj, bestAff = i, j, a
				}
			}
		}
		members = []worker.ID{cands[bi].ID, cands[bj].ID}
	}

	in := make(map[worker.ID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}

	// Grow while it helps: prefer reaching feasibility, then higher affinity.
	for len(members) < cons.UpperCriticalMass {
		bestGain, bestID := math.Inf(-1), worker.ID("")
		for _, c := range cands {
			if in[c.ID] {
				continue
			}
			gain := 0.0
			for _, m := range members {
				gain += p.Affinity.Get(c.ID, m)
			}
			// Respect the cost budget greedily.
			if cons.CostBudget > 0 {
				cost := c.Cost
				byID := candidateByID(cands)
				for _, m := range members {
					cost += byID[m].Cost
				}
				if cost > cons.CostBudget {
					continue
				}
			}
			if gain > bestGain {
				bestGain, bestID = gain, c.ID
			}
		}
		if bestID == "" {
			break
		}
		needMore := !feasible(p, members)
		if !needMore && bestGain <= 0 {
			break
		}
		members = append(members, bestID)
		in[bestID] = true
	}

	// Shrink pass: if infeasible due to cost or pair-affinity floors, try
	// dropping the weakest member.
	for len(members) > cons.MinTeamSize && !feasible(p, members) {
		worstIdx, worstContribution := -1, math.Inf(1)
		for i, m := range members {
			contrib := 0.0
			for j, o := range members {
				if i != j {
					contrib += p.Affinity.Get(m, o)
				}
			}
			if contrib < worstContribution {
				worstIdx, worstContribution = i, contrib
			}
		}
		members = append(members[:worstIdx], members[worstIdx+1:]...)
	}

	if !feasible(p, members) {
		return Team{}, ErrInfeasible
	}
	return evaluate(p, members, "greedy"), nil
}

// StarGreedy builds one candidate team per "seed" worker by taking the seed's
// highest-affinity neighbours up to the critical mass, and returns the best
// feasible star. It approximates [9]'s grouping strategy and is cheap:
// O(n^2 log n) overall.
type StarGreedy struct{}

// Name implements Algorithm.
func (StarGreedy) Name() string { return "star" }

// FormTeam implements Algorithm.
func (StarGreedy) FormTeam(p Problem) (Team, error) {
	cands := filterEligibleCandidates(p)
	cons := p.Task.Constraints
	if len(cands) == 0 {
		return Team{}, ErrInfeasible
	}
	var best Team
	found := false
	for _, seed := range cands {
		// Sort the other candidates by affinity to the seed.
		others := make([]Candidate, 0, len(cands)-1)
		for _, c := range cands {
			if c.ID != seed.ID {
				others = append(others, c)
			}
		}
		sort.Slice(others, func(i, j int) bool {
			ai := p.Affinity.Get(seed.ID, others[i].ID)
			aj := p.Affinity.Get(seed.ID, others[j].ID)
			if ai != aj {
				return ai > aj
			}
			return others[i].ID < others[j].ID
		})
		members := []worker.ID{seed.ID}
		for _, o := range others {
			if len(members) >= cons.UpperCriticalMass {
				break
			}
			members = append(members, o.ID)
			if cons.CostBudget > 0 {
				t := evaluate(p, members, "star")
				if t.Cost > cons.CostBudget {
					members = members[:len(members)-1]
					continue
				}
			}
		}
		// Try all prefixes of the star, keeping the best feasible one.
		for size := cons.MinTeamSize; size <= len(members); size++ {
			sub := members[:size]
			if feasible(p, sub) {
				t := evaluate(p, sub, "star")
				if !found || better(t, best) {
					best, found = t, true
				}
			}
		}
	}
	if !found {
		return Team{}, ErrInfeasible
	}
	return best, nil
}

// GRASP runs a randomised greedy construction followed by local search
// (swap one member for one outsider while it improves the objective),
// repeated for Iterations rounds, keeping the best feasible team. With a
// fixed Seed it is deterministic.
type GRASP struct {
	Iterations int
	// Alpha controls greediness of the construction phase: 0 = purely greedy,
	// 1 = purely random among eligible candidates.
	Alpha float64
	Seed  int64
}

// Name implements Algorithm.
func (GRASP) Name() string { return "grasp" }

// FormTeam implements Algorithm.
func (g GRASP) FormTeam(p Problem) (Team, error) {
	iters := g.Iterations
	if iters <= 0 {
		iters = 20
	}
	alpha := g.Alpha
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	cands := filterEligibleCandidates(p)
	cons := p.Task.Constraints
	if len(cands) == 0 {
		return Team{}, ErrInfeasible
	}
	rng := newSplitMix(uint64(g.Seed) ^ 0x9e3779b97f4a7c15)

	var best Team
	found := false
	for it := 0; it < iters; it++ {
		members := constructRandomized(p, cands, cons, alpha, rng)
		if len(members) == 0 {
			continue
		}
		members = localSearch(p, cands, members)
		if feasible(p, members) {
			t := evaluate(p, members, "grasp")
			if !found || better(t, best) {
				best, found = t, true
			}
		}
	}
	if !found {
		// Fall back to the deterministic greedy: GRASP should never be worse
		// than refusing to answer when greedy can find something.
		t, err := (AffinityGreedy{}).FormTeam(p)
		if err != nil {
			return Team{}, ErrInfeasible
		}
		t.Algorithm = "grasp"
		return t, nil
	}
	return best, nil
}

func constructRandomized(p Problem, cands []Candidate, cons task.Constraints, alpha float64, rng *splitMix) []worker.ID {
	members := []worker.ID{cands[int(rng.next()%uint64(len(cands)))].ID}
	in := map[worker.ID]bool{members[0]: true}
	for len(members) < cons.UpperCriticalMass {
		type scored struct {
			id   worker.ID
			gain float64
		}
		var pool []scored
		for _, c := range cands {
			if in[c.ID] {
				continue
			}
			gain := 0.0
			for _, m := range members {
				gain += p.Affinity.Get(c.ID, m)
			}
			pool = append(pool, scored{c.ID, gain})
		}
		if len(pool) == 0 {
			break
		}
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].gain != pool[j].gain {
				return pool[i].gain > pool[j].gain
			}
			return pool[i].id < pool[j].id
		})
		// Restricted candidate list: the top (alpha-blended) slice.
		rclSize := 1 + int(alpha*float64(len(pool)-1))
		pick := pool[int(rng.next()%uint64(rclSize))]
		members = append(members, pick.id)
		in[pick.id] = true
		if len(members) >= cons.MinTeamSize && feasible(p, members) && rng.next()%2 == 0 {
			break
		}
	}
	return members
}

func localSearch(p Problem, cands []Candidate, members []worker.ID) []worker.ID {
	in := make(map[worker.ID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	improved := true
	for improved {
		improved = false
		cur := evaluate(p, members, "ls")
		curFeasible := feasible(p, members)
		for i := 0; i < len(members) && !improved; i++ {
			for _, c := range cands {
				if in[c.ID] {
					continue
				}
				trial := append([]worker.ID(nil), members...)
				trial[i] = c.ID
				trialFeasible := feasible(p, trial)
				t := evaluate(p, trial, "ls")
				if (trialFeasible && !curFeasible) || (trialFeasible == curFeasible && better(t, cur)) {
					delete(in, members[i])
					in[c.ID] = true
					members = trial
					improved = true
					break
				}
			}
		}
	}
	return members
}

// splitMix is a tiny deterministic PRNG (SplitMix64); the package avoids
// math/rand so that experiment runs are reproducible across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// RandomAssignment picks a uniformly random feasible team; it is the weakest
// baseline in experiment E3.
type RandomAssignment struct {
	Seed     int64
	Attempts int
}

// Name implements Algorithm.
func (RandomAssignment) Name() string { return "random" }

// FormTeam implements Algorithm.
func (r RandomAssignment) FormTeam(p Problem) (Team, error) {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 50
	}
	cands := filterEligibleCandidates(p)
	cons := p.Task.Constraints
	if len(cands) == 0 {
		return Team{}, ErrInfeasible
	}
	rng := newSplitMix(uint64(r.Seed) ^ 0xdeadbeefcafef00d)
	for a := 0; a < attempts; a++ {
		size := cons.MinTeamSize
		if cons.UpperCriticalMass > cons.MinTeamSize {
			size += int(rng.next() % uint64(cons.UpperCriticalMass-cons.MinTeamSize+1))
		}
		if size > len(cands) {
			size = len(cands)
		}
		perm := rng.perm(len(cands))
		members := make([]worker.ID, 0, size)
		for _, idx := range perm[:size] {
			members = append(members, cands[idx].ID)
		}
		if feasible(p, members) {
			return evaluate(p, members, "random"), nil
		}
	}
	return Team{}, ErrInfeasible
}

func (s *splitMix) perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(s.next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SkillOnlyGreedy ignores affinity entirely and picks the highest-skill
// workers; it is the ablation showing why affinity-aware assignment matters
// (collaboration effectiveness, not just individual quality).
type SkillOnlyGreedy struct{}

// Name implements Algorithm.
func (SkillOnlyGreedy) Name() string { return "skill-only" }

// FormTeam implements Algorithm.
func (SkillOnlyGreedy) FormTeam(p Problem) (Team, error) {
	cands := filterEligibleCandidates(p)
	cons := p.Task.Constraints
	if len(cands) == 0 {
		return Team{}, ErrInfeasible
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Skill != cands[j].Skill {
			return cands[i].Skill > cands[j].Skill
		}
		return cands[i].ID < cands[j].ID
	})
	var members []worker.ID
	for _, c := range cands {
		if len(members) >= cons.UpperCriticalMass {
			break
		}
		members = append(members, c.ID)
		if cons.CostBudget > 0 {
			if t := evaluate(p, members, "skill-only"); t.Cost > cons.CostBudget {
				members = members[:len(members)-1]
				continue
			}
		}
		if len(members) >= cons.MinTeamSize && feasible(p, members) {
			// Keep adding only while below critical mass and team skill target
			// not yet exceeded; skill-only has no affinity reason to grow.
			if t := evaluate(p, members, "skill-only"); t.Skill >= cons.MinTeamSkill {
				break
			}
		}
	}
	if !feasible(p, members) {
		return Team{}, ErrInfeasible
	}
	return evaluate(p, members, "skill-only"), nil
}

// Registry returns the named algorithm, allowing project descriptions and the
// CLI to select one by name. Unknown names return nil.
func Registry(name string) Algorithm {
	switch name {
	case "exact":
		return ExactBranchAndBound{}
	case "greedy", "":
		return AffinityGreedy{}
	case "star":
		return StarGreedy{}
	case "grasp":
		return GRASP{Iterations: 30, Alpha: 0.3, Seed: 1}
	case "random":
		return RandomAssignment{Seed: 1}
	case "skill-only":
		return SkillOnlyGreedy{}
	default:
		return nil
	}
}

// AlgorithmNames lists the registered algorithm names in a stable order.
func AlgorithmNames() []string {
	return []string{"exact", "greedy", "star", "grasp", "random", "skill-only"}
}
