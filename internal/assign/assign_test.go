package assign

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// buildProblem constructs a synthetic problem with n candidates whose skills
// ramp from 0.5 to 1.0 and whose affinities are generated deterministically.
func buildProblem(t testing.TB, n int, cons task.Constraints) Problem {
	t.Helper()
	tk := task.NewTask("t1", "p1", "test task", task.Sequential, cons)
	aff := worker.NewAffinityMatrix()
	cands := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		id := worker.ID(fmt.Sprintf("w%02d", i))
		cands = append(cands, Candidate{ID: id, Skill: 0.5 + 0.5*float64(i)/float64(maxInt(n-1, 1)), Cost: 1})
	}
	rng := newSplitMix(42)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			aff.Set(cands[i].ID, cands[j].ID, rng.float())
		}
	}
	return Problem{Task: tk, Candidates: cands, Affinity: aff}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clusteredProblem(t testing.TB, cons task.Constraints) Problem {
	t.Helper()
	// Two clusters: {a1,a2,a3} with affinity 0.9 inside, {b1,b2,b3} with 0.8
	// inside, 0.1 across. Skills equal so affinity decides.
	tk := task.NewTask("t1", "p1", "clustered", task.Sequential, cons)
	aff := worker.NewAffinityMatrix()
	ids := []worker.ID{"a1", "a2", "a3", "b1", "b2", "b3"}
	var cands []Candidate
	for _, id := range ids {
		cands = append(cands, Candidate{ID: id, Skill: 0.7, Cost: 1})
	}
	for i, x := range ids {
		for j := i + 1; j < len(ids); j++ {
			y := ids[j]
			sameCluster := x[0] == y[0]
			switch {
			case sameCluster && x[0] == 'a':
				aff.Set(x, y, 0.9)
			case sameCluster:
				aff.Set(x, y, 0.8)
			default:
				aff.Set(x, y, 0.1)
			}
		}
	}
	return Problem{Task: tk, Candidates: cands, Affinity: aff}
}

func TestTeamHelpers(t *testing.T) {
	team := Team{TaskID: "t", Members: []worker.ID{"a", "b"}}
	if team.Size() != 2 || !team.Contains("a") || team.Contains("c") {
		t.Error("Team helpers misbehave")
	}
	if team.String() == "" {
		t.Error("String should render")
	}
}

func TestFeasibleChecksAllConstraints(t *testing.T) {
	cons := task.Constraints{
		RequiredSkill: "translation", MinSkill: 0.6, MinTeamSkill: 1.2,
		UpperCriticalMass: 3, MinTeamSize: 2, CostBudget: 5, MinPairAffinity: 0.2,
	}
	p := buildProblem(t, 6, cons)
	p.Affinity.SetDefault(0.5)

	if Feasible(p, []worker.ID{"w05"}) {
		t.Error("team below MinTeamSize should be infeasible")
	}
	if Feasible(p, []worker.ID{"w02", "w03", "w04", "w05"}) {
		t.Error("team above critical mass should be infeasible")
	}
	if Feasible(p, []worker.ID{"w00", "w05"}) {
		t.Error("member below MinSkill should make the team infeasible")
	}
	if Feasible(p, []worker.ID{"w02", "unknown"}) {
		t.Error("unknown member should make the team infeasible")
	}
	if !Feasible(p, []worker.ID{"w04", "w05"}) {
		t.Error("high-skill pair should be feasible")
	}
	// Cost budget.
	expensive := buildProblem(t, 4, task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2, CostBudget: 1.5})
	if Feasible(expensive, []worker.ID{"w00", "w01"}) {
		t.Error("cost above budget should be infeasible")
	}
	// Pair-affinity floor.
	floor := clusteredProblem(t, task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2, MinPairAffinity: 0.5})
	if Feasible(floor, []worker.ID{"a1", "b1"}) {
		t.Error("cross-cluster pair below the affinity floor should be infeasible")
	}
	if !Feasible(floor, []worker.ID{"a1", "a2"}) {
		t.Error("in-cluster pair should satisfy the affinity floor")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	p := clusteredProblem(t, task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2})
	team := Evaluate(p, []worker.ID{"a2", "a1", "a3"}, "test")
	if team.Size() != 3 || team.Members[0] != "a1" {
		t.Error("members should be sorted")
	}
	if team.Affinity != 0.9 {
		t.Errorf("Affinity = %v", team.Affinity)
	}
	if team.TotalAffinity != 2.7 {
		t.Errorf("TotalAffinity = %v", team.TotalAffinity)
	}
	if team.Skill < 2.09 || team.Skill > 2.11 {
		t.Errorf("Skill = %v", team.Skill)
	}
	if team.Cost != 3 {
		t.Errorf("Cost = %v", team.Cost)
	}
}

func TestExactFindsOptimalCluster(t *testing.T) {
	p := clusteredProblem(t, task.Constraints{UpperCriticalMass: 3, MinTeamSize: 3})
	team, err := (ExactBranchAndBound{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []worker.ID{"a1", "a2", "a3"}
	for i, m := range want {
		if team.Members[i] != m {
			t.Fatalf("exact team = %v, want %v", team.Members, want)
		}
	}
	if team.Affinity != 0.9 {
		t.Errorf("affinity = %v", team.Affinity)
	}
}

func TestExactRespectsCandidateLimit(t *testing.T) {
	p := buildProblem(t, 30, task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2})
	if _, err := (ExactBranchAndBound{}).FormTeam(p); err == nil {
		t.Error("pools above the limit should be rejected")
	}
	if _, err := (ExactBranchAndBound{MaxCandidates: 40}).FormTeam(p); err != nil {
		t.Errorf("raised limit should work: %v", err)
	}
}

func TestExactInfeasible(t *testing.T) {
	p := buildProblem(t, 5, task.Constraints{RequiredSkill: "x", MinSkill: 2, UpperCriticalMass: 3, MinTeamSize: 2})
	if _, err := (ExactBranchAndBound{}).FormTeam(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestGreedyPrefersHighAffinityCluster(t *testing.T) {
	p := clusteredProblem(t, task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2})
	team, err := (AffinityGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range team.Members {
		if m[0] != 'a' {
			t.Errorf("greedy team should stay inside the high-affinity cluster, got %v", team.Members)
		}
	}
	if team.Affinity < 0.85 {
		t.Errorf("greedy affinity = %v", team.Affinity)
	}
}

func TestGreedySingletonTeam(t *testing.T) {
	p := buildProblem(t, 5, task.Constraints{UpperCriticalMass: 1, MinTeamSize: 1})
	team, err := (AffinityGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if team.Size() != 1 || team.Members[0] != "w04" {
		t.Errorf("singleton team should pick the highest-skill worker, got %v", team.Members)
	}
}

func TestGreedyRespectsCostBudget(t *testing.T) {
	cons := task.Constraints{UpperCriticalMass: 5, MinTeamSize: 2, CostBudget: 3}
	p := buildProblem(t, 10, cons)
	team, err := (AffinityGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if team.Cost > 3 {
		t.Errorf("cost %v exceeds budget", team.Cost)
	}
}

func TestGreedyInfeasibleEmptyPool(t *testing.T) {
	tk := task.NewTask("t", "p", "x", task.Sequential, task.Constraints{}.Normalize())
	p := Problem{Task: tk, Affinity: worker.NewAffinityMatrix()}
	if _, err := (AffinityGreedy{}).FormTeam(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestStarGreedyFindsCluster(t *testing.T) {
	p := clusteredProblem(t, task.Constraints{UpperCriticalMass: 3, MinTeamSize: 3})
	team, err := (StarGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if team.Affinity < 0.85 {
		t.Errorf("star affinity = %v, want ~0.9", team.Affinity)
	}
}

func TestGRASPDeterministicWithSeed(t *testing.T) {
	p := buildProblem(t, 15, task.Constraints{UpperCriticalMass: 4, MinTeamSize: 3})
	g := GRASP{Iterations: 10, Alpha: 0.3, Seed: 7}
	a, err := g.FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Members) != fmt.Sprint(b.Members) {
		t.Errorf("GRASP with fixed seed should be deterministic: %v vs %v", a.Members, b.Members)
	}
}

func TestGRASPAtLeastAsGoodAsRandom(t *testing.T) {
	p := buildProblem(t, 20, task.Constraints{UpperCriticalMass: 4, MinTeamSize: 4})
	grasp, err := (GRASP{Iterations: 25, Alpha: 0.3, Seed: 3}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := (RandomAssignment{Seed: 3}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if grasp.TotalAffinity < rnd.TotalAffinity-1e-9 {
		t.Errorf("GRASP (%.3f) should not be worse than random (%.3f)", grasp.TotalAffinity, rnd.TotalAffinity)
	}
}

func TestRandomAssignmentFeasible(t *testing.T) {
	p := buildProblem(t, 12, task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2})
	team, err := (RandomAssignment{Seed: 11}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if !Feasible(p, team.Members) {
		t.Error("random team should be feasible")
	}
	// Infeasible constraints exhaust attempts.
	hard := buildProblem(t, 5, task.Constraints{RequiredSkill: "x", MinSkill: 2, UpperCriticalMass: 2, MinTeamSize: 2})
	if _, err := (RandomAssignment{Seed: 1, Attempts: 5}).FormTeam(hard); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestSkillOnlyPicksTopSkill(t *testing.T) {
	p := buildProblem(t, 10, task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	team, err := (SkillOnlyGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if !team.Contains("w09") || !team.Contains("w08") {
		t.Errorf("skill-only should pick the two highest-skill workers, got %v", team.Members)
	}
}

func TestSkillOnlyIgnoresAffinityAblation(t *testing.T) {
	// Give the two highest-skill workers terrible mutual affinity; skill-only
	// still teams them while greedy avoids the pairing — the ablation that
	// motivates affinity-aware assignment.
	p := clusteredProblem(t, task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	for i := range p.Candidates {
		if p.Candidates[i].ID == "a1" || p.Candidates[i].ID == "b1" {
			p.Candidates[i].Skill = 0.99
		}
	}
	skillTeam, err := (SkillOnlyGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	greedyTeam, err := (AffinityGreedy{}).FormTeam(p)
	if err != nil {
		t.Fatal(err)
	}
	if skillTeam.Affinity >= greedyTeam.Affinity {
		t.Errorf("expected skill-only affinity (%.2f) below greedy affinity (%.2f)", skillTeam.Affinity, greedyTeam.Affinity)
	}
}

func TestAllAlgorithmsProduceFeasibleTeams(t *testing.T) {
	cons := task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2, RequiredSkill: "s", MinSkill: 0.55, MinTeamSkill: 1.2}
	p := buildProblem(t, 16, cons)
	for _, name := range AlgorithmNames() {
		algo := Registry(name)
		if algo == nil {
			t.Fatalf("Registry(%q) = nil", name)
		}
		if name == "exact" {
			algo = ExactBranchAndBound{MaxCandidates: 20}
		}
		team, err := algo.FormTeam(p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !Feasible(p, team.Members) {
			t.Errorf("%s produced an infeasible team %v", name, team.Members)
		}
		if team.Size() < cons.MinTeamSize || team.Size() > cons.UpperCriticalMass {
			t.Errorf("%s team size %d out of bounds", name, team.Size())
		}
	}
}

func TestHeuristicsNeverBeatExact(t *testing.T) {
	// Optimality gap check on small instances: exact >= every heuristic.
	for trial := 0; trial < 5; trial++ {
		cons := task.Constraints{UpperCriticalMass: 4, MinTeamSize: 3}
		p := buildProblem(t, 10+trial, cons)
		exact, err := (ExactBranchAndBound{}).FormTeam(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"greedy", "star", "grasp", "random", "skill-only"} {
			team, err := Registry(name).FormTeam(p)
			if err != nil {
				continue
			}
			if team.TotalAffinity > exact.TotalAffinity+1e-9 {
				t.Errorf("trial %d: %s total affinity %.4f exceeds exact %.4f", trial, name, team.TotalAffinity, exact.TotalAffinity)
			}
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if Registry("nonsense") != nil {
		t.Error("unknown algorithm should return nil")
	}
	if Registry("") == nil {
		t.Error("empty name should default to greedy")
	}
	for _, n := range AlgorithmNames() {
		if a := Registry(n); a == nil || a.Name() != n {
			t.Errorf("Registry(%q).Name() mismatch", n)
		}
	}
}

func TestGreedyPropertyTeamsWithinBounds(t *testing.T) {
	f := func(seed uint32, nRaw, ucmRaw uint8) bool {
		n := int(nRaw%20) + 2
		ucm := int(ucmRaw%5) + 1
		cons := task.Constraints{UpperCriticalMass: ucm, MinTeamSize: 1}
		tk := task.NewTask("t", "p", "x", task.Sequential, cons.Normalize())
		aff := worker.NewAffinityMatrix()
		var cands []Candidate
		rng := newSplitMix(uint64(seed))
		for i := 0; i < n; i++ {
			cands = append(cands, Candidate{ID: worker.ID(fmt.Sprintf("w%d", i)), Skill: rng.float(), Cost: 1})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				aff.Set(cands[i].ID, cands[j].ID, rng.float())
			}
		}
		p := Problem{Task: tk, Candidates: cands, Affinity: aff}
		team, err := (AffinityGreedy{}).FormTeam(p)
		if err != nil {
			return true // infeasible is acceptable
		}
		return team.Size() >= 1 && team.Size() <= ucm && Feasible(p, team.Members)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(5), newSplitMix(5)
	for i := 0; i < 10; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed should give the same stream")
		}
	}
	f := newSplitMix(9).float()
	if f < 0 || f >= 1 {
		t.Errorf("float() = %v out of [0,1)", f)
	}
	perm := newSplitMix(3).perm(10)
	seen := make(map[int]bool)
	for _, x := range perm {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("perm is not a permutation: %v", perm)
	}
}
