package assign

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// newEnv builds a worker manager with n workers (all eligible and interested
// in the given task), a pool containing the task, and a controller.
func newEnv(t *testing.T, n int, tk *task.Task) (*worker.Manager, *task.Pool, *Controller) {
	t.Helper()
	wm := worker.NewManager()
	for i := 0; i < n; i++ {
		id := worker.ID(fmt.Sprintf("w%02d", i))
		wm.Register(&worker.Worker{
			ID:   id,
			Name: fmt.Sprintf("worker %d", i),
			Factors: worker.HumanFactors{
				Skills:      map[string]float64{"translation": 0.5 + 0.5*float64(i)/float64(n)},
				WagePerTask: 1,
			},
			LoggedIn: true,
		})
	}
	ids := wm.IDs()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			wm.Affinity().Set(ids[i], ids[j], 0.3+0.5*float64((i*7+j*3)%10)/10)
		}
	}
	pool := task.NewPool()
	if tk != nil {
		pool.Register(tk)
		for _, id := range ids {
			wm.SetRelationship(worker.Eligible, string(tk.ID), id)
			wm.SetRelationship(worker.InterestedIn, string(tk.ID), id)
		}
	}
	ctrl := NewController(wm, pool)
	return wm, pool, ctrl
}

func newTranslationTask(c task.Constraints) *task.Task {
	c.RequiredSkill = "translation"
	return task.NewTask("t1", "p1", "translate", task.Sequential, c)
}

func TestControllerTryAssignSuggestsTeam(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2})
	_, _, ctrl := newEnv(t, 8, tk)
	team, ok, err := ctrl.TryAssign(tk)
	if err != nil || !ok {
		t.Fatalf("TryAssign = %v,%v,%v", team, ok, err)
	}
	if tk.State() != task.StateAssigned {
		t.Errorf("task state = %v", tk.State())
	}
	if got, found := ctrl.Suggestion(tk.ID); !found || got.Size() != team.Size() {
		t.Error("Suggestion should return the suggested team")
	}
	events := ctrl.Events()
	if len(events) != 1 || events[0].Kind != "suggested" {
		t.Errorf("events = %v", events)
	}
	// Assigning a non-open task fails.
	if _, _, err := ctrl.TryAssign(tk); err == nil {
		t.Error("TryAssign on an assigned task should fail")
	}
}

func TestControllerWaitsForInterestThreshold(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2, InterestThreshold: 5})
	wm, _, ctrl := newEnv(t, 8, tk)
	// Remove interest from most workers so only 3 remain interested.
	ids := wm.IDs()
	for _, id := range ids[3:] {
		wm.ClearRelationship(worker.InterestedIn, string(tk.ID), id)
	}
	_, ok, err := ctrl.TryAssign(tk)
	if err != nil || ok {
		t.Fatalf("controller should wait for 5 interested workers: ok=%v err=%v", ok, err)
	}
	if tk.State() != task.StateOpen {
		t.Errorf("task should remain open, got %v", tk.State())
	}
	// Interest arrives; assignment proceeds.
	for _, id := range ids[3:5] {
		wm.SetRelationship(worker.InterestedIn, string(tk.ID), id)
	}
	if _, ok, err := ctrl.TryAssign(tk); err != nil || !ok {
		t.Fatalf("assignment should proceed once threshold met: %v %v", ok, err)
	}
}

func TestControllerInfeasibleConstraints(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2, MinSkill: 0.99, MinTeamSkill: 5})
	_, _, ctrl := newEnv(t, 6, tk)
	_, ok, err := ctrl.TryAssign(tk)
	if ok || !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want infeasible, got ok=%v err=%v", ok, err)
	}
	events := ctrl.Events()
	if len(events) != 1 || events[0].Kind != "infeasible" {
		t.Errorf("events = %v", events)
	}
}

func TestControllerUndertakeFlow(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	_, _, ctrl := newEnv(t, 6, tk)
	team, ok, err := ctrl.TryAssign(tk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	allIn, err := ctrl.ConfirmUndertake(tk, team.Members[0])
	if err != nil || allIn {
		t.Fatalf("first member: allIn=%v err=%v", allIn, err)
	}
	if tk.State() != task.StateAssigned {
		t.Error("task should stay assigned until all members undertake")
	}
	allIn, err = ctrl.ConfirmUndertake(tk, team.Members[1])
	if err != nil || !allIn {
		t.Fatalf("second member: allIn=%v err=%v", allIn, err)
	}
	if tk.State() != task.StateInProgress {
		t.Errorf("task should be in progress, got %v", tk.State())
	}
	// Confirming a non-member fails.
	if _, err := ctrl.ConfirmUndertake(tk, "w99"); err == nil {
		t.Error("non-member undertake should fail")
	}
	// Confirming a task with no suggestion fails.
	other := newTranslationTask(task.Constraints{})
	other.ID = "t-other"
	if _, err := ctrl.ConfirmUndertake(other, team.Members[0]); err == nil {
		t.Error("undertake without suggestion should fail")
	}
}

func TestControllerReassignProposesDifferentTeam(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	_, _, ctrl := newEnv(t, 8, tk)
	first, ok, err := ctrl.TryAssign(tk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	second, ok, err := ctrl.Reassign(tk)
	if err != nil || !ok {
		t.Fatalf("Reassign = %v %v", ok, err)
	}
	if teamSignature(first.Members) == teamSignature(second.Members) {
		t.Errorf("re-assignment should propose a different team: %v vs %v", first.Members, second.Members)
	}
	if tk.State() != task.StateAssigned {
		t.Errorf("state = %v", tk.State())
	}
	kinds := map[string]int{}
	for _, e := range ctrl.Events() {
		kinds[e.Kind]++
	}
	if kinds["reassigned"] != 1 || kinds["suggested"] != 2 {
		t.Errorf("event kinds = %v", kinds)
	}
}

func TestControllerReassignRollsBackUndertakes(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	wm, _, ctrl := newEnv(t, 6, tk)
	team, _, err := ctrl.TryAssign(tk)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ConfirmUndertake(tk, team.Members[0])
	if _, _, err := ctrl.Reassign(tk); err != nil {
		t.Fatal(err)
	}
	if wm.HasRelationship(worker.Undertakes, string(tk.ID), team.Members[0]) {
		t.Error("partial undertakes should be rolled back on re-assignment")
	}
}

func TestControllerSweepDeadlines(t *testing.T) {
	now := time.Date(2016, 9, 5, 12, 0, 0, 0, time.UTC)
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2, RecruitmentDeadline: now.Add(time.Hour)})
	_, _, ctrl := newEnv(t, 8, tk)
	ctrl.SetClock(func() time.Time { return now })
	if _, ok, _ := ctrl.TryAssign(tk); !ok {
		t.Fatal("initial assignment failed")
	}
	// Before the deadline nothing happens.
	if swept := ctrl.SweepDeadlines(now.Add(30 * time.Minute)); len(swept) != 0 {
		t.Errorf("swept before deadline: %v", swept)
	}
	// After the deadline the task is re-assigned.
	swept := ctrl.SweepDeadlines(now.Add(2 * time.Hour))
	if len(swept) != 1 || swept[0] != tk.ID {
		t.Fatalf("swept = %v", swept)
	}
	if tk.State() != task.StateAssigned {
		t.Errorf("task should be re-assigned, got %v", tk.State())
	}
	kinds := map[string]int{}
	for _, e := range ctrl.Events() {
		kinds[e.Kind]++
	}
	if kinds["expired"] != 1 {
		t.Errorf("expected one expired event, got %v", kinds)
	}
}

func TestControllerAssignBatch(t *testing.T) {
	wm, pool, _ := newEnv(t, 12, nil)
	var tasks []*task.Task
	for i := 0; i < 5; i++ {
		tk := task.NewTask(task.ID(fmt.Sprintf("batch-%d", i)), "p1", "t", task.Sequential,
			task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2, RequiredSkill: "translation"})
		pool.Register(tk)
		tasks = append(tasks, tk)
		for _, id := range wm.IDs() {
			wm.SetRelationship(worker.Eligible, string(tk.ID), id)
			wm.SetRelationship(worker.InterestedIn, string(tk.ID), id)
		}
	}
	ctrl := NewController(wm, pool)
	teams := ctrl.AssignBatch()
	if len(teams) != 5 {
		t.Fatalf("AssignBatch formed %d teams, want 5", len(teams))
	}
	for _, tk := range tasks {
		if tk.State() != task.StateAssigned {
			t.Errorf("task %s state = %v", tk.ID, tk.State())
		}
	}
}

func TestControllerSetAlgorithm(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2})
	_, _, ctrl := newEnv(t, 10, tk)
	ctrl.SetAlgorithm(nil) // ignored
	if ctrl.Algorithm().Name() != "greedy" {
		t.Errorf("default algorithm = %s", ctrl.Algorithm().Name())
	}
	ctrl.SetAlgorithm(StarGreedy{})
	team, ok, err := ctrl.TryAssign(tk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if team.Algorithm != "star" {
		t.Errorf("team algorithm = %s", team.Algorithm)
	}
}

func TestControllerBuildProblemUsesLearnedSkill(t *testing.T) {
	tk := newTranslationTask(task.Constraints{UpperCriticalMass: 2, MinTeamSize: 2})
	wm, _, ctrl := newEnv(t, 4, tk)
	p := ctrl.BuildProblem(tk)
	if len(p.Candidates) != 4 {
		t.Fatalf("candidates = %d", len(p.Candidates))
	}
	for _, c := range p.Candidates {
		w, _ := wm.Get(c.ID)
		if c.Skill != w.Factors.Skill("translation") {
			t.Errorf("candidate skill mismatch for %s", c.ID)
		}
		if c.Cost != 1 {
			t.Errorf("candidate cost = %v", c.Cost)
		}
	}
}
