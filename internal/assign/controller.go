package assign

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Controller is the task assignment controller of Figure 2: it receives the
// requester's desired human factors from the project admin page, the worker
// human factors and affinity matrix from the worker manager, and — once enough
// workers have shown interest in a task — chooses a team of workers that
// satisfies the desired human factors out of the workers who are eligible and
// interested (§2.2.1 step 5). It also re-executes assignment when the
// suggested team does not fully undertake the task by the deadline.
type Controller struct {
	workers *worker.Manager
	pool    *task.Pool

	mu          sync.RWMutex
	algorithm   Algorithm
	suggestions map[task.ID]Team
	// suggestedAt records when a team was suggested, used for deadline checks.
	suggestedAt map[task.ID]time.Time
	// rejected tracks (task, member-set signature) combinations that failed to
	// form so that re-execution proposes a different team.
	rejected map[task.ID]map[string]bool
	nowFn    func() time.Time
	// events records assignment decisions for dashboards and tests.
	events []Event
}

// Event is one assignment decision, kept for observability.
type Event struct {
	At      time.Time
	TaskID  task.ID
	Kind    string // "suggested", "undertaken", "reassigned", "infeasible", "expired"
	Team    []worker.ID
	Message string
}

// NewController wires the controller to the worker manager and task pool.
func NewController(w *worker.Manager, p *task.Pool) *Controller {
	return &Controller{
		workers:     w,
		pool:        p,
		algorithm:   AffinityGreedy{},
		suggestions: make(map[task.ID]Team),
		suggestedAt: make(map[task.ID]time.Time),
		rejected:    make(map[task.ID]map[string]bool),
		nowFn:       time.Now,
	}
}

// SetAlgorithm selects the team-formation algorithm (default AffinityGreedy).
func (c *Controller) SetAlgorithm(a Algorithm) {
	if a == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.algorithm = a
}

// Algorithm returns the current team-formation algorithm.
func (c *Controller) Algorithm() Algorithm {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.algorithm
}

// SetClock overrides the time source for tests.
func (c *Controller) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nowFn = now
}

// Events returns a copy of the recorded assignment events.
func (c *Controller) Events() []Event {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Event(nil), c.events...)
}

func (c *Controller) record(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.At = c.nowFn()
	c.events = append(c.events, e)
}

// Suggestion returns the currently suggested team for the task, if any.
func (c *Controller) Suggestion(id task.ID) (Team, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.suggestions[id]
	return t, ok
}

// BuildProblem assembles the team-formation problem for a task from the
// worker manager: the candidate pool is exactly the workers who are Eligible
// for and InterestedIn the task, with their skill in the task's required
// skill and their wage as cost.
func (c *Controller) BuildProblem(t *task.Task) Problem {
	candidates := c.workers.Candidates(string(t.ID))
	cands := make([]Candidate, 0, len(candidates))
	for _, id := range candidates {
		w, ok := c.workers.Get(id)
		if !ok {
			continue
		}
		cands = append(cands, Candidate{
			ID:    id,
			Skill: w.Factors.Skill(t.Constraints.RequiredSkill),
			Cost:  w.Factors.WagePerTask,
		})
	}
	return Problem{Task: t, Candidates: cands, Affinity: c.workers.Affinity()}
}

// TryAssign attempts to suggest a team for the task. It returns
// (team, true, nil) when a team was suggested, (Team{}, false, nil) when the
// controller is still waiting for enough interested workers, and
// (Team{}, false, ErrInfeasible) when no team satisfying the constraints
// exists among the current candidates — in which case the platform should
// suggest that the requester relax the constraints (§2.2.1).
func (c *Controller) TryAssign(t *task.Task) (Team, bool, error) {
	if t.State() != task.StateOpen {
		return Team{}, false, fmt.Errorf("assign: task %s is %s, not open", t.ID, t.State())
	}
	p := c.BuildProblem(t)
	if len(p.Candidates) < t.Constraints.InterestThreshold {
		return Team{}, false, nil
	}
	c.mu.RLock()
	algo := c.algorithm
	rejectedSets := c.rejected[t.ID]
	c.mu.RUnlock()

	team, err := algo.FormTeam(p)
	if err == nil && rejectedSets[teamSignature(team.Members)] {
		// The best team already refused; retry excluding its members one at a
		// time to propose a genuinely new team.
		team, err = c.formExcludingRejected(p, algo, rejectedSets)
	}
	if err != nil {
		c.record(Event{TaskID: t.ID, Kind: "infeasible", Message: err.Error()})
		return Team{}, false, ErrInfeasible
	}

	c.mu.Lock()
	c.suggestions[t.ID] = team
	c.suggestedAt[t.ID] = c.nowFn()
	c.mu.Unlock()
	if err := t.SetState(task.StateAssigned); err != nil {
		return Team{}, false, err
	}
	c.record(Event{TaskID: t.ID, Kind: "suggested", Team: team.Members})
	return team, true, nil
}

func (c *Controller) formExcludingRejected(p Problem, algo Algorithm, rejected map[string]bool) (Team, error) {
	// Remove one rejected member combination at a time by excluding each
	// member of the last rejected set and re-running; fall back to the best
	// team that differs from every rejected signature.
	base, err := algo.FormTeam(p)
	if err != nil {
		return Team{}, err
	}
	if !rejected[teamSignature(base.Members)] {
		return base, nil
	}
	var best Team
	found := false
	for _, excluded := range base.Members {
		reduced := Problem{Task: p.Task, Affinity: p.Affinity}
		for _, cand := range p.Candidates {
			if cand.ID != excluded {
				reduced.Candidates = append(reduced.Candidates, cand)
			}
		}
		t, err := algo.FormTeam(reduced)
		if err != nil || rejected[teamSignature(t.Members)] {
			continue
		}
		if !found || better(t, best) {
			best, found = t, true
		}
	}
	if !found {
		return Team{}, ErrInfeasible
	}
	return best, nil
}

func teamSignature(members []worker.ID) string {
	ms := append([]worker.ID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return fmt.Sprint(ms)
}

// ConfirmUndertake records that a suggested member undertakes the task. When
// every suggested member has undertaken it, the task moves to in-progress and
// the method returns true.
func (c *Controller) ConfirmUndertake(t *task.Task, id worker.ID) (allIn bool, err error) {
	c.mu.RLock()
	team, ok := c.suggestions[t.ID]
	c.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("assign: no suggested team for task %s", t.ID)
	}
	if !team.Contains(id) {
		return false, fmt.Errorf("assign: worker %s is not on the suggested team for task %s", id, t.ID)
	}
	if err := c.workers.SetRelationship(worker.Undertakes, string(t.ID), id); err != nil {
		return false, err
	}
	for _, m := range team.Members {
		if !c.workers.HasRelationship(worker.Undertakes, string(t.ID), m) {
			return false, nil
		}
	}
	if err := t.SetState(task.StateInProgress); err != nil {
		return false, err
	}
	c.record(Event{TaskID: t.ID, Kind: "undertaken", Team: team.Members})
	return true, nil
}

// Reassign handles the deadline rule of §2.2.1: "Unless all suggested workers
// start to perform the collaborative task by the specified deadline, task
// assignment is re-executed to find a new team." It clears the stale
// suggestion, remembers the failed team so it will not be re-proposed, resets
// the task to open, and immediately attempts a new assignment.
func (c *Controller) Reassign(t *task.Task) (Team, bool, error) {
	c.mu.Lock()
	old, had := c.suggestions[t.ID]
	delete(c.suggestions, t.ID)
	delete(c.suggestedAt, t.ID)
	if had {
		if c.rejected[t.ID] == nil {
			c.rejected[t.ID] = make(map[string]bool)
		}
		c.rejected[t.ID][teamSignature(old.Members)] = true
	}
	c.mu.Unlock()

	if had {
		// Partially-undertaken states are rolled back.
		for _, m := range old.Members {
			c.workers.ClearRelationship(worker.Undertakes, string(t.ID), m)
		}
		c.record(Event{TaskID: t.ID, Kind: "reassigned", Team: old.Members})
	}
	if t.State() == task.StateAssigned || t.State() == task.StateExpired {
		if err := t.SetState(task.StateOpen); err != nil {
			return Team{}, false, err
		}
	}
	return c.TryAssign(t)
}

// SweepDeadlines finds assigned tasks whose recruitment deadline has passed
// without a full team and re-executes assignment for each. It returns the ids
// of the tasks that were re-assigned (successfully or not).
func (c *Controller) SweepDeadlines(now time.Time) []task.ID {
	var swept []task.ID
	for _, t := range c.pool.InState(task.StateAssigned) {
		if !t.Expired(now) {
			continue
		}
		c.record(Event{TaskID: t.ID, Kind: "expired"})
		swept = append(swept, t.ID)
		c.Reassign(t) //nolint:errcheck // failure to find a new team is recorded as an event
	}
	return swept
}

// AssignBatch runs TryAssign over every open task in the pool (sorted by id),
// returning the teams formed. It is the multi-task entry point the experiments
// use to measure scalability (E4).
func (c *Controller) AssignBatch() map[task.ID]Team {
	out := make(map[task.ID]Team)
	for _, t := range c.pool.InState(task.StateOpen) {
		team, ok, err := c.TryAssign(t)
		if err == nil && ok {
			out[t.ID] = team
		}
	}
	return out
}
