package workload

import (
	"math"
	"strings"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/assign"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/task"
)

func TestNewInstanceDeterministicAndFeasible(t *testing.T) {
	spec := InstanceSpec{
		Seed: 3, Workers: 30, Model: AffinityClustered, Clusters: 5,
		Constraints: task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2},
	}
	a, b := NewInstance(spec), NewInstance(spec)
	if len(a.Workers) != 30 || len(a.Problem.Candidates) != 30 {
		t.Fatalf("instance sizes wrong: %d workers", len(a.Workers))
	}
	for i := range a.Problem.Candidates {
		if a.Problem.Candidates[i] != b.Problem.Candidates[i] {
			t.Fatal("instances with the same seed should be identical")
		}
		s := a.Problem.Candidates[i].Skill
		if s < 0.3 || s > 1.0 {
			t.Errorf("skill %v out of range", s)
		}
	}
	if a.Problem.Affinity.Get(a.Workers[0], a.Workers[1]) != b.Problem.Affinity.Get(b.Workers[0], b.Workers[1]) {
		t.Error("affinities should be deterministic")
	}
	team, err := (assign.AffinityGreedy{}).FormTeam(a.Problem)
	if err != nil {
		t.Fatalf("generated instance should be solvable: %v", err)
	}
	if !assign.Feasible(a.Problem, team.Members) {
		t.Error("greedy team should be feasible")
	}
}

func TestNewInstanceAffinityModels(t *testing.T) {
	meanAffinity := func(model AffinityModel) (same, cross float64) {
		inst := NewInstance(InstanceSpec{Seed: 5, Workers: 20, Model: model, Clusters: 4,
			Constraints: task.Constraints{UpperCriticalMass: 3}})
		var sSum, cSum float64
		var sN, cN int
		for i := 0; i < len(inst.Workers); i++ {
			for j := i + 1; j < len(inst.Workers); j++ {
				v := inst.Problem.Affinity.Get(inst.Workers[i], inst.Workers[j])
				if i%4 == j%4 {
					sSum += v
					sN++
				} else {
					cSum += v
					cN++
				}
			}
		}
		return sSum / float64(sN), cSum / float64(cN)
	}
	same, cross := meanAffinity(AffinityClustered)
	if same <= cross+0.3 {
		t.Errorf("clustered model: in-cluster %.2f should clearly exceed cross-cluster %.2f", same, cross)
	}
	sameU, crossU := meanAffinity(AffinityUniformHigh)
	if math.Abs(sameU-0.9) > 1e-9 || math.Abs(crossU-0.9) > 1e-9 {
		t.Errorf("uniform-high should be 0.9 everywhere, got %.4f / %.4f", sameU, crossU)
	}
	sameR, crossR := meanAffinity(AffinityRandom)
	if sameR < 0.2 || sameR > 0.8 || crossR < 0.2 || crossR > 0.8 {
		t.Errorf("random affinities should average near 0.5, got %.2f / %.2f", sameR, crossR)
	}
}

func TestNewInstanceDefaults(t *testing.T) {
	inst := NewInstance(InstanceSpec{})
	if len(inst.Workers) != 10 {
		t.Errorf("default size = %d", len(inst.Workers))
	}
	if inst.Problem.Task.Constraints.UpperCriticalMass != task.DefaultCriticalMass {
		t.Error("constraints should be normalized")
	}
}

func TestMultiTaskBatch(t *testing.T) {
	cons := task.Constraints{UpperCriticalMass: 3, MinTeamSize: 2}
	batch := MultiTaskBatch(7, 50, 20, cons)
	if len(batch) != 20 {
		t.Fatalf("batch = %d", len(batch))
	}
	ids := make(map[task.ID]bool)
	for _, p := range batch {
		ids[p.Task.ID] = true
		if len(p.Candidates) != 50 {
			t.Errorf("candidates = %d", len(p.Candidates))
		}
	}
	if len(ids) != 20 {
		t.Error("task ids should be distinct")
	}
	// Shared population: same affinity object.
	if batch[0].Affinity != batch[1].Affinity {
		t.Error("batch should share one affinity matrix")
	}
}

func TestSubtitleSentences(t *testing.T) {
	lines := SubtitleSentences(12)
	if len(lines) != 12 {
		t.Fatalf("lines = %d", len(lines))
	}
	seen := make(map[string]bool)
	for _, l := range lines {
		if seen[l] {
			t.Errorf("duplicate line %q", l)
		}
		seen[l] = true
	}
}

func TestTranslationCyLogParsesAndRuns(t *testing.T) {
	src := TranslationCyLog(SubtitleSentences(5))
	prog, err := cylog.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v", err)
	}
	e, err := cylog.NewEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5 {
		t.Errorf("expected 5 translation requests, got %d", len(reqs))
	}
}

func TestScenarioProjectsValidate(t *testing.T) {
	projects := []struct {
		name string
		desc interface{ Validate() error }
	}{
		{"translation", ptr(TranslationProject(SubtitleSentences(3)))},
		{"journalism", ptr(JournalismProject())},
		{"surveillance", ptr(SurveillanceProject())},
	}
	for _, p := range projects {
		if err := p.desc.Validate(); err != nil {
			t.Errorf("%s project invalid: %v", p.name, err)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestScenarioTasksDecompose(t *testing.T) {
	jt := JournalismTask("city festival", []string{"intro", "events", "voices"})
	pool := task.NewPool()
	micro, err := (task.SectionDecomposer{}).Decompose(jt, func() task.ID { return pool.NextID("m") })
	if err != nil || len(micro) != 3 {
		t.Errorf("journalism decompose = %d, %v", len(micro), err)
	}
	st := SurveillanceTask([]string{"north", "south"}, []string{"am", "pm"})
	micro, err = (task.GridDecomposer{Regions: []string{"north", "south"}, TimePeriods: []string{"am", "pm"}}).Decompose(st, func() task.ID { return pool.NextID("g") })
	if err != nil || len(micro) != 4 {
		t.Errorf("surveillance decompose = %d, %v", len(micro), err)
	}
}

func TestReachabilityCyLog(t *testing.T) {
	src := ReachabilityCyLog(10)
	e, err := cylog.NewEngine(cylog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Chain of 10 edges -> 10*11/2 = 55 reachable pairs.
	if got := len(e.Facts("reach")); got != 55 {
		t.Errorf("reach = %d, want 55", got)
	}
}

func TestEligibilityCyLog(t *testing.T) {
	src := EligibilityCyLog(8, 8)
	if !strings.Contains(src, "eligible(W, T)") {
		t.Fatalf("unexpected program: %s", src)
	}
	e, err := cylog.NewEngine(cylog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 languages, 2 workers and 2 tasks each -> 4*2*2 = 16 eligible pairs.
	if got := len(e.Facts("eligible")); got != 16 {
		t.Errorf("eligible = %d, want 16", got)
	}
}
