// Package workload generates the synthetic workloads used by the experiment
// harness (EXPERIMENTS.md) and the examples: team-formation problem instances
// with controlled affinity structure, multi-task batches, and the three demo
// scenario projects (translation, citizen journalism, surveillance).
//
// All generators are deterministic given a seed so experiment tables are
// reproducible.
package workload

import (
	"fmt"
	"strings"

	"github.com/crowd4u/crowd4u-go/internal/assign"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// AffinityModel selects how pairwise affinities are generated.
type AffinityModel string

// Supported affinity models.
const (
	// AffinityRandom draws each pair uniformly from [0,1].
	AffinityRandom AffinityModel = "random"
	// AffinityClustered splits workers into k clusters with high in-cluster
	// and low cross-cluster affinity (the regime where affinity-aware
	// assignment matters most).
	AffinityClustered AffinityModel = "clustered"
	// AffinityUniformHigh gives every pair the same high affinity (the regime
	// where affinity-aware and skill-only assignment coincide).
	AffinityUniformHigh AffinityModel = "uniform-high"
)

// InstanceSpec describes one team-formation problem instance.
type InstanceSpec struct {
	Seed        int64
	Workers     int
	Model       AffinityModel
	Clusters    int
	Constraints task.Constraints
	// SkillMin/SkillMax bound the uniformly drawn per-worker skill.
	SkillMin float64
	SkillMax float64
}

// Instance is a generated problem plus the underlying worker ids.
type Instance struct {
	Problem assign.Problem
	Workers []worker.ID
}

// NewInstance generates a deterministic team-formation instance.
func NewInstance(spec InstanceSpec) Instance {
	if spec.Workers <= 0 {
		spec.Workers = 10
	}
	if spec.Clusters <= 0 {
		spec.Clusters = 4
	}
	if spec.SkillMax <= spec.SkillMin {
		spec.SkillMin, spec.SkillMax = 0.3, 1.0
	}
	r := newRNG(uint64(spec.Seed) ^ 0x5bd1e995)
	cons := spec.Constraints.Normalize()
	tk := task.NewTask("bench-task", "bench", "benchmark task", task.Sequential, cons)

	ids := make([]worker.ID, spec.Workers)
	cands := make([]assign.Candidate, spec.Workers)
	cluster := make([]int, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		ids[i] = worker.ID(fmt.Sprintf("w%05d", i))
		cluster[i] = i % spec.Clusters
		cands[i] = assign.Candidate{
			ID:    ids[i],
			Skill: spec.SkillMin + (spec.SkillMax-spec.SkillMin)*r.float(),
			Cost:  1,
		}
	}
	aff := worker.NewAffinityMatrix()
	for i := 0; i < spec.Workers; i++ {
		for j := i + 1; j < spec.Workers; j++ {
			var v float64
			switch spec.Model {
			case AffinityClustered:
				if cluster[i] == cluster[j] {
					v = 0.7 + 0.3*r.float()
				} else {
					v = 0.2 * r.float()
				}
			case AffinityUniformHigh:
				v = 0.9
			default:
				v = r.float()
			}
			aff.Set(ids[i], ids[j], v)
		}
	}
	return Instance{
		Problem: assign.Problem{Task: tk, Candidates: cands, Affinity: aff},
		Workers: ids,
	}
}

// MultiTaskBatch generates nTasks independent instances sharing one worker
// population and affinity matrix, modelling the multi-task multi-user setting
// of experiment E4. The returned problems differ only in their task ids.
func MultiTaskBatch(seed int64, nWorkers, nTasks int, cons task.Constraints) []assign.Problem {
	base := NewInstance(InstanceSpec{Seed: seed, Workers: nWorkers, Model: AffinityClustered, Constraints: cons})
	out := make([]assign.Problem, nTasks)
	for i := 0; i < nTasks; i++ {
		tk := task.NewTask(task.ID(fmt.Sprintf("bench-task-%04d", i)), "bench", "benchmark task", task.Sequential, cons.Normalize())
		out[i] = assign.Problem{Task: tk, Candidates: base.Problem.Candidates, Affinity: base.Problem.Affinity}
	}
	return out
}

// SubtitleSentences returns n deterministic subtitle lines for the translation
// scenario.
func SubtitleSentences(n int) []string {
	base := []string{
		"Welcome to the morning news.",
		"The river crossed the flood line last night.",
		"Volunteers are gathering at the community center.",
		"Please follow the instructions of the local authorities.",
		"The road to the station remains closed.",
		"Classes will resume next Monday.",
		"The festival has been postponed by one week.",
		"Thank you for watching and stay safe.",
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s (line %d)", base[i%len(base)], i+1)
	}
	return out
}

// TranslationCyLog builds the CyLog program for the video-subtitle translation
// scenario over the given subtitle lines: transcribe → translate → check, the
// sequential collaboration of Demo scenario 1.
func TranslationCyLog(lines []string) string {
	var b strings.Builder
	b.WriteString(`// Video subtitle generation and translation (sequential collaboration).
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate this subtitle line into the target language" scheme "sequential".
open rel checked(sid: int, ok: bool) key(sid) asks "Is this translation faithful and fluent?".
rel pendingTranslation(sid: int).
rel pendingCheck(sid: int, text: string).
rel final(sid: int, text: string).

pendingTranslation(S) :- sentence(S, _), translated(S, _).
pendingCheck(S, T) :- translated(S, T), checked(S, _).
final(S, T) :- translated(S, T), checked(S, true).
`)
	for i, line := range lines {
		fmt.Fprintf(&b, "sentence(%d, %q).\n", i+1, line)
	}
	return b.String()
}

// TranslationProject builds the full project description for the translation
// scenario.
func TranslationProject(lines []string) project.Description {
	return project.Description{
		Name:        "Video subtitle translation",
		Requester:   "demo",
		Summary:     "Transcribe and translate video subtitles; workers improve each other's contributions (sequential collaboration).",
		Scheme:      task.Sequential,
		CyLogSource: TranslationCyLog(lines),
		Factors: project.DesiredFactors{
			Constraints: task.Constraints{
				RequiredSkill: "translation", MinSkill: 0.3,
				UpperCriticalMass: 3, MinTeamSize: 2,
			},
		},
	}
}

// JournalismProject builds the citizen-journalism scenario: a simultaneous
// collaboration where workers draft different sections of a report in
// parallel. The complex task is created separately with JournalismTask.
func JournalismProject() project.Description {
	return project.Description{
		Name:      "Citizen journalism",
		Requester: "demo",
		Summary:   "Write a short report on a topic of your choice; team members contribute to different parts of the same text simultaneously.",
		Scheme:    task.Simultaneous,
		Factors: project.DesiredFactors{
			Constraints: task.Constraints{
				RequiredSkill: "journalism", MinSkill: 0.3,
				UpperCriticalMass: 4, MinTeamSize: 2,
			},
		},
	}
}

// JournalismTask builds the complex report task with the given topic and
// sections; decompose it with task.SectionDecomposer.
func JournalismTask(topic string, sections []string) *task.Task {
	t := task.NewTask("", "", fmt.Sprintf("Report on %s", topic), task.Simultaneous, task.Constraints{})
	t.Input["topic"] = topic
	t.Input["sections"] = strings.Join(sections, ",")
	t.Form = task.TextForm("Write your part of the report")
	return t
}

// SurveillanceProject builds the surveillance scenario: a hybrid collaboration
// where facts are collected and corrected sequentially while testimonials are
// provided simultaneously, over a region × time-period grid.
func SurveillanceProject() project.Description {
	return project.Description{
		Name:      "Disaster surveillance",
		Requester: "demo",
		Summary:   "Collect facts and testimonials about the situation in different geographic regions and time periods (hybrid collaboration).",
		Scheme:    task.Hybrid,
		Factors: project.DesiredFactors{
			Constraints: task.Constraints{
				RequiredSkill: "surveillance", MinSkill: 0.3,
				UpperCriticalMass: 4, MinTeamSize: 2,
			},
		},
	}
}

// SurveillanceTask builds the complex surveillance task; decompose it with
// task.GridDecomposer over the same regions and periods.
func SurveillanceTask(regions, periods []string) *task.Task {
	t := task.NewTask("", "", "Situation survey", task.Hybrid, task.Constraints{})
	t.Input["regions"] = strings.Join(regions, ",")
	t.Input["periods"] = strings.Join(periods, ",")
	t.Form = task.TextForm("Report what you observed")
	return t
}

// ReachabilityCyLog generates a CyLog program computing graph reachability
// over a chain of n edges; it is the standard rule-engine stress workload for
// experiment E6.
func ReachabilityCyLog(n int) string {
	var b strings.Builder
	b.WriteString(`rel edge(a: int, b: int).
rel reach(a: int, b: int).
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(%d, %d).\n", i, i+1)
	}
	return b.String()
}

// EligibilityCyLog generates a CyLog program that derives worker-task
// eligibility from language facts, sized by the number of workers and tasks;
// used by the E6 throughput benchmark with a join-heavy, non-recursive shape.
func EligibilityCyLog(workers, tasks int) string {
	var b strings.Builder
	b.WriteString(`rel worker(wid: int, lang: string).
rel crowdtask(tid: int, lang: string).
rel eligible(wid: int, tid: int).
eligible(W, T) :- worker(W, L), crowdtask(T, L).
`)
	langs := []string{"en", "ja", "fr", "ar"}
	for i := 0; i < workers; i++ {
		fmt.Fprintf(&b, "worker(%d, %q).\n", i, langs[i%len(langs)])
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&b, "crowdtask(%d, %q).\n", i, langs[i%len(langs)])
	}
	return b.String()
}

// rng is a SplitMix64 generator local to the package for determinism.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
