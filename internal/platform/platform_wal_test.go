package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/wal"
)

// engineFingerprint captures the durable observables the crash differential
// compares: every relation's sorted tuples plus the sorted pending request
// ids. Task-pool state is deliberately excluded — task ids restart with the
// process; only engine state must survive byte-identically.
func engineFingerprint(e *cylog.Engine) string {
	var b strings.Builder
	for _, name := range e.Database().Names() {
		fmt.Fprintf(&b, "%s:", name)
		for _, tup := range e.Facts(name) {
			fmt.Fprintf(&b, "%v;", tup)
		}
		b.WriteString("\n")
	}
	var ids []string
	for _, r := range e.PendingRequests() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "pending:%v\n", ids)
	return b.String()
}

func eventKinds(p *Platform) map[string]int {
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	return kinds
}

// runAnsweredRound generates the round's tasks and answers every one through
// the batched submission path with a deterministic oracle keyed on the task's
// input, then returns how many tasks it answered.
func runAnsweredRound(t *testing.T, p *Platform, id project.ID) int {
	t.Helper()
	created, err := p.GenerateTasksFromCyLog(id)
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range created {
		fields := map[string]string{}
		for _, f := range tk.Form.Fields {
			if f.Kind == task.FieldSelect {
				fields[f.Name] = "yes"
			} else {
				fields[f.Name] = "answer-" + tk.Input["sid"]
			}
		}
		var submit func(task.ID, *task.Result) error = p.SubmitResultBatched
		if i%2 == 1 {
			submit = p.SubmitResult // alternate the immediate path
		}
		if err := submit(tk.ID, &task.Result{SubmittedBy: "w1", Fields: fields, Quality: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return len(created)
}

func TestAttachWALPersistsRounds(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, err := p.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(id, l, 0); err != nil {
		t.Fatal(err)
	}
	if !p.Engine(id).JournalingEnabled() {
		t.Fatal("AttachWAL must enable engine journaling")
	}

	// Drive rounds until quiescent: translate both sentences, then check both.
	for rounds := 0; rounds < 5; rounds++ {
		if n := runAnsweredRound(t, p, id); n == 0 {
			break
		}
	}
	if _, err := p.GenerateTasksFromCyLog(id); err != nil { // commit the last round
		t.Fatal(err)
	}
	live := p.Engine(id)
	if got := len(live.Facts("final")); got != 2 {
		t.Fatalf("final = %d facts, want 2", got)
	}
	st, ok := p.WALStats(id)
	if !ok || st.Appends == 0 || st.AppendedOps == 0 {
		t.Fatalf("WAL saw no appends: %+v (ok=%v)", st, ok)
	}
	kinds := eventKinds(p)
	if kinds["wal-append"] != st.Appends {
		t.Fatalf("wal-append events = %d, stats report %d appends", kinds["wal-append"], st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A second platform recovers the project to the same engine state.
	p2, _ := newPlatformWithCrowd(t, 10)
	admin2, err := p2.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rstats, err := p2.RecoverProject(admin2.Description.ID, l2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rstats)
	}
	if got, want := engineFingerprint(p2.Engine(admin2.Description.ID)), engineFingerprint(live); got != want {
		t.Fatalf("recovered engine differs:\n got %s\nwant %s", got, want)
	}
	if !p2.Engine(admin2.Description.ID).JournalingEnabled() {
		t.Fatal("RecoverProject must leave journaling enabled for the next epoch")
	}
	if eventKinds(p2)["wal-recovered"] != 1 {
		t.Fatalf("events = %v, want one wal-recovered", eventKinds(p2))
	}
}

func TestWALSnapshotCadence(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, err := p.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(id, l, 1); err != nil { // snapshot after every append
		t.Fatal(err)
	}
	for rounds := 0; rounds < 5; rounds++ {
		if n := runAnsweredRound(t, p, id); n == 0 {
			break
		}
	}
	if _, err := p.GenerateTasksFromCyLog(id); err != nil {
		t.Fatal(err)
	}
	st, _ := p.WALStats(id)
	if st.Snapshots == 0 || st.SnapshotSeq == 0 {
		t.Fatalf("cadence 1 wrote no snapshots: %+v", st)
	}
	if eventKinds(p)["wal-snapshot"] != st.Snapshots {
		t.Fatalf("events = %v, stats = %+v", eventKinds(p), st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery from snapshot + suffix matches the live engine.
	p2, _ := newPlatformWithCrowd(t, 10)
	admin2, _ := p2.RegisterProject(translationProject())
	l2, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rstats, err := p2.RecoverProject(admin2.Description.ID, l2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.SnapshotSeq == 0 {
		t.Fatalf("recovery ignored the snapshots: %+v", rstats)
	}
	if got, want := engineFingerprint(p2.Engine(admin2.Description.ID)), engineFingerprint(p.Engine(id)); got != want {
		t.Fatalf("recovered engine differs:\n got %s\nwant %s", got, want)
	}
}

func TestAttachWALRequiresEngine(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 5)
	plain, err := p.RegisterProject(project.Description{Name: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := p.AttachWAL(plain.Description.ID, l, 0); err == nil {
		t.Error("attaching to a project without an engine should fail")
	}
	if _, err := p.RecoverProject(plain.Description.ID, l, 0); err == nil {
		t.Error("recovering a project without an engine should fail")
	}
	if _, ok := p.WALStats(plain.Description.ID); ok {
		t.Error("WALStats should report no WAL")
	}
}

// TestConcurrentCommitRoundsSerialized hammers CommitRound from several
// goroutines — mostly empty rounds racing the rounds that carry staged
// answers — against a WAL-attached project, the commit pattern the HTTP
// layer makes reachable (deriver ticks racing explicit POST .../fixpoint).
// Run under -race it is the regression gate for the per-project commit
// mutex: without it, concurrent commits interleave into wal.Log.Append and
// can publish a later round's "fixpoint" event before an earlier round's
// answers are durable. The test checks both ends of the contract: fixpoint
// events land in strictly increasing round order, and the log recovers to
// the exact live engine state.
func TestConcurrentCommitRoundsSerialized(t *testing.T) {
	const program = `
rel item(id: int).
open rel label(id: int, ok: bool) key(id) asks "ok?".
rel labeled(id: int).

labeled(I) :- item(I), label(I, true).
`
	const (
		items      = 64
		stagers    = 8
		committers = 4
	)
	p := New()
	admin, err := p.RegisterProject(project.Description{ID: "load", Name: "load", CyLogSource: program})
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(id, l, 3); err != nil {
		t.Fatal(err)
	}
	eng := p.Engine(id)
	for i := 1; i <= items; i++ {
		if err := eng.AddFact("item", i); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := p.CommitRound(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Requests) != items {
		t.Fatalf("initial commit left %d requests, want %d", len(rc.Requests), items)
	}

	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := p.CommitRound(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < stagers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += stagers {
				if _, err := p.StageAnswer(id, rc.Requests[i].ID, map[string]any{"ok": true}); err != nil {
					t.Errorf("staging %s: %v", rc.Requests[i].ID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := p.CommitRound(id); err != nil { // flush whatever is still staged
		t.Fatal(err)
	}
	if got := len(eng.Facts("labeled")); got != items {
		t.Fatalf("labeled = %d facts, want %d (answers lost in concurrent commits)", got, items)
	}
	// The round contract: fixpoint events must appear in strictly increasing
	// round order — an empty round must not overtake the round whose answers
	// it would falsely declare durable.
	var last uint64
	for _, e := range p.Events() {
		if e.Kind != "fixpoint" {
			continue
		}
		if e.Round <= last {
			t.Fatalf("fixpoint round %d recorded after round %d", e.Round, last)
		}
		last = e.Round
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The concurrently written log recovers byte-identically.
	p2 := New()
	admin2, err := p2.RegisterProject(project.Description{ID: "load", Name: "load", CyLogSource: program})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := p2.RecoverProject(admin2.Description.ID, l2, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := engineFingerprint(p2.Engine(admin2.Description.ID)), engineFingerprint(eng); got != want {
		t.Fatalf("recovered engine differs:\n got %s\nwant %s", got, want)
	}
}

func TestSubmitResultBatchedStagesUntilCommit(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(translationProject())
	id := admin.Description.ID
	created, err := p.GenerateTasksFromCyLog(id)
	if err != nil || len(created) != 2 {
		t.Fatalf("created = %v, err = %v", created, err)
	}
	if err := p.SubmitResultBatched(created[0].ID, &task.Result{
		SubmittedBy: "w1", Fields: map[string]string{"text": "Bonjour"}, Quality: 1,
	}); err != nil {
		t.Fatal(err)
	}
	eng := p.Engine(id)
	if got := len(eng.Facts("translated")); got != 0 {
		t.Fatalf("batched submission leaked before commit: translated = %d", got)
	}
	if created[0].State() != task.StateCompleted {
		t.Errorf("task state = %v, want completed", created[0].State())
	}
	if _, err := p.GenerateTasksFromCyLog(id); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Facts("translated")); got != 1 {
		t.Fatalf("translated after commit = %d, want 1", got)
	}
	if err := p.SubmitResultBatched("nope", &task.Result{}); err == nil {
		t.Error("unknown task should fail")
	}
}
