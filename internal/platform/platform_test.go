package platform

import (
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/assign"
	"github.com/crowd4u/crowd4u-go/internal/crowdsim"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// simCrowd adapts crowdsim.Crowd to the platform.Crowd interface (it already
// satisfies all three sub-interfaces; this alias is just for clarity).
type simCrowd = crowdsim.Crowd

func newPlatformWithCrowd(t *testing.T, n int) (*Platform, *simCrowd) {
	t.Helper()
	p := New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	cfg := crowdsim.DefaultConfig(42)
	cfg.InterestProbability = 1.0 // deterministic full interest for platform tests
	cfg.AcceptProbability = 1.0
	crowd := crowdsim.New(cfg, p.Workers)
	crowd.GeneratePopulation(crowdsim.DefaultPopulation(n))
	return p, crowd
}

const translationCyLog = `
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate this subtitle line" scheme "sequential".
open rel checked(sid: int, ok: bool) key(sid) asks "Is the translation correct?".
rel needTranslation(sid: int).
rel needCheck(sid: int, text: string).
rel final(sid: int, text: string).

sentence(1, "Hello world").
sentence(2, "See you tomorrow").

needTranslation(S) :- sentence(S, _), translated(S, _).
needCheck(S, T) :- translated(S, T), checked(S, _).
final(S, T) :- translated(S, T), checked(S, true).
`

func translationProject() project.Description {
	return project.Description{
		Name:        "Subtitle translation",
		Requester:   "mori",
		Scheme:      task.Sequential,
		CyLogSource: translationCyLog,
		Factors: project.DesiredFactors{
			Constraints: task.Constraints{
				RequiredSkill: "translation", MinSkill: 0.3,
				UpperCriticalMass: 3, MinTeamSize: 2,
			},
			RecruitmentWindow: time.Hour,
		},
	}
}

func TestRegisterProjectCreatesEngine(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, err := p.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine(admin.Description.ID) == nil {
		t.Error("CyLog project should get an engine")
	}
	events := p.Events()
	if len(events) != 1 || events[0].Kind != "project-registered" {
		t.Errorf("events = %v", events)
	}
	// Project without CyLog has no engine.
	noCy, err := p.RegisterProject(project.Description{Name: "plain", Scheme: task.Individual})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine(noCy.Description.ID) != nil {
		t.Error("plain project should have no engine")
	}
	// Invalid CyLog is rejected.
	bad := translationProject()
	bad.CyLogSource = "rel broken("
	if _, err := p.RegisterProject(bad); err == nil {
		t.Error("invalid CyLog should be rejected")
	}
}

func TestGenerateTasksFromCyLog(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(translationProject())
	created, err := p.GenerateTasksFromCyLog(admin.Description.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 {
		t.Fatalf("created %d tasks, want 2 (one per sentence)", len(created))
	}
	for _, tk := range created {
		if tk.Scheme != task.Sequential {
			t.Errorf("task scheme = %s", tk.Scheme)
		}
		if tk.Description != "Translate this subtitle line" {
			t.Errorf("task description = %q", tk.Description)
		}
		if tk.Input["sid"] == "" {
			t.Errorf("task should carry the key input: %v", tk.Input)
		}
		if len(tk.Form.Fields) != 1 || tk.Form.Fields[0].Name != "text" {
			t.Errorf("form = %+v", tk.Form)
		}
		if !tk.Constraints.RecruitmentDeadline.After(time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC)) {
			t.Error("recruitment deadline should come from the project window")
		}
		if !strings.HasPrefix(tk.GeneratedBy, "cylog:") {
			t.Errorf("GeneratedBy = %q", tk.GeneratedBy)
		}
	}
	// Re-generating does not duplicate tasks.
	again, err := p.GenerateTasksFromCyLog(admin.Description.ID)
	if err != nil || len(again) != 0 {
		t.Errorf("regeneration created %d tasks, err=%v", len(again), err)
	}
	// Eligibility was computed at registration time.
	eligible := p.Workers.WorkersWith(worker.Eligible, string(created[0].ID))
	if len(eligible) == 0 {
		t.Error("eligibility should be computed for generated tasks")
	}
	// Unknown project / project without CyLog fail.
	if _, err := p.GenerateTasksFromCyLog("nope"); err == nil {
		t.Error("unknown project should fail")
	}
	plain, _ := p.RegisterProject(project.Description{Name: "plain"})
	if _, err := p.GenerateTasksFromCyLog(plain.Description.ID); err == nil {
		t.Error("project without CyLog should fail")
	}
}

func TestEligibilityRule(t *testing.T) {
	rule := EligibilityRule(task.Constraints{
		RequireLogin:          true,
		RequireNativeLanguage: "ja",
		RequiredLanguages:     []string{"en"},
		Region:                "tsukuba",
		RequiredSkill:         "translation",
		MinSkill:              0.5,
	})
	ok := &worker.Worker{
		LoggedIn: true,
		Factors: worker.HumanFactors{
			NativeLanguages: []string{"ja"},
			OtherLanguages:  []string{"en"},
			Location:        worker.Location{Region: "Tsukuba"},
			Skills:          map[string]float64{"translation": 0.8},
		},
	}
	if !rule(ok) {
		t.Error("qualifying worker should be eligible")
	}
	cases := []func(*worker.Worker){
		func(w *worker.Worker) { w.LoggedIn = false },
		func(w *worker.Worker) { w.Factors.NativeLanguages = []string{"en"} },
		func(w *worker.Worker) { w.Factors.OtherLanguages = nil },
		func(w *worker.Worker) { w.Factors.Location.Region = "tokyo" },
		func(w *worker.Worker) { w.Factors.Skills["translation"] = 0.2 },
	}
	for i, mutate := range cases {
		w := ok.Clone()
		mutate(w)
		if rule(w) {
			t.Errorf("case %d: disqualified worker should not be eligible", i)
		}
	}
}

func TestAddComplexTaskDecomposes(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(project.Description{
		Name:   "Citizen journalism",
		Scheme: task.Simultaneous,
		Factors: project.DesiredFactors{
			Constraints: task.Constraints{UpperCriticalMass: 4, MinTeamSize: 2, RequiredSkill: "journalism", MinSkill: 0.3},
		},
	})
	parent := task.NewTask("", string(admin.Description.ID), "Report on the festival", task.Simultaneous, task.Constraints{})
	parent.Input["topic"] = "city festival"
	parent.Input["sections"] = "intro,main,interviews"
	micro, err := p.AddComplexTask(admin.Description.ID, parent, task.SectionDecomposer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != 3 {
		t.Fatalf("micro-tasks = %d", len(micro))
	}
	if p.Tasks.Len() != 4 { // parent + 3 micro
		t.Errorf("pool size = %d", p.Tasks.Len())
	}
	for _, m := range micro {
		if m.Constraints.UpperCriticalMass != 4 || m.Constraints.RequiredSkill != "journalism" {
			t.Errorf("micro constraints not inherited: %+v", m.Constraints)
		}
	}
	if parent.State() == task.StateOpen {
		t.Error("parent should not remain open for assignment")
	}
	if _, err := p.AddComplexTask("nope", parent, task.SectionDecomposer{}); err == nil {
		t.Error("unknown project should fail")
	}
}

func TestAddTaskAndAssignmentAlgorithm(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(project.Description{Name: "simple"})
	tk := task.NewTask("", "", "single", task.Individual, task.Constraints{UpperCriticalMass: 1, MinTeamSize: 1})
	if err := p.AddTask(admin.Description.ID, tk); err != nil {
		t.Fatal(err)
	}
	if tk.ProjectID != string(admin.Description.ID) || tk.ID == "" {
		t.Errorf("task not normalised: %+v", tk)
	}
	if err := p.AddTask("nope", task.NewTask("", "", "x", task.Individual, task.Constraints{})); err == nil {
		t.Error("unknown project should fail")
	}
	if err := p.SetAssignmentAlgorithm("star"); err != nil {
		t.Fatal(err)
	}
	if p.Controller.Algorithm().Name() != "star" {
		t.Error("algorithm not set")
	}
	if err := p.SetAssignmentAlgorithm("bogus"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestFullTranslationCycle(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 20)
	admin, err := p.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := p.RunUntilQuiescent(crowd, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("expected at least 2 cycles (translate then check), got %d", len(reports))
	}
	first := reports[0]
	if first.GeneratedTasks != 2 || first.AssignedTasks != 2 || first.CompletedTasks != 2 {
		t.Errorf("first cycle = %+v", first)
	}
	if first.MeanTeamSize < 2 {
		t.Errorf("mean team size = %v, want >= 2", first.MeanTeamSize)
	}
	if first.MeanQuality <= 0 || first.MeanAffinity <= 0 {
		t.Errorf("first cycle quality/affinity = %+v", first)
	}

	// The CyLog program eventually derives final translations for both
	// sentences (translated + positively checked). The simulated checker says
	// yes ~always for skilled teams; assert the translated relation is full
	// and final has at least one row.
	eng := p.Engine(admin.Description.ID)
	if got := len(eng.Facts("translated")); got != 2 {
		t.Errorf("translated facts = %d", got)
	}
	if got := len(eng.Facts("checked")); got != 2 {
		t.Errorf("checked facts = %d", got)
	}
	results := p.CompletedResults(admin.Description.ID)
	if len(results) < 4 { // 2 translation tasks + 2 check tasks
		t.Errorf("completed results = %d", len(results))
	}
	// Workers learned skills from completing tasks.
	learned := false
	for _, id := range p.Workers.IDs() {
		if p.Workers.Skills().Observations(id, "translation") > 0 {
			learned = true
			break
		}
	}
	if !learned {
		t.Error("completions should feed the skill estimator")
	}
	// Event log covers the lifecycle.
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{"project-registered", "task-generated", "task-assigned", "task-completed"} {
		if kinds[k] == 0 {
			t.Errorf("missing %s events: %v", k, kinds)
		}
	}
}

func TestInfeasibleConstraintsNotifyRequester(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 10)
	d := translationProject()
	// Every worker stays eligible (low per-worker skill floor) but the team
	// quality target is unreachable within the critical mass, so assignment
	// is infeasible rather than merely waiting for interest.
	d.Factors.Constraints.MinSkill = 0.1
	d.Factors.Constraints.MinTeamSkill = 10
	admin, _ := p.RegisterProject(d)
	if _, err := p.RunCycle(crowd); err != nil {
		t.Fatal(err)
	}
	notices := p.Projects.Notices(admin.Description.ID)
	found := false
	for _, n := range notices {
		if n.Level == "action-required" && strings.Contains(n.Message, "relax") {
			found = true
		}
	}
	if !found {
		t.Errorf("requester should be asked to relax constraints, notices = %v", notices)
	}
}

// declineAll is an AcceptanceModel where every suggested member refuses to
// undertake the task.
type declineAll struct{}

func (declineAll) WillUndertake(worker.ID, task.ID) bool { return false }

func TestConfirmTeamsReassignsOnDecline(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 20)
	admin, _ := p.RegisterProject(translationProject())
	p.GenerateTasksFromCyLog(admin.Description.ID)
	p.CollectInterest(crowd)
	teams := p.AssignOpenTasks()
	if len(teams) == 0 {
		t.Fatal("no teams assigned")
	}
	started := p.ConfirmTeams(declineAll{})
	if len(started) != 0 {
		t.Errorf("no task should start when everyone declines, got %d", len(started))
	}
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	if kinds["reassigned"] == 0 {
		t.Error("declines should trigger re-assignment")
	}
}

func TestSweepDeadlines(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 20)
	now := time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC)
	p.SetClock(func() time.Time { return now })
	admin, _ := p.RegisterProject(translationProject())
	p.GenerateTasksFromCyLog(admin.Description.ID)
	p.CollectInterest(crowd)
	teams := p.AssignOpenTasks()
	if len(teams) == 0 {
		t.Fatal("no teams assigned")
	}
	// Advance past the 1h recruitment window without anyone undertaking.
	later := now.Add(2 * time.Hour)
	p.SetClock(func() time.Time { return later })
	reassigned, expired := p.SweepDeadlines()
	if len(reassigned) == 0 {
		t.Errorf("expired assignments should be re-executed, got %v (expired=%v)", reassigned, expired)
	}
}

func TestRunCycleSkipsPausedProjects(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(translationProject())
	p.Projects.SetStatus(admin.Description.ID, project.StatusPaused)
	report, err := p.RunCycle(crowd)
	if err != nil {
		t.Fatal(err)
	}
	if report.GeneratedTasks != 0 {
		t.Errorf("paused project should not generate tasks: %+v", report)
	}
}

func TestConvertAnswerAndForms(t *testing.T) {
	if convertAnswer("ok", "yes") != true || convertAnswer("ok", "no") != false {
		t.Error("boolean columns should convert yes/no")
	}
	if convertAnswer("text", "true") != true {
		t.Error("explicit true converts to bool even for text columns")
	}
	if convertAnswer("text", "hello") != "hello" {
		t.Error("plain text should pass through")
	}
	if !looksBoolean("is_valid") || !looksBoolean("confirmed") || looksBoolean("text") {
		t.Error("looksBoolean misbehaves")
	}
	if mean(nil) != 0 || mean([]float64{2, 4}) != 3 {
		t.Error("mean misbehaves")
	}
}

// TestBatchedAnswerRound pins the batch-aware crowd loop: a round of
// completed tasks stages its answers into one AnswerBatch (nothing reaches
// the engine yet), and the next GenerateTasksFromCyLog commits the whole
// round through one delta-seeded incremental fixpoint.
func TestBatchedAnswerRound(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 20)
	admin, err := p.RegisterProject(translationProject())
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	if _, err := p.GenerateTasksFromCyLog(id); err != nil {
		t.Fatal(err)
	}
	p.CollectInterest(crowd)
	if teams := p.AssignOpenTasks(); len(teams) != 2 {
		t.Fatalf("assigned %d teams", len(teams))
	}
	p.ConfirmTeams(crowd)
	completed, err := p.ExecuteInProgress(crowd)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 2 {
		t.Fatalf("completed = %d tasks", len(completed))
	}
	eng := p.Engine(id)
	// The answers are staged, not ingested: the engine sees them only when
	// the next generation commits the round's batch.
	if got := len(eng.Facts("translated")); got != 0 {
		t.Fatalf("answers leaked into the engine before commit: translated = %d", got)
	}
	if got := len(eng.PendingRequests()); got != 2 {
		t.Fatalf("pending before commit = %d, want the 2 translation requests", got)
	}
	created, err := p.GenerateTasksFromCyLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Facts("translated")); got != 2 {
		t.Fatalf("translated after commit = %d, want 2", got)
	}
	if len(created) != 2 { // the two follow-up check tasks
		t.Fatalf("follow-up tasks = %d, want 2", len(created))
	}
	if s := eng.Stats(); s.SeededDeltas != 2 {
		t.Errorf("commit should seed the batch's 2 answers as deltas, stats = %+v", s)
	}
}

// TestFeedResultErrorSurfaced pins the error contract of the answer feed:
// benign rejections (request already closed) are skipped with an event, but
// a type-mismatched answer — a platform bug — is surfaced to the caller and
// the audit log instead of being swallowed as "skipped".
func TestFeedResultErrorSurfaced(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	d := translationProject()
	d.CyLogSource = `
rel item(sid: int).
open rel rating(sid: int, score: int) key(sid) asks "Rate this item".
rel rated(sid: int, score: int).
item(1).
rated(S, R) :- item(S), rating(S, R).
`
	admin, err := p.RegisterProject(d)
	if err != nil {
		t.Fatal(err)
	}
	created, err := p.GenerateTasksFromCyLog(admin.Description.ID)
	if err != nil || len(created) != 1 {
		t.Fatalf("created = %v, err = %v", created, err)
	}
	tk := created[0]

	// Hard failure: the int column rejects a non-numeric answer.
	err = p.feedResultToCyLog(tk, &task.Result{Fields: map[string]string{"score": "not-a-number"}})
	if err == nil {
		t.Fatal("type-mismatched answer should surface an error")
	}
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	if kinds["cylog-answer-error"] != 1 {
		t.Errorf("expected a cylog-answer-error event, got %v", kinds)
	}

	// Benign: the request was closed out of band; the feed skips and logs.
	if err := p.Engine(admin.Description.ID).AnswerFact("rating", 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.feedResultToCyLog(tk, &task.Result{Fields: map[string]string{"score": "4"}}); err != nil {
		t.Fatalf("closed request should be skipped, got %v", err)
	}
	kinds = map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	if kinds["cylog-answer-skipped"] != 1 {
		t.Errorf("expected a cylog-answer-skipped event, got %v", kinds)
	}
}

// TestSubmitResultSingle covers the per-answer path kept for lone
// submissions: the result completes the task and reaches the engine
// immediately, without opening a batch round.
func TestSubmitResultSingle(t *testing.T) {
	p, _ := newPlatformWithCrowd(t, 10)
	admin, _ := p.RegisterProject(translationProject())
	id := admin.Description.ID
	created, err := p.GenerateTasksFromCyLog(id)
	if err != nil || len(created) != 2 {
		t.Fatalf("created = %v, err = %v", created, err)
	}
	if err := p.SubmitResult(created[0].ID, &task.Result{
		SubmittedBy: "w1", Fields: map[string]string{"text": "Bonjour"}, Quality: 1,
	}); err != nil {
		t.Fatal(err)
	}
	eng := p.Engine(id)
	if got := len(eng.Facts("translated")); got != 1 {
		t.Fatalf("translated = %d, want 1 (per-answer path ingests immediately)", got)
	}
	if got := len(eng.PendingRequests()); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if created[0].State() != task.StateCompleted {
		t.Errorf("task state = %v", created[0].State())
	}
	if err := p.SubmitResult("nope", &task.Result{}); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestControllerSuggestionVisibleThroughPlatform(t *testing.T) {
	p, crowd := newPlatformWithCrowd(t, 15)
	admin, _ := p.RegisterProject(translationProject())
	p.GenerateTasksFromCyLog(admin.Description.ID)
	p.CollectInterest(crowd)
	teams := p.AssignOpenTasks()
	for id, team := range teams {
		got, ok := p.Controller.Suggestion(id)
		if !ok || got.Size() != team.Size() {
			t.Errorf("suggestion for %s not visible", id)
		}
		if team.Size() < 2 || team.Size() > 3 {
			t.Errorf("team size %d violates constraints", team.Size())
		}
		if team.Algorithm != (assign.AffinityGreedy{}).Name() {
			t.Errorf("unexpected algorithm %q", team.Algorithm)
		}
	}
}
