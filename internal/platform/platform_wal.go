package platform

import (
	"fmt"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/wal"
)

// Durable answer log wiring. A project with an attached WAL journals every
// ingestion its engine applies (AddFact seeds, single answers, committed
// batch rounds) and the platform persists the journal at each commit point —
// GenerateTasksFromCyLog after committing a round's batch, SubmitResult after
// a single answer — before the resulting tasks are handed out or the
// submission is acknowledged. Crashing between rounds therefore loses at most
// answers the WAL never acknowledged, and recovery re-issues exactly the
// requests those answers would have closed.

// walBinding is a project's attached log plus its snapshot cadence.
type walBinding struct {
	log *wal.Log
	// snapshotEvery triggers a snapshot (and obsolete-state truncation)
	// after that many appended records; 0 disables periodic snapshots.
	snapshotEvery int
	appends       int // records appended since the last snapshot
}

// AttachWAL attaches an opened write-ahead log to the project and starts
// journaling its engine's ingestion. snapshotEvery > 0 writes a snapshot and
// truncates obsolete log state every that-many appended records. Attach
// before ingesting anything that must be durable; for an existing log
// directory use RecoverProject instead, which replays first.
func (p *Platform) AttachWAL(projectID project.ID, log *wal.Log, snapshotEvery int) error {
	eng := p.Engine(projectID)
	if eng == nil {
		return fmt.Errorf("platform: project %s has no CyLog engine to attach a WAL to", projectID)
	}
	p.mu.Lock()
	if p.wals == nil {
		p.wals = make(map[project.ID]*walBinding)
	}
	p.wals[projectID] = &walBinding{log: log, snapshotEvery: snapshotEvery}
	p.mu.Unlock()
	eng.SetJournaling(true)
	return nil
}

// RecoverProject rebuilds the project's engine from the log directory —
// newest valid snapshot plus replayed log suffix — then attaches the log so
// subsequent rounds keep appending where the crashed process stopped. The
// project must be freshly registered (its engine holds only the program's own
// facts). The recovery outcome lands in the event log as "wal-recovered".
func (p *Platform) RecoverProject(projectID project.ID, log *wal.Log, snapshotEvery int) (wal.RecoveryStats, error) {
	eng := p.Engine(projectID)
	if eng == nil {
		return wal.RecoveryStats{}, fmt.Errorf("platform: project %s has no CyLog engine to recover", projectID)
	}
	stats, err := log.Recover(eng)
	if err != nil {
		p.record(Event{Kind: "wal-error", Project: projectID, Message: "recovery: " + err.Error()})
		return stats, err
	}
	p.record(Event{Kind: "wal-recovered", Project: projectID,
		Message: fmt.Sprintf("snapshot seq %d (%d relations), %d records / %d ops replayed (%d applied), %d pending requests",
			stats.SnapshotSeq, stats.SnapshotRelations, stats.RecordsReplayed, stats.OpsReplayed, stats.OpsApplied, stats.PendingRequests)})
	if err := p.AttachWAL(projectID, log, snapshotEvery); err != nil {
		return stats, err
	}
	return stats, nil
}

// WALStats returns the attached log's activity counters and whether the
// project has a WAL attached.
func (p *Platform) WALStats(projectID project.ID) (wal.Stats, bool) {
	p.mu.Lock()
	wb := p.wals[projectID]
	p.mu.Unlock()
	if wb == nil {
		return wal.Stats{}, false
	}
	return wb.log.Stats(), true
}

// persistRound drains the engine's ingestion journal and appends it to the
// project's WAL as one record, snapshotting (and truncating obsolete state)
// when the cadence is due. It is called at every commit point before the
// round's outcome is acknowledged; with no WAL attached it is a no-op. An
// append or snapshot failure is returned — the commit must fail loudly rather
// than ack answers that were never made durable.
func (p *Platform) persistRound(projectID project.ID, eng *cylog.Engine) error {
	p.mu.Lock()
	wb := p.wals[projectID]
	p.mu.Unlock()
	if wb == nil {
		return nil
	}
	ops := eng.DrainJournal()
	if len(ops) > 0 {
		seq, err := wb.log.Append(ops)
		if err != nil {
			p.record(Event{Kind: "wal-error", Project: projectID, Message: "append: " + err.Error()})
			return fmt.Errorf("platform: persisting round for %s: %w", projectID, err)
		}
		p.record(Event{Kind: "wal-append", Project: projectID,
			Message: fmt.Sprintf("record %d: %d ops", seq, len(ops))})
		p.mu.Lock()
		wb.appends++
		p.mu.Unlock()
	}
	p.mu.Lock()
	due := wb.snapshotEvery > 0 && wb.appends >= wb.snapshotEvery
	p.mu.Unlock()
	if due {
		seq, err := wb.log.Snapshot(eng)
		if err != nil {
			p.record(Event{Kind: "wal-error", Project: projectID, Message: "snapshot: " + err.Error()})
			return fmt.Errorf("platform: snapshotting %s: %w", projectID, err)
		}
		if err := wb.log.TruncateObsolete(); err != nil {
			p.record(Event{Kind: "wal-error", Project: projectID, Message: "truncate: " + err.Error()})
			return fmt.Errorf("platform: truncating %s: %w", projectID, err)
		}
		p.mu.Lock()
		wb.appends = 0
		p.mu.Unlock()
		p.record(Event{Kind: "wal-snapshot", Project: projectID,
			Message: fmt.Sprintf("snapshot covers seq %d", seq)})
	}
	return nil
}

// SubmitResultBatched completes a task like SubmitResult but stages the
// answer into the project's current round batch instead of ingesting it
// immediately: the answer commits — and becomes durable — with the rest of
// the round at the next GenerateTasksFromCyLog. It is the out-of-band twin of
// the collaborative execution path, for callers that collect submissions
// between rounds.
func (p *Platform) SubmitResultBatched(taskID task.ID, result *task.Result) error {
	t, ok := p.Tasks.Get(taskID)
	if !ok {
		return fmt.Errorf("platform: unknown task %s", taskID)
	}
	if err := t.Complete(result); err != nil {
		return err
	}
	p.record(Event{Kind: "task-completed", Project: project.ID(t.ProjectID), Task: taskID,
		Message: "batched submission by " + result.SubmittedBy})
	return p.feedResultToCyLog(t, result)
}
