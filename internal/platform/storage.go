package platform

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// StorageOptions selects the relstore backend new project engines are built
// on. The zero value (backend "") means "memory" unless the CYLOG_BACKEND
// environment variable says otherwise — the same env-over-default pattern the
// engine uses for CYLOG_PARALLELISM / CYLOG_SHARDS, so the whole test matrix
// can be pushed onto the disk backend without touching call sites.
type StorageOptions struct {
	// Backend is "memory" or "disk" ("" = memory).
	Backend string
	// Dir is the root directory for disk-backed projects; each project gets
	// its own subdirectory. Empty = a fresh temporary directory per project.
	Dir string
	// BudgetBytes is the disk backend's residency budget
	// (0 = relstore.DefaultDiskBudgetBytes).
	BudgetBytes int64
}

// DefaultStorageFromEnv builds the platform's initial storage options from
// the environment: CYLOG_BACKEND (memory|disk), CYLOG_BACKEND_DIR and
// CYLOG_BACKEND_BUDGET (bytes).
func DefaultStorageFromEnv() StorageOptions {
	opts := StorageOptions{Backend: os.Getenv("CYLOG_BACKEND"), Dir: os.Getenv("CYLOG_BACKEND_DIR")}
	if v := os.Getenv("CYLOG_BACKEND_BUDGET"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			opts.BudgetBytes = n
		}
	}
	return opts
}

// SetStorage replaces the storage options used for engines of projects
// registered after the call. Existing engines keep their backends.
func (p *Platform) SetStorage(opts StorageOptions) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storage = opts
}

// Storage returns the platform's current storage options.
func (p *Platform) Storage() StorageOptions {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storage
}

// newDatabaseFor builds the relstore database for a project's engine,
// honoring the project-level backend override, then the platform options.
func (p *Platform) newDatabaseFor(id project.ID, override string) (*relstore.Database, error) {
	p.mu.Lock()
	opts := p.storage
	p.mu.Unlock()
	kind := opts.Backend
	if override != "" {
		kind = override
	}
	switch kind {
	case "", "memory":
		return relstore.NewDatabase(), nil
	case "disk":
		dir := opts.Dir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "cylog-"+sanitizeID(id)+"-")
			if err != nil {
				return nil, fmt.Errorf("platform: disk backend for %s: %w", id, err)
			}
			dir = tmp
		} else {
			dir = filepath.Join(dir, sanitizeID(id))
		}
		b, err := relstore.NewDiskBackend(relstore.DiskOptions{Dir: dir, BudgetBytes: opts.BudgetBytes})
		if err != nil {
			return nil, fmt.Errorf("platform: disk backend for %s: %w", id, err)
		}
		return relstore.NewDatabaseWith(b), nil
	default:
		return nil, fmt.Errorf("platform: unknown storage backend %q (want memory or disk)", kind)
	}
}

// sanitizeID maps a project id onto a path-safe directory name.
func sanitizeID(id project.ID) string {
	out := make([]rune, 0, len(id))
	for _, r := range string(id) {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "project"
	}
	return string(out)
}

// BackendStats returns the relstore backend statistics of a project's engine
// (ok=false when the project has no engine).
func (p *Platform) BackendStats(id project.ID) (relstore.BackendStats, bool) {
	eng := p.Engine(id)
	if eng == nil {
		return relstore.BackendStats{}, false
	}
	return eng.Database().Backend().Stats(), true
}

// maintainBackend asks the engine's backend to enforce its resource policy —
// called after commit points so a disk-backed project pages out cold
// relations between rounds. Failures are recorded as events, not returned:
// durability is the WAL's job, residency is best-effort.
func (p *Platform) maintainBackend(id project.ID, eng *cylog.Engine) {
	if err := eng.Database().Backend().Maintain(); err != nil {
		p.record(Event{Kind: "backend-error", Project: id, Message: err.Error()})
	}
}
