package platform

import (
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
)

// backendDiffCyLog is the differential's crowd scenario: recursive reach over
// seeded edges, open approval requests on the endpoints. edge and approve are
// base relations (managed and paged by the disk backend); the rest are IDB —
// volatile, recomputed each fixpoint.
const backendDiffCyLog = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this endpoint".
rel approved(n: int).
rel rejected(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
approved(N) :- endpoint(N), approve(N, true).
rejected(N) :- endpoint(N), !approved(N).
`

// backendOracle answers deterministically from the request key and seed, so
// every backend run sees the identical answer stream.
func backendOracle(seed int64, key string) (answer, approve bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	v := h.Sum64()
	return v%10 < 8, v%2 == 0
}

// backendTaskKey rebuilds the request key from a generated task's inputs in
// sorted column order.
func backendTaskKey(tk *task.Task) string {
	cols := make([]string, 0, len(tk.Input))
	for c := range tk.Input {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	parts := make([]string, 0, len(cols))
	for _, c := range cols {
		parts = append(parts, c+"="+tk.Input[c])
	}
	return strings.Join(parts, ",")
}

// backendFingerprint digests the durable observables of an engine: every
// relation's tuples and the sorted pending request ids. The stats epoch is a
// history counter and deliberately excluded.
func backendFingerprint(e *cylog.Engine) string {
	h := sha256.New()
	for _, name := range e.Database().Names() {
		fmt.Fprintf(h, "%s:", name)
		for _, tup := range e.Facts(name) {
			fmt.Fprintf(h, "%v;", tup)
		}
	}
	var ids []string
	for _, r := range e.PendingRequests() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	fmt.Fprintf(h, "pending:%v", ids)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// driveBackendLoop runs the crowd loop on one storage configuration and
// returns the per-round fingerprints. Each round commits through
// GenerateTasksFromCyLog/SubmitResult — the same path the service layer uses,
// so a disk-backed project exercises Maintain (eviction) at every commit.
func driveBackendLoop(t *testing.T, storage StorageOptions, seed int64, edges int) []string {
	t.Helper()
	p := New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	p.SetStorage(storage)
	admin, err := p.RegisterProject(project.Description{Name: "backend-diff", CyLogSource: backendDiffCyLog})
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	eng := p.Engine(id)

	const chain = 7
	for i := 0; i < edges; i++ {
		base := (i / chain) * (chain + 1)
		if err := eng.AddFact("edge", base+i%chain, base+i%chain+1); err != nil {
			t.Fatal(err)
		}
	}

	var prints []string
	for round := 0; round < 50; round++ {
		created, err := p.GenerateTasksFromCyLog(id)
		if err != nil {
			t.Fatal(err)
		}
		answered := 0
		for _, tk := range created {
			key := backendTaskKey(tk)
			doAnswer, approve := backendOracle(seed, key)
			if !doAnswer {
				continue
			}
			fields := map[string]string{"ok": "no"}
			if approve {
				fields["ok"] = "yes"
			}
			if err := p.SubmitResult(tk.ID, &task.Result{SubmittedBy: "sim", Fields: fields, Quality: 1}); err != nil {
				t.Fatal(err)
			}
			answered++
		}
		prints = append(prints, backendFingerprint(eng))
		if len(created) == 0 && answered == 0 {
			break
		}
	}
	return prints
}

// TestBackendDifferential is the storage seam's acceptance check: across
// randomized crowd scenarios, a disk-backed project with a budget tiny enough
// to page base relations in and out every round produces, round for round,
// fixpoints and pending request ids byte-identical to the memory backend's.
// Paging must be pure implementation detail; any divergence is an eviction,
// fault-in or snapshot-codec bug.
func TestBackendDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 4; iter++ {
		seed := rng.Int63()
		edges := 30 + rng.Intn(90)
		mem := driveBackendLoop(t, StorageOptions{Backend: "memory"}, seed, edges)
		disk := driveBackendLoop(t, StorageOptions{Backend: "disk", Dir: t.TempDir(), BudgetBytes: 1 << 10}, seed, edges)
		if len(mem) != len(disk) {
			t.Fatalf("iter %d (seed=%d edges=%d): memory ran %d rounds, disk %d",
				iter, seed, edges, len(mem), len(disk))
		}
		for r := range mem {
			if mem[r] != disk[r] {
				t.Fatalf("iter %d (seed=%d edges=%d): round %d fingerprints diverge:\nmemory %s\ndisk   %s",
					iter, seed, edges, r, mem[r][:16], disk[r][:16])
			}
		}
	}
}

// TestDiskBackendCrowdLoopWithinBudget is the acceptance criterion for state
// larger than memory: a relation set whose base relations exceed the byte
// budget completes the crowd loop on the disk backend, paging relations in
// and out, and ends each commit with the resident estimate within budget.
func TestDiskBackendCrowdLoopWithinBudget(t *testing.T) {
	p := New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	const budget = 4 << 10
	p.SetStorage(StorageOptions{Backend: "disk", Dir: t.TempDir(), BudgetBytes: budget})
	admin, err := p.RegisterProject(project.Description{Name: "over-budget", CyLogSource: backendDiffCyLog})
	if err != nil {
		t.Fatal(err)
	}
	id := admin.Description.ID
	eng := p.Engine(id)

	// ~600 edge tuples is well past the 4 KiB budget on its own.
	const chain = 7
	for i := 0; i < 600; i++ {
		base := (i / chain) * (chain + 1)
		if err := eng.AddFact("edge", base+i%chain, base+i%chain+1); err != nil {
			t.Fatal(err)
		}
	}

	answeredTotal := 0
	for round := 0; round < 50; round++ {
		created, err := p.GenerateTasksFromCyLog(id)
		if err != nil {
			t.Fatal(err)
		}
		answered := 0
		for _, tk := range created {
			doAnswer, approve := backendOracle(99, backendTaskKey(tk))
			if !doAnswer {
				continue
			}
			fields := map[string]string{"ok": "no"}
			if approve {
				fields["ok"] = "yes"
			}
			if err := p.SubmitResult(tk.ID, &task.Result{SubmittedBy: "sim", Fields: fields, Quality: 1}); err != nil {
				t.Fatal(err)
			}
			answered++
		}
		answeredTotal += answered
		// Every commit ends with a Maintain pass; the resident estimate must
		// be back under budget before the next round starts.
		s, ok := p.BackendStats(id)
		if !ok || s.Backend != "disk" {
			t.Fatalf("BackendStats = %+v, %v; want disk backend stats", s, ok)
		}
		if s.ResidentBytes > s.BudgetBytes {
			t.Fatalf("round %d: resident %d bytes exceeds budget %d", round, s.ResidentBytes, s.BudgetBytes)
		}
		if len(created) == 0 && answered == 0 {
			break
		}
	}
	if answeredTotal == 0 {
		t.Fatal("scenario answered nothing; over-budget loop not exercised")
	}
	s, _ := p.BackendStats(id)
	if s.Evictions == 0 || s.SegmentWrites == 0 {
		t.Fatalf("stats = %+v; an over-budget loop must have evicted and written segments", s)
	}
	if s.Faults == 0 {
		t.Fatalf("stats = %+v; evicted base relations must have faulted back in during later rounds", s)
	}
	// The fixpoint itself must be exactly what a memory-backed run computes.
	if got := eng.Database().Relation("approved").Len() + eng.Database().Relation("rejected").Len(); got == 0 {
		t.Fatal("crowd loop derived nothing")
	}
}
