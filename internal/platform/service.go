package platform

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
)

// Service-layer ingress. The HTTP API (internal/api) ingests worker answers
// at a rate the collaborative task loop never sees: thousands of concurrent
// submitters, millions of answers. The ingress queue for that traffic is the
// engine's own AnswerBatch — concurrent-safe staging with eager validation —
// organised into numbered rounds: StageAnswer stages into the project's
// current round and returns its sequence number, CommitRound atomically
// commits the round through the delta-seeded incremental fixpoint (and the
// WAL, when attached) and advances the sequence. The round number is the
// contract between ingestion and derivation: an answer staged into round N is
// durable and derived exactly when the commit of some round >= N completes,
// which is how the API layer measures answer→fixpoint latency and how
// clients can await their consequences.
//
// GenerateTasksFromCyLog commits through the same path, so the collaborative
// loop and the HTTP ingress share one round pipeline per project and cannot
// double-commit or lose a concurrently staged answer.

// ErrNoEngine reports a project that exists but has no CyLog description —
// nothing can be staged against or derived for it.
var ErrNoEngine = errors.New("platform: project has no CyLog engine")

// roundState is a project's currently staging answer round: the batch
// collecting answers plus the sequence number CommitRound will stamp on it.
type roundState struct {
	batch *cylog.AnswerBatch
	seq   uint64
}

// engineFor resolves the project's engine, distinguishing an unknown project
// from a project without a CyLog description.
func (p *Platform) engineFor(projectID project.ID) (*cylog.Engine, error) {
	if _, ok := p.Projects.Get(projectID); !ok {
		return nil, fmt.Errorf("%w: %s", project.ErrUnknownProject, projectID)
	}
	eng := p.Engine(projectID)
	if eng == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEngine, projectID)
	}
	return eng, nil
}

// currentRound returns the project's staging round, opening a new one (with
// the next sequence number) when none is staging.
func (p *Platform) currentRound(id project.ID, eng *cylog.Engine) (*cylog.AnswerBatch, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := p.rounds[id]
	if rs == nil {
		if p.nextRound[id] == 0 {
			p.nextRound[id] = 1
		}
		rs = &roundState{batch: eng.NewAnswerBatch(), seq: p.nextRound[id]}
		p.rounds[id] = rs
	}
	return rs.batch, rs.seq
}

// retireRound drops the project's round if it still holds the given
// (already committed) batch, so the next stage opens a fresh round.
func (p *Platform) retireRound(id project.ID, b *cylog.AnswerBatch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs := p.rounds[id]; rs != nil && rs.batch == b {
		delete(p.rounds, id)
	}
}

// StageAnswer stages a worker's answer for a pending open request into the
// project's current round and returns the round's sequence number. Staging
// validates eagerly (unknown request ids, closed requests, schema mismatches
// and duplicate answers within the round are rejected now) but inserts
// nothing: the answer takes effect when the round commits. Safe for any
// number of concurrent callers; a stage that races with a commit retries into
// the next round rather than losing the answer.
func (p *Platform) StageAnswer(projectID project.ID, requestID string, values map[string]any) (uint64, error) {
	eng, err := p.engineFor(projectID)
	if err != nil {
		return 0, err
	}
	for {
		batch, seq := p.currentRound(projectID, eng)
		err := batch.Answer(requestID, values)
		if errors.Is(err, cylog.ErrBatchCommitted) {
			p.retireRound(projectID, batch)
			continue
		}
		return seq, err
	}
}

// StageFact stages a whole open-relation fact (the ingress twin of
// Engine.AnswerFact) into the project's current round and returns the round's
// sequence number. When the round commits, every pending request whose key
// the fact covers is closed.
func (p *Platform) StageFact(projectID project.ID, relation string, values ...any) (uint64, error) {
	eng, err := p.engineFor(projectID)
	if err != nil {
		return 0, err
	}
	for {
		batch, seq := p.currentRound(projectID, eng)
		err := batch.AnswerFact(relation, values...)
		if errors.Is(err, cylog.ErrBatchCommitted) {
			p.retireRound(projectID, batch)
			continue
		}
		return seq, err
	}
}

// StagedAnswers reports how many answers the project's current round holds —
// the ingress queue depth the API layer's admission control bounds.
func (p *Platform) StagedAnswers(projectID project.ID) int {
	p.mu.Lock()
	rs := p.rounds[projectID]
	p.mu.Unlock()
	if rs == nil {
		return 0
	}
	return rs.batch.Len()
}

// NextRound reports the sequence number the project's next commit will carry
// — the round any answer staged right now would join.
func (p *Platform) NextRound(id project.ID) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs := p.rounds[id]; rs != nil {
		return rs.seq
	}
	if p.nextRound[id] == 0 {
		return 1
	}
	return p.nextRound[id]
}

// RoundCommit reports one committed answer round.
type RoundCommit struct {
	// Seq is the committed round's sequence number: every answer staged with
	// a round number <= Seq is now inserted, durable (if a WAL is attached)
	// and reflected in the fixpoint.
	Seq uint64
	// Answers is the number of staged items the round carried into the
	// commit; Skipped is the subset rejected at commit time (their request
	// closed between staging and commit — benign, recorded in the event log).
	Answers int
	Skipped int
	// Requests is the full pending open-request set after the fixpoint.
	Requests []cylog.OpenRequest
	// Stats is the engine's report for the fixpoint run.
	Stats cylog.Stats
	// Duration is the wall-clock cost of the commit: batch application,
	// fixpoint and WAL append.
	Duration time.Duration
}

// commitLock returns the project's commit mutex, creating it on first use.
func (p *Platform) commitLock(id project.ID) *sync.Mutex {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.commits == nil {
		p.commits = make(map[project.ID]*sync.Mutex)
	}
	cl := p.commits[id]
	if cl == nil {
		cl = &sync.Mutex{}
		p.commits[id] = cl
	}
	return cl
}

// CommitRound atomically commits the project's staging round: the batch's
// answers are inserted, the delta-seeded incremental fixpoint re-derives
// consequences, the round is persisted to the project's WAL (when attached)
// and a "fixpoint" event carrying the round number is recorded. With nothing
// staged it still runs (an empty round is how callers force re-derivation
// after AddFact-style ingestion) and still consumes a sequence number.
// Concurrent stagers are never lost: they either made this round's batch or
// are staging into the next one.
//
// Commits for one project are serialized end to end (detach through the
// "fixpoint" event) by the project's commit mutex, so concurrent callers —
// the API deriver loop, explicit POST .../fixpoint requests, and
// GenerateTasksFromCyLog — cannot interleave: round N's event is always
// recorded before round N+1 detaches, which is what lets a client treat
// "observed fixpoint round >= N" as proof that round N's answers are
// inserted and durable.
func (p *Platform) CommitRound(projectID project.ID) (RoundCommit, error) {
	eng, err := p.engineFor(projectID)
	if err != nil {
		return RoundCommit{}, err
	}
	cl := p.commitLock(projectID)
	cl.Lock()
	defer cl.Unlock()
	batch, seq := p.detachRound(projectID)
	// With nothing staging the commit still consumes a sequence number (an
	// empty round), keeping round numbers monotone so "staged into round N,
	// committed by some round >= N" stays a valid durability test.
	start := time.Now()
	answers := 0
	if batch != nil {
		answers = batch.Len()
	}
	requests, err := eng.RunIncremental(batch)
	if err != nil {
		return RoundCommit{Seq: seq}, err
	}
	rc := RoundCommit{Seq: seq, Answers: answers, Requests: requests, Stats: eng.Stats()}
	if batch != nil {
		for _, be := range batch.CommitErrors() {
			rc.Skipped++
			p.record(Event{Kind: "cylog-answer-skipped", Project: projectID, Round: seq, Message: be.Error()})
		}
	}
	// Durability barrier: the round's answers reach the WAL before the commit
	// is acknowledged or any consequence is handed out.
	if err := p.persistRound(projectID, eng); err != nil {
		return rc, err
	}
	// With the round durable, let the backend enforce its residency policy
	// (the disk backend pages cold relations out between rounds; memory is a
	// no-op). Best-effort: failures become events, not commit failures.
	p.maintainBackend(projectID, eng)
	rc.Duration = time.Since(start)
	p.record(Event{Kind: "fixpoint", Project: projectID, Round: seq,
		Message: fmt.Sprintf("%d answers (%d skipped), %d pending requests, %s",
			rc.Answers, rc.Skipped, len(rc.Requests), rc.Duration.Round(time.Microsecond))})
	return rc, nil
}

// detachRound is takeRound without the defensive indirection: it removes and
// returns the staging round (nil batch when none) and advances the sequence.
func (p *Platform) detachRound(id project.ID) (*cylog.AnswerBatch, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nextRound[id] == 0 {
		p.nextRound[id] = 1
	}
	seq := p.nextRound[id]
	var batch *cylog.AnswerBatch
	if rs := p.rounds[id]; rs != nil {
		batch, seq = rs.batch, rs.seq
		delete(p.rounds, id)
	}
	p.nextRound[id] = seq + 1
	return batch, seq
}

// Subscribe registers a sink that observes every platform event as it is
// recorded (after the event log append, outside the platform lock). The
// returned cancel function unregisters it. Sinks run synchronously on the
// recording goroutine — keep them fast and never call back into the platform
// from one.
func (p *Platform) Subscribe(fn func(Event)) (cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.subs == nil {
		p.subs = make(map[int]func(Event))
	}
	id := p.nextSub
	p.nextSub++
	p.subs[id] = fn
	return func() {
		p.mu.Lock()
		delete(p.subs, id)
		p.mu.Unlock()
	}
}
