// Package platform implements the Crowd4U orchestrator: it wires the CyLog
// processor, the project manager, the worker manager, the task pool and the
// task assignment controller together (Figure 2) and drives the deployment
// process of Figure 1 — task decomposition, task assignment and task
// completion with result coordination.
//
// The package is deliberately free of any web or simulation concerns: the web
// UI (internal/webui) and the simulated crowd (internal/crowdsim) plug into it
// through small interfaces.
package platform

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/assign"
	"github.com/crowd4u/crowd4u-go/internal/collab"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// InterestProvider models step 3 of Figure 2: workers see the tasks they are
// eligible for on their user pages and declare interest in some of them.
type InterestProvider interface {
	DeclareInterest(taskID task.ID, eligible []worker.ID) []worker.ID
}

// AcceptanceModel decides whether a suggested team member actually undertakes
// the task before the deadline.
type AcceptanceModel interface {
	WillUndertake(id worker.ID, taskID task.ID) bool
}

// Event is one platform-level occurrence kept in the audit log and pushed to
// every Subscribe sink (the API layer streams them over WebSocket).
type Event struct {
	At      time.Time
	Kind    string // "project-registered", "task-generated", "task-assigned", "task-completed", "infeasible", "reassigned", "fixpoint", "commit-error", "wal-*", "cylog-answer-*"
	Project project.ID
	Task    task.ID
	// Round is the answer-round sequence number for round-scoped events
	// ("fixpoint", "cylog-answer-skipped"); zero otherwise.
	Round   uint64
	Message string
}

// Platform is the Crowd4U system instance.
type Platform struct {
	Workers    *worker.Manager
	Tasks      *task.Pool
	Projects   *project.Registry
	Controller *assign.Controller

	mu      sync.Mutex
	engines map[project.ID]*cylog.Engine
	// requestTask maps a CyLog open-request id to the task generated for it,
	// and taskRequest the reverse, so results can be fed back into the engine.
	requestTask map[string]task.ID
	taskRequest map[task.ID]requestRef
	// rounds holds, per project, the answer round currently staging (created
	// lazily by the first staged answer) and nextRound the sequence number
	// the next detached round will carry. CommitRound — reached directly by
	// the API layer or through GenerateTasksFromCyLog — commits a round via
	// RunIncremental, so a whole round of crowd answers costs one
	// delta-seeded fixpoint instead of a full re-run per answer. See
	// service.go for the round/sequence contract.
	rounds    map[project.ID]*roundState
	nextRound map[project.ID]uint64
	// commits serializes each project's commit points (CommitRound end to
	// end, SubmitResult's answer+persist). p.mu only guards map access and
	// is dropped during the fixpoint and WAL writes; without this lock two
	// concurrent commits could publish their round-stamped "fixpoint" events
	// out of order (breaking the round contract in service.go) and race into
	// the project's WAL. Created lazily per project under p.mu.
	commits map[project.ID]*sync.Mutex
	// wals holds each project's attached write-ahead log (nil map until the
	// first AttachWAL); see platform_wal.go for the commit protocol.
	wals   map[project.ID]*walBinding
	events []Event
	nowFn  func() time.Time
	// storage selects the relstore backend new project engines are built on
	// (see storage.go); projects may override it per-description.
	storage StorageOptions
	// subs are the event sinks registered by Subscribe, keyed by a token the
	// cancel closure deletes.
	subs    map[int]func(Event)
	nextSub int
}

type requestRef struct {
	project project.ID
	request cylog.OpenRequest
}

// New creates an empty platform.
func New() *Platform {
	workers := worker.NewManager()
	pool := task.NewPool()
	return &Platform{
		Workers:     workers,
		Tasks:       pool,
		Projects:    project.NewRegistry(),
		Controller:  assign.NewController(workers, pool),
		engines:     make(map[project.ID]*cylog.Engine),
		requestTask: make(map[string]task.ID),
		taskRequest: make(map[task.ID]requestRef),
		rounds:      make(map[project.ID]*roundState),
		nextRound:   make(map[project.ID]uint64),
		commits:     make(map[project.ID]*sync.Mutex),
		nowFn:       time.Now,
		storage:     DefaultStorageFromEnv(),
	}
}

// SetClock overrides the time source (tests and deterministic experiments).
func (p *Platform) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nowFn = now
	p.Projects.SetClock(now)
	p.Workers.SetClock(now)
	p.Controller.SetClock(now)
}

func (p *Platform) now() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nowFn()
}

func (p *Platform) record(e Event) {
	p.mu.Lock()
	e.At = p.nowFn()
	p.events = append(p.events, e)
	sinks := make([]func(Event), 0, len(p.subs))
	for _, fn := range p.subs {
		sinks = append(sinks, fn)
	}
	p.mu.Unlock()
	// Sinks run outside the lock so they may inspect the platform, but they
	// must not record events of their own (Subscribe documents this).
	for _, fn := range sinks {
		fn(e)
	}
}

// Record appends an externally observed event to the platform's durable
// event log (stamping the time) and fans it out to every Subscribe sink.
// The service layer uses it for operational failures — e.g. "commit-error"
// when a background round commit fails — so they reach both the audit log
// read by Events and every live subscriber, not just one or the other.
func (p *Platform) Record(e Event) { p.record(e) }

// Events returns a copy of the platform event log.
func (p *Platform) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Engine returns the CyLog engine of a project (nil when the project has no
// CyLog description).
func (p *Platform) Engine(id project.ID) *cylog.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engines[id]
}

// RegisterProject validates and registers a project description; when the
// project has a CyLog source, its engine is created and its program facts
// loaded (step 1 of Figure 2: "for each submitted project description, an
// administration page for the project is generated").
func (p *Platform) RegisterProject(d project.Description) (*project.Admin, error) {
	admin, err := p.Projects.Register(d)
	if err != nil {
		return nil, err
	}
	id := admin.Description.ID
	if d.CyLogSource != "" {
		prog, err := cylog.Parse(d.CyLogSource)
		if err != nil {
			return nil, err
		}
		db, err := p.newDatabaseFor(id, admin.Description.Storage)
		if err != nil {
			return nil, err
		}
		eng, err := cylog.NewEngineWith(prog, db)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.engines[id] = eng
		p.mu.Unlock()
	}
	p.record(Event{Kind: "project-registered", Project: id, Message: admin.Description.Name})
	return admin, nil
}

// SetAssignmentAlgorithm selects the team-formation algorithm used by the
// assignment controller (the project admin form can request one by name).
func (p *Platform) SetAssignmentAlgorithm(name string) error {
	algo := assign.Registry(name)
	if algo == nil {
		return fmt.Errorf("platform: unknown assignment algorithm %q", name)
	}
	p.Controller.SetAlgorithm(algo)
	return nil
}

// AddComplexTask registers a complex task for the project and decomposes it
// into micro-tasks with the given decomposer (Figure 1, first step). The
// parent task is recorded for provenance but only the micro-tasks enter the
// open pool. It returns the micro-tasks.
func (p *Platform) AddComplexTask(projectID project.ID, parent *task.Task, d task.Decomposer) ([]*task.Task, error) {
	admin, ok := p.Projects.Get(projectID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", project.ErrUnknownProject, projectID)
	}
	parent.ProjectID = string(projectID)
	if parent.ID == "" {
		parent.ID = p.Tasks.NextID("complex")
	}
	if err := p.Tasks.Register(parent); err != nil {
		return nil, err
	}
	micro, err := d.Decompose(parent, func() task.ID { return p.Tasks.NextID("micro") })
	if err != nil {
		return nil, err
	}
	now := p.now()
	for _, m := range micro {
		// Micro-tasks inherit the project's desired human factors unless the
		// decomposer already set stricter ones.
		if m.Constraints.RecruitmentDeadline.IsZero() {
			c := admin.TaskConstraints(now)
			region := m.Constraints.Region
			m.Constraints = c
			if region != "" {
				m.Constraints.Region = region
			}
		}
		if err := p.registerTask(projectID, m); err != nil {
			return nil, err
		}
	}
	// The parent itself is not assignable; mark it assigned-for-tracking.
	parent.SetState(task.StateInProgress) //nolint:errcheck // fresh task, transition cannot fail
	return micro, nil
}

// AddTask registers a single ready-made task for the project.
func (p *Platform) AddTask(projectID project.ID, t *task.Task) error {
	if _, ok := p.Projects.Get(projectID); !ok {
		return fmt.Errorf("%w: %s", project.ErrUnknownProject, projectID)
	}
	if t.ID == "" {
		t.ID = p.Tasks.NextID("task")
	}
	t.ProjectID = string(projectID)
	return p.registerTask(projectID, t)
}

func (p *Platform) registerTask(projectID project.ID, t *task.Task) error {
	if err := p.Tasks.Register(t); err != nil {
		return err
	}
	p.ComputeEligibility(t)
	p.record(Event{Kind: "task-generated", Project: projectID, Task: t.ID, Message: t.Title})
	return nil
}

// GenerateTasksFromCyLog commits the answer batch the last task-pool round
// staged (if any), re-derives consequences through the engine's delta-seeded
// incremental fixpoint, and converts every pending open request into a task
// in the pool ("the rules describing tasks and their dependency are
// interpreted and executed by the CyLog processor, which dynamically
// generates and registers tasks into the task pool"). It returns the newly
// generated tasks. Requests withdrawn by the engine's retraction machinery
// simply stop appearing here; their already-generated tasks age out through
// the normal deadline sweep.
func (p *Platform) GenerateTasksFromCyLog(projectID project.ID) ([]*task.Task, error) {
	admin, ok := p.Projects.Get(projectID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", project.ErrUnknownProject, projectID)
	}
	// CommitRound is the shared commit path with the HTTP ingress: batch
	// application, incremental fixpoint, the WAL durability barrier (answers
	// are persisted before any task derived from them is generated) and the
	// round-stamped "fixpoint" event.
	rc, err := p.CommitRound(projectID)
	if err != nil {
		return nil, err
	}
	requests := rc.Requests
	now := p.now()
	var created []*task.Task
	for _, req := range requests {
		p.mu.Lock()
		prior, exists := p.requestTask[req.ID]
		p.mu.Unlock()
		if exists {
			if tk, live := p.Tasks.Get(prior); live && !tk.State().Terminal() {
				continue
			}
			// The request is pending but its task can no longer deliver an
			// answer — expired, cancelled, or completed without closing the
			// request (e.g. the request was withdrawn by retraction, its
			// answer skipped, and the guard later returned and re-issued it).
			// Drop the stale mapping and generate a fresh task.
			p.mu.Lock()
			delete(p.requestTask, req.ID)
			delete(p.taskRequest, prior)
			p.mu.Unlock()
		}
		scheme := task.CollaborationScheme(req.Scheme)
		if scheme == "" {
			scheme = task.Individual
		}
		t := task.NewTask(p.Tasks.NextID("cylog"), string(projectID), taskTitleFor(req), scheme, admin.TaskConstraints(now))
		t.GeneratedBy = "cylog:" + req.ID
		t.Description = req.Prompt
		t.Form = formFor(req)
		for i, col := range req.KeyColumns {
			t.Input[col] = req.KeyValues[i].AsString()
		}
		if err := p.registerTask(projectID, t); err != nil {
			return created, err
		}
		p.mu.Lock()
		p.requestTask[req.ID] = t.ID
		p.taskRequest[t.ID] = requestRef{project: projectID, request: req}
		p.mu.Unlock()
		created = append(created, t)
	}
	return created, nil
}

func taskTitleFor(req cylog.OpenRequest) string {
	if req.Prompt != "" {
		return req.Prompt
	}
	return "Provide " + req.Relation
}

// formFor builds the form-based task UI for an open request: one field per
// open column, text areas for strings and a yes/no select for booleans.
func formFor(req cylog.OpenRequest) task.Form {
	var fields []task.Field
	for _, col := range req.OpenColumns {
		if looksBoolean(col) {
			fields = append(fields, task.Field{
				Name: col, Label: col, Kind: task.FieldSelect, Required: true, Options: []string{"yes", "no"},
			})
			continue
		}
		fields = append(fields, task.Field{Name: col, Label: col, Kind: task.FieldTextArea, Required: true})
	}
	return task.Form{Fields: fields}
}

func looksBoolean(col string) bool {
	col = strings.ToLower(col)
	return col == "ok" || col == "confirmed" || col == "valid" || strings.HasPrefix(col, "is_") || strings.HasSuffix(col, "_ok")
}

// ComputeEligibility evaluates the task's constraint-derived eligibility rule
// over all registered workers and records the Eligible relationship — the
// platform-side realisation of "this is computed by the CyLog processor using
// the project description and worker human factors".
func (p *Platform) ComputeEligibility(t *task.Task) []worker.ID {
	return p.Workers.ComputeEligibility(string(t.ID), EligibilityRule(t.Constraints))
}

// EligibilityRule compiles task constraints into a worker predicate.
func EligibilityRule(c task.Constraints) worker.EligibilityRule {
	return func(w *worker.Worker) bool {
		if c.RequireLogin && !w.LoggedIn {
			return false
		}
		if c.RequireNativeLanguage != "" && !w.Factors.SpeaksNatively(c.RequireNativeLanguage) {
			return false
		}
		for _, lang := range c.RequiredLanguages {
			if !w.Factors.Speaks(lang) {
				return false
			}
		}
		if c.Region != "" && !strings.EqualFold(w.Factors.Location.Region, c.Region) {
			return false
		}
		if c.RequiredSkill != "" && w.Factors.Skill(c.RequiredSkill) < c.MinSkill {
			return false
		}
		return true
	}
}

// CollectInterest shows every open task to its eligible workers through the
// interest provider and records the declared interest. It returns the number
// of (task, worker) interest pairs recorded.
func (p *Platform) CollectInterest(provider InterestProvider) int {
	total := 0
	for _, t := range p.Tasks.InState(task.StateOpen) {
		eligible := p.Workers.WorkersWith(worker.Eligible, string(t.ID))
		total += len(provider.DeclareInterest(t.ID, eligible))
	}
	return total
}

// AssignOpenTasks runs the assignment controller over every open task.
// Infeasible tasks produce an "action-required" notice on the project admin
// page, implementing "if none of the possible teams satisfying human factors
// accepts the task, Crowd4U suggests to the requester to update her input."
func (p *Platform) AssignOpenTasks() map[task.ID]assign.Team {
	out := make(map[task.ID]assign.Team)
	for _, t := range p.Tasks.InState(task.StateOpen) {
		team, ok, err := p.Controller.TryAssign(t)
		switch {
		case err != nil && errors.Is(err, assign.ErrInfeasible):
			p.Projects.Notify(project.ID(t.ProjectID), "action-required",
				fmt.Sprintf("task %s: no feasible team for the requested human factors; please relax the constraints", t.ID)) //nolint:errcheck
			p.record(Event{Kind: "infeasible", Project: project.ID(t.ProjectID), Task: t.ID})
		case ok:
			out[t.ID] = team
			p.record(Event{Kind: "task-assigned", Project: project.ID(t.ProjectID), Task: t.ID,
				Message: fmt.Sprintf("team of %d, affinity %.3f", team.Size(), team.Affinity)})
		}
	}
	return out
}

// ConfirmTeams asks every member of every suggested team whether they
// undertake the task. Teams where some member declines are re-assigned
// immediately; teams where everyone accepts move to in-progress. It returns
// the tasks that became in-progress.
func (p *Platform) ConfirmTeams(acceptance AcceptanceModel) []*task.Task {
	var started []*task.Task
	for _, t := range p.Tasks.InState(task.StateAssigned) {
		team, ok := p.Controller.Suggestion(t.ID)
		if !ok {
			continue
		}
		allAccept := true
		for _, m := range team.Members {
			if acceptance != nil && !acceptance.WillUndertake(m, t.ID) {
				allAccept = false
				break
			}
		}
		if !allAccept {
			p.record(Event{Kind: "reassigned", Project: project.ID(t.ProjectID), Task: t.ID})
			p.Controller.Reassign(t) //nolint:errcheck // failure recorded by controller events
			continue
		}
		for _, m := range team.Members {
			if _, err := p.Controller.ConfirmUndertake(t, m); err != nil {
				allAccept = false
				break
			}
		}
		if allAccept && t.State() == task.StateInProgress {
			started = append(started, t)
		}
	}
	return started
}

// ExecuteInProgress runs the appropriate collaboration scheme for every
// in-progress task using the given WorkerIO, records the team result,
// updates worker skill estimates, and feeds CyLog-generated answers back to
// the project's engine. It returns the completed tasks.
func (p *Platform) ExecuteInProgress(io collab.WorkerIO) ([]*task.Task, error) {
	var completed []*task.Task
	for _, t := range p.Tasks.InState(task.StateInProgress) {
		team, ok := p.Controller.Suggestion(t.ID)
		if !ok {
			continue
		}
		if ctx, hasCtx := io.(interface {
			SetTeamContext(task.ID, float64)
		}); hasCtx {
			ctx.SetTeamContext(t.ID, team.Affinity)
		}
		scheme := collab.ForTask(t)
		outcome, err := scheme.Run(t, team.Members, io)
		if err != nil {
			return completed, fmt.Errorf("platform: executing task %s: %w", t.ID, err)
		}
		if err := t.Complete(outcome.Result); err != nil {
			return completed, err
		}
		// Skill learning: each member's estimate is updated with the team
		// outcome quality for the task's required skill.
		skill := t.Constraints.RequiredSkill
		if skill == "" {
			skill = string(t.Scheme)
		}
		for _, m := range team.Members {
			p.Workers.RecordCompletion(m, skill, outcome.Quality()) //nolint:errcheck // unknown workers cannot be on a team
		}
		p.Workers.ClearTask(string(t.ID))
		if err := p.feedResultToCyLog(t, outcome.Result); err != nil {
			return completed, err
		}
		p.record(Event{Kind: "task-completed", Project: project.ID(t.ProjectID), Task: t.ID,
			Message: fmt.Sprintf("quality %.2f by %s", outcome.Quality(), outcome.Result.TeamID)})
		completed = append(completed, t)
	}
	return completed, nil
}

// feedResultToCyLog stages the completed task's answer — for the open request
// that generated it, if any — into the project's current answer batch. The
// batch is created lazily per round and committed by the next
// GenerateTasksFromCyLog through RunIncremental, so a whole round of crowd
// answers is ingested as one delta-seeded fixpoint.
//
// Only requests that legitimately no longer accept an answer — already
// answered through another path, withdrawn by retraction, or answered twice
// within the round — are skipped (and recorded as "cylog-answer-skipped");
// any other rejection (schema/type mismatch, missing open column, an id the
// engine never issued) is a platform bug: it is recorded as
// "cylog-answer-error" and returned to the caller instead of being silently
// swallowed.
func (p *Platform) feedResultToCyLog(t *task.Task, result *task.Result) error {
	p.mu.Lock()
	ref, ok := p.taskRequest[t.ID]
	eng := p.engines[ref.project]
	p.mu.Unlock()
	if !ok || eng == nil || result == nil {
		return nil
	}
	answer := answerFields(ref.request, result)
	// StageAnswer retries into the next round if the current one commits
	// underneath us (a concurrent GenerateTasksFromCyLog or API CommitRound),
	// so the worker's answer is never dropped.
	_, err := p.StageAnswer(ref.project, ref.request.ID, answer)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, cylog.ErrRequestClosed), errors.Is(err, cylog.ErrDuplicateAnswer):
		p.record(Event{Kind: "cylog-answer-skipped", Project: ref.project, Task: t.ID, Message: err.Error()})
		return nil
	default:
		p.record(Event{Kind: "cylog-answer-error", Project: ref.project, Task: t.ID, Message: err.Error()})
		return fmt.Errorf("platform: feeding result of task %s to CyLog: %w", t.ID, err)
	}
}

// SubmitResult completes a task with a single out-of-band result (e.g. an
// individual form submission) and, when the task was generated from a CyLog
// open request, feeds the answer to the engine immediately through the
// per-answer path — a lone submission does not open a batch round; the
// staged fact seeds the next incremental run either way. Closed or withdrawn
// requests are skipped like in the batched path; hard rejections fail the
// submission after recording a "cylog-answer-error" event.
func (p *Platform) SubmitResult(taskID task.ID, result *task.Result) error {
	t, ok := p.Tasks.Get(taskID)
	if !ok {
		return fmt.Errorf("platform: unknown task %s", taskID)
	}
	if err := t.Complete(result); err != nil {
		return err
	}
	p.mu.Lock()
	ref, mapped := p.taskRequest[taskID]
	eng := p.engines[ref.project]
	p.mu.Unlock()
	p.record(Event{Kind: "task-completed", Project: project.ID(t.ProjectID), Task: taskID,
		Message: "single submission by " + result.SubmittedBy})
	if !mapped || eng == nil {
		return nil
	}
	// A lone submission is its own commit point: it takes the project's
	// commit mutex so the answer's journal entry and its WAL append cannot
	// interleave with a concurrent CommitRound's persist, and the answer is
	// persisted before the submission is acknowledged.
	cl := p.commitLock(ref.project)
	cl.Lock()
	defer cl.Unlock()
	if err := eng.Answer(ref.request.ID, answerFields(ref.request, result)); err != nil {
		if errors.Is(err, cylog.ErrRequestClosed) {
			p.record(Event{Kind: "cylog-answer-skipped", Project: ref.project, Task: taskID, Message: err.Error()})
			return nil
		}
		p.record(Event{Kind: "cylog-answer-error", Project: ref.project, Task: taskID, Message: err.Error()})
		return fmt.Errorf("platform: feeding result of task %s to CyLog: %w", taskID, err)
	}
	return p.persistRound(ref.project, eng)
}

// answerFields maps a task result onto the open columns of the request that
// generated the task, falling back to the generic "text" field and converting
// yes/no style strings for boolean-looking columns.
func answerFields(req cylog.OpenRequest, result *task.Result) map[string]any {
	answer := make(map[string]any, len(req.OpenColumns))
	for _, col := range req.OpenColumns {
		raw, present := result.Fields[col]
		if !present {
			raw = result.Fields["text"]
		}
		answer[col] = convertAnswer(col, raw)
	}
	return answer
}

// convertAnswer maps a form answer string onto a Go value suitable for the
// open relation's schema: yes/no and true/false become booleans, everything
// else stays a string (relstore coercion handles numbers).
func convertAnswer(col, raw string) any {
	lower := strings.ToLower(strings.TrimSpace(raw))
	if looksBoolean(col) || lower == "yes" || lower == "no" || lower == "true" || lower == "false" {
		return lower == "yes" || lower == "true"
	}
	return raw
}

// SweepDeadlines re-executes assignment for assigned tasks whose recruitment
// deadline has passed and marks overdue open tasks expired.
func (p *Platform) SweepDeadlines() (reassigned []task.ID, expired []*task.Task) {
	now := p.now()
	reassigned = p.Controller.SweepDeadlines(now)
	expired = p.Tasks.ExpireOverdue(now)
	return reassigned, expired
}

// CycleReport summarises one full deployment cycle.
type CycleReport struct {
	GeneratedTasks  int
	InterestPairs   int
	AssignedTasks   int
	InfeasibleTasks int
	StartedTasks    int
	CompletedTasks  int
	MeanQuality     float64
	MeanTeamSize    float64
	MeanAffinity    float64
}

// Crowd bundles the three capabilities a simulated (or real) crowd must offer
// to drive a full cycle.
type Crowd interface {
	InterestProvider
	AcceptanceModel
	collab.WorkerIO
}

// RunCycle performs one full deployment cycle of Figure 1 for every active
// project: CyLog task generation, eligibility, interest collection, team
// assignment, undertake confirmation, collaborative execution and result
// recording. Repeated calls converge as CyLog programs stop generating new
// requests.
func (p *Platform) RunCycle(crowd Crowd) (CycleReport, error) {
	report := CycleReport{}
	for _, admin := range p.Projects.All() {
		if admin.Status != project.StatusActive {
			continue
		}
		if p.Engine(admin.Description.ID) == nil {
			continue
		}
		created, err := p.GenerateTasksFromCyLog(admin.Description.ID)
		if err != nil {
			return report, err
		}
		report.GeneratedTasks += len(created)
	}

	report.InterestPairs = p.CollectInterest(crowd)

	teams := p.AssignOpenTasks()
	report.AssignedTasks = len(teams)
	var affinities, sizes []float64
	for _, team := range teams {
		affinities = append(affinities, team.Affinity)
		sizes = append(sizes, float64(team.Size()))
	}
	report.MeanAffinity = mean(affinities)
	report.MeanTeamSize = mean(sizes)

	started := p.ConfirmTeams(crowd)
	report.StartedTasks = len(started)

	completed, err := p.ExecuteInProgress(crowd)
	if err != nil {
		return report, err
	}
	report.CompletedTasks = len(completed)
	var qualities []float64
	for _, t := range completed {
		if r := t.Result(); r != nil {
			qualities = append(qualities, r.Quality)
		}
	}
	report.MeanQuality = mean(qualities)

	for _, e := range p.Events() {
		if e.Kind == "infeasible" {
			report.InfeasibleTasks++
		}
	}
	return report, nil
}

// RunUntilQuiescent repeatedly runs deployment cycles until a cycle generates,
// assigns and completes nothing (or maxCycles is hit). It returns the
// per-cycle reports.
func (p *Platform) RunUntilQuiescent(crowd Crowd, maxCycles int) ([]CycleReport, error) {
	if maxCycles <= 0 {
		maxCycles = 50
	}
	var reports []CycleReport
	for i := 0; i < maxCycles; i++ {
		r, err := p.RunCycle(crowd)
		if err != nil {
			return reports, err
		}
		reports = append(reports, r)
		if r.GeneratedTasks == 0 && r.AssignedTasks == 0 && r.StartedTasks == 0 && r.CompletedTasks == 0 {
			break
		}
	}
	return reports, nil
}

// CompletedResults returns the recorded results of all completed tasks of a
// project, ordered by task id.
func (p *Platform) CompletedResults(projectID project.ID) []*task.Result {
	var out []*task.Result
	for _, t := range p.Tasks.ByProject(string(projectID)) {
		if t.State() == task.StateCompleted && t.Result() != nil {
			out = append(out, t.Result())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
