package api

import (
	"sync"

	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
)

func eventMessage(e platform.Event) EventMessage {
	return EventMessage{
		At:      e.At,
		Kind:    e.Kind,
		Project: string(e.Project),
		Task:    string(e.Task),
		Round:   e.Round,
		Message: e.Message,
	}
}

// subscriberBuffer bounds each WebSocket subscriber's pending-event queue.
// A subscriber that falls further behind than this loses events (drops are
// counted, never blocked on): the event stream is a change notification
// channel, not a durable log — the durable log is Platform.Events and the
// WAL. Round-based latency resolution tolerates gaps because any later
// "fixpoint" event resolves all earlier rounds.
const subscriberBuffer = 256

// hub fans platform events out to WebSocket subscribers. The platform's
// event sink runs synchronously on whichever goroutine commits a round, so
// publish must never block: each subscriber gets a bounded buffered channel
// and overflow drops the event for that subscriber only.
type hub struct {
	mu      sync.Mutex
	nextID  int
	subs    map[int]*hubSub
	dropped uint64 // cumulative events dropped across all subscribers
}

type hubSub struct {
	project project.ID // empty = all projects
	ch      chan EventMessage
}

func newHub() *hub {
	return &hub{subs: make(map[int]*hubSub)}
}

// publish delivers the event to every subscriber whose project filter
// matches, dropping (and counting) for subscribers with full buffers.
func (h *hub) publish(e platform.Event) {
	msg := eventMessage(e)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		if s.project != "" && s.project != e.Project {
			continue
		}
		select {
		case s.ch <- msg:
		default:
			h.dropped++
		}
	}
}

// subscribe registers a subscriber for the given project ("" = all) and
// returns its channel plus a cancel function. Cancel closes the channel, so
// readers can range over it.
func (h *hub) subscribe(p project.ID) (<-chan EventMessage, func()) {
	s := &hubSub{project: p, ch: make(chan EventMessage, subscriberBuffer)}
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.subs[id] = s
	h.mu.Unlock()
	return s.ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(s.ch)
		}
		h.mu.Unlock()
	}
}

// droppedEvents reports how many events were dropped on full subscriber
// buffers since the hub was created.
func (h *hub) droppedEvents() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// subscribers reports the current subscriber count.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
