package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
)

// labelingProgram is the service-layer test workload: a flat labeling
// pipeline with one open request per item, a positive consequence per "true"
// answer and a negation-derived flag for everything not yet labeled — small
// enough to reason about exactly, rich enough to exercise retraction when
// answers land.
const labelingProgram = `
rel item(id: int).
open rel label(id: int, ok: bool) key(id) asks "Is this item acceptable?".
rel labeled(id: int).
rel flagged(id: int).

labeled(I) :- item(I), label(I, true).
flagged(I) :- item(I), !labeled(I).
`

// newTestService builds a platform with one labeling project and an API
// server over it, returning the test HTTP server and the platform.
func newTestService(t *testing.T, opts Options) (*httptest.Server, *platform.Platform) {
	t.Helper()
	p := platform.New()
	if _, err := p.RegisterProject(project.Description{
		ID:          "labels",
		Name:        "Labeling",
		CyLogSource: labelingProgram,
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, p
}

// do issues a JSON request and decodes the JSON response into out (when
// non-nil), returning the raw response.
func do(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var payload io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		payload = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp
}

// seedItems adds n item facts over HTTP and commits a round so requests are
// pending.
func seedItems(t *testing.T, base string, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		resp := do(t, "POST", base+"/api/v1/projects/labels/facts",
			FactRequest{Relation: "item", Values: []any{i}}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fact %d: status %d", i, resp.StatusCode)
		}
	}
	var fp FixpointResponse
	resp := do(t, "POST", base+"/api/v1/projects/labels/fixpoint", nil, &fp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fixpoint: status %d", resp.StatusCode)
	}
	if fp.Pending != n {
		t.Fatalf("fixpoint left %d pending requests, want %d", fp.Pending, n)
	}
}

func TestProjectLifecycleAndFeed(t *testing.T) {
	ts, _ := newTestService(t, Options{})
	seedItems(t, ts.URL, 5)

	// Register a second project through the API.
	var created ProjectStatus
	resp := do(t, "POST", ts.URL+"/api/v1/projects", CreateProjectRequest{
		Name: "Second", CyLog: labelingProgram,
	}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if !created.HasEngine || created.ID == "" {
		t.Fatalf("create: got %+v, want engine-backed project with id", created)
	}

	var list struct {
		Projects []ProjectStatus `json:"projects"`
	}
	do(t, "GET", ts.URL+"/api/v1/projects", nil, &list)
	if len(list.Projects) != 2 {
		t.Fatalf("list: %d projects, want 2", len(list.Projects))
	}

	var st ProjectStatus
	do(t, "GET", ts.URL+"/api/v1/projects/labels", nil, &st)
	if st.PendingRequests != 5 || st.Queue == nil || st.Queue.NextRound != 2 {
		t.Fatalf("status: %+v, want 5 pending and next round 2", st)
	}
	if st.Stats == nil || st.Stats.DerivedFacts == 0 {
		t.Fatalf("status: missing engine stats: %+v", st.Stats)
	}

	// Paginated feed: offsets shard the request set without overlap.
	var page1, page2 TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks?limit=3", nil, &page1)
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks?limit=3&offset=3", nil, &page2)
	if page1.Total != 5 || len(page1.Tasks) != 3 || len(page2.Tasks) != 2 {
		t.Fatalf("pagination: total=%d pages %d/%d, want 5 and 3/2", page1.Total, len(page1.Tasks), len(page2.Tasks))
	}
	seen := map[string]bool{}
	for _, tv := range append(page1.Tasks, page2.Tasks...) {
		if tv.Relation != "label" || len(tv.OpenColumns) != 1 || tv.OpenColumns[0] != "ok" {
			t.Fatalf("task view: %+v", tv)
		}
		if seen[tv.ID] {
			t.Fatalf("pages overlap on %s", tv.ID)
		}
		seen[tv.ID] = true
	}
}

func TestAnswerFlow(t *testing.T) {
	ts, p := newTestService(t, Options{})
	seedItems(t, ts.URL, 3)

	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed)

	var ar AnswerResponse
	resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: feed.Tasks[0].ID, Values: map[string]any{"ok": true}}, &ar)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("answer: status %d", resp.StatusCode)
	}
	if ar.Round != 2 || ar.Queued != 1 {
		t.Fatalf("answer: %+v, want round 2 with 1 queued", ar)
	}

	var fp FixpointResponse
	do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, &fp)
	if fp.Round != 2 || fp.Answers != 1 || fp.Skipped != 0 || fp.Pending != 2 {
		t.Fatalf("fixpoint: %+v", fp)
	}
	eng := p.Engine("labels")
	if got := len(eng.Facts("labeled")); got != 1 {
		t.Fatalf("labeled facts = %d, want 1", got)
	}
	if got := len(eng.Facts("flagged")); got != 2 {
		t.Fatalf("flagged facts = %d, want 2 (retraction removed the answered item's flag)", got)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, p := newTestService(t, Options{})
	if _, err := p.RegisterProject(project.Description{ID: "no-engine", Name: "Engineless"}); err != nil {
		t.Fatal(err)
	}
	seedItems(t, ts.URL, 2)
	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed)
	answered := feed.Tasks[0].ID

	// Answer + commit so `answered` is closed for the retry cases below.
	do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: answered, Values: map[string]any{"ok": true}}, nil)
	do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, nil)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		raw    string // non-JSON body, sent verbatim when set
		status int
		code   string
	}{
		{name: "malformed json", method: "POST", path: "/api/v1/projects/labels/answers",
			raw: "{not json", status: http.StatusBadRequest, code: "bad-json"},
		{name: "trailing garbage", method: "POST", path: "/api/v1/projects/labels/answers",
			raw: `{"request_id":"x","values":{}} extra`, status: http.StatusBadRequest, code: "bad-json"},
		{name: "missing request id", method: "POST", path: "/api/v1/projects/labels/answers",
			body: AnswerRequest{Values: map[string]any{"ok": true}}, status: http.StatusBadRequest, code: "bad-request"},
		{name: "unknown project", method: "POST", path: "/api/v1/projects/ghost/answers",
			body:   AnswerRequest{RequestID: "r", Values: map[string]any{"ok": true}},
			status: http.StatusNotFound, code: "unknown-project"},
		{name: "unknown project status", method: "GET", path: "/api/v1/projects/ghost",
			status: http.StatusNotFound, code: "unknown-project"},
		{name: "engineless project feed", method: "GET", path: "/api/v1/projects/no-engine/tasks",
			status: http.StatusConflict, code: "no-engine"},
		{name: "engineless project answer", method: "POST", path: "/api/v1/projects/no-engine/answers",
			body:   AnswerRequest{RequestID: "r", Values: map[string]any{"ok": true}},
			status: http.StatusConflict, code: "no-engine"},
		{name: "unknown request", method: "POST", path: "/api/v1/projects/labels/answers",
			body:   AnswerRequest{RequestID: "label/999", Values: map[string]any{"ok": true}},
			status: http.StatusNotFound, code: "unknown-request"},
		{name: "closed request", method: "POST", path: "/api/v1/projects/labels/answers",
			body:   AnswerRequest{RequestID: answered, Values: map[string]any{"ok": false}},
			status: http.StatusConflict, code: "request-closed"},
		{name: "bad fact relation", method: "POST", path: "/api/v1/projects/labels/facts",
			body: FactRequest{Relation: "nope", Values: []any{1}}, status: http.StatusBadRequest, code: "invalid-fact"},
		{name: "derived fact rejected", method: "POST", path: "/api/v1/projects/labels/facts",
			body: FactRequest{Relation: "labeled", Values: []any{1}}, status: http.StatusBadRequest, code: "invalid-fact"},
		{name: "unknown route", method: "GET", path: "/api/v1/nope",
			status: http.StatusNotFound, code: "not-found"},
		{name: "events without upgrade", method: "GET", path: "/api/v1/projects/labels/events",
			status: http.StatusBadRequest, code: "bad-upgrade"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var eb errorBody
			if tc.raw != "" {
				r, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				defer r.Body.Close()
				if err := json.NewDecoder(r.Body).Decode(&eb); err != nil {
					t.Fatal(err)
				}
				resp = r
			} else {
				resp = do(t, tc.method, ts.URL+tc.path, tc.body, &eb)
			}
			if resp.StatusCode != tc.status || eb.Code != tc.code {
				t.Fatalf("got status %d code %q (%s), want %d %q", resp.StatusCode, eb.Code, eb.Error, tc.status, tc.code)
			}
		})
	}

	// Duplicate answer within one round maps to 409.
	var feed2 TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed2)
	id := feed2.Tasks[0].ID
	do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: id, Values: map[string]any{"ok": true}}, nil)
	var eb errorBody
	resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: id, Values: map[string]any{"ok": false}}, &eb)
	if resp.StatusCode != http.StatusConflict || eb.Code != "duplicate-answer" {
		t.Fatalf("duplicate answer: status %d code %q", resp.StatusCode, eb.Code)
	}
}

func TestAdmissionControl(t *testing.T) {
	ts, _ := newTestService(t, Options{QueueCapacity: 2, RetryAfter: 250 * time.Millisecond})
	seedItems(t, ts.URL, 4)
	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed)

	for i := 0; i < 2; i++ {
		resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
			AnswerRequest{RequestID: feed.Tasks[i].ID, Values: map[string]any{"ok": true}}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("answer %d: status %d", i, resp.StatusCode)
		}
	}
	var eb errorBody
	resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: feed.Tasks[2].ID, Values: map[string]any{"ok": true}}, &eb)
	if resp.StatusCode != http.StatusTooManyRequests || eb.Code != "overloaded" {
		t.Fatalf("over capacity: status %d code %q", resp.StatusCode, eb.Code)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (250ms rounds up)", got)
	}
	if got := resp.Header.Get("X-Retry-After-Ms"); got != "250" {
		t.Fatalf("X-Retry-After-Ms = %q, want \"250\"", got)
	}

	// A committed round drains the queue; admission reopens.
	do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, nil)
	resp = do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: feed.Tasks[2].ID, Values: map[string]any{"ok": true}}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("after fixpoint: status %d, want 202", resp.StatusCode)
	}
}

func TestEventStream(t *testing.T) {
	ts, _ := newTestService(t, Options{})
	stream, err := DialEvents(ts.URL, "labels")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	seedItems(t, ts.URL, 2)

	deadline := time.After(5 * time.Second)
	got := make(chan EventMessage, 1)
	go func() {
		for {
			msg, err := stream.Next()
			if err != nil {
				return
			}
			if msg.Kind == "fixpoint" {
				got <- msg
				return
			}
		}
	}()
	select {
	case msg := <-got:
		if msg.Project != "labels" || msg.Round != 1 {
			t.Fatalf("fixpoint event: %+v, want project labels round 1", msg)
		}
	case <-deadline:
		t.Fatal("no fixpoint event within 5s")
	}
}

func TestBackgroundDeriverCommits(t *testing.T) {
	ts, p := newTestService(t, Options{CommitInterval: 5 * time.Millisecond})
	seedItems(t, ts.URL, 2)
	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed)
	for _, tv := range feed.Tasks {
		resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
			AnswerRequest{RequestID: tv.ID, Values: map[string]any{"ok": true}}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("answer: status %d", resp.StatusCode)
		}
	}
	eng := p.Engine("labels")
	deadline := time.Now().Add(5 * time.Second)
	for len(eng.Facts("labeled")) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("deriver never committed: %d labeled facts", len(eng.Facts("labeled")))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestValueCoercion proves JSON's number decoding (everything float64)
// round-trips through the schema: an integral float lands in an int column.
func TestValueCoercion(t *testing.T) {
	ts, p := newTestService(t, Options{})
	seedItems(t, ts.URL, 1)
	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks", nil, &feed)
	// The key column is int; the feed must render it as a JSON number.
	if v, ok := feed.Tasks[0].Key["id"].(float64); !ok || v != 1 {
		t.Fatalf("feed key = %#v, want numeric 1", feed.Tasks[0].Key["id"])
	}
	resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
		AnswerRequest{RequestID: feed.Tasks[0].ID, Values: map[string]any{"ok": true}}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("answer: status %d", resp.StatusCode)
	}
	do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, nil)
	if got := len(p.Engine("labels").Facts("labeled")); got != 1 {
		t.Fatalf("labeled facts = %d, want 1", got)
	}
}

func TestUIFallback(t *testing.T) {
	p := platform.New()
	ui := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "dashboard")
	})
	srv := NewServer(p, Options{UI: ui})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "dashboard" {
		t.Fatalf("UI fallback served %q", body)
	}
	// API routes still win over the fallback.
	r2, err := http.Get(ts.URL + "/api/v1/projects")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if ct := r2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("API route content type %q", ct)
	}
}
