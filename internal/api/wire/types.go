// Package wire defines the service layer's HTTP wire protocol: the JSON
// request/response types of the REST surface, the WebSocket event message,
// and a minimal RFC 6455 codec with a client-side event-stream dialer. It is
// a leaf package — importable by clients (internal/crowdsim's service
// client, cmd/loadsim) without pulling in the server or the platform, and by
// the server (internal/api) without creating cycles.
package wire

import "time"

// EventMessage is one platform event on the WebSocket stream. Round is
// present (non-zero) on round-scoped kinds such as "fixpoint" and
// "cylog-answer-skipped"; subscribers resolve an answer staged into round N
// as derived once they observe a "fixpoint" event with round >= N.
type EventMessage struct {
	At      time.Time `json:"at"`
	Kind    string    `json:"kind"`
	Project string    `json:"project,omitempty"`
	Task    string    `json:"task,omitempty"`
	Round   uint64    `json:"round,omitempty"`
	Message string    `json:"message,omitempty"`
}

// ErrorBody is the JSON error envelope: a machine code plus a human message.
type ErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// TaskView is one open request on the task feed.
type TaskView struct {
	ID          string         `json:"id"`
	Relation    string         `json:"relation"`
	Prompt      string         `json:"prompt,omitempty"`
	Scheme      string         `json:"scheme,omitempty"`
	Key         map[string]any `json:"key"`
	OpenColumns []string       `json:"open_columns"`
}

// TaskFeed is the paginated response of GET .../tasks.
type TaskFeed struct {
	Tasks []TaskView `json:"tasks"`
	// Total is the full pending count; Offset/Limit echo the request so
	// workers can shard the feed between them.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// AnswerRequest is the body of POST .../answers.
type AnswerRequest struct {
	RequestID string         `json:"request_id"`
	Values    map[string]any `json:"values"`
}

// AnswerResponse acknowledges a staged answer.
type AnswerResponse struct {
	// Round is the sequence number of the round the answer joined; the
	// answer is durable and derived once a "fixpoint" event with
	// round >= Round is observed.
	Round uint64 `json:"round"`
	// Queued is the staging queue depth after this answer.
	Queued int `json:"queued"`
}

// FactRequest is the body of POST .../facts: a base (closed-relation) fact
// ingested ahead of the next round commit.
type FactRequest struct {
	Relation string `json:"relation"`
	Values   []any  `json:"values"`
}

// FixpointResponse reports a round commit forced via POST .../fixpoint.
type FixpointResponse struct {
	Round      uint64 `json:"round"`
	Answers    int    `json:"answers"`
	Skipped    int    `json:"skipped"`
	Pending    int    `json:"pending"`
	DurationNS int64  `json:"duration_ns"`
}

// QueueStatus describes a project's ingress queue.
type QueueStatus struct {
	Staged    int    `json:"staged"`
	Capacity  int    `json:"capacity"`
	NextRound uint64 `json:"next_round"`
}

// StatsView is the headline subset of the engine's stats exposed over the
// API.
type StatsView struct {
	Iterations      int `json:"iterations"`
	RuleEvaluations int `json:"rule_evaluations"`
	DerivedFacts    int `json:"derived_facts"`
	OpenRequests    int `json:"open_requests"`
}

// WALStatus describes a project's attached write-ahead log.
type WALStatus struct {
	Appends   int    `json:"appends"`
	Snapshots int    `json:"snapshots"`
	LastSeq   uint64 `json:"last_seq"`
}

// StorageStatus describes the relstore backend behind a project's engine:
// which backend it is and, for the disk backend, how the residency budget is
// being spent (resident vs paged relations, fault/eviction counters).
type StorageStatus struct {
	Backend           string `json:"backend"`
	Relations         int    `json:"relations"`
	ResidentRelations int    `json:"resident_relations"`
	ResidentBytes     int64  `json:"resident_bytes,omitempty"`
	BudgetBytes       int64  `json:"budget_bytes,omitempty"`
	Faults            int64  `json:"faults,omitempty"`
	Evictions         int64  `json:"evictions,omitempty"`
	SegmentWrites     int64  `json:"segment_writes,omitempty"`
	SegmentBytes      int64  `json:"segment_bytes,omitempty"`
}

// ProjectStatus is the response of GET /api/v1/projects/{id} (and, without
// Queue/Stats/WAL detail, the element type of the project list).
type ProjectStatus struct {
	ID              string `json:"id"`
	Name            string `json:"name"`
	Status          string `json:"status"`
	Requester       string `json:"requester,omitempty"`
	Summary         string `json:"summary,omitempty"`
	HasEngine       bool   `json:"has_engine"`
	PendingRequests int    `json:"pending_requests"`
	// CommitIntervalMS is the project's background-commit cadence override
	// (0 = the server-wide interval).
	CommitIntervalMS int64          `json:"commit_interval_ms,omitempty"`
	Queue            *QueueStatus   `json:"queue,omitempty"`
	Stats            *StatsView     `json:"stats,omitempty"`
	WAL              *WALStatus     `json:"wal,omitempty"`
	Storage          *StorageStatus `json:"storage,omitempty"`
}

// CreateProjectRequest is the body of POST /api/v1/projects.
type CreateProjectRequest struct {
	ID        string `json:"id,omitempty"`
	Name      string `json:"name"`
	Requester string `json:"requester,omitempty"`
	Summary   string `json:"summary,omitempty"`
	// CyLog is the project's declarative description; required for projects
	// that serve a task feed (an engine is built from it at registration).
	CyLog string `json:"cylog,omitempty"`
	// Backend overrides the platform-wide relstore backend for this project:
	// "" (platform default), "memory" or "disk".
	Backend string `json:"backend,omitempty"`
	// CommitIntervalMS overrides the server's background-commit cadence for
	// this project, in milliseconds (0 = server default). Overrides are
	// rounded up to the deriver's tick granularity.
	CommitIntervalMS int64 `json:"commit_interval_ms,omitempty"`
}

// UpdateProjectRequest is the body of PATCH /api/v1/projects/{id}. Only
// non-nil fields are applied.
type UpdateProjectRequest struct {
	// CommitIntervalMS replaces the project's commit-cadence override in
	// milliseconds; 0 returns the project to the server-wide interval.
	CommitIntervalMS *int64 `json:"commit_interval_ms,omitempty"`
}
