package wire

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"
)

// EventStream is a client-side subscription to a server's WebSocket event
// stream. It is the consuming half of the protocol served by
// GET /api/v1/events and GET /api/v1/projects/{id}/events; crowdsim's
// service client and cmd/loadsim use it to observe "fixpoint" events and
// resolve answer→fixpoint latency by round number.
type EventStream struct {
	conn *Conn
}

// DialEvents connects to the event stream of baseURL (an http:// or ws://
// server root). With a non-empty projectID it subscribes to that project's
// events only; with "" it subscribes to the whole platform.
func DialEvents(baseURL, projectID string) (*EventStream, error) {
	root := strings.TrimRight(baseURL, "/")
	endpoint := root + "/api/v1/events"
	if projectID != "" {
		endpoint = root + "/api/v1/projects/" + url.PathEscape(projectID) + "/events"
	}
	conn, err := dialWebSocket(endpoint)
	if err != nil {
		return nil, err
	}
	return &EventStream{conn: conn}, nil
}

// Next blocks for the next event. It returns an error once the server
// closes the stream or the connection drops.
func (s *EventStream) Next() (EventMessage, error) {
	payload, err := s.conn.ReadText()
	if err != nil {
		return EventMessage{}, err
	}
	var msg EventMessage
	if err := json.Unmarshal(payload, &msg); err != nil {
		return EventMessage{}, fmt.Errorf("api: malformed event message: %w", err)
	}
	return msg, nil
}

// Close closes the subscription.
func (s *EventStream) Close() error { return s.conn.Close() }
