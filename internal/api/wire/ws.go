// Minimal RFC 6455 WebSocket support — server-side upgrade plus a client
// dialer — implemented on the standard library only (the repo takes no
// third-party dependencies). It covers exactly what the event stream needs:
// unfragmented text frames, ping/pong, and clean close handshakes. It is not
// a general-purpose WebSocket stack: continuation frames and extensions are
// rejected, and both ends are expected to be this package's own peer (the
// crowdsim service client and cmd/loadsim) or a spec-conforming browser.
package wire

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket frame opcodes (RFC 6455 §5.2).
const (
	opText  = 0x1
	opClose = 0x8
	opPing  = 0x9
	opPong  = 0xA
)

// maxFramePayload bounds incoming frames; event messages are small, so
// anything larger is a protocol violation, not a big message.
const maxFramePayload = 1 << 20

// ErrClosed reports an orderly close handshake from the peer.
var ErrClosed = errors.New("api: websocket closed by peer")

// ErrHijacked marks an upgrade failure that happened after the HTTP
// connection was hijacked: the TCP connection has already been closed here,
// and the caller must not touch the ResponseWriter (writes to a hijacked
// response are discarded).
var ErrHijacked = errors.New("api: websocket handshake failed after hijack")

// wsAccept computes the Sec-WebSocket-Accept token for a client key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Conn is one WebSocket connection. Writes are serialized internally;
// reads must come from a single goroutine.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	wmu    sync.Mutex
	client bool // clients mask outgoing frames (RFC 6455 §5.3)
}

// UpgradeWebSocket performs the server side of the opening handshake and
// hijacks the HTTP connection. It writes nothing on failure. Errors before
// the hijack (bad headers, a writer that cannot hijack) leave w untouched —
// the caller should write a plain HTTP error response. Errors after the
// hijack (the 101 response failed to reach the peer) are wrapped in
// ErrHijacked: the connection is already closed and the caller must not
// write to w.
func UpgradeWebSocket(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!headerContainsToken(r.Header, "Upgrade", "websocket") {
		return nil, fmt.Errorf("api: not a websocket upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return nil, fmt.Errorf("api: unsupported websocket version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, errors.New("api: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, errors.New("api: response writer does not support hijacking")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %w", ErrHijacked, err)
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %w", ErrHijacked, err)
	}
	return &Conn{conn: conn, br: brw.Reader}, nil
}

// headerContainsToken reports whether a comma-separated header field
// contains the token (case-insensitively) — "Connection: keep-alive, Upgrade"
// must match "upgrade".
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// dialWebSocket performs the client side of the opening handshake against an
// http:// or ws:// URL.
func dialWebSocket(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("api: unsupported websocket scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("api: websocket handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != wsAccept(key) {
		conn.Close()
		return nil, errors.New("api: websocket handshake accept mismatch")
	}
	return &Conn{conn: conn, br: br, client: true}, nil
}

// WriteText sends one unfragmented text frame.
func (c *Conn) WriteText(payload []byte) error {
	return c.writeFrame(opText, payload)
}

// writeFrame emits a single FIN frame, masking when this end is a client.
func (c *Conn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	header := make([]byte, 0, 14)
	header = append(header, 0x80|opcode)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch n := len(payload); {
	case n < 126:
		header = append(header, maskBit|byte(n))
	case n <= 0xFFFF:
		header = append(header, maskBit|126, byte(n>>8), byte(n))
	default:
		header = append(header, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		header = append(header, ext[:]...)
	}
	if c.client {
		var maskKey [4]byte
		if _, err := rand.Read(maskKey[:]); err != nil {
			return err
		}
		header = append(header, maskKey[:]...)
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ maskKey[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(header); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// ReadText reads the next text message, transparently answering pings and
// completing close handshakes (a close returns ErrClosed).
func (c *Conn) ReadText() ([]byte, error) {
	for {
		opcode, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opText:
			return payload, nil
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pong: ignore.
		case opClose:
			c.writeFrame(opClose, payload)
			c.conn.Close()
			return nil, ErrClosed
		default:
			return nil, fmt.Errorf("api: unsupported websocket opcode %#x (fragmentation and binary frames are not used by this protocol)", opcode)
		}
	}
}

// readFrame reads one frame, rejecting fragmentation and unmasking when the
// peer masked.
func (c *Conn) readFrame() (byte, []byte, error) {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return 0, nil, err
	}
	if h[0]&0x80 == 0 {
		return 0, nil, errors.New("api: fragmented websocket frames are not supported")
	}
	opcode := h[0] & 0x0F
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxFramePayload {
		return 0, nil, fmt.Errorf("api: websocket frame of %d bytes exceeds limit", length)
	}
	var maskKey [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, maskKey[:]); err != nil {
			return 0, nil, err
		}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= maskKey[i%4]
		}
	}
	return opcode, payload, nil
}

// Close sends a close frame (best effort) and closes the connection.
func (c *Conn) Close() error {
	c.writeFrame(opClose, nil)
	return c.conn.Close()
}
