package api

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSubmissionStress drives many concurrent HTTP submitters
// against a live background deriver — answers race RunIncremental, status
// and feed reads race commits, and a WebSocket subscriber consumes the event
// stream throughout. Run under -race (the repo's `make test` always is),
// this is the service layer's data-race gate; the final state check proves
// no answer was lost or double-applied.
func TestConcurrentSubmissionStress(t *testing.T) {
	const (
		items   = 48
		workers = 8
	)
	ts, p := newTestService(t, Options{
		CommitInterval: 2 * time.Millisecond,
		QueueCapacity:  16, // small enough that workers actually hit 429s
		RetryAfter:     5 * time.Millisecond,
	})
	seedItems(t, ts.URL, items)

	var feed TaskFeed
	do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks?limit=1000", nil, &feed)
	if len(feed.Tasks) != items {
		t.Fatalf("feed has %d tasks, want %d", len(feed.Tasks), items)
	}

	stream, err := DialEvents(ts.URL, "labels")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	go func() {
		for {
			if _, err := stream.Next(); err != nil {
				return
			}
		}
	}()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				do(t, "GET", ts.URL+"/api/v1/projects/labels", nil, nil)
				do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks?limit=10", nil, nil)
			}
		}
	}()

	// Each worker answers a disjoint slice of the request set, retrying on
	// 429 (admission control) until accepted.
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += workers {
				for {
					resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
						AnswerRequest{RequestID: feed.Tasks[i].ID, Values: map[string]any{"ok": true}}, nil)
					if resp.StatusCode == http.StatusAccepted {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs <- &unexpectedStatus{status: resp.StatusCode, id: feed.Tasks[i].ID}
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain: the deriver may still hold the last answers in a staging round.
	eng := p.Engine("labels")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p.StagedAnswers("labels") == 0 && len(eng.PendingRequests()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never drained: %d staged, %d pending",
				p.StagedAnswers("labels"), len(eng.PendingRequests()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(eng.Facts("labeled")); got != items {
		t.Fatalf("labeled facts = %d, want %d", got, items)
	}
	if got := len(eng.Facts("flagged")); got != 0 {
		t.Fatalf("flagged facts = %d, want 0 (every item approved)", got)
	}
}

type unexpectedStatus struct {
	status int
	id     string
}

func (e *unexpectedStatus) Error() string {
	return "unexpected status " + http.StatusText(e.status) + " answering " + e.id
}
