package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
)

// TestHTTPPathMatchesDirectEngine is the service-layer differential: the
// same workload driven once through the HTTP surface (facts + answers +
// fixpoint endpoints) and once through direct Engine calls must produce
// byte-identical facts and pending request ids after every round. The HTTP
// path may add transport, queueing and rounds — it may not add semantics.
func TestHTTPPathMatchesDirectEngine(t *testing.T) {
	const items = 12

	// Direct side: a bare engine driven by Engine calls only.
	direct, err := cylog.NewEngine(cylog.MustParse(labelingProgram))
	if err != nil {
		t.Fatal(err)
	}

	// HTTP side: a platform-backed server, no background deriver so round
	// boundaries are exactly the explicit fixpoint calls.
	p := platform.New()
	if _, err := p.RegisterProject(project.Description{
		ID: "labels", Name: "Labeling", CyLogSource: labelingProgram,
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Round 1: seed items on both sides, run to fixpoint.
	for i := 1; i <= items; i++ {
		if err := direct.AddFact("item", i); err != nil {
			t.Fatal(err)
		}
		resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/facts",
			FactRequest{Relation: "item", Values: []any{i}}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fact %d: status %d", i, resp.StatusCode)
		}
	}
	directPending, err := direct.Run()
	if err != nil {
		t.Fatal(err)
	}
	do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, nil)
	compareStates(t, "after seeding", direct, p.Engine("labels"))

	// Rounds 2..4: answer deterministic waves through both paths. Waves mix
	// true and false answers so both insertion and the negation-backed
	// flagged relation (retraction on the true answers) are exercised.
	for round := 0; round < 3; round++ {
		var feed TaskFeed
		do(t, "GET", ts.URL+"/api/v1/projects/labels/tasks?limit=1000", nil, &feed)
		if len(feed.Tasks) != len(directPending) {
			t.Fatalf("round %d: feed has %d tasks, direct has %d pending", round, len(feed.Tasks), len(directPending))
		}
		wave := len(feed.Tasks)/2 + 1
		if wave > len(feed.Tasks) {
			wave = len(feed.Tasks)
		}
		batch := direct.NewAnswerBatch()
		for i := 0; i < wave; i++ {
			ok := i%2 == 0
			// Same request id on both sides: the feed is sorted by id, and
			// so is direct.Run's pending slice.
			if feed.Tasks[i].ID != directPending[i].ID {
				t.Fatalf("round %d: request id %q via HTTP vs %q direct", round, feed.Tasks[i].ID, directPending[i].ID)
			}
			if err := batch.Answer(directPending[i].ID, map[string]any{"ok": ok}); err != nil {
				t.Fatal(err)
			}
			resp := do(t, "POST", ts.URL+"/api/v1/projects/labels/answers",
				AnswerRequest{RequestID: feed.Tasks[i].ID, Values: map[string]any{"ok": ok}}, nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("round %d answer %d: status %d", round, i, resp.StatusCode)
			}
		}
		directPending, err = direct.RunIncremental(batch)
		if err != nil {
			t.Fatal(err)
		}
		do(t, "POST", ts.URL+"/api/v1/projects/labels/fixpoint", nil, nil)
		compareStates(t, fmt.Sprintf("after answer round %d", round), direct, p.Engine("labels"))
	}
}

// compareStates requires byte-identical facts per relation and identical
// pending request ids between the two engines.
func compareStates(t *testing.T, when string, direct, viaHTTP *cylog.Engine) {
	t.Helper()
	for _, rel := range []string{"item", "label", "labeled", "flagged"} {
		if d, h := factStrings(direct, rel), factStrings(viaHTTP, rel); !equalStrings(d, h) {
			t.Fatalf("%s: relation %s diverged\ndirect: %v\nhttp:   %v", when, rel, d, h)
		}
	}
	d, h := requestIDs(direct), requestIDs(viaHTTP)
	if !equalStrings(d, h) {
		t.Fatalf("%s: pending requests diverged\ndirect: %v\nhttp:   %v", when, d, h)
	}
}

func factStrings(e *cylog.Engine, rel string) []string {
	facts := e.Facts(rel)
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = fmt.Sprint(f)
	}
	sort.Strings(out)
	return out
}

func requestIDs(e *cylog.Engine) []string {
	reqs := e.PendingRequests()
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
