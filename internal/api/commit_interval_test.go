package api

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
)

// TestCreateProjectBackendAndInterval covers the creation-side knobs: the
// request's backend override selects the relstore backend for the project's
// engine, and commit_interval_ms lands in the project description and the
// status view.
func TestCreateProjectBackendAndInterval(t *testing.T) {
	p := platform.New()
	p.SetStorage(platform.StorageOptions{Dir: t.TempDir(), BudgetBytes: 1 << 20})
	srv := NewServer(p, Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	var created ProjectStatus
	resp := do(t, "POST", ts.URL+"/api/v1/projects", CreateProjectRequest{
		ID: "diskproj", Name: "Disk project", CyLog: labelingProgram,
		Backend: "disk", CommitIntervalMS: 250,
	}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if created.CommitIntervalMS != 250 {
		t.Fatalf("created commit_interval_ms = %d, want 250", created.CommitIntervalMS)
	}
	var st ProjectStatus
	do(t, "GET", ts.URL+"/api/v1/projects/diskproj", nil, &st)
	if st.Storage == nil || st.Storage.Backend != "disk" {
		t.Fatalf("status storage = %+v, want disk backend", st.Storage)
	}
	if st.CommitIntervalMS != 250 {
		t.Fatalf("status commit_interval_ms = %d, want 250", st.CommitIntervalMS)
	}

	// An unknown backend is a validation error, not a registered project.
	resp = do(t, "POST", ts.URL+"/api/v1/projects", CreateProjectRequest{
		Name: "Bad", CyLog: labelingProgram, Backend: "papyrus",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad backend: status %d, want 400", resp.StatusCode)
	}
}

func TestProjectUpdateCommitInterval(t *testing.T) {
	ts, p := newTestService(t, Options{})

	ms := int64(400)
	var updated ProjectStatus
	resp := do(t, "PATCH", ts.URL+"/api/v1/projects/labels", UpdateProjectRequest{CommitIntervalMS: &ms}, &updated)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d", resp.StatusCode)
	}
	if updated.CommitIntervalMS != 400 {
		t.Fatalf("patched commit_interval_ms = %d, want 400", updated.CommitIntervalMS)
	}
	admin, _ := p.Projects.Get("labels")
	if admin.Description.CommitInterval != 400*time.Millisecond {
		t.Fatalf("description interval = %s, want 400ms", admin.Description.CommitInterval)
	}

	// Zero returns the project to the server-wide cadence. (Decode into a
	// fresh struct: commit_interval_ms is omitempty, so zero is absent.)
	zero := int64(0)
	var reset ProjectStatus
	do(t, "PATCH", ts.URL+"/api/v1/projects/labels", UpdateProjectRequest{CommitIntervalMS: &zero}, &reset)
	if reset.CommitIntervalMS != 0 {
		t.Fatalf("reset commit_interval_ms = %d, want 0", reset.CommitIntervalMS)
	}
	if admin, _ := p.Projects.Get("labels"); admin.Description.CommitInterval != 0 {
		t.Fatalf("description interval after reset = %s, want 0", admin.Description.CommitInterval)
	}

	neg := int64(-5)
	resp = do(t, "PATCH", ts.URL+"/api/v1/projects/labels", UpdateProjectRequest{CommitIntervalMS: &neg}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative interval: status %d, want 400", resp.StatusCode)
	}
	resp = do(t, "PATCH", ts.URL+"/api/v1/projects/nope", UpdateProjectRequest{CommitIntervalMS: &ms}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown project: status %d, want 404", resp.StatusCode)
	}
}

// TestPerProjectCommitCadence drives two projects through the background
// deriver: "fast" rides the server-wide tick, "slow" overrides it with a much
// longer interval. With answers staged steadily into both, the fast project
// must commit strictly more rounds than the slow one, and the slow one must
// still commit at least once — its answers are derived on its own cadence,
// not starved and not hurried. Margins are wide (15ms vs 250ms over ~750ms of
// staging) so scheduler noise cannot flip the comparison.
func TestPerProjectCommitCadence(t *testing.T) {
	p := platform.New()
	for _, d := range []project.Description{
		{ID: "fast", Name: "Fast", CyLogSource: labelingProgram},
		{ID: "slow", Name: "Slow", CyLogSource: labelingProgram, CommitInterval: 250 * time.Millisecond},
	} {
		if _, err := p.RegisterProject(d); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	commits := map[string]int{}
	cancel := p.Subscribe(func(e platform.Event) {
		if e.Kind == "fixpoint" {
			mu.Lock()
			commits[string(e.Project)]++
			mu.Unlock()
		}
	})
	defer cancel()

	srv := NewServer(p, Options{CommitInterval: 15 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Seed items and collect each project's open requests with a manual
	// fixpoint (commits via POST .../fixpoint bypass the deriver cadence and
	// are excluded from the comparison below by resetting the counters).
	ids := map[string][]string{}
	for _, id := range []string{"fast", "slow"} {
		for i := 1; i <= 25; i++ {
			do(t, "POST", ts.URL+"/api/v1/projects/"+id+"/facts", FactRequest{Relation: "item", Values: []any{i}}, nil)
		}
		do(t, "POST", ts.URL+"/api/v1/projects/"+id+"/fixpoint", nil, nil)
		var feed TaskFeed
		do(t, "GET", ts.URL+"/api/v1/projects/"+id+"/tasks?limit=100", nil, &feed)
		if len(feed.Tasks) != 25 {
			t.Fatalf("%s: %d tasks, want 25", id, len(feed.Tasks))
		}
		for _, tv := range feed.Tasks {
			ids[id] = append(ids[id], tv.ID)
		}
	}
	mu.Lock()
	commits = map[string]int{}
	mu.Unlock()

	// Stage one answer into each project every 30ms: both always have work,
	// so commit counts reflect cadence alone.
	for i := 0; i < 25; i++ {
		for _, id := range []string{"fast", "slow"} {
			resp := do(t, "POST", ts.URL+"/api/v1/projects/"+id+"/answers",
				AnswerRequest{RequestID: ids[id][i], Values: map[string]any{"ok": true}}, nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s answer %d: status %d", id, i, resp.StatusCode)
			}
		}
		time.Sleep(30 * time.Millisecond)
	}

	// Let the slow project's final interval elapse.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		slow := commits["slow"]
		mu.Unlock()
		if slow >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	fast, slow := commits["fast"], commits["slow"]
	mu.Unlock()
	if slow < 1 {
		t.Fatalf("slow project never committed via the deriver (fast=%d)", fast)
	}
	if fast <= slow {
		t.Fatalf("cadence override had no effect: fast committed %d rounds, slow %d", fast, slow)
	}
}
