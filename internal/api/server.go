// Package api is the service layer of the platform: a JSON/REST surface plus
// a WebSocket event stream over internal/platform, turning the in-process
// crowd loop into the HTTP service the paper's workers actually hit. Worker
// answers are staged through the platform's round-based ingress
// (Platform.StageAnswer → the engine's concurrent-safe AnswerBatch) and
// committed by a background deriver loop, so submission is cheap and
// lock-free on the hot path while the fixpoint runs at its own cadence.
//
// Backpressure: when a project's staging round holds QueueCapacity answers
// the fixpoint loop has fallen behind, and further submissions are refused
// with 429 Too Many Requests plus Retry-After (seconds, rounded up) and
// X-Retry-After-Ms (exact). Clients back off and retry; nothing is queued
// beyond the bound and nothing is silently dropped.
//
// Round contract: a successful submission returns the round number its
// answer was staged into. A "fixpoint" event on the WebSocket stream carries
// the committed round's number; observing round >= N proves the answer from
// round N is inserted, durable (when a WAL is attached) and reflected in the
// fixpoint. cmd/loadsim measures answer→fixpoint latency exactly this way.
//
// The HTTP path adds no evaluation semantics of its own — fixpoints and
// request ids reached through it are byte-identical to direct Engine calls
// (proved by TestHTTPPathMatchesDirectEngine). See docs/API.md for the wire
// reference.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/api/wire"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// Options configures a Server.
type Options struct {
	// QueueCapacity bounds each project's staged-but-uncommitted answers;
	// submissions beyond it get 429. Zero means DefaultQueueCapacity.
	QueueCapacity int
	// CommitInterval is the background deriver's cadence: every interval,
	// each project with staged answers gets a round commit (incremental
	// fixpoint + WAL). Zero disables the deriver — rounds then commit only
	// via POST .../fixpoint, which is what the differential tests use to
	// make round boundaries deterministic.
	CommitInterval time.Duration
	// RetryAfter is the backoff suggested on 429 responses. Zero defaults
	// to CommitInterval (one deriver tick frees the whole queue), or 100ms
	// when the deriver is off.
	RetryAfter time.Duration
	// UI, when set, serves every path outside /api/v1/ — the server-rendered
	// internal/webui front end rides on the same listener as the API.
	UI http.Handler
}

// DefaultQueueCapacity bounds a project's ingress queue when Options leaves
// QueueCapacity zero.
const DefaultQueueCapacity = 4096

// Server is the HTTP service. It implements http.Handler.
type Server struct {
	p    *platform.Platform
	opts Options
	mux  *http.ServeMux
	hub  *hub

	unsub    func()
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer builds the service over an existing platform. Call Close when
// done to stop the deriver loop and detach from the platform's event stream.
func NewServer(p *platform.Platform, opts Options) *Server {
	if opts.QueueCapacity <= 0 {
		opts.QueueCapacity = DefaultQueueCapacity
	}
	if opts.RetryAfter <= 0 {
		if opts.CommitInterval > 0 {
			opts.RetryAfter = opts.CommitInterval
		} else {
			opts.RetryAfter = 100 * time.Millisecond
		}
	}
	s := &Server{
		p:    p,
		opts: opts,
		mux:  http.NewServeMux(),
		hub:  newHub(),
		stop: make(chan struct{}),
	}
	s.unsub = p.Subscribe(s.hub.publish)

	s.mux.HandleFunc("GET /api/v1/projects", s.handleProjectList)
	s.mux.HandleFunc("POST /api/v1/projects", s.handleProjectCreate)
	s.mux.HandleFunc("GET /api/v1/projects/{id}", s.handleProjectStatus)
	s.mux.HandleFunc("PATCH /api/v1/projects/{id}", s.handleProjectUpdate)
	s.mux.HandleFunc("GET /api/v1/projects/{id}/tasks", s.handleTaskFeed)
	s.mux.HandleFunc("POST /api/v1/projects/{id}/answers", s.handleAnswer)
	s.mux.HandleFunc("POST /api/v1/projects/{id}/facts", s.handleFact)
	s.mux.HandleFunc("POST /api/v1/projects/{id}/fixpoint", s.handleFixpoint)
	s.mux.HandleFunc("GET /api/v1/projects/{id}/events", s.handleProjectEvents)
	s.mux.HandleFunc("GET /api/v1/events", s.handleAllEvents)
	s.mux.HandleFunc("/api/", s.handleAPINotFound)
	if opts.UI != nil {
		s.mux.Handle("/", opts.UI)
	}

	if opts.CommitInterval > 0 {
		s.wg.Add(1)
		go s.deriveLoop()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the deriver loop, detaches from the platform event stream and
// closes every WebSocket subscriber. The platform itself keeps running.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.unsub()
	})
	s.wg.Wait()
}

// deriveLoop is the background fixpoint pump: every CommitInterval tick it
// commits one round for each project with staged answers whose own cadence
// has elapsed. A project may override the server-wide interval through
// Description.CommitInterval (POST/PATCH carry it as commit_interval_ms);
// overrides are rounded up to the tick granularity, since the base ticker is
// the only clock. One loop serves every project, so commits for different
// projects are serialized — matching the single-writer WAL discipline —
// while staging stays fully concurrent.
func (s *Server) deriveLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.CommitInterval)
	defer ticker.Stop()
	lastCommit := make(map[project.ID]time.Time)
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			for _, a := range s.p.Projects.All() {
				id := a.Description.ID
				if s.p.Engine(id) == nil || s.p.StagedAnswers(id) == 0 {
					continue
				}
				if iv := a.Description.CommitInterval; iv > s.opts.CommitInterval {
					// Half a tick of slack so an interval that is an exact
					// multiple of the tick fires on its own tick instead of
					// slipping one further on scheduler jitter.
					if last, ok := lastCommit[id]; ok && now.Sub(last) < iv-s.opts.CommitInterval/2 {
						continue
					}
				}
				lastCommit[id] = now
				if _, err := s.p.CommitRound(id); err != nil {
					// Record through the platform event log, not the hub
					// directly: the failure must reach the durable audit
					// trail (Platform.Events, reconnecting subscribers) as
					// well as currently connected WebSocket clients — the
					// hub gets it via the server's platform subscription.
					s.p.Record(platform.Event{Kind: "commit-error", Project: id, Message: err.Error()})
				}
			}
		}
	}
}

// ---- wire types ----------------------------------------------------------

// The request/response schemas live in the leaf package internal/api/wire so
// clients (crowdsim's service client, cmd/loadsim) can share them without
// importing the server. Aliased here so server code and its callers can stay
// on the api.X names.
type (
	TaskView             = wire.TaskView
	TaskFeed             = wire.TaskFeed
	AnswerRequest        = wire.AnswerRequest
	AnswerResponse       = wire.AnswerResponse
	FactRequest          = wire.FactRequest
	FixpointResponse     = wire.FixpointResponse
	QueueStatus          = wire.QueueStatus
	StatsView            = wire.StatsView
	WALStatus            = wire.WALStatus
	ProjectStatus        = wire.ProjectStatus
	CreateProjectRequest = wire.CreateProjectRequest
	UpdateProjectRequest = wire.UpdateProjectRequest
	StorageStatus        = wire.StorageStatus
	EventMessage         = wire.EventMessage
	errorBody            = wire.ErrorBody
)

// DialEvents connects to a server's WebSocket event stream; see
// wire.DialEvents.
var DialEvents = wire.DialEvents

// EventStream re-exports the client-side subscription type.
type EventStream = wire.EventStream

// ---- handlers ------------------------------------------------------------

func (s *Server) handleAPINotFound(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, errorBody{Code: "not-found", Error: "no such API route: " + r.Method + " " + r.URL.Path})
}

func (s *Server) handleProjectList(w http.ResponseWriter, _ *http.Request) {
	admins := s.p.Projects.All()
	out := make([]ProjectStatus, 0, len(admins))
	for _, a := range admins {
		out = append(out, s.projectSummary(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{"projects": out})
}

func (s *Server) handleProjectCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateProjectRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-json", Error: err.Error()})
		return
	}
	admin, err := s.p.RegisterProject(project.Description{
		ID:             project.ID(req.ID),
		Name:           req.Name,
		Requester:      req.Requester,
		Summary:        req.Summary,
		CyLogSource:    req.CyLog,
		Storage:        req.Backend,
		CommitInterval: time.Duration(req.CommitIntervalMS) * time.Millisecond,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "invalid-project", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, s.projectSummary(admin))
}

func (s *Server) handleProjectStatus(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	admin, ok := s.p.Projects.Get(id)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %s", project.ErrUnknownProject, id))
		return
	}
	st := s.projectSummary(admin)
	if eng := s.p.Engine(id); eng != nil {
		stats := eng.Stats()
		st.Stats = &StatsView{
			Iterations:      stats.Iterations,
			RuleEvaluations: stats.RuleEvaluations,
			DerivedFacts:    stats.DerivedFacts,
			OpenRequests:    stats.OpenRequests,
		}
		st.Queue = &QueueStatus{
			Staged:    s.p.StagedAnswers(id),
			Capacity:  s.opts.QueueCapacity,
			NextRound: s.p.NextRound(id),
		}
	}
	if ws, ok := s.p.WALStats(id); ok {
		st.WAL = &WALStatus{Appends: ws.Appends, Snapshots: ws.Snapshots, LastSeq: ws.LastSeq}
	}
	if bs, ok := s.p.BackendStats(id); ok {
		st.Storage = &StorageStatus{
			Backend:           bs.Backend,
			Relations:         bs.Relations,
			ResidentRelations: bs.ResidentRelations,
			ResidentBytes:     bs.ResidentBytes,
			BudgetBytes:       bs.BudgetBytes,
			Faults:            bs.Faults,
			Evictions:         bs.Evictions,
			SegmentWrites:     bs.SegmentWrites,
			SegmentBytes:      bs.SegmentBytes,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleProjectUpdate applies the mutable slice of a project's description;
// today that is the commit-cadence override. Absent fields are left alone.
func (s *Server) handleProjectUpdate(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	var req UpdateProjectRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-json", Error: err.Error()})
		return
	}
	admin, ok := s.p.Projects.Get(id)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %s", project.ErrUnknownProject, id))
		return
	}
	if req.CommitIntervalMS != nil {
		if *req.CommitIntervalMS < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-request", Error: "commit_interval_ms must be non-negative"})
			return
		}
		var err error
		admin, err = s.p.Projects.SetCommitInterval(id, time.Duration(*req.CommitIntervalMS)*time.Millisecond)
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.projectSummary(admin))
}

func (s *Server) projectSummary(a *project.Admin) ProjectStatus {
	id := a.Description.ID
	st := ProjectStatus{
		ID:               string(id),
		Name:             a.Description.Name,
		Status:           string(a.Status),
		Requester:        a.Description.Requester,
		Summary:          a.Description.Summary,
		CommitIntervalMS: a.Description.CommitInterval.Milliseconds(),
	}
	if eng := s.p.Engine(id); eng != nil {
		st.HasEngine = true
		st.PendingRequests = len(eng.PendingRequests())
	}
	return st
}

func (s *Server) handleTaskFeed(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	eng, err := s.engineFor(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	offset := queryInt(r, "offset", 0)
	limit := queryInt(r, "limit", 100)
	if limit <= 0 {
		limit = 100
	}
	pending := eng.PendingRequests()
	feed := TaskFeed{Total: len(pending), Offset: offset, Limit: limit, Tasks: []TaskView{}}
	if offset < len(pending) {
		end := offset + limit
		if end > len(pending) {
			end = len(pending)
		}
		for _, req := range pending[offset:end] {
			feed.Tasks = append(feed.Tasks, taskView(req))
		}
	}
	writeJSON(w, http.StatusOK, feed)
}

func taskView(req cylog.OpenRequest) TaskView {
	key := make(map[string]any, len(req.KeyColumns))
	for i, c := range req.KeyColumns {
		key[c] = goValue(req.KeyValues[i])
	}
	return TaskView{
		ID:          req.ID,
		Relation:    req.Relation,
		Prompt:      req.Prompt,
		Scheme:      req.Scheme,
		Key:         key,
		OpenColumns: req.OpenColumns,
	}
}

// goValue converts a stored value to its natural JSON representation.
func goValue(v relstore.Value) any {
	switch v.Type() {
	case relstore.TypeInt:
		n, _ := v.AsInt()
		return n
	case relstore.TypeFloat:
		f, _ := v.AsFloat()
		return f
	case relstore.TypeBool:
		b, _ := v.AsBool()
		return b
	case relstore.TypeNull:
		return nil
	default:
		return v.AsString()
	}
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	var req AnswerRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-json", Error: err.Error()})
		return
	}
	if req.RequestID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-request", Error: "request_id is required"})
		return
	}
	// Admission control: refuse before staging when the round already holds
	// QueueCapacity answers. The check-then-stage is deliberately not atomic
	// — a burst can overshoot by the number of in-flight requests, which is
	// bounded and harmless; the point is that a stalled fixpoint loop makes
	// the service push back instead of buffering without limit.
	if s.p.StagedAnswers(id) >= s.opts.QueueCapacity {
		s.writeOverloaded(w)
		return
	}
	round, err := s.p.StageAnswer(id, req.RequestID, req.Values)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, AnswerResponse{Round: round, Queued: s.p.StagedAnswers(id)})
}

func (s *Server) handleFact(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	eng, err := s.engineFor(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req FactRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-json", Error: err.Error()})
		return
	}
	if req.Relation == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-request", Error: "relation is required"})
		return
	}
	if err := eng.AddFact(req.Relation, req.Values...); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "invalid-fact", Error: err.Error()})
		return
	}
	// Facts take effect at the next round commit (deriver tick or explicit
	// fixpoint), exactly like a direct AddFact before RunIncremental.
	writeJSON(w, http.StatusAccepted, map[string]any{"ok": true})
}

func (s *Server) handleFixpoint(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	rc, err := s.p.CommitRound(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FixpointResponse{
		Round:      rc.Seq,
		Answers:    rc.Answers,
		Skipped:    rc.Skipped,
		Pending:    len(rc.Requests),
		DurationNS: rc.Duration.Nanoseconds(),
	})
}

func (s *Server) handleProjectEvents(w http.ResponseWriter, r *http.Request) {
	id := project.ID(r.PathValue("id"))
	if _, ok := s.p.Projects.Get(id); !ok {
		s.writeError(w, fmt.Errorf("%w: %s", project.ErrUnknownProject, id))
		return
	}
	s.serveEvents(w, r, id)
}

func (s *Server) handleAllEvents(w http.ResponseWriter, r *http.Request) {
	s.serveEvents(w, r, "")
}

// serveEvents upgrades to WebSocket and streams events until the client
// disconnects, the subscriber is cancelled, or the server closes.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, id project.ID) {
	conn, err := wire.UpgradeWebSocket(w, r)
	if err != nil {
		// A pre-hijack failure leaves w usable, so a plain HTTP error works.
		// After a hijack (ErrHijacked) the TCP connection is already closed
		// and anything written to w would be silently discarded.
		if !errors.Is(err, wire.ErrHijacked) {
			writeJSON(w, http.StatusBadRequest, errorBody{Code: "bad-upgrade", Error: err.Error()})
		}
		return
	}
	ch, cancel := s.hub.subscribe(id)
	defer cancel()
	defer conn.Close()
	// Reader: the only expected client frames are pings and close. Its exit
	// (close frame or dropped TCP connection) cancels the subscription,
	// which ends the writer's range loop.
	go func() {
		for {
			if _, err := conn.ReadText(); err != nil {
				cancel()
				return
			}
		}
	}()
	for {
		select {
		case <-s.stop:
			return
		case msg, ok := <-ch:
			if !ok {
				return
			}
			payload, err := json.Marshal(msg)
			if err != nil {
				continue
			}
			if err := conn.WriteText(payload); err != nil {
				return
			}
		}
	}
}

// ---- helpers -------------------------------------------------------------

// engineFor mirrors platform's resolution so feed/fact handlers produce the
// same error mapping as the staging paths.
func (s *Server) engineFor(id project.ID) (*cylog.Engine, error) {
	if _, ok := s.p.Projects.Get(id); !ok {
		return nil, fmt.Errorf("%w: %s", project.ErrUnknownProject, id)
	}
	eng := s.p.Engine(id)
	if eng == nil {
		return nil, fmt.Errorf("%w: %s", platform.ErrNoEngine, id)
	}
	return eng, nil
}

// writeError maps platform/engine errors onto HTTP statuses. ErrRequestClosed
// wraps ErrUnknownRequest, so the closed case must be tested first.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, project.ErrUnknownProject):
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-project", Error: err.Error()})
	case errors.Is(err, platform.ErrNoEngine):
		writeJSON(w, http.StatusConflict, errorBody{Code: "no-engine", Error: err.Error()})
	case errors.Is(err, cylog.ErrRequestClosed):
		writeJSON(w, http.StatusConflict, errorBody{Code: "request-closed", Error: err.Error()})
	case errors.Is(err, cylog.ErrUnknownRequest):
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-request", Error: err.Error()})
	case errors.Is(err, cylog.ErrDuplicateAnswer):
		writeJSON(w, http.StatusConflict, errorBody{Code: "duplicate-answer", Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Code: "invalid", Error: err.Error()})
	}
}

// writeOverloaded emits the 429 backpressure response. Retry-After is in
// whole seconds per RFC 9110 (rounded up, so sub-second backoffs do not
// become "retry immediately"); X-Retry-After-Ms carries the exact hint.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(s.opts.RetryAfter.Milliseconds(), 10))
	writeJSON(w, http.StatusTooManyRequests, errorBody{
		Code:  "overloaded",
		Error: fmt.Sprintf("ingress queue full (%d staged answers); retry after the next fixpoint", s.opts.QueueCapacity),
	})
}

// decodeJSON decodes a request body, rejecting trailing garbage and unknown
// payloads larger than 1 MiB.
func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data after document")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}

func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}
