package project

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/task"
)

func validDescription() Description {
	return Description{
		Name:      "Subtitle translation",
		Requester: "mori",
		Summary:   "Translate video subtitles from English to Japanese",
		Scheme:    task.Sequential,
		Factors: DesiredFactors{
			Constraints: task.Constraints{
				RequiredSkill: "translation", MinSkill: 0.5, UpperCriticalMass: 3, MinTeamSize: 2,
			},
			RecruitmentWindow: 2 * time.Hour,
		},
		CyLogSource: `
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate".
rel need(sid: int).
need(S) :- sentence(S, _), translated(S, _).
`,
	}
}

func TestDescriptionValidate(t *testing.T) {
	d := validDescription()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid description rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Description)
	}{
		{"empty name", func(d *Description) { d.Name = "  " }},
		{"bad scheme", func(d *Description) { d.Scheme = "teleportation" }},
		{"negative team size", func(d *Description) { d.Factors.Constraints.MinTeamSize = -1 }},
		{"skill out of range", func(d *Description) { d.Factors.Constraints.MinSkill = 1.5 }},
		{"affinity out of range", func(d *Description) { d.Factors.Constraints.MinPairAffinity = -0.1 }},
		{"negative budget", func(d *Description) { d.Factors.Constraints.CostBudget = -1 }},
		{"negative window", func(d *Description) { d.Factors.RecruitmentWindow = -time.Hour }},
		{"cylog parse error", func(d *Description) { d.CyLogSource = "rel broken(" }},
		{"cylog analysis error", func(d *Description) { d.CyLogSource = "rel a(x: int). b(X) :- a(X)." }},
	}
	for _, c := range cases {
		d := validDescription()
		c.mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	// Empty CyLog source is allowed (template-driven projects).
	d = validDescription()
	d.CyLogSource = ""
	if err := d.Validate(); err != nil {
		t.Errorf("empty CyLog should be allowed: %v", err)
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	now := time.Date(2016, 9, 5, 10, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return now })

	a, err := r.Register(validDescription())
	if err != nil {
		t.Fatal(err)
	}
	if a.Description.ID == "" || a.Status != StatusActive || !a.RegisteredAt.Equal(now) {
		t.Errorf("admin = %+v", a)
	}
	if a.Description.Factors.Constraints.MinTeamSize != 2 {
		t.Error("constraints should be normalized and preserved")
	}
	got, ok := r.Get(a.Description.ID)
	if !ok || got.Description.Name != "Subtitle translation" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	// Returned record is a copy.
	got.Status = StatusPaused
	again, _ := r.Get(a.Description.ID)
	if again.Status != StatusActive {
		t.Error("Get should return a copy")
	}
	if r.Count() != 1 {
		t.Errorf("Count = %d", r.Count())
	}
	// Invalid description is rejected.
	bad := validDescription()
	bad.Name = ""
	if _, err := r.Register(bad); err == nil {
		t.Error("invalid description should be rejected")
	}
	// Duplicate explicit id is rejected.
	dup := validDescription()
	dup.ID = a.Description.ID
	if _, err := r.Register(dup); err == nil {
		t.Error("duplicate id should be rejected")
	}
	// A second project gets a different generated id.
	b, err := r.Register(validDescription())
	if err != nil || b.Description.ID == a.Description.ID {
		t.Errorf("second project id = %v, err=%v", b.Description.ID, err)
	}
	all := r.All()
	if len(all) != 2 || all[0].Description.ID > all[1].Description.ID {
		t.Errorf("All = %v", all)
	}
}

func TestRegistryDefaultScheme(t *testing.T) {
	r := NewRegistry()
	d := validDescription()
	d.Scheme = ""
	a, err := r.Register(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Description.Scheme != task.Sequential {
		t.Errorf("default scheme = %s", a.Description.Scheme)
	}
}

func TestRegistryStatusAndFactors(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register(validDescription())
	id := a.Description.ID

	if err := r.SetStatus(id, StatusPaused); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(id)
	if got.Status != StatusPaused {
		t.Errorf("status = %s", got.Status)
	}
	if err := r.SetStatus("zzz", StatusPaused); !errors.Is(err, ErrUnknownProject) {
		t.Errorf("unknown project: %v", err)
	}

	updated, err := r.UpdateFactors(id, DesiredFactors{
		Constraints:       task.Constraints{UpperCriticalMass: 5, MinTeamSize: 3},
		RecruitmentWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated.Description.Factors.Constraints.UpperCriticalMass != 5 {
		t.Error("UpdateFactors did not apply")
	}
	if _, err := r.UpdateFactors(id, DesiredFactors{Constraints: task.Constraints{MinSkill: 3}}); err == nil {
		t.Error("invalid factors should be rejected")
	}
	if _, err := r.UpdateFactors("zzz", DesiredFactors{}); !errors.Is(err, ErrUnknownProject) {
		t.Errorf("unknown project: %v", err)
	}
}

func TestRegistryNotices(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register(validDescription())
	id := a.Description.ID
	if err := r.Notify(id, "action-required", "No feasible team; please relax the constraints"); err != nil {
		t.Fatal(err)
	}
	notices := r.Notices(id)
	if len(notices) != 1 || notices[0].Level != "action-required" || !strings.Contains(notices[0].Message, "relax") {
		t.Errorf("notices = %v", notices)
	}
	if err := r.Notify("zzz", "info", "x"); !errors.Is(err, ErrUnknownProject) {
		t.Errorf("unknown project: %v", err)
	}
	if r.Notices("zzz") != nil {
		t.Error("unknown project notices should be nil")
	}
	// Get returns a copy of notices.
	got, _ := r.Get(id)
	got.Notices[0].Message = "tampered"
	if r.Notices(id)[0].Message == "tampered" {
		t.Error("notices should be copied")
	}
}

func TestAdminTaskConstraints(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register(validDescription())
	now := time.Date(2016, 9, 5, 10, 0, 0, 0, time.UTC)
	c := a.TaskConstraints(now)
	if !c.RecruitmentDeadline.Equal(now.Add(2 * time.Hour)) {
		t.Errorf("deadline = %v", c.RecruitmentDeadline)
	}
	if c.UpperCriticalMass != 3 || c.MinTeamSize != 2 {
		t.Errorf("constraints = %+v", c)
	}
	// No window → no deadline.
	d := validDescription()
	d.Factors.RecruitmentWindow = 0
	b, _ := r.Register(d)
	if !b.TaskConstraints(now).RecruitmentDeadline.IsZero() {
		t.Error("zero window should produce no deadline")
	}
}
