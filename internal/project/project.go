// Package project implements Crowd4U's project manager (Figure 2): requesters
// register projects — a declarative CyLog description plus the desired human
// factors entered on the project administration page (Figure 3) — and the
// platform generates an admin page, interprets the CyLog rules, and drives
// task generation and assignment for the project.
package project

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/task"
)

// ID identifies a project.
type ID string

// Status is the lifecycle status of a project.
type Status string

// Project statuses.
const (
	StatusDraft    Status = "draft"
	StatusActive   Status = "active"
	StatusPaused   Status = "paused"
	StatusFinished Status = "finished"
)

// DesiredFactors is what the requester enters in the constraint form of the
// project administration page (Figure 3): the human factors a team must
// satisfy and the recruitment expiration.
type DesiredFactors struct {
	// Constraints maps directly onto task constraints applied to every task
	// the project generates (individual tasks may override).
	Constraints task.Constraints
	// RecruitmentWindow is how long after task creation the recruitment
	// deadline is set (0 = no deadline). The paper's admin form lets the
	// requester "specify an expiration time for worker recruitment".
	RecruitmentWindow time.Duration
	// AssignmentAlgorithm optionally names the team-formation algorithm to
	// use ("greedy", "exact", "grasp", "star", ...); empty = platform default.
	AssignmentAlgorithm string
}

// Description is a requester-submitted project.
type Description struct {
	ID        ID
	Name      string
	Requester string
	// Summary is shown to workers on their user pages.
	Summary string
	// CyLogSource is the declarative description of the project's data flow;
	// it may be empty for projects driven purely by explicit task templates.
	CyLogSource string
	// Scheme is the default collaboration scheme for the project's tasks.
	Scheme task.CollaborationScheme
	// Factors are the requester's desired human factors.
	Factors DesiredFactors
	// TaskForm is the default form presented to workers for project tasks.
	TaskForm task.Form
	// Storage overrides the platform-wide relstore backend for this
	// project's engine: "" (platform default), "memory" or "disk".
	Storage string
	// CommitInterval overrides the service layer's background deriver
	// cadence for this project (0 = use the server-wide interval).
	CommitInterval time.Duration
	// CreatedAt is when the project was registered.
	CreatedAt time.Time
}

// Validate checks that the description is registrable: a name, a valid
// scheme, sane constraints and — when CyLog source is present — a program
// that parses and analyses cleanly.
func (d *Description) Validate() error {
	var errs []string
	if strings.TrimSpace(d.Name) == "" {
		errs = append(errs, "project name is required")
	}
	if d.Scheme != "" && !d.Scheme.Valid() {
		errs = append(errs, fmt.Sprintf("unknown collaboration scheme %q", d.Scheme))
	}
	c := d.Factors.Constraints
	if c.MinTeamSize < 0 || c.UpperCriticalMass < 0 {
		errs = append(errs, "team size bounds must be non-negative")
	}
	if c.MinSkill < 0 || c.MinSkill > 1 {
		errs = append(errs, "minimum skill must be in [0,1]")
	}
	if c.MinPairAffinity < 0 || c.MinPairAffinity > 1 {
		errs = append(errs, "minimum pair affinity must be in [0,1]")
	}
	if c.CostBudget < 0 {
		errs = append(errs, "cost budget must be non-negative")
	}
	if d.Factors.RecruitmentWindow < 0 {
		errs = append(errs, "recruitment window must be non-negative")
	}
	switch d.Storage {
	case "", "memory", "disk":
	default:
		errs = append(errs, fmt.Sprintf("unknown storage backend %q (want memory or disk)", d.Storage))
	}
	if d.CommitInterval < 0 {
		errs = append(errs, "commit interval must be non-negative")
	}
	if d.CyLogSource != "" {
		prog, err := cylog.Parse(d.CyLogSource)
		if err != nil {
			errs = append(errs, fmt.Sprintf("CyLog source does not parse: %v", err))
		} else if _, err := cylog.Analyze(prog); err != nil {
			errs = append(errs, fmt.Sprintf("CyLog source does not analyse: %v", err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("project: invalid description: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Admin is the registered project together with its administrative state —
// the model behind the project administration page.
type Admin struct {
	Description Description
	Status      Status
	// Notices holds messages for the requester, e.g. the suggestion to relax
	// constraints when no feasible team exists (§2.2.1).
	Notices []Notice
	// RegisteredAt is when the project was accepted by the registry.
	RegisteredAt time.Time
}

// Notice is one message for the project's requester.
type Notice struct {
	At      time.Time
	Level   string // "info", "warning", "action-required"
	Message string
}

// ErrUnknownProject is returned for operations on unregistered project ids.
var ErrUnknownProject = errors.New("project: unknown project")

// Registry stores registered projects. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	projects map[ID]*Admin
	nextID   int
	nowFn    func() time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{projects: make(map[ID]*Admin), nowFn: time.Now}
}

// SetClock overrides the time source for tests.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nowFn = now
}

// Register validates and stores a project description, assigning an id when
// the description has none, and returns the admin record. New projects start
// in StatusActive: registering a project immediately generates its admin page
// and makes its tasks available for interest (Figure 2, step 1).
func (r *Registry) Register(d Description) (*Admin, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.ID == "" {
		r.nextID++
		d.ID = ID(fmt.Sprintf("project-%04d", r.nextID))
	}
	if _, dup := r.projects[d.ID]; dup {
		return nil, fmt.Errorf("project: project %s already registered", d.ID)
	}
	if d.CreatedAt.IsZero() {
		d.CreatedAt = r.nowFn()
	}
	if d.Scheme == "" {
		d.Scheme = task.Sequential
	}
	d.Factors.Constraints = d.Factors.Constraints.Normalize()
	a := &Admin{Description: d, Status: StatusActive, RegisteredAt: r.nowFn()}
	r.projects[d.ID] = a
	return cloneAdmin(a), nil
}

// Get returns a copy of the project admin record.
func (r *Registry) Get(id ID) (*Admin, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.projects[id]
	if !ok {
		return nil, false
	}
	return cloneAdmin(a), true
}

// All returns copies of all projects sorted by id.
func (r *Registry) All() []*Admin {
	r.mu.RLock()
	out := make([]*Admin, 0, len(r.projects))
	for _, a := range r.projects {
		out = append(out, cloneAdmin(a))
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Description.ID < out[j].Description.ID })
	return out
}

// Count returns the number of registered projects.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.projects)
}

// SetStatus transitions a project's status.
func (r *Registry) SetStatus(id ID, s Status) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.projects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProject, id)
	}
	a.Status = s
	return nil
}

// UpdateFactors replaces the project's desired human factors (the requester
// edited the constraint form) and returns the updated admin record.
func (r *Registry) UpdateFactors(id ID, f DesiredFactors) (*Admin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.projects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProject, id)
	}
	d := a.Description
	d.Factors = f
	d.Factors.Constraints = d.Factors.Constraints.Normalize()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	a.Description = d
	return cloneAdmin(a), nil
}

// SetCommitInterval replaces the project's commit-cadence override (0 =
// server default) and returns the updated admin record. The deriver loop in
// internal/api reads the override on every tick, so the change takes effect
// at the next tick without restarting anything.
func (r *Registry) SetCommitInterval(id ID, iv time.Duration) (*Admin, error) {
	if iv < 0 {
		return nil, fmt.Errorf("project: commit interval must be non-negative")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.projects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProject, id)
	}
	a.Description.CommitInterval = iv
	return cloneAdmin(a), nil
}

// Notify appends a notice to the project's admin page.
func (r *Registry) Notify(id ID, level, message string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.projects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProject, id)
	}
	a.Notices = append(a.Notices, Notice{At: r.nowFn(), Level: level, Message: message})
	return nil
}

// Notices returns a copy of the project's notices.
func (r *Registry) Notices(id ID) []Notice {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.projects[id]
	if !ok {
		return nil
	}
	return append([]Notice(nil), a.Notices...)
}

func cloneAdmin(a *Admin) *Admin {
	c := *a
	c.Notices = append([]Notice(nil), a.Notices...)
	c.Description.TaskForm = a.Description.TaskForm.Clone()
	return &c
}

// TaskConstraints derives the constraints for a new task of the project:
// the project's desired factors plus a recruitment deadline computed from the
// recruitment window.
func (a *Admin) TaskConstraints(now time.Time) task.Constraints {
	c := a.Description.Factors.Constraints.Normalize()
	if w := a.Description.Factors.RecruitmentWindow; w > 0 {
		c.RecruitmentDeadline = now.Add(w)
	}
	return c
}
