package crowdsim

import (
	"strings"
	"testing"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/collab"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

func newCrowd(t *testing.T, n int) (*Crowd, []*worker.Worker) {
	t.Helper()
	wm := worker.NewManager()
	c := New(DefaultConfig(42), wm)
	ws := c.GeneratePopulation(DefaultPopulation(n))
	if len(ws) != n {
		t.Fatalf("generated %d workers, want %d", len(ws), n)
	}
	return c, ws
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	build := func() []string {
		wm := worker.NewManager()
		c := New(DefaultConfig(7), wm)
		ws := c.GeneratePopulation(DefaultPopulation(20))
		out := make([]string, 0, len(ws))
		for _, w := range ws {
			out = append(out, string(w.ID)+":"+w.Factors.NativeLanguages[0]+":"+w.Factors.Location.Region)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratePopulationProperties(t *testing.T) {
	c, ws := newCrowd(t, 30)
	if c.Manager().Count() != 30 {
		t.Errorf("manager count = %d", c.Manager().Count())
	}
	regions := make(map[string]int)
	for _, w := range ws {
		regions[w.Factors.Location.Region]++
		if len(w.Factors.NativeLanguages) != 1 {
			t.Errorf("worker %s native languages = %v", w.ID, w.Factors.NativeLanguages)
		}
		for _, s := range []string{"translation", "journalism", "surveillance"} {
			v := w.Factors.Skill(s)
			if v < 0.3 || v > 1.0 {
				t.Errorf("worker %s skill %s = %v out of range", w.ID, s, v)
			}
		}
		if !w.LoggedIn || w.Factors.WagePerTask != 1 {
			t.Errorf("worker defaults wrong: %+v", w)
		}
	}
	if len(regions) < 3 {
		t.Errorf("population should span several regions: %v", regions)
	}
	// Same-region workers should on average have higher affinity than
	// cross-region ones.
	aff := c.Manager().Affinity()
	same, cross := 0.0, 0.0
	sameN, crossN := 0, 0
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			v := aff.Get(ws[i].ID, ws[j].ID)
			if ws[i].Factors.Location.Region == ws[j].Factors.Location.Region {
				same += v
				sameN++
			} else {
				cross += v
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("expected both same-region and cross-region pairs")
	}
	if same/float64(sameN) <= cross/float64(crossN) {
		t.Errorf("same-region affinity (%.3f) should exceed cross-region (%.3f)", same/float64(sameN), cross/float64(crossN))
	}
}

func TestGeneratePopulationEdgeCases(t *testing.T) {
	wm := worker.NewManager()
	c := New(Config{Seed: 1}, wm)
	if got := c.GeneratePopulation(PopulationSpec{Size: 0}); got != nil {
		t.Error("zero-size population should be nil")
	}
	ws := c.GeneratePopulation(PopulationSpec{Size: 3}) // all defaults empty
	if len(ws) != 3 {
		t.Fatalf("generated %d workers", len(ws))
	}
	if ws[0].Factors.NativeLanguages[0] != "en" {
		t.Errorf("default language = %v", ws[0].Factors.NativeLanguages)
	}
}

func TestDeclareInterestAndUndertake(t *testing.T) {
	c, ws := newCrowd(t, 40)
	tk := task.NewTask("t1", "p1", "x", task.Sequential, task.Constraints{})
	var eligible []worker.ID
	for _, w := range ws {
		c.Manager().SetRelationship(worker.Eligible, string(tk.ID), w.ID)
		eligible = append(eligible, w.ID)
	}
	interested := c.DeclareInterest(tk.ID, eligible)
	if len(interested) == 0 || len(interested) == len(eligible) {
		t.Errorf("interest should be probabilistic: %d of %d", len(interested), len(eligible))
	}
	for _, id := range interested {
		if !c.Manager().HasRelationship(worker.InterestedIn, string(tk.ID), id) {
			t.Errorf("interest for %s not recorded", id)
		}
	}
	// Acceptance is probabilistic but mostly true with the default 0.8.
	accepts := 0
	for i := 0; i < 100; i++ {
		if c.WillUndertake(ws[0].ID, tk.ID) {
			accepts++
		}
	}
	if accepts < 60 || accepts > 95 {
		t.Errorf("acceptance rate = %d/100, want around 80", accepts)
	}
}

func TestPerformStepKinds(t *testing.T) {
	c, ws := newCrowd(t, 5)
	taskID := task.ID("t1")
	c.SetTeamContext(taskID, 0.9)
	kinds := []collab.StepKind{
		collab.StepDraft, collab.StepImprove, collab.StepFix, collab.StepCheck,
		collab.StepSNS, collab.StepContribute, collab.StepSubmit,
		collab.StepFact, collab.StepCorrect, collab.StepTestimonial, collab.StepKind("custom"),
	}
	for _, k := range kinds {
		resp, err := c.Perform(collab.StepRequest{
			TaskID: taskID, Worker: ws[0].ID, Kind: k,
			Input: map[string]string{
				"source": "Hello", "text": "previous text", "document": "whole doc",
				"region": "north", "period": "am", "section": "intro", "topic": "festival",
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if resp.Quality < 0 || resp.Quality > 1 {
			t.Errorf("%s quality = %v", k, resp.Quality)
		}
		if resp.Latency <= 0 {
			t.Errorf("%s latency = %v", k, resp.Latency)
		}
		switch k {
		case collab.StepCheck:
			if resp.Fields["confirmed"] == "" {
				t.Errorf("check should answer confirmed")
			}
		case collab.StepSNS:
			if !strings.Contains(resp.Fields["sns_id"], string(ws[0].ID)) {
				t.Errorf("sns_id = %q", resp.Fields["sns_id"])
			}
		case collab.StepSubmit:
			if resp.Fields["text"] != "whole doc" {
				t.Errorf("submit should return the document")
			}
		default:
			if resp.Fields["text"] == "" {
				t.Errorf("%s should produce text", k)
			}
		}
	}
	counts := c.StepCounts()
	if counts[collab.StepDraft] != 1 || len(counts) != len(kinds) {
		t.Errorf("step counts = %v", counts)
	}
	if _, err := c.Perform(collab.StepRequest{Worker: "ghost", Kind: collab.StepDraft}); err == nil {
		t.Error("unknown worker should fail")
	}
}

func TestAffinitySynergyRaisesQuality(t *testing.T) {
	wm := worker.NewManager()
	wm.Register(&worker.Worker{ID: "w", Factors: worker.HumanFactors{Skills: map[string]float64{"translation": 0.5}}})
	cfg := DefaultConfig(1)
	cfg.QualityNoise = 0
	c := New(cfg, wm)

	c.SetTeamContext("low", 0.0)
	c.SetTeamContext("high", 1.0)
	lo, _ := c.Perform(collab.StepRequest{TaskID: "low", Worker: "w", Kind: collab.StepDraft, Input: map[string]string{"source": "x"}})
	hi, _ := c.Perform(collab.StepRequest{TaskID: "high", Worker: "w", Kind: collab.StepDraft, Input: map[string]string{"source": "x"}})
	if hi.Quality <= lo.Quality {
		t.Errorf("high-affinity team quality (%.3f) should exceed low-affinity (%.3f)", hi.Quality, lo.Quality)
	}
	if hi.Quality != clamp01(0.5+cfg.AffinitySynergy) {
		t.Errorf("quality = %v, want %v", hi.Quality, 0.5+cfg.AffinitySynergy)
	}
}

func TestCrowdDrivesSequentialScheme(t *testing.T) {
	c, ws := newCrowd(t, 6)
	tk := task.NewTask("t-seq", "p", "Translate", task.Sequential, task.Constraints{UpperCriticalMass: 3})
	tk.Input["sentence"] = "Hello world"
	team := []worker.ID{ws[0].ID, ws[1].ID, ws[2].ID}
	c.SetTeamContext(tk.ID, c.Manager().Affinity().GroupAffinity(team))
	out, err := (&collab.Sequential{MaxFixRounds: 1}).Run(tk, team, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Fields["text"] == "" {
		t.Fatalf("no result: %+v", out)
	}
	if !strings.Contains(out.Result.Fields["text"], "Hello world") {
		t.Errorf("result should reference the source: %q", out.Result.Fields["text"])
	}
	if out.Result.Quality <= 0 {
		t.Errorf("quality = %v", out.Result.Quality)
	}
}

func TestAnswerOpenRequest(t *testing.T) {
	c, _ := newCrowd(t, 3)
	req := cylog.OpenRequest{
		Relation:    "checked",
		KeyColumns:  []string{"sid"},
		KeyValues:   []relstore.Value{relstore.Int(1)},
		OpenColumns: []string{"ok", "text", "count", "score"},
	}
	vals, ok := c.AnswerOpenRequest(req)
	if !ok {
		t.Fatal("oracle should answer")
	}
	if _, isBool := vals["ok"].(bool); !isBool {
		t.Errorf("ok should be a bool, got %T", vals["ok"])
	}
	if _, isString := vals["text"].(string); !isString {
		t.Errorf("text should be a string, got %T", vals["text"])
	}
	if _, isInt := vals["count"].(int); !isInt {
		t.Errorf("count should be an int, got %T", vals["count"])
	}
	if _, isFloat := vals["score"].(float64); !isFloat {
		t.Errorf("score should be a float, got %T", vals["score"])
	}
}

func TestCrowdDrivesCyLogEngine(t *testing.T) {
	c, _ := newCrowd(t, 3)
	e, err := cylog.NewEngine(cylog.MustParse(`
rel sentence(sid: int, text: string).
open rel translated(sid: int, text: string) key(sid) asks "Translate".
open rel checked(sid: int, ok: bool) key(sid) asks "Check".
rel need(sid: int).
rel done(sid: int, text: string).
sentence(1, "Hello").
sentence(2, "World").
need(S) :- sentence(S, _), translated(S, _).
done(S, T) :- translated(S, T), checked(S, true).
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToFixpointWithOracle(c.AnswerOpenRequest, 20); err != nil {
		t.Fatal(err)
	}
	if len(e.Facts("translated")) != 2 {
		t.Errorf("translated = %v", e.Facts("translated"))
	}
	// checked(S, true) derives done only when the simulated checker said yes;
	// with the default 85% yes rate at least one of two usually lands, but we
	// only assert the relation is populated, not the verdicts.
	if len(e.Facts("checked")) != 2 {
		t.Errorf("checked = %v", e.Facts("checked"))
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	wm := worker.NewManager()
	c := New(Config{Seed: 1}, wm)
	if c.cfg.InterestProbability <= 0 || c.cfg.AcceptProbability <= 0 || c.cfg.BaseLatency <= 0 {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
	d := DefaultConfig(9)
	if d.Seed != 9 || d.BaseLatency != 30*time.Second {
		t.Errorf("DefaultConfig = %+v", d)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(3), newRNG(3)
	for i := 0; i < 20; i++ {
		if a.float() != b.float() {
			t.Fatal("rng not deterministic")
		}
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}
