package crowdsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/api/wire"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/relstore"
)

// ServiceClient is the simulated crowd's HTTP mode: the same worker
// behaviour as the in-process simulator, but driven through the service
// layer (internal/api, schemas in internal/api/wire) the way live workers hit crowd4u.org — task feed over
// REST, answers through the ingress queue, fixpoint completion observed on
// the WebSocket event stream. cmd/loadsim composes thousands of these into
// a closed-loop load harness.
type ServiceClient struct {
	base    string
	project string
	httpc   *http.Client
}

// NewServiceClient targets one project of a service at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewServiceClient(baseURL, projectID string) *ServiceClient {
	return &ServiceClient{
		base:    strings.TrimRight(baseURL, "/"),
		project: projectID,
		httpc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// ServiceError is a non-2xx API response: the mapped status, the machine
// code from the error envelope, and — for 429 backpressure responses — the
// server's retry hint.
type ServiceError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("crowdsim: service responded %d (%s): %s", e.Status, e.Code, e.Message)
}

// Overloaded reports whether the service pushed back with 429; callers
// should wait RetryAfter and resubmit.
func (e *ServiceError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// CreateProject registers a project and returns its status view.
func (c *ServiceClient) CreateProject(req wire.CreateProjectRequest) (wire.ProjectStatus, error) {
	var out wire.ProjectStatus
	err := c.do("POST", "/api/v1/projects", req, &out)
	return out, err
}

// Status fetches the project's status (pending requests, ingress queue,
// engine stats, WAL).
func (c *ServiceClient) Status() (wire.ProjectStatus, error) {
	var out wire.ProjectStatus
	err := c.do("GET", c.projectPath(""), nil, &out)
	return out, err
}

// Tasks fetches one page of the open-request feed. Workers shard the feed
// between themselves by offset.
func (c *ServiceClient) Tasks(offset, limit int) (wire.TaskFeed, error) {
	var out wire.TaskFeed
	path := fmt.Sprintf("%s?offset=%d&limit=%d", c.projectPath("/tasks"), offset, limit)
	err := c.do("GET", path, nil, &out)
	return out, err
}

// SubmitAnswer stages one answer through the ingress queue. The returned
// round number resolves against "fixpoint" events on the event stream: the
// answer is derived once a fixpoint with round >= Round is observed. A 429
// comes back as a *ServiceError with Overloaded() true and RetryAfter set.
func (c *ServiceClient) SubmitAnswer(requestID string, values map[string]any) (wire.AnswerResponse, error) {
	var out wire.AnswerResponse
	err := c.do("POST", c.projectPath("/answers"), wire.AnswerRequest{RequestID: requestID, Values: values}, &out)
	return out, err
}

// AddFact ingests one base fact ahead of the next round commit.
func (c *ServiceClient) AddFact(relation string, values ...any) error {
	return c.do("POST", c.projectPath("/facts"), wire.FactRequest{Relation: relation, Values: values}, nil)
}

// Fixpoint forces a round commit and reports it.
func (c *ServiceClient) Fixpoint() (wire.FixpointResponse, error) {
	var out wire.FixpointResponse
	err := c.do("POST", c.projectPath("/fixpoint"), nil, &out)
	return out, err
}

// Events subscribes to the project's WebSocket event stream.
func (c *ServiceClient) Events() (*wire.EventStream, error) {
	return wire.DialEvents(c.base, c.project)
}

func (c *ServiceClient) projectPath(suffix string) string {
	return "/api/v1/projects/" + url.PathEscape(c.project) + suffix
}

func (c *ServiceClient) do(method, path string, body, out any) error {
	var payload io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, payload)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		se := &ServiceError{Status: resp.StatusCode}
		var eb struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &eb) == nil {
			se.Code, se.Message = eb.Code, eb.Error
		}
		if ms := resp.Header.Get("X-Retry-After-Ms"); ms != "" {
			if n, err := strconv.ParseInt(ms, 10, 64); err == nil {
				se.RetryAfter = time.Duration(n) * time.Millisecond
			}
		} else if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				se.RetryAfter = time.Duration(n) * time.Second
			}
		}
		return se
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("crowdsim: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// AnswerTaskView synthesizes an answer for a task fetched over the REST
// feed, reusing the same column-name heuristics as the in-process oracle so
// HTTP-mode workers behave identically to direct-engine ones.
func (c *Crowd) AnswerTaskView(tv wire.TaskView) (map[string]any, bool) {
	req := cylog.OpenRequest{
		ID:          tv.ID,
		Relation:    tv.Relation,
		Prompt:      tv.Prompt,
		Scheme:      tv.Scheme,
		OpenColumns: tv.OpenColumns,
	}
	cols := make([]string, 0, len(tv.Key))
	for k := range tv.Key {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	for _, k := range cols {
		req.KeyColumns = append(req.KeyColumns, k)
		req.KeyValues = append(req.KeyValues, relstore.FromGo(tv.Key[k]))
	}
	return c.AnswerOpenRequest(req)
}
