// Package crowdsim provides a deterministic simulated crowd. The paper's
// Crowd4U deployment relies on live volunteer workers at crowd4u.org; this
// repository substitutes a simulator (see DESIGN.md §2) so that every code
// path of the platform — eligibility, interest, undertaking, collaboration
// steps, CyLog open-predicate answers — can be exercised unattended and
// reproducibly. The simulator models:
//
//   - worker populations with languages, regions, locations, skills and wages;
//   - interest and acceptance behaviour (probability of declaring interest in
//     an eligible task, probability of undertaking a suggested assignment);
//   - answer synthesis for collaboration steps, with answer quality driven by
//     the worker's skill plus a team-affinity synergy bonus and bounded noise;
//   - latency per step, proportional to the work kind.
package crowdsim

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/collab"
	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// Config tunes the simulated crowd's behaviour.
type Config struct {
	// Seed makes the whole simulation deterministic.
	Seed int64
	// InterestProbability is the chance an eligible worker declares interest
	// in a task shown on their user page.
	InterestProbability float64
	// AcceptProbability is the chance a suggested team member undertakes the
	// task before the recruitment deadline.
	AcceptProbability float64
	// QualityNoise is the half-width of the uniform noise added to answer
	// quality.
	QualityNoise float64
	// AffinitySynergy scales how much the team's mean affinity boosts each
	// member's contribution quality — the "synergistic effect caused by
	// worker collaboration" the paper formalises.
	AffinitySynergy float64
	// BaseLatency is the minimum simulated time per step; heavier step kinds
	// take integer multiples of it.
	BaseLatency time.Duration
}

// DefaultConfig returns sensible simulation defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		InterestProbability: 0.6,
		AcceptProbability:   0.8,
		QualityNoise:        0.05,
		AffinitySynergy:     0.2,
		BaseLatency:         30 * time.Second,
	}
}

// Crowd is a simulated population bound to a worker manager.
type Crowd struct {
	cfg     Config
	manager *worker.Manager

	mu  sync.Mutex
	rng *rng
	// teamAffinity caches the affinity context used when answering steps for
	// a task (set by SetTeamContext).
	teamAffinity map[task.ID]float64
	// steps counts performed steps per kind for reporting.
	steps map[collab.StepKind]int
}

// New creates a simulated crowd over the given worker manager.
func New(cfg Config, m *worker.Manager) *Crowd {
	if cfg.InterestProbability <= 0 {
		cfg.InterestProbability = 0.6
	}
	if cfg.AcceptProbability <= 0 {
		cfg.AcceptProbability = 0.8
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 30 * time.Second
	}
	return &Crowd{
		cfg:          cfg,
		manager:      m,
		rng:          newRNG(uint64(cfg.Seed)),
		teamAffinity: make(map[task.ID]float64),
		steps:        make(map[collab.StepKind]int),
	}
}

// Manager returns the worker manager the crowd is registered in.
func (c *Crowd) Manager() *worker.Manager { return c.manager }

// StepCounts returns how many steps of each kind the crowd has performed.
func (c *Crowd) StepCounts() map[collab.StepKind]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[collab.StepKind]int, len(c.steps))
	for k, v := range c.steps {
		out[k] = v
	}
	return out
}

// PopulationSpec controls synthetic population generation.
type PopulationSpec struct {
	Size int
	// Regions to scatter workers over; workers in the same region get high
	// location-driven affinity.
	Regions []string
	// Languages available; every worker gets one native language and possibly
	// one other.
	Languages []string
	// Skills to endow; each worker gets a proficiency drawn uniformly from
	// [SkillMin, SkillMax] for each skill.
	Skills   []string
	SkillMin float64
	SkillMax float64
	// SecondLanguageProbability is the chance a worker also speaks a second
	// language.
	SecondLanguageProbability float64
}

// DefaultPopulation returns the spec used by the examples and experiments: a
// bilingual, multi-region population with translation, journalism and
// surveillance skills.
func DefaultPopulation(n int) PopulationSpec {
	return PopulationSpec{
		Size:                      n,
		Regions:                   []string{"tsukuba", "tokyo", "paris", "arlington", "doha"},
		Languages:                 []string{"en", "ja", "fr", "ar"},
		Skills:                    []string{"translation", "journalism", "surveillance", "transcription"},
		SkillMin:                  0.3,
		SkillMax:                  1.0,
		SecondLanguageProbability: 0.5,
	}
}

// regionCoords gives each known region a representative coordinate so that
// location-driven affinity behaves like the paper's surveillance example.
var regionCoords = map[string]worker.Location{
	"tsukuba":   {Lat: 36.08, Lon: 140.11},
	"tokyo":     {Lat: 35.68, Lon: 139.77},
	"paris":     {Lat: 48.85, Lon: 2.35},
	"arlington": {Lat: 32.73, Lon: -97.11},
	"doha":      {Lat: 25.28, Lon: 51.53},
}

// GeneratePopulation registers Size synthetic workers with the crowd's worker
// manager, fills the affinity matrix from their locations plus a random
// rapport component, and returns the created workers.
func (c *Crowd) GeneratePopulation(spec PopulationSpec) []*worker.Worker {
	if spec.Size <= 0 {
		return nil
	}
	if len(spec.Regions) == 0 {
		spec.Regions = []string{"default"}
	}
	if len(spec.Languages) == 0 {
		spec.Languages = []string{"en"}
	}
	if spec.SkillMax <= spec.SkillMin {
		spec.SkillMin, spec.SkillMax = 0.3, 1.0
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	workers := make([]*worker.Worker, 0, spec.Size)
	for i := 0; i < spec.Size; i++ {
		region := spec.Regions[i%len(spec.Regions)]
		loc := regionCoords[region]
		loc.Region = region
		// Jitter coordinates so same-region workers are near but not identical.
		loc.Lat += (c.rng.float() - 0.5) * 0.2
		loc.Lon += (c.rng.float() - 0.5) * 0.2

		native := spec.Languages[int(c.rng.next()%uint64(len(spec.Languages)))]
		var others []string
		if c.rng.float() < spec.SecondLanguageProbability {
			other := spec.Languages[int(c.rng.next()%uint64(len(spec.Languages)))]
			if other != native {
				others = append(others, other)
			}
		}
		skills := make(map[string]float64, len(spec.Skills))
		for _, s := range spec.Skills {
			skills[s] = spec.SkillMin + (spec.SkillMax-spec.SkillMin)*c.rng.float()
		}
		w := &worker.Worker{
			ID:   worker.ID(fmt.Sprintf("sim-%04d", i)),
			Name: fmt.Sprintf("Worker %04d", i),
			Factors: worker.HumanFactors{
				NativeLanguages: []string{native},
				OtherLanguages:  others,
				Location:        loc,
				Skills:          skills,
				WagePerTask:     1,
			},
			LoggedIn: true,
		}
		if err := c.manager.Register(w); err == nil {
			workers = append(workers, w)
		}
	}

	// Affinity: location-driven base plus a personal-rapport perturbation.
	c.manager.Affinity().FillFromLocations(workers, 0.8, 100)
	aff := c.manager.Affinity()
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			base := aff.Get(workers[i].ID, workers[j].ID)
			rapport := 0.2 * c.rng.float()
			aff.Set(workers[i].ID, workers[j].ID, base*0.8+rapport)
		}
	}
	return workers
}

// DeclareInterest simulates step 3 of Figure 2: the eligible workers see the
// task on their user pages and some of them declare interest. It records the
// InterestedIn relationship and returns the interested worker ids.
func (c *Crowd) DeclareInterest(taskID task.ID, eligible []worker.ID) []worker.ID {
	var interested []worker.ID
	for _, id := range eligible {
		c.mu.Lock()
		roll := c.rng.float()
		c.mu.Unlock()
		if roll < c.cfg.InterestProbability {
			if err := c.manager.SetRelationship(worker.InterestedIn, string(taskID), id); err == nil {
				interested = append(interested, id)
			}
		}
	}
	return interested
}

// WillUndertake simulates whether a suggested team member accepts and starts
// the task before the deadline.
func (c *Crowd) WillUndertake(worker.ID, task.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.float() < c.cfg.AcceptProbability
}

// SetTeamContext tells the crowd the mean affinity of the team working on a
// task so that contribution quality reflects collaboration synergy.
func (c *Crowd) SetTeamContext(taskID task.ID, meanAffinity float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.teamAffinity[taskID] = meanAffinity
}

// skillForStep maps a step kind to the skill that governs its quality.
func skillForStep(kind collab.StepKind) string {
	switch kind {
	case collab.StepDraft, collab.StepImprove, collab.StepFix:
		return "translation"
	case collab.StepContribute, collab.StepSubmit:
		return "journalism"
	case collab.StepFact, collab.StepCorrect, collab.StepTestimonial:
		return "surveillance"
	case collab.StepCheck:
		return "translation"
	default:
		return ""
	}
}

// latencyMultiplier scales the base latency per step kind.
func latencyMultiplier(kind collab.StepKind) int {
	switch kind {
	case collab.StepDraft, collab.StepContribute, collab.StepFact:
		return 4
	case collab.StepImprove, collab.StepFix, collab.StepCorrect, collab.StepTestimonial:
		return 3
	case collab.StepCheck, collab.StepSubmit:
		return 2
	default:
		return 1
	}
}

// Perform implements collab.WorkerIO: it synthesises a plausible answer for
// the step, with quality derived from the worker's skill, the team affinity
// context and bounded noise.
func (c *Crowd) Perform(req collab.StepRequest) (collab.StepResponse, error) {
	w, ok := c.manager.Get(req.Worker)
	if !ok {
		return collab.StepResponse{}, fmt.Errorf("crowdsim: unknown worker %s", req.Worker)
	}
	c.mu.Lock()
	c.steps[req.Kind]++
	noise := (c.rng.float()*2 - 1) * c.cfg.QualityNoise
	synergy := c.teamAffinity[req.TaskID] * c.cfg.AffinitySynergy
	latencyJitter := c.rng.float()
	c.mu.Unlock()

	skillName := skillForStep(req.Kind)
	skill := w.Factors.Skill(skillName)
	if skillName == "" {
		skill = 0.7
	}
	quality := clamp01(skill + synergy + noise)
	latency := time.Duration(float64(c.cfg.BaseLatency) * float64(latencyMultiplier(req.Kind)) * (0.75 + 0.5*latencyJitter))

	fields := map[string]string{}
	source := req.Input["source"]
	if source == "" {
		source = req.Input["topic"]
	}
	prev := req.Input["text"]
	switch req.Kind {
	case collab.StepDraft:
		fields["text"] = fmt.Sprintf("[draft by %s] %s", req.Worker, source)
	case collab.StepImprove:
		fields["text"] = fmt.Sprintf("%s [improved by %s]", prev, req.Worker)
	case collab.StepFix:
		fields["text"] = fmt.Sprintf("%s [fixed by %s]", prev, req.Worker)
	case collab.StepCheck:
		// High-quality work passes the check with probability rising in the
		// checker's own quality.
		verdict := "yes"
		if quality < 0.45 {
			verdict = "no"
		}
		fields["confirmed"] = verdict
		fields["comment"] = fmt.Sprintf("checked by %s", req.Worker)
	case collab.StepSNS:
		fields["sns_id"] = fmt.Sprintf("%s@crowd4u.example", req.Worker)
	case collab.StepContribute:
		section := req.Input["section"]
		if section != "" {
			fields["text"] = fmt.Sprintf("[%s section by %s] coverage of %s", section, req.Worker, source)
		} else {
			fields["text"] = fmt.Sprintf("[contribution by %s] coverage of %s", req.Worker, source)
		}
	case collab.StepSubmit:
		fields["text"] = req.Input["document"]
	case collab.StepFact:
		fields["text"] = fmt.Sprintf("[fact by %s] observation at %s/%s", req.Worker, req.Input["region"], req.Input["period"])
	case collab.StepCorrect:
		fields["text"] = fmt.Sprintf("%s [corrected by %s]", prev, req.Worker)
	case collab.StepTestimonial:
		fields["text"] = fmt.Sprintf("[testimonial by %s] independent account for %s/%s", req.Worker, req.Input["region"], req.Input["period"])
	default:
		fields["text"] = fmt.Sprintf("[%s by %s]", req.Kind, req.Worker)
	}
	return collab.StepResponse{Fields: fields, Quality: quality, Latency: latency}, nil
}

// AnswerOpenRequest answers a CyLog open request the way a worker would: text
// columns get synthetic content, boolean columns are usually true, and numeric
// columns get small counts. It is used as the oracle for engine-level runs.
func (c *Crowd) AnswerOpenRequest(req cylog.OpenRequest) (map[string]any, bool) {
	c.mu.Lock()
	roll := c.rng.float()
	c.mu.Unlock()
	out := make(map[string]any, len(req.OpenColumns))
	for _, col := range req.OpenColumns {
		switch {
		case strings.Contains(col, "ok") || strings.Contains(col, "confirmed") || strings.Contains(col, "valid"):
			out[col] = roll < 0.85
		case strings.Contains(col, "count") || strings.Contains(col, "num"):
			out[col] = int(roll * 10)
		case strings.Contains(col, "score") || strings.Contains(col, "quality"):
			out[col] = roll
		default:
			out[col] = fmt.Sprintf("crowd answer for %s %v", req.Relation, req.KeyValues)
		}
	}
	return out, true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// rng is a SplitMix64 deterministic generator (math/rand is avoided so that
// experiment outputs are stable across Go releases).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x1234567890abcdef} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
