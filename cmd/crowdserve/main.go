// Command crowdserve runs the full Crowd4U service: the JSON/REST API and
// WebSocket event stream (internal/api) with the server-rendered admin/worker
// UI (internal/webui) mounted on the same listener. Workers and harnesses
// (cmd/loadsim, curl — see docs/API.md) hit /api/v1/...; browsers get the
// HTML front end everywhere else.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/api"
	"github.com/crowd4u/crowd4u-go/internal/crowdsim"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/webui"
)

// demoProgram gives a fresh instance something to serve: a labeling project
// with open requests as soon as the first items arrive over POST .../facts.
const demoProgram = `
rel item(id: int).
open rel label(id: int, ok: bool) key(id) asks "Is this item acceptable?".
rel labeled(id: int).
rel flagged(id: int).

labeled(I) :- item(I), label(I, true).
flagged(I) :- item(I), !labeled(I).
`

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address")
		queue          = flag.Int("queue", api.DefaultQueueCapacity, "ingress queue capacity per project (answers staged per round before 429)")
		commitInterval = flag.Duration("commit-interval", 25*time.Millisecond, "background fixpoint cadence; 0 = commit only via POST .../fixpoint")
		demo           = flag.Bool("demo", true, "register the demo labeling project at startup")
		popSize        = flag.Int("population", 25, "simulated worker population backing the web UI")
		seed           = flag.Int64("seed", 1, "crowd simulator seed")
		backend        = flag.String("backend", "", "relstore backend for project engines: memory or disk (default $CYLOG_BACKEND, else memory)")
		dataDir        = flag.String("data", "", "root directory for disk-backed relation segments (default $CYLOG_BACKEND_DIR, else per-project temp dirs)")
		memBudget      = flag.Int64("mem-budget", 0, "disk backend residency budget in bytes (0 = default)")
	)
	flag.Parse()

	p := platform.New()
	// platform.New seeds storage from the environment; flags win over it.
	storage := p.Storage()
	if *backend != "" {
		storage.Backend = *backend
	}
	if *dataDir != "" {
		storage.Dir = *dataDir
	}
	if *memBudget > 0 {
		storage.BudgetBytes = *memBudget
	}
	p.SetStorage(storage)
	crowd := crowdsim.New(crowdsim.DefaultConfig(*seed), p.Workers)
	crowd.GeneratePopulation(crowdsim.DefaultPopulation(*popSize))

	if *demo {
		if _, err := p.RegisterProject(project.Description{
			ID:          "demo-labels",
			Name:        "Demo labeling project",
			Summary:     "POST items to /api/v1/projects/demo-labels/facts, answer the generated label tasks.",
			CyLogSource: demoProgram,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "crowdserve:", err)
			os.Exit(1)
		}
	}

	srv := api.NewServer(p, api.Options{
		QueueCapacity:  *queue,
		CommitInterval: *commitInterval,
		UI:             webui.NewServer(p, crowd),
	})
	defer srv.Close()

	backendName := storage.Backend
	if backendName == "" {
		backendName = "memory"
	}
	fmt.Fprintf(os.Stderr, "crowdserve: serving API + web UI on http://%s (queue %d, commit every %s, backend %s)\n",
		*addr, *queue, *commitInterval, backendName)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "crowdserve:", err)
		os.Exit(1)
	}
}
