// Command loadsim is the closed-loop HTTP load harness for the service
// layer: it registers a labeling project, seeds N items, and drives W
// simulated workers against the REST surface — feed fetch, answer
// submission through the ingress queue (backing off on 429), fixpoint
// completion observed as round-stamped events on the WebSocket stream.
//
// Two headline metrics come out of a run:
//
//   - answer throughput: accepted answers per second across the whole run,
//     also reported as ns per answer;
//   - p99 answer→fixpoint latency: per answer, the time from the 202
//     acceptance to the arrival of the "fixpoint" event whose round covers
//     it — the full ingest→derive→notify path a worker experiences.
//
// With -bench (the default) the results are printed as `go test -bench`
// style lines, which `make loadcheck` pipes into cmd/benchcheck against
// BENCH_platform.json — the same regression gate the engine benchmarks use.
//
// By default the harness self-hosts: it spins up the full service
// (internal/api over internal/platform) on a loopback listener and measures
// through real HTTP. Point -url at a running `crowdserve` to load an
// external instance instead (the target project must not already exist).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/api"
	"github.com/crowd4u/crowd4u-go/internal/crowdsim"
	"github.com/crowd4u/crowd4u-go/internal/metrics"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/worker"
)

// labelingProgram is the load workload: one open request per item, a
// positive consequence per approval and a negation-derived flag otherwise,
// so every commit exercises insertion, retraction and request closing.
const labelingProgram = `
rel item(id: int).
open rel label(id: int, ok: bool) key(id) asks "Is this item acceptable?".
rel labeled(id: int).
rel flagged(id: int).

labeled(I) :- item(I), label(I, true).
flagged(I) :- item(I), !labeled(I).
`

func main() {
	var (
		urlFlag        = flag.String("url", "", "target server root; empty self-hosts the full service on loopback")
		projectID      = flag.String("project", "loadsim", "project id to create and load")
		items          = flag.Int("items", 400, "items to seed (one open request each)")
		workers        = flag.Int("workers", 32, "concurrent simulated workers")
		commitInterval = flag.Duration("commit-interval", 10*time.Millisecond, "background deriver cadence (self-hosted mode)")
		queue          = flag.Int("queue", 1024, "ingress queue capacity per project (self-hosted mode)")
		seed           = flag.Int64("seed", 1, "crowd simulator seed")
		timeout        = flag.Duration("timeout", 2*time.Minute, "abort the run after this long")
		bench          = flag.Bool("bench", true, "print go test -bench style result lines on stdout")
	)
	flag.Parse()

	base := *urlFlag
	if base == "" {
		p := platform.New()
		srv := api.NewServer(p, api.Options{
			QueueCapacity:  *queue,
			CommitInterval: *commitInterval,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadsim: self-hosted service at %s\n", base)
	}

	r, err := run(base, *projectID, *items, *workers, *seed, *timeout)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr,
		"loadsim: %d answers by %d workers in %s — %.0f answers/sec, p99 answer→fixpoint %s (p50 %s), %d overload retries\n",
		r.answers, *workers, r.wall.Round(time.Millisecond), r.perSec,
		time.Duration(r.p99).Round(time.Microsecond), time.Duration(r.p50).Round(time.Microsecond), r.retries)

	if *bench {
		// Lines in `go test -bench` shape so cmd/benchcheck gates them
		// against BENCH_platform.json (names in its "platform-http" group).
		fmt.Printf("BenchmarkServiceAnswerThroughput %d %.0f ns/op\n", r.answers, float64(r.wall.Nanoseconds())/float64(r.answers))
		fmt.Printf("BenchmarkServiceAnswerFixpointP99 %d %.0f ns/op\n", r.answers, r.p99)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadsim:", err)
	os.Exit(1)
}

// result is one closed-loop run's measurements.
type result struct {
	answers int
	wall    time.Duration
	perSec  float64
	p50     float64 // ns
	p99     float64 // ns
	retries int64
}

// stamp is one accepted answer awaiting its covering fixpoint event.
type stamp struct {
	round uint64
	at    time.Time
}

func run(base, projectID string, items, workers int, seed int64, timeout time.Duration) (*result, error) {
	client := crowdsim.NewServiceClient(base, projectID)
	crowd := crowdsim.New(crowdsim.DefaultConfig(seed), worker.NewManager())

	if _, err := client.CreateProject(api.CreateProjectRequest{
		ID:    projectID,
		Name:  "Loadsim labeling workload",
		CyLog: labelingProgram,
	}); err != nil {
		return nil, fmt.Errorf("creating project: %w", err)
	}
	for i := 1; i <= items; i++ {
		if err := client.AddFact("item", i); err != nil {
			return nil, fmt.Errorf("seeding item %d: %w", i, err)
		}
	}
	fp, err := client.Fixpoint()
	if err != nil {
		return nil, fmt.Errorf("initial fixpoint: %w", err)
	}
	if fp.Pending != items {
		return nil, fmt.Errorf("initial fixpoint left %d pending requests, want %d", fp.Pending, items)
	}

	// Latency tracker: workers append stamps as answers are accepted; the
	// event listener resolves every stamp covered by each arriving fixpoint
	// round into a latency sample. maxRound is the highest fixpoint round
	// seen so far — an answer whose covering event raced ahead of its 202
	// (the listener can process the round's fixpoint before SubmitAnswer
	// returns) resolves at append time instead of waiting for a later event
	// that may never come on the run's final round.
	var (
		mu        sync.Mutex
		pending   []stamp
		latencies []float64
		maxRound  uint64
		lastEvent time.Time
		resolved  = make(chan struct{}, 1)
	)
	stream, err := client.Events()
	if err != nil {
		return nil, fmt.Errorf("subscribing to events: %w", err)
	}
	defer stream.Close()
	go func() {
		for {
			msg, err := stream.Next()
			if err != nil {
				return
			}
			if msg.Kind != "fixpoint" {
				continue
			}
			now := time.Now()
			mu.Lock()
			if msg.Round > maxRound {
				maxRound = msg.Round
			}
			kept := pending[:0]
			for _, s := range pending {
				if s.round <= msg.Round {
					latencies = append(latencies, float64(now.Sub(s.at).Nanoseconds()))
					lastEvent = now
				} else {
					kept = append(kept, s)
				}
			}
			pending = kept
			mu.Unlock()
			select {
			case resolved <- struct{}{}:
			default:
			}
		}
	}()

	// The workload derives no follow-up requests, so one full feed fetch
	// covers the run; workers drain the shared queue of request ids.
	feed, err := client.Tasks(0, items)
	if err != nil {
		return nil, fmt.Errorf("fetching feed: %w", err)
	}
	if len(feed.Tasks) != items {
		return nil, fmt.Errorf("feed has %d tasks, want %d", len(feed.Tasks), items)
	}
	queue := make(chan api.TaskView, items)
	for _, tv := range feed.Tasks {
		queue <- tv
	}
	close(queue)

	start := time.Now()
	deadline := start.Add(timeout)
	var (
		wg        sync.WaitGroup
		retriesMu sync.Mutex
		retries   int64
		firstErr  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tv := range queue {
				values, ok := crowd.AnswerTaskView(tv)
				if !ok {
					continue
				}
				for {
					resp, err := client.SubmitAnswer(tv.ID, values)
					if err == nil {
						now := time.Now()
						mu.Lock()
						if resp.Round <= maxRound {
							// The covering fixpoint event already arrived:
							// resolve now (zero observed latency) rather
							// than stranding a stamp no later event covers.
							latencies = append(latencies, 0)
							lastEvent = now
						} else {
							pending = append(pending, stamp{round: resp.Round, at: now})
						}
						mu.Unlock()
						break
					}
					se, isService := err.(*crowdsim.ServiceError)
					if isService && se.Overloaded() && time.Now().Before(deadline) {
						retriesMu.Lock()
						retries++
						retriesMu.Unlock()
						wait := se.RetryAfter
						if wait <= 0 {
							wait = 5 * time.Millisecond
						}
						time.Sleep(wait)
						continue
					}
					retriesMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("answering %s: %w", tv.ID, err)
					}
					retriesMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Drain: wait until every accepted answer's round has committed.
	for {
		mu.Lock()
		left := len(pending)
		n := len(latencies)
		mu.Unlock()
		if left == 0 && n > 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("timed out with %d answers unresolved", left)
		}
		select {
		case <-resolved:
		case <-time.After(50 * time.Millisecond):
		}
	}

	mu.Lock()
	wall := lastEvent.Sub(start)
	samples := append([]float64(nil), latencies...)
	mu.Unlock()
	if wall <= 0 {
		wall = time.Since(start)
	}
	return &result{
		answers: len(samples),
		wall:    wall,
		perSec:  float64(len(samples)) / wall.Seconds(),
		p50:     metrics.Percentile(samples, 0.50),
		p99:     metrics.Percentile(samples, 0.99),
		retries: retries,
	}, nil
}
